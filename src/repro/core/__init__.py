"""The paper's core contribution: utility-based fairness.

Events and payoffs (§3), the attacker-utility machinery (Eq. 1/2/5), the
fairness partial order and optimality (Defs. 1-2), utility-balanced and
φ-fairness (Defs. 5/21), corruption costs and ideal fairness (Defs. 19-20,
Thm. 6, Lemma 22), and negligible-aware comparisons (§2).
"""

from .events import (
    FairnessEvent,
    adversary_learned_output,
    classify,
    honest_learned_output,
)
from .payoff import (
    PARTIAL_FAIRNESS_GAMMA,
    STANDARD_GAMMA,
    CostedPayoffVector,
    PayoffVector,
    count_cost,
    gamma_fair_grid,
    gamma_fair_plus_grid,
    zero_cost,
)
from .utility import (
    EventCounts,
    UtilityEstimate,
    best_utility,
    estimate_from_counts,
    wilson_interval,
)
from .fairness import (
    Comparison,
    ProtocolAssessment,
    assess,
    at_least_as_fair,
    compare,
    is_optimally_fair,
)
from .balance import (
    BalanceProfile,
    balanced_sum_bound,
    is_phi_fair,
    is_utility_balanced,
    optimal_phi,
    per_t_bound,
)
from .corruption_cost import (
    IdealFairnessCheck,
    check_ideal_fairness,
    cost_from_phi,
    dominates,
    ideal_payoff,
    no_strictly_dominated_cost_exists,
    optimal_cost_from_profile,
    strictly_dominates,
)
from .attack_game import AttackGame, game_from_estimates
from .asymptotics import (
    approx_eq,
    approx_leq,
    is_negligible,
    is_noticeable,
    monte_carlo_tolerance,
    negl_eq,
    negl_leq,
    negligible_envelope,
    strictly_less,
)

__all__ = [
    "FairnessEvent",
    "adversary_learned_output",
    "classify",
    "honest_learned_output",
    "PARTIAL_FAIRNESS_GAMMA",
    "STANDARD_GAMMA",
    "CostedPayoffVector",
    "PayoffVector",
    "count_cost",
    "gamma_fair_grid",
    "gamma_fair_plus_grid",
    "zero_cost",
    "EventCounts",
    "UtilityEstimate",
    "best_utility",
    "estimate_from_counts",
    "wilson_interval",
    "Comparison",
    "ProtocolAssessment",
    "assess",
    "at_least_as_fair",
    "compare",
    "is_optimally_fair",
    "BalanceProfile",
    "balanced_sum_bound",
    "is_phi_fair",
    "is_utility_balanced",
    "optimal_phi",
    "per_t_bound",
    "IdealFairnessCheck",
    "check_ideal_fairness",
    "cost_from_phi",
    "dominates",
    "ideal_payoff",
    "no_strictly_dominated_cost_exists",
    "optimal_cost_from_profile",
    "strictly_dominates",
    "AttackGame",
    "game_from_estimates",
    "approx_eq",
    "approx_leq",
    "is_negligible",
    "is_noticeable",
    "monte_carlo_tolerance",
    "negl_eq",
    "negl_leq",
    "negligible_envelope",
    "strictly_less",
]
