"""Utility-balanced fairness and φ-fairness (Definitions 5 and 21).

A multi-party protocol is utility-balanced γ-fair when the *sum* of the best
t-adversaries' utilities over t = 1..n−1 is minimal; the paper shows the
optimum is (n−1)(γ10+γ11)/2 (Lemmas 14 and 16) and that exceeding this bound
certifies non-balance.  φ-fairness explicitly bounds the best t-adversary's
utility by φ(t) for every t.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping

from .payoff import PayoffVector
from .utility import UtilityEstimate


def balanced_sum_bound(n: int, gamma: PayoffVector) -> float:
    """The utility-balance optimum (n−1)(γ10+γ11)/2 from Lemma 14/16."""
    if n < 2:
        raise ValueError("need at least two parties")
    return (n - 1) * (gamma.gamma10 + gamma.gamma11) / 2.0


def per_t_bound(n: int, t: int, gamma: PayoffVector) -> float:
    """Lemma 11's per-t bound (t·γ10 + (n−t)·γ11)/n for ΠOptnSFE."""
    if not 1 <= t <= n - 1:
        raise ValueError(f"t must be in [1, n-1], got t={t}, n={n}")
    return (t * gamma.gamma10 + (n - t) * gamma.gamma11) / n


@dataclass(frozen=True)
class BalanceProfile:
    """Measured best-t-adversary utilities u(Π, A_t) for t = 1..n−1."""

    protocol_name: str
    n: int
    gamma: PayoffVector
    per_t: Mapping[int, UtilityEstimate]

    def __post_init__(self):
        expected = set(range(1, self.n))
        if set(self.per_t) != expected:
            raise ValueError(
                f"need estimates for every t in 1..{self.n - 1}, "
                f"got {sorted(self.per_t)}"
            )

    @property
    def utility_sum(self) -> float:
        return sum(e.mean for e in self.per_t.values())

    def exceeds_balance_bound(self, tol: float = 0.0) -> bool:
        """The paper's non-balance criterion: the sum non-negligibly
        exceeds (n−1)(γ10+γ11)/2."""
        return self.utility_sum > balanced_sum_bound(self.n, self.gamma) + tol

    def phi(self) -> Callable[[int], float]:
        """The measured φ function (Definition 21) of this protocol."""
        values = {t: e.mean for t, e in self.per_t.items()}

        def phi_fn(t: int) -> float:
            if t not in values:
                raise ValueError(f"φ measured only on 1..{self.n - 1}")
            return values[t]

        return phi_fn


def is_utility_balanced(
    profile: BalanceProfile,
    competitor_sums: Iterable[float] = (),
    tol: float = 0.0,
) -> bool:
    """Definition 5 on measured data.

    The profile is balanced when its utility sum attains the analytic
    optimum (Lemma 16 shows no protocol sums below it), and no supplied
    competitor's sum beats it.
    """
    bound = balanced_sum_bound(profile.n, profile.gamma)
    if profile.utility_sum > bound + tol:
        return False
    return all(profile.utility_sum <= s + tol for s in competitor_sums)


def is_phi_fair(
    profile: BalanceProfile, phi: Callable[[int], float], tol: float = 0.0
) -> bool:
    """Definition 21: u(Π, A_t) ≤ φ(t) for every t."""
    return all(
        profile.per_t[t].mean <= phi(t) + tol for t in range(1, profile.n)
    )


def optimal_phi(n: int, gamma: PayoffVector) -> Callable[[int], float]:
    """The φ attained by ΠOptnSFE: φ(t) = (t·γ10 + (n−t)·γ11)/n."""

    def phi_fn(t: int) -> float:
        return per_t_bound(n, t, gamma)

    return phi_fn
