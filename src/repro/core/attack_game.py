"""The RPD attack game (paper §2, Remark 2).

Rational Protocol Design frames security as a two-move zero-sum game: the
designer D picks a protocol Π; the attacker A, seeing Π, picks the attack
strategy maximising its utility.  The designer's payoff is −u_A, so an
optimally fair protocol is exactly a minimax solution: it minimises the
best-response utility.  Remark 2 notes the Minimax theorem guarantees such
a solution exists.

:class:`AttackGame` materialises the game over a finite universe of
implemented protocols and measured strategy utilities, exposing the value
matrix, each protocol's best response, the designer's minimax choice, and
(for analyses over mixed designer strategies) the value of a protocol
mixture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from .payoff import PayoffVector
from .utility import UtilityEstimate


@dataclass
class AttackGame:
    """A measured (designer x attacker) utility matrix.

    ``matrix[protocol_name][strategy_name]`` is the measured attacker
    utility of that strategy against that protocol.
    """

    gamma: PayoffVector
    matrix: Dict[str, Dict[str, float]]

    def __post_init__(self):
        if not self.matrix:
            raise ValueError("the game needs at least one protocol")
        for name, row in self.matrix.items():
            if not row:
                raise ValueError(f"protocol {name!r} has no measured attacks")

    # -- attacker side --------------------------------------------------------
    def best_response(self, protocol_name: str) -> Tuple[str, float]:
        """The attacker's best strategy and its utility against Π."""
        row = self.matrix[protocol_name]
        strategy = max(row, key=row.get)
        return strategy, row[strategy]

    def attacker_value(self, protocol_name: str) -> float:
        return self.best_response(protocol_name)[1]

    # -- designer side ---------------------------------------------------------
    def minimax_protocols(self, tol: float = 0.0) -> List[str]:
        """Designer optima: protocols minimising the best-response utility.

        These are the optimally fair protocols of Definition 2 within the
        assessed universe (the attack game's pure minimax solutions).
        """
        value = self.game_value()
        return sorted(
            name
            for name in self.matrix
            if self.attacker_value(name) <= value + tol
        )

    def game_value(self) -> float:
        """min over protocols of max over strategies (the designer's
        guaranteed bound on the attacker utility)."""
        return min(self.attacker_value(name) for name in self.matrix)

    def designer_payoff(self, protocol_name: str) -> float:
        """The zero-sum designer payoff u_D = −u_A."""
        return -self.attacker_value(protocol_name)

    def mixture_value(self, weights: Mapping[str, float]) -> float:
        """Attacker's best response against a designer *mixture*.

        The attacker observes the realised protocol (it moves second), so
        mixing cannot beat the best pure choice: the value is the weighted
        average of per-protocol best responses — always >= game_value().
        """
        total = sum(weights.values())
        if not 0.999 <= total <= 1.001:
            raise ValueError("mixture weights must sum to 1")
        for name in weights:
            if name not in self.matrix:
                raise KeyError(f"unknown protocol {name!r}")
        return sum(
            w * self.attacker_value(name) for name, w in weights.items()
        )

    def as_rows(self) -> List[list]:
        """Render-ready rows: protocol, best strategy, value."""
        rows = []
        for name in sorted(self.matrix, key=self.attacker_value):
            strategy, value = self.best_response(name)
            rows.append([name, strategy, value])
        return rows


def game_from_estimates(
    gamma: PayoffVector,
    estimates: Sequence[UtilityEstimate],
) -> AttackGame:
    """Assemble an AttackGame from per-(protocol, strategy) estimates."""
    matrix: Dict[str, Dict[str, float]] = {}
    for est in estimates:
        matrix.setdefault(est.protocol, {})[est.adversary] = est.mean
    return AttackGame(gamma, matrix)
