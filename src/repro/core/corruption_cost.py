"""Corruption costs, ideal γC-fairness, and cost dominance.

Implements the machinery of §4.2 / Appendix B.2: Eq. (5) extends the payoff
with −C(I) for corrupting the set I; Definition 19 calls a protocol *ideally
γC-fair* when it restricts its best attacker at least as much as the dummy
Fsfe-hybrid protocol ΦFsfe; Definition 20 orders cost functions by
dominance; Lemma 22 links φ-fairness and ideal γC-fairness through
c(t) = φ(t) − s(t), where s(t) is the best t-adversary's payoff against the
ideal functionality itself; and Theorem 6 shows utility-balanced fairness
yields the optimal (minimal) cost function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .balance import BalanceProfile
from .payoff import PayoffVector

CountCost = Callable[[int], float]


def ideal_payoff(gamma: PayoffVector, t: int, n: int) -> float:
    """s(t): the best t-adversary's payoff against ΦFsfe (the fully fair
    dummy protocol).

    With guaranteed fair delivery the adversary's choices are E11 (let the
    computation complete) or E00 (refuse to participate); under Γ+fair,
    γ00 ≤ γ11, so the optimum is γ11 for 1 ≤ t ≤ n−1.  t = 0 gives γ01 and
    t = n gives γ11 by definition.
    """
    if not 0 <= t <= n:
        raise ValueError(f"t must be in [0, n], got t={t}, n={n}")
    gamma.require_fair_plus()
    if t == 0:
        return gamma.gamma01
    return gamma.gamma11


def dominates(c1: CountCost, c2: CountCost, n: int, tol: float = 0.0) -> bool:
    """Definition 20 (weak): c1(t) >= c2(t) for every t in [n]."""
    return all(c1(t) >= c2(t) - tol for t in range(1, n + 1))


def strictly_dominates(
    c1: CountCost, c2: CountCost, n: int, tol: float = 0.0
) -> bool:
    """Definition 20 (strict): c1(t) > c2(t) for every t in [n]."""
    return all(c1(t) > c2(t) + tol for t in range(1, n + 1))


def cost_from_phi(
    phi: Callable[[int], float], gamma: PayoffVector, n: int
) -> CountCost:
    """Lemma 22's cost function c(t) = φ(t) − s(t).

    A φ-fair protocol is ideally γC-fair exactly for this cost function:
    charging the adversary c(t) for t corruptions pushes its net payoff
    down to what it would obtain against the ideal functionality.
    """

    def c(t: int) -> float:
        if t >= n:
            # Corrupting everyone is worth γ11 to the adversary by
            # definition, so the residual advantage is zero.
            return 0.0
        return phi(t) - ideal_payoff(gamma, t, n)

    return c


@dataclass(frozen=True)
class IdealFairnessCheck:
    """The result of checking ideal γC-fairness (Definition 19)."""

    protocol_name: str
    n: int
    gamma: PayoffVector
    #: per-t net utilities after subtracting the corruption cost
    net_utilities: Dict[int, float]
    #: per-t ideal (dummy-protocol) payoffs s(t)
    ideal_payoffs: Dict[int, float]

    def holds(self, tol: float = 0.0) -> bool:
        return all(
            self.net_utilities[t] <= self.ideal_payoffs[t] + tol
            for t in self.net_utilities
        )


def check_ideal_fairness(
    profile: BalanceProfile, cost: CountCost, tol: float = 0.0
) -> IdealFairnessCheck:
    """Check Definition 19 for a measured balance profile under ``cost``.

    For each t, the best t-adversary's *net* payoff u(Π, A_t) − c(t) must
    not exceed s(t), its payoff against the dummy protocol ΦFsfe.
    """
    gamma = profile.gamma
    n = profile.n
    net = {
        t: profile.per_t[t].mean - cost(t) for t in range(1, n)
    }
    ideal = {t: ideal_payoff(gamma, t, n) for t in range(1, n)}
    return IdealFairnessCheck(
        protocol_name=profile.protocol_name,
        n=n,
        gamma=gamma,
        net_utilities=net,
        ideal_payoffs=ideal,
    )


def optimal_cost_from_profile(profile: BalanceProfile) -> CountCost:
    """Theorem 6(1): the cost function c(t) = u(Π, A_t) − s(t) under which a
    utility-balanced protocol is ideally γC-fair (and, by Theorem 6(2),
    no strictly dominated cost admits any ideally fair protocol)."""
    return cost_from_phi(profile.phi(), profile.gamma, profile.n)


def no_strictly_dominated_cost_exists(
    profile: BalanceProfile,
    competitor_profiles: List[BalanceProfile],
    tol: float = 0.0,
) -> bool:
    """Theorem 6(2) on measured data.

    For every competitor protocol, derive its induced cost function and
    verify it does not strictly dominate (i.e. is not strictly cheaper
    than) the candidate's — which would contradict the candidate's
    utility-balance by Lemma 16.
    """
    candidate_cost = optimal_cost_from_profile(profile)
    n = profile.n
    for other in competitor_profiles:
        other_cost = optimal_cost_from_profile(other)
        # "other strictly dominated by candidate" means other is strictly
        # cheaper at every t — impossible for balanced candidates.
        if strictly_dominates(candidate_cost, other_cost, n - 1, tol):
            return False
    return True
