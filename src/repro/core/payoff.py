"""Payoff vectors ~γ and the classes Γfair, Γ+fair, Γ+C_fair (§3, §4.2).

A payoff vector assigns a real value γij to each fairness event Eij.  The
paper's natural class Γfair requires (after normalising γ01 := 0):

    0 = γ01 <= min{γ00, γ11}   and   max{γ00, γ11} < γ10,

i.e. the attacker's least preferred outcome is "only the honest parties
learn" and its favourite is "only I learn".  Γ+fair adds γ00 <= γ11 (the
attacker prefers learning over not learning), used throughout the
multi-party section.  Γ+C_fair extends a Γ+fair vector with per-set
corruption costs C(I) >= 0 entering the payoff negatively (Eq. (5)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Mapping, Union

from .events import FairnessEvent


@dataclass(frozen=True)
class PayoffVector:
    """~γ = (γ00, γ01, γ10, γ11)."""

    gamma00: float
    gamma01: float
    gamma10: float
    gamma11: float

    # -- class membership ---------------------------------------------------
    def in_gamma_fair(self) -> bool:
        """Membership in Γfair (after the wlog normalisation γ01 = 0)."""
        g = self.normalised()
        return (
            g.gamma01 == 0.0
            and g.gamma01 <= min(g.gamma00, g.gamma11)
            and max(g.gamma00, g.gamma11) < g.gamma10
        )

    def in_gamma_fair_plus(self) -> bool:
        """Membership in Γ+fair: additionally γ00 <= γ11."""
        return self.in_gamma_fair() and self.gamma00 <= self.gamma11

    def require_fair(self) -> "PayoffVector":
        if not self.in_gamma_fair():
            raise ValueError(f"{self} is not in Γfair")
        return self

    def require_fair_plus(self) -> "PayoffVector":
        if not self.in_gamma_fair_plus():
            raise ValueError(f"{self} is not in Γ+fair")
        return self

    # -- operations ----------------------------------------------------------
    def normalised(self) -> "PayoffVector":
        """Shift so that γ01 = 0 (the paper's wlog normalisation).

        Subtracting a constant from every entry leaves the induced fairness
        *relation* unchanged (it shifts every utility identically).
        """
        c = self.gamma01
        return PayoffVector(
            self.gamma00 - c,
            0.0,
            self.gamma10 - c,
            self.gamma11 - c,
        )

    def value(self, event: FairnessEvent) -> float:
        return {
            FairnessEvent.E00: self.gamma00,
            FairnessEvent.E01: self.gamma01,
            FairnessEvent.E10: self.gamma10,
            FairnessEvent.E11: self.gamma11,
            # Outside the paper's 2×2 grid: a hung honest party means
            # nobody learned, so it is valued like E00.
            FairnessEvent.HONEST_HUNG: self.gamma00,
        }[event]

    def expected(self, distribution: Mapping[FairnessEvent, float]) -> float:
        """U = Σ γij · Pr[Eij] (Eq. (1))."""
        total_prob = sum(distribution.values())
        if total_prob > 1.0 + 1e-9:
            raise ValueError("event probabilities exceed 1")
        return sum(self.value(e) * p for e, p in distribution.items())

    def as_tuple(self) -> tuple:
        return (self.gamma00, self.gamma01, self.gamma10, self.gamma11)

    def __str__(self) -> str:
        return (
            f"γ=(γ00={self.gamma00}, γ01={self.gamma01}, "
            f"γ10={self.gamma10}, γ11={self.gamma11})"
        )


#: The canonical vector used in examples: attacker gets 1 for the unfair
#: outcome, 1/2 for the fair "everyone learns" outcome, 0 otherwise.
STANDARD_GAMMA = PayoffVector(0.0, 0.0, 1.0, 0.5)

#: The vector that makes utility-based fairness imply 1/p-security
#: (Lemma 25): all payoff rides on the unfair event E10.
PARTIAL_FAIRNESS_GAMMA = PayoffVector(0.0, 0.0, 1.0, 0.0)


def gamma_fair_grid() -> list:
    """A small grid of Γfair vectors for sweeping benchmarks."""
    grid = []
    for g00 in (0.0, 0.25, 0.5):
        for g11 in (0.0, 0.5, 0.75):
            for g10 in (1.0, 2.0):
                vec = PayoffVector(g00, 0.0, g10, g11)
                if vec.in_gamma_fair():
                    grid.append(vec)
    return grid


def gamma_fair_plus_grid() -> list:
    """Γ+fair vectors (γ00 <= γ11) for the multi-party sweeps."""
    return [g for g in gamma_fair_grid() if g.in_gamma_fair_plus()]


CostFunction = Callable[[FrozenSet[int]], float]


@dataclass(frozen=True)
class CostedPayoffVector:
    """~γ^C: a Γ+fair payoff vector plus corruption costs (Eq. (5)).

    ``cost`` maps a corrupted set I ⊆ [n] to C(I) >= 0.  For the
    count-only costs of Theorem 6 use :func:`count_cost`.
    """

    base: PayoffVector
    cost: CostFunction = field(compare=False)

    def in_gamma_fair_plus_c(self) -> bool:
        return self.base.in_gamma_fair_plus()

    def expected(
        self,
        event_distribution: Mapping[FairnessEvent, float],
        corruption_distribution: Mapping[FrozenSet[int], float],
    ) -> float:
        """U = Σ γij·Pr[Eij] − Σ C(I)·Pr[EI] (Eq. (5))."""
        base = self.base.expected(event_distribution)
        penalty = sum(
            self.cost(frozenset(i_set)) * p
            for i_set, p in corruption_distribution.items()
        )
        return base - penalty


def count_cost(c: Callable[[int], float]) -> CostFunction:
    """Lift a count-based cost c(t) to a set-based cost C(I) = c(|I|)."""

    def cost(i_set: FrozenSet[int]) -> float:
        return c(len(i_set))

    return cost


def zero_cost() -> CostFunction:
    return count_cost(lambda t: 0.0)
