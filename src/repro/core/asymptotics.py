"""Negligible-aware asymptotic comparisons (paper §2).

The paper's statements are asymptotic in a security parameter k: f ≤negl g
means f ≤ g + μ for a negligible μ.  In a concrete Monte-Carlo reproduction
the "negligible" slack manifests as (a) true cryptographic error (forgery
probabilities around 2^-128, genuinely invisible) and (b) sampling error of
the estimator.  This module provides:

* callable-level checks (:func:`is_negligible`, :func:`negl_leq`) used in
  tests that model asymptotics directly, and
* numeric checks (:func:`approx_leq`, :func:`approx_eq`) with explicit
  tolerances used when comparing measured utilities to paper bounds.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

#: Security-parameter probe points used by the callable-level checks.
DEFAULT_KS = (16, 24, 32, 48, 64, 96, 128)


def negligible_envelope(k: int) -> float:
    """The canonical negligible function 2^-k."""
    return 2.0 ** (-k)


def is_negligible(
    f: Callable[[int], float],
    ks: Sequence[int] = DEFAULT_KS,
    poly_degree: int = 3,
) -> bool:
    """Heuristic test that ``f`` vanishes faster than any polynomial.

    Checks that f(k) · k^poly_degree is decreasing and tiny at the largest
    probe — the operational meaning of negligibility at concrete parameters.
    """
    values = [abs(f(k)) * (k**poly_degree) for k in ks]
    decreasing = all(b <= a * 1.01 + 1e-12 for a, b in zip(values, values[1:]))
    return decreasing and values[-1] < 1e-6


def is_noticeable(
    f: Callable[[int], float],
    ks: Sequence[int] = DEFAULT_KS,
    poly_degree: int = 3,
) -> bool:
    """Heuristic test that f(k) >= 1/poly(k) along the probes."""
    return all(abs(f(k)) >= 1.0 / (k**poly_degree) for k in ks)


def negl_leq(
    f: Callable[[int], float],
    g: Callable[[int], float],
    ks: Sequence[int] = DEFAULT_KS,
) -> bool:
    """f ≤negl g: f(k) ≤ g(k) + 2^-k at every probe point."""
    return all(f(k) <= g(k) + negligible_envelope(k) for k in ks)


def negl_eq(
    f: Callable[[int], float],
    g: Callable[[int], float],
    ks: Sequence[int] = DEFAULT_KS,
) -> bool:
    """f ≈negl g."""
    return negl_leq(f, g, ks) and negl_leq(g, f, ks)


# --------------------------------------------------------------------------
# Concrete (measured-value) comparisons
# --------------------------------------------------------------------------

def approx_leq(a: float, b: float, tol: float) -> bool:
    """a ≤ b up to a statistical tolerance standing in for the negligible
    slack plus Monte-Carlo error."""
    if tol < 0:
        raise ValueError("tolerance must be non-negative")
    return a <= b + tol


def approx_eq(a: float, b: float, tol: float) -> bool:
    return abs(a - b) <= tol


def strictly_less(a: float, b: float, tol: float) -> bool:
    """a <negl b: a is below b by more than the tolerance."""
    return a < b - tol


def monte_carlo_tolerance(n_runs: int, z: float = 3.0, spread: float = 1.0) -> float:
    """A conservative tolerance for an estimated mean of bounded payoffs.

    ``spread`` is the payoff range (max − min); the standard error of a
    bounded mean is at most spread / (2·sqrt(n)).
    """
    if n_runs <= 0:
        raise ValueError("need at least one run")
    return z * spread / (2.0 * math.sqrt(n_runs))
