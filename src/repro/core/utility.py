"""Expected attacker payoff (Eq. (1)/(2)) over measured event distributions.

The RPD utility û(Π, A) is the payoff of the best simulator for A under the
least favourable environment.  The proofs compute it by analysing which
events the (optimal) simulator is forced to provoke; our estimator measures
the frequencies of exactly those events across executions and folds them
with the payoff vector.  :class:`UtilityEstimate` carries the point estimate
plus a confidence interval so comparisons can be made negligible-aware.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from .events import FairnessEvent
from .payoff import PayoffVector


@dataclass
class EventCounts:
    """Counts of fairness events over a batch of executions."""

    counts: Dict[FairnessEvent, int] = field(
        default_factory=lambda: {e: 0 for e in FairnessEvent}
    )
    corruption_counts: Dict[frozenset, int] = field(default_factory=dict)

    def record(self, event: FairnessEvent, corrupted=frozenset()) -> None:
        self.counts[event] = self.counts.get(event, 0) + 1
        key = frozenset(corrupted)
        self.corruption_counts[key] = self.corruption_counts.get(key, 0) + 1

    def merge(self, other: "EventCounts") -> "EventCounts":
        """Fold another batch's counts into this one (in place).

        Summing both ``counts`` and ``corruption_counts`` makes event
        counts a commutative monoid, which is what lets parallel runners
        compute per-chunk partials and fold them in any grouping.
        """
        for event, c in other.counts.items():
            self.counts[event] = self.counts.get(event, 0) + c
        for subset, c in other.corruption_counts.items():
            self.corruption_counts[subset] = (
                self.corruption_counts.get(subset, 0) + c
            )
        return self

    def __add__(self, other: "EventCounts") -> "EventCounts":
        if not isinstance(other, EventCounts):
            return NotImplemented
        return EventCounts().merge(self).merge(other)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def distribution(self) -> Dict[FairnessEvent, float]:
        n = self.total
        if n == 0:
            raise ValueError("no events recorded")
        return {e: c / n for e, c in self.counts.items()}

    def corruption_distribution(self) -> Dict[frozenset, float]:
        n = self.total
        return {s: c / n for s, c in self.corruption_counts.items()}

    def frequency(self, event: FairnessEvent) -> float:
        return self.counts.get(event, 0) / max(self.total, 1)


def wilson_interval(successes: int, n: int, z: float = 2.5758) -> tuple:
    """Wilson score interval for a binomial proportion (default 99%)."""
    if n == 0:
        return (0.0, 1.0)
    p = successes / n
    denom = 1 + z * z / n
    centre = (p + z * z / (2 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
    return (max(0.0, centre - half), min(1.0, centre + half))


@dataclass(frozen=True)
class UtilityEstimate:
    """A measured attacker utility with uncertainty.

    ``mean`` is the Monte-Carlo point estimate of U = Σ γij·Pr[Eij] (minus
    corruption costs when a costed vector was used); ``ci_low``/``ci_high``
    bound it with the per-event Wilson intervals combined conservatively.
    """

    mean: float
    ci_low: float
    ci_high: float
    n_runs: int
    event_distribution: Mapping[FairnessEvent, float]
    protocol: str = ""
    adversary: str = ""
    cost_mean: float = 0.0

    def __str__(self) -> str:
        return (
            f"U({self.protocol}, {self.adversary}) = {self.mean:.4f} "
            f"[{self.ci_low:.4f}, {self.ci_high:.4f}] over {self.n_runs} runs"
        )


def estimate_from_counts(
    counts: EventCounts,
    gamma: PayoffVector,
    protocol: str = "",
    adversary: str = "",
    cost=None,
) -> UtilityEstimate:
    """Fold event counts with a payoff vector into a UtilityEstimate."""
    n = counts.total
    dist = counts.distribution()
    mean = gamma.expected(dist)
    cost_mean = 0.0
    if cost is not None:
        cost_mean = sum(
            cost(i_set) * p
            for i_set, p in counts.corruption_distribution().items()
        )
        mean -= cost_mean

    # Conservative CI: for each event, use the Wilson bound on its
    # probability in the direction that moves the utility.
    lo = hi = 0.0
    for event in FairnessEvent:
        g = gamma.value(event)
        p_lo, p_hi = wilson_interval(counts.counts.get(event, 0), n)
        if g >= 0:
            lo += g * p_lo
            hi += g * p_hi
        else:
            lo += g * p_hi
            hi += g * p_lo
    return UtilityEstimate(
        mean=mean,
        ci_low=lo - cost_mean,
        ci_high=hi - cost_mean,
        n_runs=n,
        event_distribution=dist,
        protocol=protocol,
        adversary=adversary,
        cost_mean=cost_mean,
    )


def best_utility(estimates) -> Optional[UtilityEstimate]:
    """sup over adversaries: the estimate with the largest mean."""
    estimates = list(estimates)
    if not estimates:
        return None
    return max(estimates, key=lambda e: e.mean)
