"""The fairness partial order and optimal fairness (Definitions 1 and 2).

Π ⪯γ Π' ("Π is at least as γ-fair as Π'") iff the best attacker against Π
obtains no more utility than the best attacker against Π', up to negligible
slack.  On measured data the negligible slack becomes the statistical
tolerance carried by the :class:`UtilityEstimate`s.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Optional

from .payoff import PayoffVector
from .utility import UtilityEstimate, best_utility


@dataclass(frozen=True)
class ProtocolAssessment:
    """A protocol together with its measured best-attacker utility."""

    protocol_name: str
    gamma: PayoffVector
    best_attack: UtilityEstimate

    @property
    def utility(self) -> float:
        return self.best_attack.mean


class Comparison(Enum):
    """Outcome of comparing two protocols under ⪯γ."""

    FAIRER = "fairer"  # strictly fairer (strictly lower best-attack utility)
    EQUAL = "equally-fair"
    LESS_FAIR = "less-fair"
    INCOMPARABLE = "incomparable"  # CIs overlap but neither dominates


def at_least_as_fair(
    a: ProtocolAssessment, b: ProtocolAssessment, tol: float = 0.0
) -> bool:
    """Definition 1: Π_a ⪯γ Π_b up to tolerance."""
    _require_same_gamma(a, b)
    return a.utility <= b.utility + tol


def compare(
    a: ProtocolAssessment, b: ProtocolAssessment, tol: float = 0.0
) -> Comparison:
    """Classify the relative fairness of two assessed protocols.

    Uses the confidence intervals: a is strictly fairer when its CI lies
    wholly below b's (beyond the tolerance); equal when the point estimates
    agree within tolerance.
    """
    _require_same_gamma(a, b)
    if abs(a.utility - b.utility) <= tol:
        return Comparison.EQUAL
    if a.best_attack.ci_high + tol < b.best_attack.ci_low:
        return Comparison.FAIRER
    if b.best_attack.ci_high + tol < a.best_attack.ci_low:
        return Comparison.LESS_FAIR
    if a.utility < b.utility:
        return Comparison.FAIRER if a.utility + tol < b.utility else Comparison.EQUAL
    return Comparison.LESS_FAIR if b.utility + tol < a.utility else Comparison.EQUAL


def is_optimally_fair(
    candidate: ProtocolAssessment,
    others: Iterable[ProtocolAssessment],
    tol: float = 0.0,
) -> bool:
    """Definition 2 restricted to an assessed universe of protocols.

    (True optimality quantifies over *all* protocols; the paper's theorems
    pin the optimum analytically, and the benches check the candidate
    attains it among every implemented competitor.)
    """
    return all(at_least_as_fair(candidate, other, tol) for other in others)


def assess(
    protocol_name: str,
    gamma: PayoffVector,
    attack_estimates: Iterable[UtilityEstimate],
) -> ProtocolAssessment:
    """Fold per-adversary estimates into the sup over attackers."""
    best = best_utility(attack_estimates)
    if best is None:
        raise ValueError("no attack estimates supplied")
    return ProtocolAssessment(protocol_name, gamma, best)


def _require_same_gamma(a: ProtocolAssessment, b: ProtocolAssessment) -> None:
    if a.gamma != b.gamma:
        raise ValueError(
            "fairness comparison requires the same payoff vector; "
            f"got {a.gamma} vs {b.gamma}"
        )
