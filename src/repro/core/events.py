"""Fairness events E00, E01, E10, E11 and outcome classification (§3 Step 2).

The paper defines the events in the Fsfe⊥-ideal world through the simulator's
behaviour.  For a real execution we classify by the two questions the events
encode:

1. *Did the adversary learn noticeable information about the corrupted
   parties' output?* — operationally: the adversary placed an output claim
   (it extracted a value from the protocol) and the claim equals a corrupted
   party's true output component.  Claims are verified by the engine; a
   strategy cannot inflate its utility by asserting values it never learned.

2. *Did the honest parties learn their output?* — every honest party
   produced a non-⊥ output that is *correct*: either it equals the party's
   true output component of f on the real inputs, or it was recomputed
   locally from a default input (kind ``OUTPUT_DEFAULT``) — in the ideal
   world the simulator substitutes the default input and lets the
   functionality deliver, which is precisely the E01/E11 branch of the
   proofs.  A *random* output (as handed out by the Gordon–Katz protocols
   after an unfair abort, cf. Fsfe$) does not count as learning: the
   simulator in Theorem 23 maps that case to an abort of the randomized
   functionality.

Corner cases follow the paper exactly: corrupting *no* party yields E01,
corrupting *all* parties yields E11 ("our definition does not give any
advantage to an adversary corrupting all parties").
"""

from __future__ import annotations

from enum import Enum

from ..engine.execution import ExecutionResult
from ..engine.party import OUTPUT_DEFAULT
from ..functions.library import FunctionSpec


class FairnessEvent(Enum):
    """Index string ij: i = adversary learned, j = honest parties learned.

    ``HONEST_HUNG`` is outside the paper's 2×2 grid: it marks a run in
    which an honest party produced *no* output at all — not even ⊥ — by
    the round bound.  That can only happen under engine-level fault
    injection (under a lossless network it is a loud
    ``ProtocolViolation``), and it is carried through the event counts so
    a faulty network degrades measurements gracefully instead of killing
    the batch.  Payoff-wise it is valued like E00: nobody learned.
    """

    E00 = "00"
    E01 = "01"
    E10 = "10"
    E11 = "11"
    HONEST_HUNG = "hung"

    @property
    def adversary_learned(self) -> bool:
        if self is FairnessEvent.HONEST_HUNG:
            return False
        return self.value[0] == "1"

    @property
    def honest_learned(self) -> bool:
        if self is FairnessEvent.HONEST_HUNG:
            return False
        return self.value[1] == "1"


def adversary_learned_output(
    result: ExecutionResult, func: FunctionSpec
) -> bool:
    """Verify the adversary's output claim against the true function value."""
    if result.adversary_claim is None:
        return False
    if not result.corrupted:
        return False
    targets = func.corrupted_output_values(result.inputs, result.corrupted)
    return result.adversary_claim in targets


def honest_learned_output(result: ExecutionResult, func: FunctionSpec) -> bool:
    """Did every surviving honest party obtain its (correct or
    default-evaluated) output?

    Crash-stopped parties are excluded (fail-stop convention: fairness is
    assessed over the survivors), but a *hung* party — honest, alive, and
    yet absent from ``outputs`` — makes this ``False`` rather than being
    silently skipped.
    """
    surviving = result.surviving_honest
    if not surviving:
        return False
    true_outputs = func.outputs_for(result.inputs)
    for i in sorted(surviving):
        rec = result.outputs.get(i)
        if rec is None:
            return False  # hung: no output record at all
        if rec.is_abort:
            return False
        if rec.kind == OUTPUT_DEFAULT:
            continue  # substituted-input evaluation; delivered in ideal world
        if rec.value != true_outputs[i]:
            return False  # random/incorrect output (Fsfe$-style abort)
    return True


def classify(result: ExecutionResult, func: FunctionSpec) -> FairnessEvent:
    """Map a finished execution to its fairness event."""
    if result.hung:
        return FairnessEvent.HONEST_HUNG
    if not result.corrupted:
        # Paper convention: no corruption ⇒ E01.  But when engine faults
        # actually materialised (drops, crashes), the honest parties can
        # fail to learn with no adversary at all — report E00 then, so a
        # fault sweep sees the erosion.  Without fault evidence the run is
        # indistinguishable from a lossless one and the convention stands.
        faulted = result.crashed or result.hung or result.fault_events
        if faulted and not honest_learned_output(result, func):
            return FairnessEvent.E00
        return FairnessEvent.E01
    if len(result.corrupted) == result.n:
        return FairnessEvent.E11
    learned = adversary_learned_output(result, func)
    honest = honest_learned_output(result, func)
    return FairnessEvent(f"{int(learned)}{int(honest)}")
