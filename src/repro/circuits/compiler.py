"""Truth-table compiler: any small function → a boolean circuit.

Lets GMW evaluate arbitrary :class:`~repro.functions.FunctionSpec`-style
functions with enumerable domains without hand-building circuits: the
function is tabulated and compiled as a sum-of-minterms over the input bits.
Exponential in total input width, so intended for the small functions the
benches exercise (as the paper's constructions are generic, the circuit
representation is never the bottleneck of the *fairness* analysis).

Compilation is memoized per process, keyed by the *content* of the
tabulated truth table (never by the function object): two callables that
agree on every assignment compile to the same immutable
:class:`~repro.circuits.circuit.Circuit` instance, so re-instantiating a
protocol for the same ``FunctionSpec`` — which every CLI invocation and
benchmark does — skips the exponential minterm build after the first
time.  Sharing the instance is safe because circuits are immutable (the
GMW machines keep all mutable state in their own wire-share maps).
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Dict, List, Sequence

from ..crypto.prf import encode_seed
from .builder import CircuitBuilder
from .circuit import Circuit

#: Content-keyed compilation memo plus its hit/miss counters (read by the
#: runtime's instrumentation via :func:`memo_counters`).
_CIRCUIT_MEMO: Dict[bytes, Circuit] = {}
_MEMO_COUNTS = {"hits": 0, "misses": 0}


def memo_counters() -> dict:
    """Hit/miss counts of the compilation memo."""
    return dict(_MEMO_COUNTS)


def clear_circuit_memo() -> None:
    """Drop all memoized circuits (test isolation hook)."""
    _CIRCUIT_MEMO.clear()


def compile_truth_table(
    func: Callable[[tuple], int],
    widths: Sequence[int],
    output_width: int,
    n_parties: int = None,
) -> Circuit:
    """Compile ``func`` over per-party input widths into a circuit.

    ``func`` maps a tuple of per-party integers to an integer output
    (the global output); ``widths[i]`` is party i's input bit-width.
    """
    n = n_parties if n_parties is not None else len(widths)
    if len(widths) != n:
        raise ValueError("one width per party required")
    total_bits = sum(widths)
    if total_bits > 16:
        raise ValueError(
            f"truth-table compilation over {total_bits} input bits is "
            "unreasonable; hand-build the circuit instead"
        )

    # Tabulate: for each assignment, the output value.  Tabulation is the
    # cheap linear pass; the memo below short-circuits the expensive
    # minterm/gate construction when an identical table was already
    # compiled in this process.
    assignments = list(product((0, 1), repeat=total_bits))
    outputs_bits: List[List[tuple]] = [[] for _ in range(output_width)]
    for bits in assignments:
        values = []
        pos = 0
        for w in widths:
            values.append(sum(bit << k for k, bit in enumerate(bits[pos : pos + w])))
            pos += w
        y = func(tuple(values))
        for o in range(output_width):
            if (y >> o) & 1:
                outputs_bits[o].append(bits)

    memo_key = encode_seed(
        (
            "truth-table-circuit",
            n,
            tuple(widths),
            output_width,
            tuple(tuple(minterms) for minterms in outputs_bits),
        )
    )
    cached = _CIRCUIT_MEMO.get(memo_key)
    if cached is not None:
        _MEMO_COUNTS["hits"] += 1
        return cached
    _MEMO_COUNTS["misses"] += 1

    b = CircuitBuilder(n)
    input_wires: List[List[int]] = [b.input_bits(i, w) for i, w in enumerate(widths)]
    flat_wires = [w for ws in input_wires for w in ws]
    not_wires = [b.not_(w) for w in flat_wires]

    def minterm(bits: tuple) -> int:
        acc = None
        for idx, bit in enumerate(bits):
            literal = flat_wires[idx] if bit else not_wires[idx]
            acc = literal if acc is None else b.and_(acc, literal)
        return acc if acc is not None else b.const(1)

    out_wires = []
    for o in range(output_width):
        minterms = outputs_bits[o]
        if not minterms:
            out_wires.append(b.const(0))
            continue
        # Disjoint minterms: OR is XOR.
        acc = minterm(minterms[0])
        for bits in minterms[1:]:
            acc = b.xor(acc, minterm(bits))
        out_wires.append(acc)
    circuit = b.build(out_wires)
    _CIRCUIT_MEMO[memo_key] = circuit
    return circuit


def bits_of(value: int, width: int) -> List[int]:
    """Little-endian bit decomposition."""
    if not 0 <= value < (1 << width):
        raise ValueError(f"{value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def int_of(bits: Sequence[int]) -> int:
    return sum((b & 1) << i for i, b in enumerate(bits))
