"""Boolean circuits: representation, builder DSL, truth-table compiler."""

from .circuit import Circuit, Gate, GateKind
from .builder import (
    CircuitBuilder,
    and_circuit,
    equality_circuit,
    majority3_circuit,
    millionaires_circuit,
    parity_circuit,
    swap_circuit,
    xor_circuit,
)
from .compiler import bits_of, compile_truth_table, int_of

__all__ = [
    "Circuit",
    "Gate",
    "GateKind",
    "CircuitBuilder",
    "and_circuit",
    "equality_circuit",
    "majority3_circuit",
    "millionaires_circuit",
    "parity_circuit",
    "swap_circuit",
    "xor_circuit",
    "bits_of",
    "compile_truth_table",
    "int_of",
]
