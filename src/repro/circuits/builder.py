"""A small DSL for building circuits, plus stock constructions."""

from __future__ import annotations

from typing import Dict, List, Sequence

from .circuit import Circuit, Gate, GateKind


class CircuitBuilder:
    """Incrementally construct a circuit; wires are returned as ints."""

    def __init__(self, n_parties: int):
        self.n_parties = n_parties
        self._gates: List[Gate] = []
        self._next_wire = 0
        self._input_counts: Dict[int, int] = {i: 0 for i in range(n_parties)}

    def _fresh(self) -> int:
        w = self._next_wire
        self._next_wire += 1
        return w

    def input_bit(self, owner: int) -> int:
        if not 0 <= owner < self.n_parties:
            raise ValueError(f"no such party: {owner}")
        w = self._fresh()
        idx = self._input_counts[owner]
        self._input_counts[owner] = idx + 1
        self._gates.append(
            Gate(w, GateKind.INPUT, owner=owner, input_index=idx)
        )
        return w

    def input_bits(self, owner: int, width: int) -> List[int]:
        """``width`` input bits, least significant first."""
        return [self.input_bit(owner) for _ in range(width)]

    def const(self, value: int) -> int:
        w = self._fresh()
        self._gates.append(Gate(w, GateKind.CONST, value=value & 1))
        return w

    def xor(self, a: int, b: int) -> int:
        w = self._fresh()
        self._gates.append(Gate(w, GateKind.XOR, args=(a, b)))
        return w

    def and_(self, a: int, b: int) -> int:
        w = self._fresh()
        self._gates.append(Gate(w, GateKind.AND, args=(a, b)))
        return w

    def not_(self, a: int) -> int:
        w = self._fresh()
        self._gates.append(Gate(w, GateKind.NOT, args=(a,)))
        return w

    def or_(self, a: int, b: int) -> int:
        """a ∨ b = ¬(¬a ∧ ¬b)."""
        return self.not_(self.and_(self.not_(a), self.not_(b)))

    def mux(self, sel: int, if_one: int, if_zero: int) -> int:
        """sel ? if_one : if_zero = if_zero ⊕ (sel ∧ (if_one ⊕ if_zero))."""
        return self.xor(if_zero, self.and_(sel, self.xor(if_one, if_zero)))

    def build(self, outputs: Sequence[int]) -> Circuit:
        return Circuit(self._gates, outputs, self.n_parties)


# --------------------------------------------------------------------------
# Stock circuits
# --------------------------------------------------------------------------

def and_circuit() -> Circuit:
    """Two-party AND of single bits."""
    b = CircuitBuilder(2)
    x = b.input_bit(0)
    y = b.input_bit(1)
    return b.build([b.and_(x, y)])


def xor_circuit() -> Circuit:
    b = CircuitBuilder(2)
    x = b.input_bit(0)
    y = b.input_bit(1)
    return b.build([b.xor(x, y)])


def millionaires_circuit(width: int) -> Circuit:
    """[x > y] for two ``width``-bit inputs (ripple comparator)."""
    b = CircuitBuilder(2)
    xs = b.input_bits(0, width)
    ys = b.input_bits(1, width)
    # From LSB to MSB: gt = (x & !y) | (eq & gt_prev)
    gt = b.const(0)
    for xi, yi in zip(xs, ys):
        x_gt_y = b.and_(xi, b.not_(yi))
        eq = b.not_(b.xor(xi, yi))
        gt = b.or_(x_gt_y, b.and_(eq, gt))
    return b.build([gt])


def swap_circuit(width: int) -> Circuit:
    """fswp: output is (x2 bits, x1 bits)."""
    b = CircuitBuilder(2)
    xs = b.input_bits(0, width)
    ys = b.input_bits(1, width)
    return b.build(list(ys) + list(xs))


def equality_circuit(width: int, n_parties: int = 2) -> Circuit:
    """[x == y] for two ``width``-bit inputs of parties 0 and 1."""
    b = CircuitBuilder(n_parties)
    xs = b.input_bits(0, width)
    ys = b.input_bits(1, width)
    acc = b.const(1)
    for xi, yi in zip(xs, ys):
        acc = b.and_(acc, b.not_(b.xor(xi, yi)))
    return b.build([acc])


def parity_circuit(n_parties: int) -> Circuit:
    """n-party XOR of one bit each."""
    b = CircuitBuilder(n_parties)
    acc = b.input_bit(0)
    for i in range(1, n_parties):
        acc = b.xor(acc, b.input_bit(i))
    return b.build([acc])


def majority3_circuit() -> Circuit:
    """3-party majority of one bit each: ab ⊕ bc ⊕ ca."""
    b = CircuitBuilder(3)
    x = b.input_bit(0)
    y = b.input_bit(1)
    z = b.input_bit(2)
    out = b.xor(b.xor(b.and_(x, y), b.and_(y, z)), b.and_(z, x))
    return b.build([out])
