"""Boolean circuits: the computation model underneath GMW.

A circuit is a DAG of gates over wires carrying single bits.  Supported
gates: ``INPUT`` (owned by a party), ``CONST``, ``XOR``, ``AND``, ``NOT``.
Gates are stored in topological order (enforced at construction), which the
GMW evaluator walks layer by layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple


class GateKind(Enum):
    INPUT = "input"
    CONST = "const"
    XOR = "xor"
    AND = "and"
    NOT = "not"


@dataclass(frozen=True)
class Gate:
    """One gate; ``args`` are wire ids of earlier gates."""

    wire: int
    kind: GateKind
    args: tuple = ()
    owner: Optional[int] = None  # for INPUT: the party holding the bit
    value: Optional[int] = None  # for CONST
    input_index: Optional[int] = None  # for INPUT: bit position within owner


class Circuit:
    """An immutable boolean circuit with named output wires."""

    def __init__(self, gates: Sequence[Gate], outputs: Sequence[int], n_parties: int):
        self.gates: Tuple[Gate, ...] = tuple(gates)
        self.outputs: Tuple[int, ...] = tuple(outputs)
        self.n_parties = n_parties
        # Lazy structure caches: every GMW machine asks for the layer plan
        # and its input gates on construction, i.e. n_parties times per
        # Monte-Carlo run — the answers are pure functions of the
        # (immutable) gate list, so compute them once per circuit.
        self._layer_cache: Optional[List[List[Gate]]] = None
        self._input_gate_cache: Dict[Optional[int], List[Gate]] = {}
        self._validate()

    def _validate(self) -> None:
        seen = set()
        for gate in self.gates:
            for arg in gate.args:
                if arg not in seen:
                    raise ValueError(
                        f"gate {gate.wire} uses wire {arg} before definition"
                    )
            if gate.wire in seen:
                raise ValueError(f"duplicate wire id {gate.wire}")
            if gate.kind == GateKind.INPUT and gate.owner is None:
                raise ValueError(f"input gate {gate.wire} has no owner")
            if gate.kind == GateKind.CONST and gate.value not in (0, 1):
                raise ValueError(f"const gate {gate.wire} has no bit value")
            arity = {
                GateKind.INPUT: 0,
                GateKind.CONST: 0,
                GateKind.XOR: 2,
                GateKind.AND: 2,
                GateKind.NOT: 1,
            }[gate.kind]
            if len(gate.args) != arity:
                raise ValueError(
                    f"{gate.kind.value} gate {gate.wire} has arity "
                    f"{len(gate.args)}, expected {arity}"
                )
            seen.add(gate.wire)
        for out in self.outputs:
            if out not in seen:
                raise ValueError(f"output wire {out} is undefined")

    # -- structure queries ---------------------------------------------------
    def input_gates(self, owner: Optional[int] = None) -> List[Gate]:
        cached = self._input_gate_cache.get(owner)
        if cached is None:
            cached = [
                g
                for g in self.gates
                if g.kind == GateKind.INPUT
                and (owner is None or g.owner == owner)
            ]
            self._input_gate_cache[owner] = cached
        # Callers treat the list as read-only; hand back a copy so a
        # stray mutation cannot poison the cache.
        return list(cached)

    def input_bits_per_party(self) -> Dict[int, int]:
        counts: Dict[int, int] = {i: 0 for i in range(self.n_parties)}
        for g in self.input_gates():
            counts[g.owner] += 1
        return counts

    def and_gates(self) -> List[Gate]:
        return [g for g in self.gates if g.kind == GateKind.AND]

    def and_layers(self) -> List[List[Gate]]:
        """AND gates grouped by depth layer (gates in one layer are
        pairwise independent and their OTs run in parallel).

        Computed once per circuit and then served from a cache: the GMW
        machines request the plan on every construction, i.e. in the
        Monte-Carlo hot path.
        """
        if self._layer_cache is None:
            depth: Dict[int, int] = {}
            layers: Dict[int, List[Gate]] = {}
            for gate in self.gates:
                if gate.kind in (GateKind.INPUT, GateKind.CONST):
                    depth[gate.wire] = 0
                elif gate.kind == GateKind.AND:
                    d = max(depth[a] for a in gate.args) + 1
                    depth[gate.wire] = d
                    layers.setdefault(d, []).append(gate)
                else:
                    depth[gate.wire] = max(depth[a] for a in gate.args)
            self._layer_cache = [layers[d] for d in sorted(layers)]
        return [list(layer) for layer in self._layer_cache]

    # -- plain evaluation ------------------------------------------------------
    def evaluate(self, inputs: Dict[int, Sequence[int]]) -> Tuple[int, ...]:
        """Evaluate in the clear; ``inputs[i]`` are party i's bits in
        input_index order."""
        values: Dict[int, int] = {}
        for gate in self.gates:
            if gate.kind == GateKind.INPUT:
                bits = inputs[gate.owner]
                values[gate.wire] = bits[gate.input_index] & 1
            elif gate.kind == GateKind.CONST:
                values[gate.wire] = gate.value
            elif gate.kind == GateKind.XOR:
                values[gate.wire] = values[gate.args[0]] ^ values[gate.args[1]]
            elif gate.kind == GateKind.AND:
                values[gate.wire] = values[gate.args[0]] & values[gate.args[1]]
            elif gate.kind == GateKind.NOT:
                values[gate.wire] = 1 - values[gate.args[0]]
        return tuple(values[w] for w in self.outputs)

    def __len__(self) -> int:
        return len(self.gates)
