"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``zoo``            list the implemented protocols and attack strategies
``compare``        place named protocols in the ⪯γ fairness order
``attack``         measure one protocol's best attacker and event mix
``balance``        per-t utility profile + utility-balance verdict
``reconstruction`` measure a protocol's reconstruction rounds
``curve``          per-t utility curves for two protocols + crossover
``fault-sensitivity`` utility-erosion curve under engine fault injection
``profile``        cProfile a small batch and print the top hotspots
``verify``         check the registered paper claims (E1–E21) and exit
                   0 (all ok) / 1 (violated) / 2 (bad claim spec)
``worker``         serve chunk executions to a distributed coordinator
                   (``repro worker --listen HOST:PORT``)
``serve``          serve the whole experiment surface as a JSON-RPC job
                   API with content-addressed dedupe, streaming partial
                   RunStats, and per-tenant rate limits
                   (``repro serve --listen HOST:PORT``)
``chaos``          run a seeded, reproducible chaos campaign: compose
                   fault dimensions (injected chunk faults, worker
                   kills, interrupts, cache/journal corruption) over
                   execution venues and assert the runtime's invariants

All measurements are Monte-Carlo; ``--runs`` and ``--seed`` control the
budget and reproducibility, and ``--jobs`` (or the ``REPRO_JOBS``
environment variable) fans batches out over worker processes without
changing any result.  ``--workers host:port,…`` (or ``REPRO_WORKERS``)
goes one step further and ships chunks to ``repro worker`` processes on
other hosts — still bit-identical, still recoverable (dead or wedged
workers have their chunks reassigned; with every worker lost the batch
finishes in-process).  ``--max-retries`` and ``--chunk-timeout`` tune the
runtime's failure semantics (failed or stalled chunks are re-executed,
bit-identically, before degrading to in-process replay), and ``--stats``
appends a JSON dump of every batch's ``RunStats`` — including retry and
degradation counters, per-phase timings, and cache traffic — after the
command output.  ``--cache DIR`` (or ``REPRO_CACHE_DIR``) enables the
persistent chunk-result cache: re-running a sweep with the same
protocol, strategies, seed, and fault config replays stored chunk
partials bit-identically instead of recomputing them.  ``--journal DIR``
(or ``REPRO_JOURNAL_DIR``) enables the crash-safe run ledger: every
completed chunk partial is durably appended, and ``--resume`` (or
``REPRO_RESUME=1``) replays the journaled spans of an interrupted run
instead of recomputing them — the resumed artifact is byte-identical to
an uninterrupted one.  ``--backend``
(or ``REPRO_BACKEND``) selects the execution engine: ``auto`` (default)
hands eligible (protocol, strategy) chunks to the NumPy vectorized
backend and falls back to the reference state machine per task,
``reference`` forces the state machine, ``vectorized`` asserts
eligibility and fails loudly on any non-vectorizable task — all three
produce bit-identical results.  ``--schedule`` (or ``REPRO_SCHEDULE``)
selects the chunk planner: ``uniform`` (default) sizes every chunk
identically, ``cost`` sizes chunks from the symbolic cost models
(``analysis.symbolic_cost``) so predicted per-chunk cost is equalized
across heterogeneous sweeps and dispatches the most expensive chunks
first — same results, better slot utilization.  ``--chunk-size`` (or
``REPRO_CHUNK_SIZE``) pins the uniform chunk size (the cost planner's
reference size) instead of deriving it from ``--runs``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import Dict, List

from .adversaries import (
    LockWatchingAborter,
    fixed,
    strategy_space_for_protocol,
)
from .analysis import (
    DEFAULT_LOSS_RATES,
    assess_protocol,
    balance_profile,
    build_order,
    crossover,
    fault_sensitivity,
    format_table,
    measure_reconstruction_rounds,
    save_json,
    utility_curve,
)
from .analysis import run_stats_to_dict
from .core.events import FairnessEvent
from .core import (
    PayoffVector,
    balanced_sum_bound,
    is_utility_balanced,
    monte_carlo_tolerance,
)
from .functions import make_concat, make_contract_exchange, make_swap
from .runtime import RetryPolicy, resolve_cache, resolve_journal, resolve_runner
from .runtime.chaos import DIMENSIONS as CHAOS_DIMENSIONS


def _protocol_registry(n: int) -> Dict[str, object]:
    """Name → freshly built protocol, for the CLI's --protocol flags."""
    from .gmw import ThresholdGmwProtocol
    from .protocols import (
        CoinOrderedContractSigning,
        DummyProtocol,
        GordonKatzProtocol,
        IdealCoinContractSigning,
        NaiveContractSigning,
        Opt2SfeProtocol,
        OptNSfeProtocol,
        SingleRoundProtocol,
        UnbalancedOptProtocol,
    )
    from .functions import make_and

    def _gradual_release(spec):
        from .protocols.gradual_release import GradualReleaseProtocol

        return GradualReleaseProtocol(spec)

    swap = make_swap(16)
    registry = {
        "pi1": NaiveContractSigning(make_contract_exchange(16)),
        "pi2": CoinOrderedContractSigning(make_contract_exchange(16)),
        "pi2-ideal-coin": IdealCoinContractSigning(make_contract_exchange(16)),
        "opt-2sfe": Opt2SfeProtocol(swap),
        "single-round": SingleRoundProtocol(swap),
        "gradual-release": _gradual_release(swap),
        "dummy": DummyProtocol(swap),
        "gk-and-p2": GordonKatzProtocol(make_and(), p=2),
        "gk-and-p4": GordonKatzProtocol(make_and(), p=4),
    }
    if n >= 3:
        concat = make_concat(n, 8)
        registry["opt-nsfe"] = OptNSfeProtocol(concat)
        registry["gmw-threshold"] = ThresholdGmwProtocol(concat)
        registry["unbalanced-opt"] = UnbalancedOptProtocol(concat)
    return registry


def _parse_jobs(text: str) -> int:
    try:
        jobs = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if jobs < 0:
        raise argparse.ArgumentTypeError("jobs must be non-negative")
    return jobs


def _parse_rates(text: str) -> List[float]:
    try:
        rates = [float(x) for x in text.split(",") if x.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid rate list: {text!r}")
    if not rates:
        raise argparse.ArgumentTypeError("need at least one rate")
    for rate in rates:
        if not 0.0 <= rate <= 1.0:
            raise argparse.ArgumentTypeError(
                f"rates must lie in [0, 1], got {rate}"
            )
    return rates


def _parse_gamma(text: str) -> PayoffVector:
    parts = [float(x) for x in text.split(",")]
    if len(parts) != 4:
        raise argparse.ArgumentTypeError(
            "gamma must be four comma-separated values γ00,γ01,γ10,γ11"
        )
    vec = PayoffVector(*parts)
    if not vec.in_gamma_fair():
        raise argparse.ArgumentTypeError(f"{vec} is not in Γfair")
    return vec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Utility-based protocol fairness (PODC'15) measurements",
    )
    parser.add_argument("--runs", type=int, default=400, help="Monte-Carlo runs")
    parser.add_argument("--seed", default="cli", help="random seed")
    parser.add_argument(
        "--jobs",
        type=_parse_jobs,
        default=None,
        help="worker processes for Monte-Carlo batches "
        "(default: $REPRO_JOBS or 1; 0 = all CPUs)",
    )
    parser.add_argument(
        "--workers",
        default=None,
        metavar="HOST:PORT,…",
        help="distributed worker addresses (default: $REPRO_WORKERS or "
        "none); when set, chunks are shipped to 'repro worker' processes "
        "instead of a local pool — results stay bit-identical",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="in-pool retries per failed chunk before degrading to "
        "in-process replay (default: $REPRO_MAX_RETRIES or 2)",
    )
    parser.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        help="per-chunk wall-clock deadline in seconds for pool backends "
        "(default: $REPRO_CHUNK_TIMEOUT or no deadline)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="persistent chunk-result cache directory (default: "
        "$REPRO_CACHE_DIR or no cache); identical (protocol, strategy, "
        "seed, span, faults) chunks are replayed from disk",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help="crash-safe run-ledger directory (default: $REPRO_JOURNAL_DIR "
        "or no journal); every completed chunk partial is durably "
        "appended so an interrupted run can be resumed",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay journaled chunk partials from --journal instead of "
        "recomputing them (requires --journal or $REPRO_JOURNAL_DIR); "
        "the resumed result is byte-identical to an uninterrupted run",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "reference", "vectorized"),
        default=None,
        help="execution backend for Monte-Carlo chunks (default: "
        "$REPRO_BACKEND or auto); 'auto' uses the NumPy vectorized "
        "engine for eligible (protocol, strategy) combinations and "
        "falls back per task, 'vectorized' asserts eligibility, "
        "'reference' always steps the state machine",
    )
    parser.add_argument(
        "--schedule",
        choices=("uniform", "cost"),
        default=None,
        help="chunk-planning mode (default: $REPRO_SCHEDULE or uniform); "
        "'cost' sizes chunks from the symbolic cost models so predicted "
        "per-chunk cost is equalized across tasks and dispatches "
        "predicted-expensive chunks first — results are bit-identical "
        "to 'uniform'",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="runs per chunk (default: $REPRO_CHUNK_SIZE or derived from "
        "the run count); under --schedule cost this is the reference "
        "size the cost planner scales per task",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="dump each batch's RunStats (throughput + retry/degradation "
        "counters) as JSON after the command output",
    )
    parser.add_argument(
        "--gamma",
        type=_parse_gamma,
        default=PayoffVector(0.0, 0.0, 1.0, 0.5),
        help="payoff vector γ00,γ01,γ10,γ11 (default 0,0,1,0.5)",
    )
    parser.add_argument(
        "--parties", type=int, default=5, help="n for multi-party protocols"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("zoo", help="list protocols and strategies")

    compare = sub.add_parser("compare", help="order protocols by fairness")
    compare.add_argument("protocols", nargs="+", help="protocol names")

    attack = sub.add_parser("attack", help="best attacker of one protocol")
    attack.add_argument("protocol")

    balance = sub.add_parser("balance", help="per-t profile + balance verdict")
    balance.add_argument("protocol")

    recon = sub.add_parser(
        "reconstruction", help="measure reconstruction rounds"
    )
    recon.add_argument("protocol")

    curve = sub.add_parser("curve", help="per-t curves of two protocols")
    curve.add_argument("protocol_a")
    curve.add_argument("protocol_b")

    faults = sub.add_parser(
        "fault-sensitivity",
        help="fairness erosion under unreliable channels / crash faults",
    )
    faults.add_argument("protocol")
    faults.add_argument(
        "--loss",
        type=_parse_rates,
        default=list(DEFAULT_LOSS_RATES),
        help="comma-separated channel-loss rates to sweep "
        "(default 0,0.05,0.1,0.2)",
    )
    faults.add_argument(
        "--crash",
        type=_parse_rates,
        default=[0.0],
        help="comma-separated crash probabilities to sweep (default 0)",
    )
    faults.add_argument(
        "--fault-seed",
        default="cli-faults",
        help="seed of the deterministic fault pattern",
    )
    faults.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the full erosion-curve artifact (fault config "
        "included) as JSON",
    )

    prof = sub.add_parser(
        "profile",
        help="cProfile a small serial batch and print the top hotspots",
    )
    prof.add_argument(
        "protocol",
        nargs="?",
        default="opt-2sfe",
        help="protocol to profile (default opt-2sfe)",
    )
    prof.add_argument(
        "--top",
        type=int,
        default=12,
        help="number of hotspot rows to print (default 12)",
    )

    verify = sub.add_parser(
        "verify",
        help="evaluate the registered paper claims against their "
        "Monte-Carlo measurements",
    )
    verify.add_argument(
        "--claims",
        default="all",
        help="comma-separated claim ids (E10-stop) or experiment ids "
        "(E2,E3); default: all",
    )
    verify.add_argument(
        "--budget",
        default="small",
        help="run-count budget: small / medium / large, or an integer "
        "target for a nominal 200-run claim (default small)",
    )
    verify.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        dest="json_out",
        help="write the full verification artifact (verdicts, CIs, seeds, "
        "chunk spans) as JSON",
    )
    # Accepted after the subcommand too (``repro verify --jobs 2``);
    # SUPPRESS keeps the subparser from clobbering a pre-subcommand value.
    verify.add_argument(
        "--jobs",
        type=_parse_jobs,
        default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    verify.add_argument(
        "--backend",
        choices=("auto", "reference", "vectorized"),
        default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    verify.add_argument(
        "--workers",
        default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    verify.add_argument(
        "--journal",
        default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    verify.add_argument(
        "--resume",
        action="store_true",
        default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    verify.add_argument(
        "--schedule",
        choices=("uniform", "cost"),
        default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    verify.add_argument(
        "--chunk-size",
        type=int,
        default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )

    chaos = sub.add_parser(
        "chaos",
        help="run a seeded chaos campaign: compose fault dimensions over "
        "execution venues, assert payload bit-identity, leak-freedom, "
        "and failure-counter consistency; exit 0 (all trials ok) / 1",
    )
    chaos.add_argument(
        "--trials",
        type=int,
        default=4,
        help="number of seeded trials to plan (default 4); each draws a "
        "venue and a fault-dimension subset from --seed",
    )
    chaos.add_argument(
        "--venues",
        default="serial,pool",
        help="comma-separated venues the planner may draw: serial, pool, "
        "distributed (default serial,pool; distributed spawns real "
        "'repro worker' subprocesses)",
    )
    chaos.add_argument(
        "--dims",
        default=",".join(CHAOS_DIMENSIONS),
        help="comma-separated fault dimensions the planner may draw "
        f"(default: all — {', '.join(CHAOS_DIMENSIONS)})",
    )
    chaos.add_argument(
        "--trial",
        action="append",
        default=[],
        metavar="VENUE:DIM+DIM",
        help="append one explicit trial after the planned ones (repeatable; "
        "e.g. 'distributed:worker-kill+chunk-faults') — CI uses this for "
        "deterministic coverage of specific combinations",
    )
    chaos.add_argument(
        "--trial-runs",
        type=int,
        default=48,
        help="Monte-Carlo runs per task inside each trial (default 48)",
    )
    chaos.add_argument(
        "--process-trials",
        action="store_true",
        help="also kill a real 'repro verify' coordinator (SIGKILL and "
        "SIGINT), corrupt a journal record, resume, and require a "
        "byte-identical deterministic payload",
    )
    chaos.add_argument(
        "--workdir",
        default=None,
        metavar="DIR",
        help="keep per-trial journals/caches under DIR for post mortems "
        "(default: a temporary directory, removed afterward)",
    )
    chaos.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the full campaign report (per-trial specs, failures, "
        "observed counters) as JSON",
    )

    worker = sub.add_parser(
        "worker",
        help="serve Monte-Carlo chunk executions to a distributed "
        "coordinator (see --workers)",
    )
    worker.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="address to listen on (default 127.0.0.1:0 — port 0 lets "
        "the OS pick; the chosen port is announced on stdout as JSON)",
    )
    worker.add_argument(
        "--once",
        action="store_true",
        help="exit after serving one coordinator session (test/CI mode)",
    )

    serve_cmd = sub.add_parser(
        "serve",
        help="serve the whole experiment surface as a JSON-RPC job API "
        "(estimate_utility, sweep_strategies, fault_sensitivity, "
        "verify_claims)",
    )
    serve_cmd.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="address to listen on (default 127.0.0.1:0 — port 0 lets "
        "the OS pick; the chosen port is announced on stdout as JSON "
        "and reported by the service.info method)",
    )
    serve_cmd.add_argument(
        "--service-workers",
        type=int,
        default=2,
        metavar="N",
        help="job-executor threads; each job gets its own batch runner "
        "built from the global runner flags (default 2)",
    )

    return parser


def _get(registry, name: str):
    if name not in registry:
        raise SystemExit(
            f"unknown protocol {name!r}; available: {', '.join(sorted(registry))}"
        )
    return registry[name]


def cmd_zoo(args, registry) -> str:
    rows = [
        [name, p.name, p.n_parties, p.max_rounds]
        for name, p in sorted(registry.items())
    ]
    return format_table(["id", "protocol", "parties", "max rounds"], rows)


def cmd_compare(args, registry) -> str:
    assessments = []
    for name in args.protocols:
        protocol = _get(registry, name)
        space = strategy_space_for_protocol(protocol)
        assessments.append(
            assess_protocol(
                protocol,
                space,
                args.gamma,
                args.runs,
                seed=(args.seed, name),
                runner=args.runner,
            )
        )
    order = build_order(
        assessments,
        tolerance=monte_carlo_tolerance(args.runs, spread=args.gamma.gamma10),
    )
    return order.render()


def cmd_attack(args, registry) -> str:
    protocol = _get(registry, args.protocol)
    space = strategy_space_for_protocol(protocol)
    assessment = assess_protocol(
        protocol, space, args.gamma, args.runs, seed=args.seed, runner=args.runner
    )
    best = assessment.best_attack
    lines = [
        f"protocol: {protocol.name}",
        f"strategies swept: {len(space)}",
        f"best attacker: {best.adversary}",
        f"sup utility: {best.mean:.4f}  [{best.ci_low:.4f}, {best.ci_high:.4f}]",
        "event mix: "
        + ", ".join(
            f"{e.name}={p:.3f}" for e, p in best.event_distribution.items() if p
        ),
    ]
    return "\n".join(lines)


def cmd_balance(args, registry) -> str:
    protocol = _get(registry, args.protocol)
    n = protocol.n_parties
    if n < 3:
        raise SystemExit("balance analysis needs a multi-party protocol")
    gamma = args.gamma.require_fair_plus()
    factories = {
        t: [fixed(f"lw{t}", lambda t=t: LockWatchingAborter(set(range(t))))]
        for t in range(1, n)
    }
    profile = balance_profile(
        protocol, factories, gamma, args.runs, args.seed, runner=args.runner
    )
    rows = [[t, f"{profile.per_t[t].mean:.4f}"] for t in range(1, n)]
    tol = (n - 1) * monte_carlo_tolerance(args.runs, spread=gamma.gamma10)
    verdict = is_utility_balanced(profile, tol=tol)
    return "\n".join(
        [
            format_table(["t", "u(Π, A_t)"], rows),
            f"sum = {profile.utility_sum:.4f}  "
            f"(balanced optimum {balanced_sum_bound(n, gamma):.4f})",
            f"utility-balanced: {verdict}",
        ]
    )


def cmd_reconstruction(args, registry) -> str:
    protocol = _get(registry, args.protocol)
    m = measure_reconstruction_rounds(
        protocol, n_runs=args.runs, seed=args.seed, runner=args.runner
    )
    rows = [[r, f"{p:.3f}"] for r, p in sorted(m.unfair_probability.items())]
    return "\n".join(
        [
            format_table(["abort round", "max Pr[E10]"], rows),
            f"honest rounds: {m.honest_rounds}",
            f"reconstruction rounds: {m.reconstruction_rounds}",
        ]
    )


def cmd_curve(args, registry) -> str:
    a = _get(registry, args.protocol_a)
    b = _get(registry, args.protocol_b)
    if a.n_parties != b.n_parties:
        raise SystemExit("protocols must have the same party count")
    gamma = args.gamma.require_fair_plus()
    curve_a = utility_curve(
        a, gamma, args.runs, seed=(args.seed, "a"), runner=args.runner
    )
    curve_b = utility_curve(
        b, gamma, args.runs, seed=(args.seed, "b"), runner=args.runner
    )
    rows = [
        [t, f"{curve_a.value(t):.4f}", f"{curve_b.value(t):.4f}"]
        for t in sorted(curve_a.points)
    ]
    cross = crossover(curve_a, curve_b)
    verdict = (
        f"{a.name} is at least as fair at every corruption budget"
        if cross is None
        else f"first corruption budget where {b.name} is the safer choice: t = {cross}"
    )
    return "\n".join(
        [format_table(["t", a.name, b.name], rows), verdict]
    )


def cmd_fault_sensitivity(args, registry) -> str:
    protocol = _get(registry, args.protocol)
    space = strategy_space_for_protocol(protocol)
    curve = fault_sensitivity(
        protocol,
        space,
        args.gamma,
        loss_rates=args.loss,
        crash_rates=args.crash,
        n_runs=args.runs,
        seed=args.seed,
        fault_seed=args.fault_seed,
        runner=args.runner,
    )
    rows = []
    for point in curve.points:
        erosion = curve.erosion(point)
        rows.append(
            [
                f"{point.loss:.3f}",
                f"{point.crash_rate:.3f}",
                f"{point.utility:.4f}",
                f"{point.event_frequency(FairnessEvent.E10):.3f}",
                f"{point.event_frequency(FairnessEvent.E11):.3f}",
                f"{point.hung_fraction:.3f}",
                "—" if erosion is None else f"{erosion:+.4f}",
            ]
        )
    lines = [
        f"protocol: {protocol.name}",
        f"strategies swept per grid point: {len(space)}",
        format_table(
            ["loss", "crash", "sup utility", "E10", "E11", "hung", "erosion"],
            rows,
        ),
    ]
    if args.out:
        path = save_json(curve, args.out)
        lines.append(f"artifact written: {path}")
    return "\n".join(lines)


def cmd_profile(args, registry) -> str:
    """cProfile a small serial batch of the protocol's strategy sweep.

    Always runs in-process (a pool would hide worker time from the
    profiler) and without any chunk cache (a cache hit would profile
    ``pickle.loads`` instead of the protocol).
    """
    import cProfile
    import io
    import pstats

    from .runtime import ExecutionTask, SerialRunner

    protocol = _get(registry, args.protocol)
    space = strategy_space_for_protocol(protocol)
    tasks = [
        ExecutionTask(
            protocol, factory, args.runs, seed=(args.seed, factory.name)
        )
        for factory in space
    ]
    runner = SerialRunner(cache=None, backend=args.backend)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        runner.run(tasks)
    finally:
        profiler.disable()

    stats = pstats.Stats(profiler, stream=io.StringIO())
    stats.sort_stats("cumulative")
    rows = []
    for func, (cc, nc, tottime, cumtime, _callers) in sorted(
        stats.stats.items(), key=lambda kv: kv[1][3], reverse=True
    ):
        filename, lineno, name = func
        if filename.startswith("<") or "cProfile" in filename:
            continue
        short = "/".join(filename.split("/")[-2:])
        rows.append(
            [
                f"{short}:{lineno}({name})",
                nc,
                f"{tottime:.4f}",
                f"{cumtime:.4f}",
            ]
        )
        if len(rows) >= max(1, args.top):
            break
    run_stats = runner.last_stats
    lines = [
        f"protocol: {protocol.name}  "
        f"({len(space)} strategies x {args.runs} runs, serial)",
        format_table(["function", "calls", "tottime", "cumtime"], rows),
        (
            f"phases: setup {run_stats.setup_s:.3f}s, "
            f"execute {run_stats.execute_s:.3f}s, "
            f"classify {run_stats.classify_s:.3f}s "
            f"(total wall {run_stats.wall_clock_s:.3f}s)"
        ),
        (
            f"setup memos: {run_stats.memo_hits} hits, "
            f"{run_stats.memo_misses} misses"
        ),
        (
            f"execution backend: {run_stats.execution_backend} "
            f"({run_stats.vectorized_runs} vectorized runs)"
        ),
    ]
    from .runtime import HAVE_NUMPY

    if not HAVE_NUMPY:
        lines.append(
            "note: vectorized backend unavailable (numpy not installed); "
            "all runs used the reference engine — install numpy to "
            "profile the NumPy kernels"
        )
    lines.append(_cost_model_table(protocol, args.seed))
    return "\n".join(lines)


def _cost_model_table(protocol, seed) -> str:
    """Predicted-vs-measured honest transcript costs for one protocol.

    The prediction side is the symbolic cost model
    (``analysis.symbolic_cost.evaluate``); the measured side is an
    8-run honest-execution average (``analysis.measure_cost``).  Any
    nonzero error column is a model/engine drift the E21 claims would
    flag — this table makes it visible without running ``repro verify``.
    """
    from .analysis import measure_cost
    from .analysis.symbolic_cost import evaluate, model_for

    model = model_for(protocol)
    if model is None:
        return (
            f"cost model: none registered for {type(protocol).__name__} — "
            "predicted-vs-measured table skipped (cost scheduling treats "
            "this protocol as unmodelled and keeps uniform chunks)"
        )
    predicted = evaluate(protocol)
    measured = measure_cost(protocol, n_runs=8, seed=(seed, "cost-model"))
    pairs = [
        ("rounds", predicted.rounds, measured.rounds),
        (
            "p2p messages",
            predicted.point_to_point_messages,
            measured.point_to_point_messages,
        ),
        ("broadcasts", predicted.broadcasts, measured.broadcasts),
        (
            "functionality responses",
            predicted.functionality_responses,
            measured.functionality_responses,
        ),
    ]
    rows = [
        [quantity, pred, f"{meas:g}", f"{meas - pred:+g}"]
        for quantity, pred, meas in pairs
    ]
    return "\n".join(
        [
            format_table(
                ["honest cost", "predicted", "measured", "error"], rows
            ),
            (
                f"scheduler weight: {predicted.weight:g} cost units/run "
                f"(family {model.family}; 'cost' schedule sizes chunks "
                f"by this)"
            ),
        ]
    )


def cmd_verify(args, registry):
    """Run the claims registry; exit 0/1/2 per the verification verdict.

    Returns ``(text, exit_code)`` — the only command whose exit code
    carries meaning beyond success, so ``main`` special-cases tuples.
    """
    from .verify import ClaimConfigError, verify_claims

    try:
        report = verify_claims(
            args.claims,
            budget=args.budget,
            seed=args.seed,
            runner=args.runner,
        )
    except ClaimConfigError as exc:
        # Exit 2 = configuration error, matching argparse's own usage
        # errors and distinct from exit 1 (a claim actually violated).
        print(f"repro verify: {exc}", file=sys.stderr)
        raise SystemExit(2)
    lines = [str(report)]
    if args.json_out:
        path = save_json(report, args.json_out)
        lines.append(f"artifact written: {path}")
    return "\n".join(lines), report.exit_code


def cmd_chaos(args, registry):
    """Run a seeded chaos campaign; exit 0 (all trials ok) / 1.

    Every trial choice derives from ``--seed``, so a failing campaign is
    a reproducible test case: re-run with the same seed and flags.
    """
    from .runtime.chaos import run_campaign

    def echo(message: str) -> None:
        print(message, file=sys.stderr, flush=True)

    try:
        report = run_campaign(
            args.seed,
            n_trials=args.trials,
            venues=tuple(
                v.strip() for v in args.venues.split(",") if v.strip()
            ),
            dims=tuple(d.strip() for d in args.dims.split(",") if d.strip()),
            explicit=tuple(args.trial),
            workdir=args.workdir,
            trial_runs=args.trial_runs,
            process_trials=args.process_trials,
            echo=echo,
        )
    except ValueError as exc:
        # Bad venue/dimension/trial spec: a usage error, like argparse's.
        raise SystemExit(f"repro chaos: {exc}")
    lines = [str(report)]
    if args.out:
        path = Path(args.out)
        path.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        lines.append(f"artifact written: {path}")
    return "\n".join(lines), report.exit_code


def _parse_listen(text: str):
    """Split a ``--listen HOST:PORT`` value (port 0 = OS-assigned)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise SystemExit(f"--listen must be HOST:PORT, got {text!r}")
    try:
        port = int(port)
    except ValueError:
        raise SystemExit(f"--listen port must be an integer, got {port!r}")
    return host, port


def cmd_worker(args, registry) -> str:
    """Run a distributed worker server until interrupted (or, with
    ``--once``, until its first coordinator disconnects)."""
    from .runtime.distributed import serve

    host, port = _parse_listen(args.listen)
    try:
        serve(host, port, once=args.once)
    except KeyboardInterrupt:
        pass
    return ""


def cmd_serve(args, registry) -> str:
    """Run the fairness service until interrupted.

    Each job executes on a fresh runner built from the same global
    flags every other command honours (``--jobs``, ``--cache``,
    ``--backend``, ``--workers``, ...), so a service job and the
    equivalent CLI invocation share chunk-cache entries and produce
    byte-identical ``deterministic_payload``s.
    """
    from .service import ServiceServer

    host, port = _parse_listen(args.listen)
    if args.service_workers < 1:
        raise SystemExit(
            f"--service-workers must be positive, got {args.service_workers}"
        )

    def runner_factory():
        return _build_runner(args)

    try:
        server = ServiceServer(
            host, port,
            runner_factory=runner_factory,
            workers=args.service_workers,
        )
        server.bind()
    except ValueError as exc:
        # Malformed REPRO_SERVICE_* knobs: a usage error, like argparse's.
        raise SystemExit(f"repro: {exc}")
    except OSError as exc:
        raise SystemExit(f"repro: cannot bind {host}:{port}: {exc}")
    server.announce()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown(drain=True)
    return ""


COMMANDS = {
    "zoo": cmd_zoo,
    "compare": cmd_compare,
    "attack": cmd_attack,
    "balance": cmd_balance,
    "reconstruction": cmd_reconstruction,
    "curve": cmd_curve,
    "fault-sensitivity": cmd_fault_sensitivity,
    "profile": cmd_profile,
    "verify": cmd_verify,
    "worker": cmd_worker,
    "serve": cmd_serve,
    "chaos": cmd_chaos,
}


def _build_runner(args):
    """One runner for the whole command, so ``--stats`` sees every batch."""
    # Every knob parsed here (REPRO_CHUNK_TIMEOUT, REPRO_JOBS,
    # REPRO_WORKERS, REPRO_HEARTBEAT_S, REPRO_RESUME, --resume without a
    # directory, ...) raises ValueError naming itself; at the CLI
    # surface that is a usage error, reported like argparse's own.
    try:
        retry = RetryPolicy.from_env()
        if args.max_retries is not None:
            retry = replace(retry, max_retries=max(0, args.max_retries))
        if args.chunk_timeout is not None:
            retry = replace(retry, chunk_timeout_s=args.chunk_timeout)
        journal = resolve_journal(args.journal, resume=args.resume)
        return resolve_runner(
            args.jobs,
            chunk_size=args.chunk_size,
            retry=retry,
            cache=resolve_cache(args.cache),
            backend=args.backend,
            workers=args.workers,
            journal=journal,
            schedule=args.schedule,
        )
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}")


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    args.runner = _build_runner(args)
    registry = _protocol_registry(args.parties)
    result = COMMANDS[args.command](args, registry)
    # Commands whose exit code carries meaning (``verify``) return
    # (text, code); the rest return plain text and exit 0.
    text, code = result if isinstance(result, tuple) else (result, 0)
    print(text)
    if args.stats:
        history = [run_stats_to_dict(s) for s in args.runner.stats_history]
        print(json.dumps(history, indent=2, sort_keys=True))
    return code
