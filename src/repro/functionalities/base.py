"""Base types for ideal functionalities (hybrid calls).

A functionality is invoked once all parties that are supposed to call it in
a given round have submitted their inputs (honest parties through
``ctx.call``; corrupted parties through the adversary).  The functionality
may interact with the adversary through the :class:`AdversaryHandle` —
asking, e.g., whether to deliver outputs or abort — which is exactly the
attack surface the paper's relaxed functionalities (Fsfe⊥, Fsfe$, …) expose
to the simulator/ideal-world adversary.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Set

from ..crypto.prf import Rng


class AdversaryHandle:
    """The functionality's channel to the adversary during one invocation."""

    def __init__(self, adversary, fname: str, corrupted: Set[int]):
        self._adversary = adversary
        self._fname = fname
        self.corrupted = set(corrupted)

    def query(self, query: str, data=None):
        """Ask the adversary a question defined by the functionality spec."""
        return self._adversary.on_functionality_query(
            self._fname, query, data
        )

    def notify(self, event: str, data=None) -> None:
        """Leak information to the adversary (no response expected)."""
        self._adversary.on_functionality_notify(self._fname, event, data)


class Functionality(ABC):
    """An ideal functionality usable as a hybrid by protocols."""

    #: Name under which parties address this functionality via ``ctx.call``.
    name: str = "F"

    @abstractmethod
    def invoke(
        self,
        inputs: Dict[int, object],
        adversary: AdversaryHandle,
        rng: Rng,
        n: int,
    ) -> Dict[int, object]:
        """Run one invocation.

        ``inputs`` maps party index to submitted input (missing indices did
        not call this round).  Returns a map from party index to response
        payload; parties not present in the result receive nothing.  Use
        :data:`repro.engine.messages.ABORT` as the response value to give a
        party ⊥.
        """


class FunctionalityRegistry:
    """Per-execution collection of functionality instances."""

    def __init__(self, functionalities: Optional[Dict[str, Functionality]] = None):
        self._by_name: Dict[str, Functionality] = {}
        for name, func in (functionalities or {}).items():
            self.register(name, func)

    def register(self, name: str, functionality: Functionality) -> None:
        if name in self._by_name:
            raise ValueError(f"functionality {name!r} already registered")
        self._by_name[name] = functionality

    def get(self, name: str) -> Functionality:
        if name not in self._by_name:
            raise KeyError(f"no functionality registered under {name!r}")
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self):
        return list(self._by_name)
