"""Ideal functionalities (hybrids) used by the protocols."""

from .base import AdversaryHandle, Functionality, FunctionalityRegistry
from .sfe import FairSfe, SfeWithAbort
from .priv_sfe import (
    PrivOutput,
    PrivSfeWithAbort,
    ShareGenOutput,
    TwoPartyShareGen,
    decode_output,
)
from .sfe_random_abort import (
    SfeRandomAbort,
    uniform_counterparty_distribution,
)
from .share_gen import (
    GkPartyPayload,
    GkShareGen,
    SealedValue,
    geometric_rounds,
    open_sealed,
    poly_domain_sharegen,
    poly_range_sharegen,
)
from .ot import ObliviousTransfer, OtChoose, OtSend
from .coin_toss import CoinToss

__all__ = [
    "AdversaryHandle",
    "Functionality",
    "FunctionalityRegistry",
    "FairSfe",
    "SfeWithAbort",
    "PrivOutput",
    "PrivSfeWithAbort",
    "ShareGenOutput",
    "TwoPartyShareGen",
    "decode_output",
    "SfeRandomAbort",
    "uniform_counterparty_distribution",
    "GkPartyPayload",
    "GkShareGen",
    "SealedValue",
    "geometric_rounds",
    "open_sealed",
    "poly_domain_sharegen",
    "poly_range_sharegen",
    "ObliviousTransfer",
    "OtChoose",
    "OtSend",
    "CoinToss",
]
