"""Fsfe$ — computation with random abort (paper Figure 1, Appendix C.2).

The two-party weakening used to capture the Gordon–Katz protocols: the
adversary may replace the honest party's (not-yet-delivered) output with a
value drawn from a distribution that depends only on the honest party's own
input — for the poly-domain protocols, Y1(x1) := f(x1, X2) with X2 uniform.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..crypto.prf import Rng
from ..functions.library import FunctionSpec
from .base import AdversaryHandle, Functionality
from .sfe import _effective_inputs, abort_everyone, refused_participation

#: A per-party output-replacement distribution: (own input, rng) -> output.
ReplacementDistribution = Callable[[object, Rng], object]


def uniform_counterparty_distribution(
    func: FunctionSpec, honest_index: int
) -> ReplacementDistribution:
    """Y_honest(x_honest) = f evaluated with a uniform counterparty input.

    Requires the counterparty's domain to be enumerable (the poly-domain
    setting of [18, §3.2]).
    """
    other = 1 - honest_index
    if func.input_domains is None or func.input_domains[other] is None:
        raise ValueError(
            f"{func.name}: counterparty domain is not polynomial; "
            "the randomized-abort distribution is undefined"
        )
    domain = func.input_domains[other]

    def sample(own_input, rng: Rng):
        counter = rng.choice(domain)
        pair = [None, None]
        pair[honest_index] = own_input
        pair[other] = counter
        return func.outputs_for(tuple(pair))[honest_index]

    return sample


class SfeRandomAbort(Functionality):
    """Fsfe$: two-party SFE where abort randomises the honest output."""

    name = "F_sfe_random"

    def __init__(
        self,
        func: FunctionSpec,
        distributions: Optional[Dict[int, ReplacementDistribution]] = None,
    ):
        if func.n_parties != 2:
            raise ValueError("Fsfe$ is defined for the two-party case")
        self.func = func
        if distributions is None:
            distributions = {}
            for i in range(2):
                try:
                    distributions[i] = uniform_counterparty_distribution(func, i)
                except ValueError:
                    pass
        self.distributions = distributions

    def invoke(
        self,
        inputs: Dict[int, object],
        adversary: AdversaryHandle,
        rng: Rng,
        n: int,
    ) -> Dict[int, object]:
        if refused_participation(inputs, adversary, n):
            return abort_everyone(adversary, n)
        effective = _effective_inputs(inputs, self.func)
        outputs = list(self.func.outputs_for(effective))
        responses: Dict[int, object] = {}
        if adversary.corrupted and len(adversary.corrupted) < 2:
            corrupted = next(iter(adversary.corrupted))
            honest = 1 - corrupted
            if adversary.query("request-outputs?"):
                adversary.notify(
                    "corrupted-outputs", {corrupted: outputs[corrupted]}
                )
                responses[corrupted] = outputs[corrupted]
            if adversary.query("abort?"):
                # Randomised abort: honest output drawn from Y_honest.
                if honest in self.distributions:
                    outputs[honest] = self.distributions[honest](
                        effective[honest], rng.fork("replace")
                    )
        for i in range(2):
            responses.setdefault(i, outputs[i])
        return responses
