"""Secure function evaluation functionalities: Fsfe and Fsfe⊥ (§3 Step 1).

``FairSfe`` is the fully fair trusted party of [Canetti'00]: either the
computation happens and *everyone* receives the output, or the adversary
refuses participation up front and nobody does.

``SfeWithAbort`` is the paper's relaxed Fsfe⊥: the adversary (ideal-world
attack strategy) may *ask* for the corrupted parties' outputs, and may send
an (abort) message even after having received them — but before the honest
parties do — in which case every honest party outputs ⊥.  The two
ask/abort choices are what generate the four fairness events.
"""

from __future__ import annotations

from typing import Dict

from ..crypto.prf import Rng
from ..engine.messages import ABORT
from ..functions.library import FunctionSpec
from .base import AdversaryHandle, Functionality


def _effective_inputs(
    inputs: Dict[int, object], func: FunctionSpec
) -> tuple:
    """Fill parties that did not submit with their default inputs."""
    return tuple(
        inputs.get(i, func.default_inputs[i])
        for i in range(func.n_parties)
    )


def refused_participation(
    inputs: Dict[int, object], adversary: AdversaryHandle, n: int
) -> bool:
    """Did a corrupted party withhold its input from the call?

    In the real instantiation (e.g. GMW-with-abort), a party refusing to
    participate makes the whole phase abort *visibly*; the corresponding
    secure-with-abort functionality therefore hands every honest party ⊥.
    (An adversary that merely wants to change an input submits the changed
    value instead.)
    """
    return any(
        i in adversary.corrupted and i not in inputs for i in range(n)
    )


def abort_everyone(adversary: AdversaryHandle, n: int) -> Dict[int, object]:
    """⊥ for every honest party (corrupted parties get nothing)."""
    return {i: ABORT for i in range(n) if i not in adversary.corrupted}


class FairSfe(Functionality):
    """The fully fair Fsfe: all-or-nothing output delivery."""

    name = "F_sfe"

    def __init__(self, func: FunctionSpec):
        self.func = func

    def invoke(
        self,
        inputs: Dict[int, object],
        adversary: AdversaryHandle,
        rng: Rng,
        n: int,
    ) -> Dict[int, object]:
        if refused_participation(inputs, adversary, n):
            return abort_everyone(adversary, n)
        effective = _effective_inputs(inputs, self.func)
        outputs = self.func.outputs_for(effective)
        if adversary.corrupted and adversary.query("abort?"):
            # Refusal to participate: nobody learns anything.
            return {i: ABORT for i in range(n)}
        return {i: outputs[i] for i in range(n)}


class SfeWithAbort(Functionality):
    """Fsfe⊥: SFE with (ask, abort) attack surface (paper §3, Step 1)."""

    name = "F_sfe_abort"

    def __init__(self, func: FunctionSpec):
        self.func = func

    def invoke(
        self,
        inputs: Dict[int, object],
        adversary: AdversaryHandle,
        rng: Rng,
        n: int,
    ) -> Dict[int, object]:
        if refused_participation(inputs, adversary, n):
            return abort_everyone(adversary, n)
        effective = _effective_inputs(inputs, self.func)
        outputs = self.func.outputs_for(effective)
        responses: Dict[int, object] = {}
        if adversary.corrupted:
            asked = bool(adversary.query("request-outputs?"))
            if asked:
                corrupted_outputs = {
                    i: outputs[i] for i in sorted(adversary.corrupted)
                }
                adversary.notify("corrupted-outputs", corrupted_outputs)
                responses.update(corrupted_outputs)
            if adversary.query("abort?"):
                for i in range(n):
                    if i not in adversary.corrupted:
                        responses[i] = ABORT
                return responses
        for i in range(n):
            responses.setdefault(i, outputs[i])
        return responses
