"""The Gordon–Katz ShareGen functionality ([18], §3; paper Appendix C).

ShareGen prepares the r-round reveal schedule of the 1/p-secure protocols:
a secret switch round i* is drawn from a (truncated) geometric distribution;
for rounds i < i* the prepared values are *fakes* drawn from a distribution
the simulator can reproduce (f with a uniformly random counterparty input
for the poly-domain variant; a uniform range element for the poly-range
variant), and from round i* on they equal the true output.

Each value is handed out in sealed form: the receiving party holds a pad
and a MAC key, the sending party holds the padded ciphertext and tag; a
reveal round transfers the token, and the receiver decrypts and verifies.
Neither party can locate i* from its ShareGen output alone.
"""

from __future__ import annotations

from ..crypto.immutable import Immutable

import math
from dataclasses import dataclass
from typing import Callable, Dict, List

from ..crypto.mac import MacKey, gen_mac_key, tag, verify
from ..crypto.prf import Rng
from ..engine.messages import ABORT
from ..functions.library import FunctionSpec
from .base import AdversaryHandle, Functionality
from .sfe import abort_everyone, refused_participation

#: Safety factor in the truncation bound: Pr[i* > r] <= e^-TRUNCATION_MARGIN.
TRUNCATION_MARGIN = 20

_VALUE_BITS = 64
_VALUE_MASK = (1 << _VALUE_BITS) - 1


@dataclass(frozen=True)
class SealedValue(Immutable):
    """A padded, MAC-tagged value held by the *sender* of a reveal round."""

    index: int
    ciphertext: int
    tag: bytes


@dataclass(frozen=True)
class GkPartyPayload(Immutable):
    """One party's ShareGen output.

    ``incoming_pads``/``mac_key`` open the counterparty's reveals of *this
    party's* value stream; ``outgoing_tokens`` are sent one per round;
    ``fallback`` is the round-0 fake output the party falls back to when
    the counterparty aborts before the first reveal completes.
    """

    rounds: int
    mac_key: MacKey
    incoming_pads: tuple
    outgoing_tokens: tuple
    fallback: int = 0


def open_sealed(
    sealed: SealedValue, pad: int, key: MacKey, stream: str
) -> int:
    """Decrypt and authenticate a revealed token; raises ValueError on
    any inconsistency (the caller treats that as the counterparty aborting).
    """
    if not isinstance(sealed, SealedValue):
        raise ValueError("malformed reveal token")
    if not verify((stream, sealed.index, sealed.ciphertext), sealed.tag, key):
        raise ValueError("reveal token failed authentication")
    return (sealed.ciphertext ^ pad) & _VALUE_MASK


def geometric_rounds(alpha: float) -> int:
    """Rounds needed so the truncated geometric misses i* negligibly."""
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")
    return int(math.ceil(TRUNCATION_MARGIN / alpha))


class GkShareGen(Functionality):
    """ShareGen with a pluggable fake-value distribution.

    ``fake_samplers[i]`` draws the fake entries of party i's value stream;
    ``alpha`` is the geometric parameter of i*.
    """

    name = "F_sharegen_gk"

    def __init__(
        self,
        func: FunctionSpec,
        alpha: float,
        rounds: int,
        fake_samplers: Dict[int, Callable[[tuple, Rng], int]],
    ):
        if func.n_parties != 2:
            raise ValueError("GkShareGen is a two-party functionality")
        if rounds < 1:
            raise ValueError("need at least one reveal round")
        self.func = func
        self.alpha = alpha
        self.rounds = rounds
        self.fake_samplers = fake_samplers
        self.i_star: int = None  # recorded for white-box tests

    def _draw_i_star(self, rng: Rng) -> int:
        """1-based switch round, geometric(alpha) truncated to [1, rounds]."""
        i = 1
        while i < self.rounds:
            if rng.random() < self.alpha:
                break
            i += 1
        return i

    def invoke(
        self,
        inputs: Dict[int, object],
        adversary: AdversaryHandle,
        rng: Rng,
        n: int,
    ) -> Dict[int, object]:
        if refused_participation(inputs, adversary, n):
            return abort_everyone(adversary, n)
        effective = tuple(
            inputs.get(i, self.func.default_inputs[i]) for i in range(2)
        )
        outputs = self.func.outputs_for(effective)
        self.i_star = self._draw_i_star(rng.fork("i_star"))

        streams: Dict[int, List[int]] = {}
        for party in range(2):
            sampler = self.fake_samplers[party]
            values = []
            for i in range(1, self.rounds + 1):
                if i < self.i_star:
                    values.append(
                        sampler(effective, rng.fork(f"fake-{party}-{i}"))
                        & _VALUE_MASK
                    )
                else:
                    values.append(outputs[party] & _VALUE_MASK)
            streams[party] = values

        keys = {i: gen_mac_key(rng.fork(f"gk-key-{i}")) for i in range(2)}
        pads = {
            i: [
                rng.fork(f"pad-{i}-{j}").getrandbits(_VALUE_BITS)
                for j in range(self.rounds)
            ]
            for i in range(2)
        }
        stream_names = {0: "a", 1: "b"}
        tokens: Dict[int, List[SealedValue]] = {0: [], 1: []}
        for receiver in range(2):
            sender = 1 - receiver
            name = stream_names[receiver]
            for j, value in enumerate(streams[receiver]):
                ciphertext = value ^ pads[receiver][j]
                tokens[sender].append(
                    SealedValue(
                        index=j,
                        ciphertext=ciphertext,
                        tag=tag((name, j, ciphertext), keys[receiver]),
                    )
                )

        payloads = {
            i: GkPartyPayload(
                rounds=self.rounds,
                mac_key=keys[i],
                incoming_pads=tuple(pads[i]),
                outgoing_tokens=tuple(tokens[i]),
                fallback=self.fake_samplers[i](
                    effective, rng.fork(f"fallback-{i}")
                )
                & _VALUE_MASK,
            )
            for i in range(2)
        }

        responses: Dict[int, object] = {}
        if adversary.corrupted and len(adversary.corrupted) < 2:
            if adversary.query("request-outputs?"):
                corrupted_payloads = {
                    i: payloads[i] for i in sorted(adversary.corrupted)
                }
                adversary.notify("corrupted-outputs", corrupted_payloads)
                responses.update(corrupted_payloads)
            if adversary.query("abort?"):
                for i in range(2):
                    if i not in adversary.corrupted:
                        responses[i] = ABORT
                return responses
        for i in range(2):
            responses.setdefault(i, payloads[i])
        return responses


def poly_domain_sharegen(
    func: FunctionSpec, p: int, counterparty_of: Dict[int, int] = None
) -> GkShareGen:
    """ShareGen for the poly-domain protocol ([18, §3.2]; Theorem 23).

    Fakes for party i's stream are f evaluated with a uniformly random
    counterparty input.  alpha = 1/(p·|Y|) defeats the "known-output"
    stopping rule (an adversary told y by the environment stops at the
    first occurrence of y; fakes hit y with probability >= 1/|Y|, so its
    success probability is alpha/(alpha + 1/|Y|) <= 1/p), and the round
    count is O(p·|Y|) as the theorem states.
    """
    domain_sizes = []
    for i in range(2):
        other = 1 - i
        if func.input_domains is None or func.input_domains[other] is None:
            raise ValueError(
                f"{func.name}: poly-domain protocol needs an enumerable "
                "counterparty domain"
            )
        domain_sizes.append(len(func.input_domains[other]))
    y_size = max(domain_sizes)
    alpha = 1.0 / (p * y_size)
    rounds = geometric_rounds(alpha)

    def make_sampler(party: int):
        other = 1 - party

        def sampler(effective_inputs: tuple, rng: Rng) -> int:
            fake = list(effective_inputs)
            fake[other] = rng.choice(func.input_domains[other])
            return func.outputs_for(tuple(fake))[party]

        return sampler

    return GkShareGen(
        func,
        alpha,
        rounds,
        {0: make_sampler(0), 1: make_sampler(1)},
    )


def poly_range_sharegen(func: FunctionSpec, p: int) -> GkShareGen:
    """ShareGen for the poly-range protocol ([18, §3.3]; Theorem 24).

    Fakes are uniform range elements; alpha = 1/(p²·|Z|) (the extra p
    factor guards the output-biasing abort strategies the range setting
    admits), giving the theorem's O(p²·|Z|) round count.
    """
    if func.output_domain is None:
        raise ValueError(f"{func.name}: poly-range protocol needs a range")
    z_size = len(func.output_domain)
    alpha = 1.0 / (p * p * z_size)
    rounds = geometric_rounds(alpha)

    def sampler(effective_inputs: tuple, rng: Rng) -> int:
        return rng.choice(func.output_domain)

    return GkShareGen(func, alpha, rounds, {0: sampler, 1: sampler})
