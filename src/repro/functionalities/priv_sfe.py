"""Phase-1 functionalities of the optimally fair protocols.

``TwoPartyShareGen`` is F^{f',⊥}_sfe from §4.1: f' takes the parties'
f-inputs and outputs an *authenticated 2-of-2 sharing* of y = f(x1, x2)
together with a uniformly random index î ∈ {1, 2} naming the party that will
be reconstructed-to first.

``PrivSfeWithAbort`` is hF^{f,⊥}_priv-sfei from Appendix B: it computes the
(public) output y, signs it under a fresh one-time key pair, hands
(y, σ) to a uniformly random party i* and ⊥ to everyone else, plus the
verification key to all.

Both expose the Fsfe⊥ attack surface: the adversary may request the
corrupted parties' outputs and may abort before honest delivery.
"""

from __future__ import annotations

from ..crypto.immutable import Immutable

from dataclasses import dataclass
from typing import Dict

from ..crypto import authenticated_sharing, signature
from ..crypto.prf import Rng
from ..engine.messages import ABORT
from ..functions.library import FunctionSpec
from .base import AdversaryHandle, Functionality
from .sfe import _effective_inputs, abort_everyone, refused_participation


@dataclass(frozen=True)
class ShareGenOutput(Immutable):
    """Party pi's output from F^{f',⊥}: its share and the index î."""

    share: authenticated_sharing.AuthenticatedShare
    first_receiver: int  # î ∈ {0, 1} (0-based party index)


class TwoPartyShareGen(Functionality):
    """F^{f',⊥}_sfe computing f' = (authenticated sharing of f, random î)."""

    name = "F_sharegen2"

    def __init__(self, func: FunctionSpec, encode=None):
        if func.n_parties != 2:
            raise ValueError("TwoPartyShareGen is a two-party functionality")
        self.func = func
        # Outputs must be packed into the sharing payload as integers.
        self.encode = encode or _default_encode

    def invoke(
        self,
        inputs: Dict[int, object],
        adversary: AdversaryHandle,
        rng: Rng,
        n: int,
    ) -> Dict[int, object]:
        if refused_participation(inputs, adversary, n):
            return abort_everyone(adversary, n)
        effective = _effective_inputs(inputs, self.func)
        outputs = self.func.outputs_for(effective)
        # wlog single global output (see Appendix A); private outputs are
        # handled by the OTP transform at the FunctionSpec level.
        y = self.encode(outputs)
        share1, share2 = authenticated_sharing.deal(y, rng.fork("deal"))
        first = rng.randrange(2)
        payloads = {
            0: ShareGenOutput(share1, first),
            1: ShareGenOutput(share2, first),
        }
        responses: Dict[int, object] = {}
        if adversary.corrupted:
            if adversary.query("request-outputs?"):
                corrupted_outputs = {
                    i: payloads[i] for i in sorted(adversary.corrupted)
                }
                adversary.notify("corrupted-outputs", corrupted_outputs)
                responses.update(corrupted_outputs)
            if adversary.query("abort?"):
                for i in range(n):
                    if i not in adversary.corrupted:
                        responses[i] = ABORT
                return responses
        for i in range(n):
            responses.setdefault(i, payloads[i])
        return responses


@dataclass(frozen=True)
class PrivOutput(Immutable):
    """Party pi's output from hF^{f,⊥}_priv-sfei: (yi, vk)."""

    value: object  # (y, σ) for i*, ABORT otherwise
    verification_key: signature.VerificationKey

    @property
    def holds_output(self) -> bool:
        return self.value is not ABORT


class PrivSfeWithAbort(Functionality):
    """hF^{f,⊥}_priv-sfei: signed output to a random party (Appendix B)."""

    name = "F_priv_sfe"

    def __init__(self, func: FunctionSpec):
        self.func = func

    def invoke(
        self,
        inputs: Dict[int, object],
        adversary: AdversaryHandle,
        rng: Rng,
        n: int,
    ) -> Dict[int, object]:
        if refused_participation(inputs, adversary, n):
            return abort_everyone(adversary, n)
        effective = _effective_inputs(inputs, self.func)
        outputs = self.func.outputs_for(effective)
        y = outputs[0]  # global output (Appendix B transform)
        sk, vk = signature.gen(rng.fork("sig"))
        sigma = signature.sign(y, sk)
        i_star = rng.randrange(n)
        payloads = {
            i: PrivOutput((y, sigma) if i == i_star else ABORT, vk)
            for i in range(n)
        }
        responses: Dict[int, object] = {}
        if adversary.corrupted and len(adversary.corrupted) < n:
            if adversary.query("request-outputs?"):
                corrupted_outputs = {
                    i: payloads[i] for i in sorted(adversary.corrupted)
                }
                adversary.notify("corrupted-outputs", corrupted_outputs)
                responses.update(corrupted_outputs)
            if adversary.query("abort?"):
                for i in range(n):
                    if i not in adversary.corrupted:
                        responses[i] = ABORT
                return responses
        for i in range(n):
            responses.setdefault(i, payloads[i])
        return responses


_COMPONENT_BITS = 48


def _default_encode(outputs: tuple) -> int:
    """Encode the per-party output vector into the sharing payload integer.

    Each component must be an integer below 2**48; two components plus the
    length byte fit comfortably inside the 128-bit sharing payload.
    """
    if not all(isinstance(v, int) for v in outputs):
        raise TypeError(f"cannot encode outputs {outputs!r} for sharing")
    packed = 0
    for v in outputs:
        if not 0 <= v < (1 << _COMPONENT_BITS):
            raise ValueError(
                f"output component {v} exceeds {_COMPONENT_BITS} bits"
            )
        packed = (packed << _COMPONENT_BITS) | v
    return (packed << 8) | len(outputs)


def decode_output(encoded: int) -> tuple:
    """Inverse of :func:`_default_encode`: the per-party output vector."""
    length = encoded & 0xFF
    packed = encoded >> 8
    values = []
    for _ in range(length):
        values.append(packed & ((1 << _COMPONENT_BITS) - 1))
        packed >>= _COMPONENT_BITS
    return tuple(reversed(values))
