"""An ideal coin-toss functionality [4].

Provided for tests and examples; protocol Π2 from the introduction tosses
its coin with *real* commitments (see
:mod:`repro.protocols.contract_signing`), exactly because Cleve's bound
makes the ideal coin unimplementable with a dishonest majority — the ideal
version here is the reference the real one is compared against.
"""

from __future__ import annotations

from typing import Dict

from ..crypto.prf import Rng
from ..engine.messages import ABORT
from .base import AdversaryHandle, Functionality


class CoinToss(Functionality):
    """Delivers one uniform bit to every caller; the adversary may abort
    after seeing the bit (which is what a fair protocol must avoid)."""

    name = "F_ct"

    def invoke(
        self,
        inputs: Dict[int, object],
        adversary: AdversaryHandle,
        rng: Rng,
        n: int,
    ) -> Dict[int, object]:
        bit = rng.randrange(2)
        responses: Dict[int, object] = {}
        if adversary.corrupted:
            adversary.notify("coin", bit)
            if adversary.query("abort?"):
                for i in range(n):
                    if i not in adversary.corrupted:
                        responses[i] = ABORT
                for i in adversary.corrupted:
                    responses[i] = bit
                return responses
        return {i: bit for i in inputs}
