"""Oblivious-transfer functionality (the OT-hybrid model for GMW).

GMW evaluates AND gates via 1-out-of-4 OT on the gate's share table.  Real
OT needs public-key machinery; running GMW in the OT-hybrid model is the
standard substitution (documented in DESIGN.md) and preserves every
fairness-relevant behaviour: the adversary may still abort the call, learn
the corrupted side's OT output, and deny the honest side its message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..crypto.prf import Rng
from ..engine.messages import ABORT
from .base import AdversaryHandle, Functionality


@dataclass(frozen=True)
class OtSend:
    """Sender input: the tuple of messages (any length >= 2)."""

    messages: tuple


@dataclass(frozen=True)
class OtChoose:
    """Receiver input: the index of the message to obtain."""

    choice: int


class ObliviousTransfer(Functionality):
    """1-out-of-k OT between a designated sender and receiver.

    The sender learns nothing about the choice; the receiver learns exactly
    one message.  A corrupted participant may abort the instance, in which
    case the honest participant receives ⊥.
    """

    name = "F_ot"

    def __init__(self, sender: int, receiver: int):
        if sender == receiver:
            raise ValueError("OT needs two distinct parties")
        self.sender = sender
        self.receiver = receiver

    def invoke(
        self,
        inputs: Dict[int, object],
        adversary: AdversaryHandle,
        rng: Rng,
        n: int,
    ) -> Dict[int, object]:
        send = inputs.get(self.sender)
        choose = inputs.get(self.receiver)
        responses: Dict[int, object] = {}

        participants = {self.sender, self.receiver}
        corrupted_participants = participants & adversary.corrupted
        if corrupted_participants:
            if adversary.query("abort?"):
                for i in participants:
                    if i not in adversary.corrupted:
                        responses[i] = ABORT
                return responses

        if not isinstance(send, OtSend) or not isinstance(choose, OtChoose):
            # A missing/malformed input is an abort by that participant.
            for i in participants:
                responses[i] = ABORT
            return responses
        if not 0 <= choose.choice < len(send.messages):
            responses[self.receiver] = ABORT
            responses[self.sender] = ABORT
            return responses

        chosen = send.messages[choose.choice]
        responses[self.receiver] = chosen
        responses[self.sender] = "ot-done"
        if self.receiver in adversary.corrupted:
            adversary.notify("ot-output", {self.receiver: chosen})
        return responses
