"""The functions evaluated by the protocols in the paper.

Each :class:`FunctionSpec` bundles the function itself with the metadata the
framework needs: per-party default inputs (used by honest parties after a
phase-1 abort), the environment's input distribution, and domain sizes
(which decide whether the Gordon–Katz 1/p-protocols apply).

The paper's key examples are all here: the swap function fswp(x1,x2) =
(x2,x1) used for the two-party lower bound (Theorem 4), the concatenation
function f(x1,...,xn) = x1‖...‖xn used for the multi-party lower bounds
(Lemmas 12/15/16), logical AND used for the Π̃ separation (Appendix C.5),
plus the contract-signing exchange and the millionaires' problem used in
examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..crypto.prf import Rng


@dataclass(frozen=True)
class FunctionSpec:
    """An n-party function with evaluation and environment metadata."""

    name: str
    n_parties: int
    evaluate: Callable[[tuple], tuple]
    default_inputs: tuple
    sample_inputs: Callable[[Rng], tuple]
    #: per-party input domain as a tuple of values, or None when the domain
    #: is (treated as) super-polynomial
    input_domains: Optional[tuple] = None
    #: global output domain, or None when super-polynomial
    output_domain: Optional[tuple] = None
    #: bit-width sufficient to encode any single party's output
    output_bits: int = 64

    def outputs_for(self, inputs: tuple) -> tuple:
        """Evaluate; validates arity."""
        if len(inputs) != self.n_parties:
            raise ValueError(
                f"{self.name} takes {self.n_parties} inputs, got {len(inputs)}"
            )
        outputs = self.evaluate(inputs)
        if len(outputs) != self.n_parties:
            raise ValueError(f"{self.name} returned wrong number of outputs")
        return outputs

    def corrupted_output_values(self, inputs: tuple, corrupted) -> set:
        """The output components the adversary would be 'asking for'."""
        outputs = self.outputs_for(inputs)
        return {outputs[i] for i in sorted(corrupted)}

    def has_poly_domain(self) -> bool:
        return self.input_domains is not None and any(
            d is not None for d in self.input_domains
        )

    def has_poly_range(self) -> bool:
        return self.output_domain is not None


def make_swap(bits: int = 16) -> FunctionSpec:
    """fswp(x1, x2) = (x2, x1) over ``bits``-bit integers.

    Exponential domain and range (for bits >= security margin), which is
    what makes it the hard instance for Theorem 4: no 1/p-secure protocol
    for it exists, so the (γ10+γ11)/2 bound is unavoidable.
    """
    size = 1 << bits

    def evaluate(inputs):
        x1, x2 = inputs
        return (x2, x1)

    def sample(rng: Rng):
        return (rng.randrange(size), rng.randrange(size))

    return FunctionSpec(
        name=f"swap{bits}",
        n_parties=2,
        evaluate=evaluate,
        default_inputs=(0, 0),
        sample_inputs=sample,
        input_domains=None,
        output_domain=None,
        output_bits=bits,
    )


def make_and() -> FunctionSpec:
    """Logical AND on bits, global output — the Π̃ separation function."""

    def evaluate(inputs):
        x1, x2 = inputs
        y = x1 & x2
        return (y, y)

    def sample(rng: Rng):
        return (rng.randrange(2), rng.randrange(2))

    return FunctionSpec(
        name="and",
        n_parties=2,
        evaluate=evaluate,
        default_inputs=(0, 0),
        sample_inputs=sample,
        input_domains=((0, 1), (0, 1)),
        output_domain=(0, 1),
        output_bits=1,
    )


def make_xor() -> FunctionSpec:
    """Logical XOR on bits, global output."""

    def evaluate(inputs):
        x1, x2 = inputs
        y = x1 ^ x2
        return (y, y)

    def sample(rng: Rng):
        return (rng.randrange(2), rng.randrange(2))

    return FunctionSpec(
        name="xor",
        n_parties=2,
        evaluate=evaluate,
        default_inputs=(0, 0),
        sample_inputs=sample,
        input_domains=((0, 1), (0, 1)),
        output_domain=(0, 1),
        output_bits=1,
    )


def make_millionaires(bits: int = 8) -> FunctionSpec:
    """Millionaires' problem: global output [x1 > x2]."""
    size = 1 << bits

    def evaluate(inputs):
        x1, x2 = inputs
        y = 1 if x1 > x2 else 0
        return (y, y)

    def sample(rng: Rng):
        return (rng.randrange(size), rng.randrange(size))

    return FunctionSpec(
        name=f"millionaires{bits}",
        n_parties=2,
        evaluate=evaluate,
        default_inputs=(0, 0),
        sample_inputs=sample,
        input_domains=(tuple(range(size)), tuple(range(size)))
        if bits <= 10
        else None,
        output_domain=(0, 1),
        output_bits=1,
    )


def make_concat(n: int, bits: int = 8) -> FunctionSpec:
    """f(x1, ..., xn) = x1 ‖ x2 ‖ ... ‖ xn — the multi-party hard instance.

    The global output is the tuple of all inputs, encoded as a tuple; an
    adversary that has not seen the honest inputs cannot guess it.
    """
    if n < 2:
        raise ValueError("concat needs at least two parties")
    size = 1 << bits

    def evaluate(inputs):
        y = tuple(inputs)
        return tuple(y for _ in range(n))

    def sample(rng: Rng):
        return tuple(rng.randrange(size) for _ in range(n))

    return FunctionSpec(
        name=f"concat{n}x{bits}",
        n_parties=n,
        evaluate=evaluate,
        default_inputs=tuple(0 for _ in range(n)),
        sample_inputs=sample,
        input_domains=None,
        output_domain=None,
        output_bits=n * bits,
    )


def make_contract_exchange(bits: int = 32) -> FunctionSpec:
    """The contract-signing exchange from the paper's introduction.

    Party pi holds its locally signed contract (modelled as a ``bits``-bit
    token only pi can produce); the functionality swaps them, so each party
    receives the other's signature.  Functionally this is fswp.
    """
    size = 1 << bits

    def evaluate(inputs):
        s1, s2 = inputs
        return (s2, s1)

    def sample(rng: Rng):
        return (rng.randrange(1, size), rng.randrange(1, size))

    return FunctionSpec(
        name=f"contract{bits}",
        n_parties=2,
        evaluate=evaluate,
        default_inputs=(0, 0),
        sample_inputs=sample,
        input_domains=None,
        output_domain=None,
        output_bits=bits,
    )


def make_global(
    name: str,
    n: int,
    func: Callable[[tuple], object],
    domains: tuple,
    rng_sampler: Optional[Callable[[Rng], tuple]] = None,
    output_domain: Optional[tuple] = None,
    output_bits: int = 16,
) -> FunctionSpec:
    """Build a global-output FunctionSpec from a plain function."""

    def evaluate(inputs):
        y = func(inputs)
        return tuple(y for _ in range(n))

    def sample(rng: Rng):
        if rng_sampler is not None:
            return rng_sampler(rng)
        return tuple(rng.choice(d) for d in domains)

    return FunctionSpec(
        name=name,
        n_parties=n,
        evaluate=evaluate,
        default_inputs=tuple(d[0] for d in domains),
        sample_inputs=sample,
        input_domains=domains,
        output_domain=output_domain,
        output_bits=output_bits,
    )
