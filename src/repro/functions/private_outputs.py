"""The private-output → public-output transform (paper, Appendix B).

"Instead of computing f with private outputs, the parties can compute the
public output function f'((x1,k1), ..., (xn,kn)) = (y, ..., y) where
y = (y1 ⊕ k1, ..., yn ⊕ kn)": every party pi contributes, besides its
f-input, a fresh one-time-pad key ki; the public output carries each
component perfectly blinded with its owner's key, so pi recovers yi and
learns nothing about yj for j ≠ i.

:func:`blind_private_outputs` performs the f' computation given the
augmented inputs; :func:`make_public_version` lifts a private-output
:class:`FunctionSpec` into the public-output spec the optimally fair
protocols consume; :func:`unblind_component` is the receiver-side step.
"""

from __future__ import annotations

from typing import Tuple

from ..crypto.otp import blind, gen_pad, unblind
from ..crypto.prf import Rng
from .library import FunctionSpec


def augment_input(x, width_bits: int, rng: Rng) -> Tuple[object, int]:
    """Party-side input preparation: attach a fresh OTP key."""
    return (x, gen_pad(width_bits, rng))


def blind_private_outputs(
    func: FunctionSpec, augmented_inputs: tuple, width_bits: int
) -> tuple:
    """Compute f' on ((x1,k1), ..., (xn,kn)): the blinded output vector."""
    if len(augmented_inputs) != func.n_parties:
        raise ValueError("one augmented input per party required")
    xs = []
    keys = []
    for pair in augmented_inputs:
        if not (isinstance(pair, tuple) and len(pair) == 2):
            raise ValueError("augmented inputs are (x, key) pairs")
        xs.append(pair[0])
        keys.append(pair[1])
    outputs = func.outputs_for(tuple(xs))
    return tuple(
        blind(y, k, width_bits) for y, k in zip(outputs, keys)
    )


def unblind_component(
    blinded_vector: tuple, index: int, key: int, width_bits: int
):
    """Party pi's output recovery: decrypt component i with ki."""
    return unblind(blinded_vector[index], key, width_bits)


def pack_blinded(vector: tuple, width_bits: int) -> int:
    """Pack the blinded vector into one integer (protocol wire format)."""
    packed = 0
    for component in reversed(vector):
        packed = (packed << width_bits) | component
    return packed


def unpack_blinded(packed: int, n: int, width_bits: int) -> tuple:
    """Inverse of :func:`pack_blinded`."""
    mask = (1 << width_bits) - 1
    return tuple((packed >> (i * width_bits)) & mask for i in range(n))


def make_public_version(func: FunctionSpec) -> FunctionSpec:
    """Lift a (possibly private-output) spec to the f' public-output spec.

    The lifted spec's inputs are (x, key) pairs; its global output is the
    blinded vector *packed into one integer* (identical for every party) —
    exactly the shape the global-output protocols (ΠOpt2SFE phase-1
    sharing, ΠOptnSFE signing) require.  Per-party output components must
    be integers below 2**func.output_bits.
    """
    width = func.output_bits
    n = func.n_parties

    def evaluate(augmented_inputs: tuple) -> tuple:
        vector = blind_private_outputs(func, augmented_inputs, width)
        packed = pack_blinded(vector, width)
        return tuple(packed for _ in range(n))

    def sample(rng: Rng) -> tuple:
        xs = func.sample_inputs(rng.fork("base"))
        return tuple(
            augment_input(x, width, rng.fork(f"key-{i}"))
            for i, x in enumerate(xs)
        )

    return FunctionSpec(
        name=f"public[{func.name}]",
        n_parties=n,
        evaluate=evaluate,
        default_inputs=tuple((func.default_inputs[i], 0) for i in range(n)),
        sample_inputs=sample,
        input_domains=None,  # keys make the domain super-polynomial
        output_domain=None,
        output_bits=width * n,
    )


def recover_private_output(
    packed: int, index: int, key: int, func: FunctionSpec
):
    """Decode pi's private output from a lifted-protocol result."""
    vector = unpack_blinded(packed, func.n_parties, func.output_bits)
    return unblind_component(vector, index, key, func.output_bits)
