"""Additional function specs: the primitives the paper points at.

§4.1 singles out set intersection [12] and selection-style primitives as
targets for fairness-optimal solutions beyond the generic bound; these
specs make them available to every protocol in the zoo (the poly-domain
variants also qualify for the Gordon–Katz constructions).
"""

from __future__ import annotations

from .library import FunctionSpec
from ..crypto.prf import Rng


def make_set_intersection(universe: int = 4) -> FunctionSpec:
    """Private set intersection over a ``universe``-element ground set.

    Inputs are characteristic bitmasks; the global output is the
    intersection mask.  Poly domain and range for small universes.
    """
    if not 1 <= universe <= 16:
        raise ValueError("universe must have 1..16 elements")
    size = 1 << universe

    def evaluate(inputs):
        a, b = inputs
        y = a & b
        return (y, y)

    def sample(rng: Rng):
        return (rng.randrange(size), rng.randrange(size))

    domain = tuple(range(size)) if universe <= 10 else None
    return FunctionSpec(
        name=f"set-intersection{universe}",
        n_parties=2,
        evaluate=evaluate,
        default_inputs=(0, 0),
        sample_inputs=sample,
        input_domains=(domain, domain),
        output_domain=domain,
        output_bits=universe,
    )


def make_set_membership(universe: int = 8) -> FunctionSpec:
    """[x1 ∈ X2]: p1 holds an element, p2 a set (bitmask)."""
    if not 1 <= universe <= 16:
        raise ValueError("universe must have 1..16 elements")
    set_size = 1 << universe

    def evaluate(inputs):
        element, mask = inputs
        y = (mask >> element) & 1
        return (y, y)

    def sample(rng: Rng):
        return (rng.randrange(universe), rng.randrange(set_size))

    return FunctionSpec(
        name=f"set-membership{universe}",
        n_parties=2,
        evaluate=evaluate,
        default_inputs=(0, 0),
        sample_inputs=sample,
        input_domains=(
            tuple(range(universe)),
            tuple(range(set_size)) if universe <= 10 else None,
        ),
        output_domain=(0, 1),
        output_bits=1,
    )


def make_vote(n: int) -> FunctionSpec:
    """n-party majority vote on bits (ties resolve to 0)."""
    if n < 2:
        raise ValueError("need at least two voters")

    def evaluate(inputs):
        y = 1 if sum(inputs) * 2 > n else 0
        return tuple(y for _ in range(n))

    def sample(rng: Rng):
        return tuple(rng.randrange(2) for _ in range(n))

    return FunctionSpec(
        name=f"vote{n}",
        n_parties=n,
        evaluate=evaluate,
        default_inputs=tuple(0 for _ in range(n)),
        sample_inputs=sample,
        input_domains=tuple((0, 1) for _ in range(n)),
        output_domain=(0, 1),
        output_bits=1,
    )


def make_max(n: int, bits: int = 8) -> FunctionSpec:
    """n-party maximum (first-price auction core): global output is
    (winner index, winning value)."""
    if n < 2:
        raise ValueError("need at least two parties")
    size = 1 << bits

    def evaluate(inputs):
        winner = max(range(n), key=lambda i: (inputs[i], -i))
        y = (winner, inputs[winner])
        return tuple(y for _ in range(n))

    def sample(rng: Rng):
        return tuple(rng.randrange(size) for _ in range(n))

    return FunctionSpec(
        name=f"max{n}x{bits}",
        n_parties=n,
        evaluate=evaluate,
        default_inputs=tuple(0 for _ in range(n)),
        sample_inputs=sample,
        input_domains=None if bits > 10 else tuple(
            tuple(range(size)) for _ in range(n)
        ),
        output_domain=None,
        output_bits=bits + 8,
    )


def make_rotate(n: int, bits: int = 8) -> FunctionSpec:
    """Private-output rotation: party pi receives p(i+1 mod n)'s input.

    The multi-party analogue of fswp; the canonical example for the
    Appendix-B private-output transform, since each yi is genuinely
    private to pi.
    """
    if n < 2:
        raise ValueError("need at least two parties")
    size = 1 << bits

    def evaluate(inputs):
        return tuple(inputs[(i + 1) % n] for i in range(n))

    def sample(rng: Rng):
        return tuple(rng.randrange(size) for _ in range(n))

    return FunctionSpec(
        name=f"rotate{n}x{bits}",
        n_parties=n,
        evaluate=evaluate,
        default_inputs=tuple(0 for _ in range(n)),
        sample_inputs=sample,
        input_domains=None,
        output_domain=None,
        output_bits=bits,
    )
