"""Function specifications evaluated by the protocols."""

from .library import (
    FunctionSpec,
    make_and,
    make_concat,
    make_contract_exchange,
    make_global,
    make_millionaires,
    make_swap,
    make_xor,
)
from .extras import (
    make_max,
    make_rotate,
    make_set_intersection,
    make_set_membership,
    make_vote,
)
from .private_outputs import (
    augment_input,
    blind_private_outputs,
    make_public_version,
    pack_blinded,
    recover_private_output,
    unblind_component,
    unpack_blinded,
)

__all__ = [
    "FunctionSpec",
    "make_and",
    "make_concat",
    "make_contract_exchange",
    "make_global",
    "make_millionaires",
    "make_swap",
    "make_xor",
    "make_max",
    "make_rotate",
    "make_set_intersection",
    "make_set_membership",
    "make_vote",
    "augment_input",
    "blind_private_outputs",
    "make_public_version",
    "pack_blinded",
    "recover_private_output",
    "unblind_component",
    "unpack_blinded",
]
