"""The pending-job pool: dedupe, execution, streaming, lifecycle.

One :class:`Job` per distinct content-addressed job key.  Submissions
are checked against the pool's job table *atomically* under one lock:
a key already pending, running, or completed attaches to the existing
job (a **dedup hit** — the second client gets the same job id and,
eventually, the byte-identical payload) instead of executing again.
Failed and cancelled jobs are evicted on resubmission so a transient
error is not cached forever.

Each worker thread builds a fresh :class:`BatchRunner` per job from the
pool's ``runner_factory`` and points the runner's ``chunk_observer`` at
the job, so every resolved chunk is appended to the job's event list
the moment it exists — the chunk-granularity stream ``job.stream``
serves — and ``history_mark``/``stats_since`` bracket the job's batches
for the final RunStats export.  On completion the last batch's stats
are stamped with the pool's dedupe/rate-limit counters
(``service_dedup_hits``/``service_rate_limited``), so the service's
admission-control behaviour is visible in the same artefact stream as
every other runtime counter.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import replace
from typing import Callable, Dict, List, Optional

from ..analysis.export import (
    chunk_stats_to_dict,
    deterministic_payload,
    run_stats_to_dict,
)
from .ratelimit import resolve_service_queue

#: Job lifecycle states, in order of appearance.
JOB_STATES = ("pending", "running", "done", "failed", "cancelled")

#: States from which a job will never produce a result.
DEAD_STATES = ("failed", "cancelled")


class QueueFull(RuntimeError):
    """Pool at capacity; submission refused (JSON-RPC ``QUEUE_FULL``)."""

    def __init__(self, limit: int):
        self.limit = limit
        super().__init__(f"job pool at capacity ({limit})")


class PoolClosed(RuntimeError):
    """Pool shutting down; submission refused (``SHUTTING_DOWN``)."""


class Job:
    """One deduplicated unit of work and its observable trail."""

    def __init__(self, key: str, method: str, canon: dict,
                 fn: Callable[[object, dict], dict]):
        self.key = key
        self.method = method
        self.canon = canon
        self.fn = fn
        self.state = "pending"
        self.submissions = 1
        self.error: Optional[str] = None
        self.result: Optional[dict] = None
        self.cancel_requested = False
        self.done = threading.Event()
        self._lock = threading.Lock()
        self._events: List[dict] = []

    # -- streaming -----------------------------------------------------------

    def on_chunk(self, chunk) -> None:
        """``BatchRunner.chunk_observer`` target: one resolved chunk."""
        record = chunk_stats_to_dict(chunk)
        with self._lock:
            record["seq"] = len(self._events)
            self._events.append(record)

    def events_since(self, cursor: int):
        """Events ``cursor`` onward plus the next cursor (monotonic)."""
        with self._lock:
            return list(self._events[cursor:]), len(self._events)

    def progress(self) -> dict:
        with self._lock:
            events = list(self._events)
        executed = sum(
            e["stop"] - e["start"]
            for e in events
            if e["outcome"] != "cancelled"
        )
        return {"chunks": len(events), "executions": executed}

    def status(self) -> dict:
        body = {
            "job_id": self.key,
            "method": self.method,
            "state": self.state,
            "submissions": self.submissions,
            "progress": self.progress(),
        }
        if self.error is not None:
            body["error"] = self.error
        return body


class JobPool:
    """Bounded worker pool keyed by content-addressed job ids."""

    def __init__(
        self,
        runner_factory: Optional[Callable[[], object]] = None,
        queue_limit: Optional[int] = None,
        workers: int = 2,
    ):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.queue_limit = resolve_service_queue(queue_limit)
        self.runner_factory = runner_factory
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "executed": 0,
            "dedup_hits": 0,
            "rate_limited": 0,
            "queue_rejections": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
        }
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-service-job-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # -- admission -----------------------------------------------------------

    def submit(self, key: str, method: str, canon: dict,
               fn: Callable[[object, dict], dict]):
        """Admit (or dedupe) one canonical request.

        Returns ``(job, deduped)``.  The existence check and the
        insertion happen under one lock, so N concurrent identical
        submissions race to create exactly one job and the other N-1
        all count as dedup hits — the property the e2e suite pins.
        """
        with self._lock:
            if self._closed:
                raise PoolClosed("service is shutting down")
            job = self._jobs.get(key)
            if job is not None and job.state not in DEAD_STATES:
                job.submissions += 1
                self.counters["dedup_hits"] += 1
                return job, True
            active = sum(
                1 for j in self._jobs.values()
                if j.state in ("pending", "running")
            )
            if active >= self.queue_limit:
                self.counters["queue_rejections"] += 1
                raise QueueFull(self.queue_limit)
            job = Job(key, method, canon, fn)
            self._jobs[key] = job
            self.counters["submitted"] += 1
            self._queue.put(job)
            return job, False

    def note_rate_limited(self) -> None:
        with self._lock:
            self.counters["rate_limited"] += 1

    def get(self, key: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(key)

    def cancel(self, key: str):
        """Best-effort cancel: pending jobs die, running jobs finish.

        Returns ``(job, cancelled_now)`` — ``job`` is ``None`` for an
        unknown key.
        """
        with self._lock:
            job = self._jobs.get(key)
            if job is None:
                return None, False
            if job.state != "pending":
                return job, False
            job.cancel_requested = True
            return job, True

    def stats(self) -> dict:
        with self._lock:
            counters = dict(self.counters)
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        counters["jobs_by_state"] = states
        counters["queue_limit"] = self.queue_limit
        return counters

    # -- execution -----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            if job.cancel_requested:
                self._finish(job, "cancelled")
                continue
            self._run(job)

    def _run(self, job: Job) -> None:
        job.state = "running"
        with self._lock:
            self.counters["executed"] += 1
        try:
            if self.runner_factory is not None:
                runner = self.runner_factory()
            else:
                from ..runtime import resolve_runner

                runner = resolve_runner()
            runner.chunk_observer = job.on_chunk
            mark = runner.history_mark()
            artifact = job.fn(runner, job.canon)
            stats = self._stamp(runner.stats_since(mark))
        except Exception as exc:  # the job fails; the pool survives
            job.error = f"{type(exc).__name__}: {exc}"
            self._finish(job, "failed")
        else:
            job.result = {
                "job": {
                    "job_id": job.key,
                    "method": job.method,
                    "params": job.canon,
                },
                "artifact": artifact,
                "deterministic_payload": deterministic_payload(artifact),
                "run_stats": [run_stats_to_dict(s) for s in stats],
            }
            self._finish(job, "done")

    def _stamp(self, stats):
        """Stamp the job's final batch with the pool's service counters."""
        if not stats:
            return stats
        with self._lock:
            dedup = self.counters["dedup_hits"]
            limited = self.counters["rate_limited"]
        return stats[:-1] + [
            replace(
                stats[-1],
                service_dedup_hits=dedup,
                service_rate_limited=limited,
            )
        ]

    def _finish(self, job: Job, state: str) -> None:
        job.state = state
        with self._lock:
            key = {"done": "completed"}.get(state, state)
            self.counters[key] += 1
        job.done.set()

    # -- lifecycle -----------------------------------------------------------

    def close(self, drain: bool = True, timeout: Optional[float] = None):
        """Stop the pool.

        ``drain=True`` lets queued jobs finish; ``drain=False`` cancels
        everything still pending.  Worker threads are joined either
        way, so a clean ``close`` leaks nothing (the e2e suite counts
        threads before and after).
        """
        with self._lock:
            self._closed = True
        if not drain:
            with self._lock:
                pending = [
                    j for j in self._jobs.values() if j.state == "pending"
                ]
            for job in pending:
                job.cancel_requested = True
        for _ in self._threads:
            self._queue.put(None)
        for t in self._threads:
            t.join(timeout)
