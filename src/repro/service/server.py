"""The JSON-RPC-over-HTTP front end (``repro serve``).

A stdlib :class:`~http.server.ThreadingHTTPServer` accepts one JSON-RPC
2.0 request per ``POST``; the handler thread runs admission control
(per-tenant token bucket, then the bounded job pool) and returns
immediately with a job id — Monte-Carlo work happens on the pool's
worker threads, never on a connection thread, so slow experiments
cannot starve the accept loop.

Tenancy is the ``X-Repro-Tenant`` header when present, else the
client's address — good enough to keep one hot client from starving
the rest without inventing an auth system.

Binding follows the distributed worker's contract: ``port 0`` asks the
OS for an ephemeral port, :meth:`ServiceServer.bind` returns the port
actually bound, and :meth:`ServiceServer.announce` prints a single JSON
line (``{"event": "listening", ...}``) so scripts and CI can scrape the
address without racing to pre-pick a free port.  ``service.info``
reports the same address over the API.
"""

from __future__ import annotations

import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from ..crypto.prf import encode_seed
from . import canonical, methods, wire
from .jobs import JobPool, PoolClosed, QueueFull
from .ratelimit import TokenBucket

#: Longest ``job.result`` long-poll the server will honour, seconds.
MAX_RESULT_WAIT_S = 300.0


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    # Quiet by default: per-request access logging belongs to the host's
    # reverse proxy, not a research service's stdout (which carries the
    # announce line).
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def do_POST(self):
        service = self.server.service
        length = self.headers.get("Content-Length")
        if length is None:
            self._reply(
                411, wire.error_body(None, wire.INVALID_REQUEST,
                                     data="Content-Length required")
            )
            return
        try:
            raw = self.rfile.read(int(length))
        except (ValueError, OSError):
            self._reply(400, wire.error_body(None, wire.PARSE_ERROR))
            return
        tenant = self.headers.get("X-Repro-Tenant") or self.client_address[0]
        body = service.handle_rpc(raw, tenant)
        if body is None:  # notification: acknowledged, no body
            self.send_response(204)
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        self._reply(200, body)

    def do_GET(self):
        # The API is POST-only; a GET gets a pointer, not a 404 mystery.
        self._reply(
            405,
            wire.error_body(None, wire.INVALID_REQUEST,
                            data="POST JSON-RPC 2.0 requests to this endpoint"),
        )

    def _reply(self, status: int, body: dict) -> None:
        encoded = wire.dumps(body)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)


class _Httpd(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    service: "ServiceServer"


class ServiceServer:
    """One fairness service: transport + limiter + job pool."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        runner_factory: Optional[Callable[[], object]] = None,
        rate: Optional[float] = None,
        burst: Optional[int] = None,
        queue_limit: Optional[int] = None,
        workers: int = 2,
        clock=None,
    ):
        self.host = host
        self.port = port
        self.limiter = (
            TokenBucket(rate, burst, clock=clock)
            if clock is not None
            else TokenBucket(rate, burst)
        )
        self.pool = JobPool(
            runner_factory, queue_limit=queue_limit, workers=workers
        )
        self._httpd: Optional[_Httpd] = None
        self._shutdown_lock = threading.Lock()
        self._shut_down = False
        self._serving = threading.Event()
        #: Extension point: extra methods callable over the wire, each a
        #: ``fn(runner, params) -> artifact dict`` run through the job
        #: pool like the built-ins (the e2e suite registers a gated
        #: method here to exercise queue-full deterministically).
        self._extra: Dict[str, Callable] = {}

    # -- lifecycle -----------------------------------------------------------

    def bind(self) -> int:
        """Bind the listening socket; return the actual port (port 0 →
        whatever the OS granted, per the worker venue's convention)."""
        self._httpd = _Httpd((self.host, self.port), _Handler)
        self._httpd.service = self
        self.port = self._httpd.server_address[1]
        return self.port

    def announce(self, out=None) -> None:
        """One machine-readable line on stdout: where we listen."""
        payload = {
            "event": "listening",
            "service": "repro-fairness",
            "version": canonical.SERVICE_VERSION,
            "host": self.host,
            "port": self.port,
        }
        out = out if out is not None else sys.stdout
        out.write(json.dumps(payload, sort_keys=True) + "\n")
        out.flush()

    def serve_forever(self) -> None:
        if self._httpd is None:
            self.bind()
        self._serving.set()
        try:
            self._httpd.serve_forever(poll_interval=0.05)
        finally:
            self._serving.clear()

    def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, close the pool (draining by default), close
        the socket.  Idempotent; safe from any thread."""
        with self._shutdown_lock:
            if self._shut_down:
                return
            self._shut_down = True
        # socketserver's shutdown() blocks on an event only the serve
        # loop sets; calling it on a bound-but-never-served instance
        # would hang forever, so skip straight to closing the socket.
        if self._httpd is not None and self._serving.is_set():
            self._httpd.shutdown()
        self.pool.close(drain=drain)
        if self._httpd is not None:
            self._httpd.server_close()

    def register_method(self, name: str, fn: Callable) -> None:
        if name in canonical.METHOD_SCHEMAS or name.startswith(("job.", "service.")):
            raise ValueError(f"cannot shadow built-in method {name!r}")
        self._extra[name] = fn

    # -- dispatch ------------------------------------------------------------

    def handle_rpc(self, raw: bytes, tenant: str) -> Optional[dict]:
        """Process one request body; return the response body (or
        ``None`` for notifications, which are acknowledged unanswered)."""
        try:
            request = wire.parse_request(raw)
        except wire.RpcError as exc:
            return exc.body(None)
        request_id = request.get("id")
        notification = "id" not in request
        try:
            result = self._dispatch(
                request["method"], request.get("params", {}), tenant
            )
        except wire.RpcError as exc:
            return None if notification else exc.body(request_id)
        except canonical.ServiceParamError as exc:
            if notification:
                return None
            return wire.error_body(
                request_id, wire.INVALID_PARAMS, data=str(exc)
            )
        except Exception as exc:  # never leak a traceback as a 500
            if notification:
                return None
            return wire.error_body(
                request_id, wire.INTERNAL_ERROR,
                data=f"{type(exc).__name__}: {exc}",
            )
        return None if notification else wire.result_body(request_id, result)

    def _dispatch(self, method: str, params, tenant: str):
        if not isinstance(params, dict):
            raise wire.RpcError(
                wire.INVALID_PARAMS,
                data="params must be an object (by-name), not an array",
            )
        allowed, retry_after = self.limiter.allow(tenant)
        if not allowed:
            self.pool.note_rate_limited()
            raise wire.RpcError(
                wire.RATE_LIMITED,
                data={
                    "retry_after_s": retry_after,
                    "tenant": tenant,
                    "rate": self.limiter.rate,
                    "burst": self.limiter.burst,
                },
            )
        if method in canonical.METHOD_SCHEMAS:
            return self._submit_builtin(method, params)
        if method in self._extra:
            return self._submit_extra(method, params)
        if method.startswith("job."):
            return self._job_call(method, params)
        if method == "service.info":
            return self._info()
        if method == "service.stats":
            return self.pool.stats()
        if method == "service.shutdown":
            return self._shutdown_call(params)
        raise wire.RpcError(wire.METHOD_NOT_FOUND, data=method)

    # -- submissions ---------------------------------------------------------

    def _submit_builtin(self, method: str, params: dict):
        canon = canonical.canonicalize(method, params)
        methods.validate(method, canon)
        key = canonical.job_key_canonical(method, canon)

        def fn(runner, canon):
            return methods.run_method(method, runner, canon)

        return self._admit(key, method, canon, fn)

    def _submit_extra(self, method: str, params: dict):
        key = encode_seed(
            (
                "service-job",
                canonical.SERVICE_VERSION,
                method,
                json.dumps(params, sort_keys=True),
            )
        ).hex()
        return self._admit(key, method, params, self._extra[method])

    def _admit(self, key, method, canon, fn):
        try:
            job, deduped = self.pool.submit(key, method, canon, fn)
        except QueueFull as exc:
            raise wire.RpcError(
                wire.QUEUE_FULL, data={"queue_limit": exc.limit}
            )
        except PoolClosed:
            raise wire.RpcError(wire.SHUTTING_DOWN)
        return {"job_id": job.key, "state": job.state, "deduped": deduped}

    # -- job surface ---------------------------------------------------------

    def _job(self, params: dict):
        job_id = params.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise canonical.ServiceParamError(
                "'job_id' must be a non-empty string"
            )
        job = self.pool.get(job_id)
        if job is None:
            raise wire.RpcError(wire.JOB_NOT_FOUND, data=job_id)
        return job

    def _job_call(self, method: str, params: dict):
        if method == "job.status":
            return self._job(params).status()
        if method == "job.result":
            return self._result(params)
        if method == "job.stream":
            return self._stream(params)
        if method == "job.cancel":
            return self._cancel(params)
        raise wire.RpcError(wire.METHOD_NOT_FOUND, data=method)

    def _result(self, params: dict):
        job = self._job(params)
        timeout = params.get("timeout_s", 0)
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
            raise canonical.ServiceParamError("'timeout_s' must be a number")
        timeout = max(0.0, min(float(timeout), MAX_RESULT_WAIT_S))
        if timeout:
            job.done.wait(timeout)
        if job.state == "failed":
            raise wire.RpcError(wire.JOB_FAILED, data=job.error)
        if job.state == "cancelled":
            raise wire.RpcError(wire.JOB_CANCELLED, data=job.key)
        if job.state != "done":
            raise wire.RpcError(
                wire.JOB_NOT_DONE,
                data={"job_id": job.key, "state": job.state},
            )
        body = dict(job.result)
        body["service"] = self.pool.stats()
        return body

    def _stream(self, params: dict):
        job = self._job(params)
        since = params.get("since", 0)
        if isinstance(since, bool) or not isinstance(since, int) or since < 0:
            raise canonical.ServiceParamError(
                "'since' must be a non-negative integer"
            )
        events, cursor = job.events_since(since)
        return {
            "job_id": job.key,
            "state": job.state,
            "since": since,
            "cursor": cursor,
            "events": events,
            "done": job.done.is_set(),
        }

    def _cancel(self, params: dict):
        job, cancelled = self.pool.cancel(params_job_id(params))
        if job is None:
            raise wire.RpcError(
                wire.JOB_NOT_FOUND, data=params.get("job_id")
            )
        return {
            "job_id": job.key,
            "state": job.state if not cancelled else "cancelling",
            "cancelled": cancelled,
        }

    # -- service surface -----------------------------------------------------

    def _info(self) -> dict:
        return {
            "service": "repro-fairness",
            "version": canonical.SERVICE_VERSION,
            "host": self.host,
            "port": self.port,
            "methods": sorted(
                list(canonical.METHOD_SCHEMAS)
                + list(self._extra)
                + [
                    "job.status", "job.result", "job.stream", "job.cancel",
                    "service.info", "service.stats", "service.shutdown",
                ]
            ),
            "rate": self.limiter.rate,
            "burst": self.limiter.burst,
            "queue_limit": self.pool.queue_limit,
        }

    def _shutdown_call(self, params: dict):
        drain = params.get("drain", True)
        if not isinstance(drain, bool):
            raise canonical.ServiceParamError("'drain' must be a boolean")
        # Stop from a helper thread so this response still goes out
        # through the live server.
        threading.Thread(
            target=self.shutdown, kwargs={"drain": drain}, daemon=True
        ).start()
        return {"stopping": True, "drain": drain}


def params_job_id(params: dict) -> str:
    job_id = params.get("job_id")
    if not isinstance(job_id, str) or not job_id:
        raise canonical.ServiceParamError(
            "'job_id' must be a non-empty string"
        )
    return job_id
