"""Experiment-method implementations behind the JSON-RPC surface.

Each method maps a canonical request (see ``service.canonical``) onto
the *same* analysis entry point the CLI command uses — built from the
same protocol registry, the same strategy spaces, the same seeds — and
exports the result through ``analysis.export``.  That is the service's
core contract: a job's artefact, stripped to its
``deterministic_payload``, is byte-identical to what the equivalent
``repro`` CLI invocation writes with ``--json-out``.

:func:`validate` runs the cheap existence checks (protocol name, claim
spec, budget spelling) at *submission* time, so a typo is an immediate
``INVALID_PARAMS`` instead of a job that fails minutes later.
"""

from __future__ import annotations

from ..analysis.export import (
    assessment_to_dict,
    estimate_to_dict,
    fault_curve_to_dict,
    report_to_dict,
)
from ..core.payoff import PayoffVector
from .canonical import ServiceParamError, build_task


def _registry(parties: int):
    from ..cli import _protocol_registry  # lazy: cli imports analysis

    return _protocol_registry(parties)


def _protocol(canon: dict):
    registry = _registry(canon["parties"])
    protocol = registry.get(canon["protocol"])
    if protocol is None:
        raise ServiceParamError(
            f"unknown protocol {canon['protocol']!r}; available: "
            f"{', '.join(sorted(registry))}"
        )
    return protocol


def _gamma(canon: dict) -> PayoffVector:
    return PayoffVector(*canon["gamma"])


def _estimate_utility(runner, canon: dict) -> dict:
    from ..analysis import estimate_utility

    task = build_task(canon)
    estimate = estimate_utility(
        task.protocol,
        task.factory,
        _gamma(canon),
        n_runs=canon["runs"],
        seed=canon["seed"],
        runner=runner,
    )
    return estimate_to_dict(estimate)


def _sweep_strategies(runner, canon: dict) -> dict:
    from ..adversaries import strategy_space_for_protocol
    from ..analysis import assess_protocol

    protocol = _protocol(canon)
    space = strategy_space_for_protocol(protocol)
    assessment = assess_protocol(
        protocol,
        space,
        _gamma(canon),
        canon["runs"],
        seed=canon["seed"],
        runner=runner,
    )
    return assessment_to_dict(assessment)


def _fault_sensitivity(runner, canon: dict) -> dict:
    from ..adversaries import strategy_space_for_protocol
    from ..analysis import fault_sensitivity

    protocol = _protocol(canon)
    space = strategy_space_for_protocol(protocol)
    curve = fault_sensitivity(
        protocol,
        space,
        _gamma(canon),
        loss_rates=canon["loss_rates"],
        crash_rates=canon["crash_rates"],
        n_runs=canon["runs"],
        seed=canon["seed"],
        fault_seed=canon["fault_seed"],
        max_delay=canon["max_delay"],
        runner=runner,
    )
    return fault_curve_to_dict(curve)


def _verify_claims(runner, canon: dict) -> dict:
    from ..verify import ClaimConfigError, verify_claims

    try:
        report = verify_claims(
            canon["claims"],
            budget=canon["budget"],
            seed=canon["seed"],
            runner=runner,
        )
    except ClaimConfigError as exc:
        raise ServiceParamError(str(exc))
    return report_to_dict(report)


_HANDLERS = {
    "estimate_utility": _estimate_utility,
    "sweep_strategies": _sweep_strategies,
    "fault_sensitivity": _fault_sensitivity,
    "verify_claims": _verify_claims,
}


def run_method(method: str, runner, canon: dict) -> dict:
    """Execute one canonical request on ``runner``; return its artefact."""
    return _HANDLERS[method](runner, canon)


def validate(method: str, canon: dict) -> None:
    """Submission-time existence checks (cheap; no Monte-Carlo work)."""
    if method == "estimate_utility":
        build_task(canon)  # resolves protocol + strategy or raises
    elif method in ("sweep_strategies", "fault_sensitivity"):
        _protocol(canon)
    elif method == "verify_claims":
        from ..verify import ClaimConfigError
        from ..verify.claims import default_registry, resolve_budget

        try:
            resolve_budget(canon["budget"])
            default_registry().select(canon["claims"])
        except ClaimConfigError as exc:
            raise ServiceParamError(str(exc))
