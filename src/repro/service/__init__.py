"""Fairness-as-a-service: the JSON-RPC job server over the batch runtime.

The whole experiment surface — utility estimation, strategy sweeps,
fault-sensitivity curves, claim verification — exposed as an async job
API (``repro serve``).  Requests canonicalize to content-addressed job
keys, so identical submissions (concurrent, repeated, or racing the
CLI) collapse to one execution and return byte-identical
``deterministic_payload``s; a per-tenant token bucket and a bounded
pending-job pool shed overload as documented JSON-RPC errors instead of
falling over.

Module map: ``wire`` (JSON-RPC envelope + error codes), ``canonical``
(param schemas, canonical forms, job keys), ``ratelimit`` (token bucket
+ ``REPRO_SERVICE_*`` knobs), ``jobs`` (the deduplicating pool),
``methods`` (experiment implementations), ``server`` (HTTP front end).
"""

from .canonical import (
    EXPERIMENT_METHODS,
    SERVICE_VERSION,
    ServiceParamError,
    canonicalize,
    job_key,
    job_key_canonical,
)
from .jobs import Job, JobPool, PoolClosed, QueueFull
from .ratelimit import (
    ENV_SERVICE_BURST,
    ENV_SERVICE_QUEUE,
    ENV_SERVICE_RATE,
    TokenBucket,
    resolve_service_burst,
    resolve_service_queue,
    resolve_service_rate,
)
from .server import ServiceServer

__all__ = [
    "EXPERIMENT_METHODS",
    "SERVICE_VERSION",
    "ServiceParamError",
    "canonicalize",
    "job_key",
    "job_key_canonical",
    "Job",
    "JobPool",
    "PoolClosed",
    "QueueFull",
    "ENV_SERVICE_BURST",
    "ENV_SERVICE_QUEUE",
    "ENV_SERVICE_RATE",
    "TokenBucket",
    "resolve_service_burst",
    "resolve_service_queue",
    "resolve_service_rate",
    "ServiceServer",
]
