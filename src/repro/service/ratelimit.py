"""Per-tenant token-bucket rate limiting and the service env knobs.

The bucket is the classic leaky token scheme: each tenant owns
``burst`` tokens, refilled continuously at ``rate`` tokens/second; a
request spends one token or — when the bucket is dry — is refused with
the number of seconds until a token exists again (surfaced to clients
as ``data.retry_after_s`` on the ``RATE_LIMITED`` JSON-RPC error).
Tenants are independent buckets, so one hot client cannot starve the
rest; the clock is injectable so the tests need no sleeps.

Environment knobs follow the runtime's convention (explicit argument >
environment > default; malformed values raise ``ValueError`` naming the
variable — cf. ``REPRO_JOBS``/``REPRO_CHUNK_TIMEOUT``):

``REPRO_SERVICE_RATE``
    Tokens per second per tenant (positive float, default 20).
``REPRO_SERVICE_BURST``
    Bucket capacity per tenant (positive integer, default 40).
``REPRO_SERVICE_QUEUE``
    Maximum pending + running jobs in the pool before submissions get
    ``QUEUE_FULL`` (positive integer, default 16).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Dict, Optional

ENV_SERVICE_RATE = "REPRO_SERVICE_RATE"
ENV_SERVICE_BURST = "REPRO_SERVICE_BURST"
ENV_SERVICE_QUEUE = "REPRO_SERVICE_QUEUE"

DEFAULT_RATE = 20.0
DEFAULT_BURST = 40
DEFAULT_QUEUE = 16


def resolve_service_rate(rate: Optional[float] = None) -> float:
    """Tokens/second per tenant: explicit > ``REPRO_SERVICE_RATE`` > 20."""
    if rate is not None:
        if rate <= 0:
            raise ValueError(f"service rate must be positive, got {rate}")
        return float(rate)
    raw = os.environ.get(ENV_SERVICE_RATE, "").strip()
    if not raw:
        return DEFAULT_RATE
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_SERVICE_RATE} must be a positive number, got {raw!r}"
        )
    if value <= 0:
        raise ValueError(
            f"{ENV_SERVICE_RATE} must be a positive number, got {raw!r}"
        )
    return value


def _resolve_positive_int(value: Optional[int], env: str, default: int,
                          what: str) -> int:
    if value is not None:
        if value < 1:
            raise ValueError(f"{what} must be a positive integer, got {value}")
        return int(value)
    raw = os.environ.get(env, "").strip()
    if not raw:
        return default
    try:
        parsed = int(raw)
    except ValueError:
        raise ValueError(f"{env} must be a positive integer, got {raw!r}")
    if parsed < 1:
        raise ValueError(f"{env} must be a positive integer, got {raw!r}")
    return parsed


def resolve_service_burst(burst: Optional[int] = None) -> int:
    """Bucket capacity: explicit > ``REPRO_SERVICE_BURST`` > 40."""
    return _resolve_positive_int(
        burst, ENV_SERVICE_BURST, DEFAULT_BURST, "service burst"
    )


def resolve_service_queue(limit: Optional[int] = None) -> int:
    """Pool depth bound: explicit > ``REPRO_SERVICE_QUEUE`` > 16."""
    return _resolve_positive_int(
        limit, ENV_SERVICE_QUEUE, DEFAULT_QUEUE, "service queue limit"
    )


class TokenBucket:
    """Thread-safe per-tenant token buckets with an injectable clock."""

    def __init__(
        self,
        rate: Optional[float] = None,
        burst: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = resolve_service_rate(rate)
        self.burst = resolve_service_burst(burst)
        self._clock = clock
        self._lock = threading.Lock()
        #: tenant -> (tokens available, clock reading of last refill)
        self._buckets: Dict[str, tuple] = {}

    def allow(self, tenant: str):
        """Spend one token for ``tenant``.

        Returns ``(True, 0.0)`` when admitted, ``(False, retry_after_s)``
        when the bucket is dry.
        """
        now = self._clock()
        with self._lock:
            tokens, last = self._buckets.get(tenant, (float(self.burst), now))
            tokens = min(float(self.burst), tokens + (now - last) * self.rate)
            if tokens >= 1.0:
                self._buckets[tenant] = (tokens - 1.0, now)
                return True, 0.0
            self._buckets[tenant] = (tokens, now)
            return False, (1.0 - tokens) / self.rate
