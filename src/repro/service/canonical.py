"""Request canonicalization and content-addressed job keys.

Every experiment method has a declarative parameter schema: required
fields, defaults, and a normalizer per field.  :func:`canonicalize`
folds an incoming JSON-RPC ``params`` object onto that schema — unknown
fields are rejected, omitted optionals take their defaults, and each
value is reduced to one canonical Python form (seed lists become tuples,
tagged seed dicts are decoded through the distributed codec, γ vectors
become 4-tuples of floats).  Two requests that mean the same experiment
therefore canonicalize to the same dict regardless of key order or
explicitly-spelled defaults.

:func:`job_key` then hashes the canonical form through
:func:`~repro.crypto.prf.encode_seed` — the same injective type-tagged
encoder underneath the chunk cache, the run journal, and the codec's
``task_fingerprint`` — into a hex job key.  For ``estimate_utility`` the
key embeds the *task fingerprint itself* (the chunk cache's identity for
the batch), so a service job and a CLI run of the same logical task
share cache entries byte-for-byte; the Hypothesis suite pins this
equality.  ``cache_material`` deliberately excludes ``n_runs`` and γ
(chunks are span-keyed, payoffs fold downstream), so the job key adds
both on top.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..core.payoff import PayoffVector
from ..crypto.prf import encode_seed
from ..runtime.distributed.codec import (
    CodecError,
    resolve_strategy,
    tag_value,
    task_fingerprint,
    untag_value,
)
from ..runtime.tasks import ExecutionTask

#: Versions the job-key scheme: bump when canonical forms or key
#: material change, so stale clients cannot collide with new keys.
SERVICE_VERSION = 1

#: The CLI's default γ (see ``cli.build_parser``): γ00,γ01,γ10,γ11.
DEFAULT_GAMMA = (0.0, 0.0, 1.0, 0.5)

#: Mirrors ``analysis.fault_sensitivity.DEFAULT_LOSS_RATES``.
DEFAULT_LOSS_RATES = (0.0, 0.05, 0.1, 0.2)

#: The experiment (job-submitting) methods, in documentation order.
EXPERIMENT_METHODS = (
    "estimate_utility",
    "sweep_strategies",
    "fault_sensitivity",
    "verify_claims",
)


class ServiceParamError(ValueError):
    """Request params failed validation; maps to JSON-RPC INVALID_PARAMS."""


_REQUIRED = object()


def _reject_bool(name: str, value):
    if isinstance(value, bool):
        raise ServiceParamError(f"{name!r} must not be a boolean")


def _norm_name(name: str, value) -> str:
    if not isinstance(value, str) or not value:
        raise ServiceParamError(f"{name!r} must be a non-empty string")
    return value


def _norm_positive_int(name: str, value) -> int:
    _reject_bool(name, value)
    if not isinstance(value, int) or value < 1:
        raise ServiceParamError(f"{name!r} must be a positive integer")
    return value


def _norm_nonneg_int(name: str, value) -> int:
    _reject_bool(name, value)
    if not isinstance(value, int) or value < 0:
        raise ServiceParamError(f"{name!r} must be a non-negative integer")
    return value


def _norm_parties(name: str, value) -> int:
    _reject_bool(name, value)
    if not isinstance(value, int) or value < 2:
        raise ServiceParamError(f"{name!r} must be an integer >= 2")
    return value


def _norm_gamma(name: str, value) -> Tuple[float, ...]:
    if not isinstance(value, (list, tuple)) or len(value) != 4:
        raise ServiceParamError(
            f"{name!r} must be four numbers [γ00, γ01, γ10, γ11]"
        )
    parts = []
    for x in value:
        _reject_bool(name, x)
        if not isinstance(x, (int, float)):
            raise ServiceParamError(f"{name!r} components must be numbers")
        parts.append(float(x))
    vec = PayoffVector(*parts)
    if not vec.in_gamma_fair():
        raise ServiceParamError(
            f"{name!r} is outside Γfair (need γ01 <= γ00,γ11 <= γ10 "
            "with γ01 < γ10)"
        )
    return tuple(parts)


def _norm_rates(name: str, value) -> Tuple[float, ...]:
    if not isinstance(value, (list, tuple)) or not value:
        raise ServiceParamError(f"{name!r} must be a non-empty array of rates")
    rates = []
    for x in value:
        _reject_bool(name, x)
        if not isinstance(x, (int, float)) or not 0.0 <= x <= 1.0:
            raise ServiceParamError(f"{name!r} rates must lie in [0, 1]")
        rates.append(float(x))
    return tuple(rates)


def _norm_seed(name: str, value):
    """Reduce a JSON seed to the runtime's canonical composite form.

    Accepts the scalar forms (int, str), arrays (composite seeds — the
    ``(seed, label)`` tuples the CLI builds), and the codec's tagged-dict
    form (``{"t": "int", "v": "5"}``) for clients round-tripping seeds
    they read off the wire.  Arrays become tuples recursively, so a JSON
    list and the Python tuple it denotes share one key.
    """
    if isinstance(value, dict):
        try:
            value = untag_value(value)
        except CodecError as exc:
            raise ServiceParamError(f"{name!r}: {exc}")
    value = _listless(name, value)
    try:
        tag_value(value)
    except CodecError as exc:
        raise ServiceParamError(f"{name!r}: {exc}")
    return value


def _listless(name: str, value):
    _reject_bool(name, value)
    if isinstance(value, (list, tuple)):
        return tuple(_listless(name, v) for v in value)
    if isinstance(value, float) and value.is_integer():
        # JSON has one number type; 5.0 over the wire means the int 5.
        return int(value)
    return value


_Normalizer = Callable[[str, object], object]
_Schema = Tuple[Tuple[str, object, _Normalizer], ...]

#: Field order is the canonical (and key-material) order.
METHOD_SCHEMAS: Dict[str, _Schema] = {
    "estimate_utility": (
        ("protocol", _REQUIRED, _norm_name),
        ("strategy", _REQUIRED, _norm_name),
        ("gamma", DEFAULT_GAMMA, _norm_gamma),
        ("runs", 400, _norm_positive_int),
        ("seed", 0, _norm_seed),
        ("parties", 2, _norm_parties),
    ),
    "sweep_strategies": (
        ("protocol", _REQUIRED, _norm_name),
        ("gamma", DEFAULT_GAMMA, _norm_gamma),
        ("runs", 400, _norm_positive_int),
        ("seed", 0, _norm_seed),
        ("parties", 2, _norm_parties),
    ),
    "fault_sensitivity": (
        ("protocol", _REQUIRED, _norm_name),
        ("gamma", DEFAULT_GAMMA, _norm_gamma),
        ("loss_rates", DEFAULT_LOSS_RATES, _norm_rates),
        ("crash_rates", (0.0,), _norm_rates),
        ("runs", 400, _norm_positive_int),
        ("seed", 0, _norm_seed),
        ("fault_seed", 0, _norm_seed),
        ("max_delay", 2, _norm_nonneg_int),
        ("parties", 2, _norm_parties),
    ),
    "verify_claims": (
        ("claims", "all", _norm_name),
        ("budget", "medium", _norm_name),
        ("seed", "verify", _norm_seed),
    ),
}


def canonicalize(method: str, params: dict) -> dict:
    """Fold ``params`` onto the method's schema; raise on anything off it.

    Returns a new dict whose keys follow schema order and whose values
    are in canonical form — the input for :func:`job_key_canonical` and
    the shape ``service.methods`` executes from.
    """
    schema = METHOD_SCHEMAS.get(method)
    if schema is None:
        raise KeyError(method)
    if not isinstance(params, dict):
        raise ServiceParamError("params must be an object")
    known = {name for name, _, _ in schema}
    unknown = sorted(set(params) - known)
    if unknown:
        raise ServiceParamError(
            f"unknown parameter(s) {', '.join(map(repr, unknown))}; "
            f"{method} accepts: {', '.join(sorted(known))}"
        )
    canon = {}
    for name, default, norm in schema:
        if name in params:
            canon[name] = norm(name, params[name])
        elif default is _REQUIRED:
            raise ServiceParamError(f"missing required parameter {name!r}")
        else:
            canon[name] = default
    return canon


def build_task(canon: dict) -> ExecutionTask:
    """The ``estimate_utility`` batch a canonical request denotes.

    Resolves the protocol through the CLI registry and the strategy
    through the distributed codec, so the task is *the same object
    graph* a ``repro estimate`` run would execute — which is what makes
    the job key's embedded ``task_fingerprint`` collide with the chunk
    cache's, deduping service jobs against CLI runs for free.
    """
    from ..cli import _protocol_registry  # lazy: cli imports analysis

    registry = _protocol_registry(canon["parties"])
    protocol = registry.get(canon["protocol"])
    if protocol is None:
        raise ServiceParamError(
            f"unknown protocol {canon['protocol']!r}; available: "
            f"{', '.join(sorted(registry))}"
        )
    try:
        factory = resolve_strategy(canon["strategy"])
    except CodecError as exc:
        raise ServiceParamError(str(exc))
    return ExecutionTask(protocol, factory, canon["runs"], seed=canon["seed"])


def _material(canon: dict) -> tuple:
    return tuple((name, value) for name, value in canon.items())


def job_key_canonical(method: str, canon: dict) -> str:
    """Content-addressed job key for an already-canonical request."""
    if method == "estimate_utility":
        fingerprint = task_fingerprint(build_task(canon))
        if fingerprint is None:
            raise ServiceParamError(
                "request has no stable content fingerprint"
            )
        material = ("task", fingerprint, canon["runs"], canon["gamma"])
    else:
        material = ("params", _material(canon))
    return encode_seed(
        ("service-job", SERVICE_VERSION, method, material)
    ).hex()


def job_key(method: str, params: dict) -> str:
    """Canonicalize and key one request (the one-call convenience)."""
    return job_key_canonical(method, canonicalize(method, params))
