"""JSON-RPC 2.0 message plumbing for the fairness service.

Pure functions only: request parsing/validation against the JSON-RPC 2.0
envelope rules, response/error body construction, and the error-code
vocabulary the service documents.  The HTTP transport lives in
``service.server``; method semantics live in ``service.methods``.

Error codes
-----------
The spec codes are used exactly as defined by JSON-RPC 2.0:

========================  =======  ==========================================
name                      code     raised when
========================  =======  ==========================================
``PARSE_ERROR``           -32700   body is not valid JSON
``INVALID_REQUEST``       -32600   JSON is not a valid request envelope
``METHOD_NOT_FOUND``      -32601   unknown method name
``INVALID_PARAMS``        -32602   params fail canonicalization/validation
``INTERNAL_ERROR``        -32603   unexpected server-side failure
========================  =======  ==========================================

Server-defined codes use the reserved -32000..-32099 band:

========================  =======  ==========================================
``JOB_NOT_FOUND``         -32001   ``job.*`` call names an unknown job key
``JOB_NOT_DONE``          -32002   ``job.result`` before the job finished
``JOB_FAILED``            -32003   ``job.result`` for a failed job
``JOB_CANCELLED``         -32004   ``job.result`` for a cancelled job
``RATE_LIMITED``          -32029   tenant token bucket empty (HTTP 429 kin;
                                   ``data.retry_after_s`` says when to retry)
``QUEUE_FULL``            -32053   pending-job pool at capacity (HTTP 503
                                   kin; resubmit later, the job key will
                                   dedupe against any concurrent winner)
``SHUTTING_DOWN``         -32054   submission after ``service.shutdown``
========================  =======  ==========================================
"""

from __future__ import annotations

import json
from typing import Any, Optional

JSONRPC_VERSION = "2.0"

PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603

JOB_NOT_FOUND = -32001
JOB_NOT_DONE = -32002
JOB_FAILED = -32003
JOB_CANCELLED = -32004
RATE_LIMITED = -32029
QUEUE_FULL = -32053
SHUTTING_DOWN = -32054

#: Default human message per code (overridable per response).
MESSAGES = {
    PARSE_ERROR: "Parse error",
    INVALID_REQUEST: "Invalid Request",
    METHOD_NOT_FOUND: "Method not found",
    INVALID_PARAMS: "Invalid params",
    INTERNAL_ERROR: "Internal error",
    JOB_NOT_FOUND: "Job not found",
    JOB_NOT_DONE: "Job not done",
    JOB_FAILED: "Job failed",
    JOB_CANCELLED: "Job cancelled",
    RATE_LIMITED: "Rate limited",
    QUEUE_FULL: "Queue full",
    SHUTTING_DOWN: "Shutting down",
}


class RpcError(Exception):
    """A JSON-RPC error destined for the client, not a server crash."""

    def __init__(self, code: int, message: Optional[str] = None, data=None):
        self.code = code
        self.message = message or MESSAGES.get(code, "Server error")
        self.data = data
        super().__init__(f"{self.code}: {self.message}")

    def body(self, request_id) -> dict:
        return error_body(request_id, self.code, self.message, self.data)


def result_body(request_id, result) -> dict:
    return {"jsonrpc": JSONRPC_VERSION, "id": request_id, "result": result}


def error_body(request_id, code: int, message: Optional[str] = None,
               data=None) -> dict:
    error = {"code": code, "message": message or MESSAGES.get(code, "Server error")}
    if data is not None:
        error["data"] = data
    return {"jsonrpc": JSONRPC_VERSION, "id": request_id, "error": error}


def _valid_id(value) -> bool:
    # Per spec: string, number, or null.  Fractional ids are legal JSON
    # numbers; bools are not ids.
    if isinstance(value, bool):
        return False
    return value is None or isinstance(value, (str, int, float))


def parse_request(raw: bytes) -> dict:
    """Decode and validate one JSON-RPC 2.0 request envelope.

    Returns the request dict.  Raises :class:`RpcError` with
    ``PARSE_ERROR`` for undecodable bodies and ``INVALID_REQUEST`` for
    well-formed JSON that is not a valid request.  Batch requests
    (arrays) are deliberately unsupported: each job submission should be
    its own HTTP round-trip so rate limiting stays per-request.
    """
    try:
        request = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise RpcError(PARSE_ERROR, data=str(exc))
    if isinstance(request, list):
        raise RpcError(
            INVALID_REQUEST, data="batch requests are not supported"
        )
    if not isinstance(request, dict):
        raise RpcError(INVALID_REQUEST, data="request must be an object")
    if request.get("jsonrpc") != JSONRPC_VERSION:
        raise RpcError(
            INVALID_REQUEST, data='missing or wrong "jsonrpc" version'
        )
    method = request.get("method")
    if not isinstance(method, str) or not method:
        raise RpcError(
            INVALID_REQUEST, data='"method" must be a non-empty string'
        )
    if "params" in request and not isinstance(request["params"], (dict, list)):
        raise RpcError(
            INVALID_REQUEST, data='"params" must be an object or array'
        )
    if "id" in request and not _valid_id(request["id"]):
        raise RpcError(
            INVALID_REQUEST, data='"id" must be a string, number, or null'
        )
    return request


def dumps(body: Any) -> bytes:
    """Canonical response encoding: sorted keys, no wasted whitespace."""
    return json.dumps(
        body, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
