"""GMW secure function evaluation: the unfair substrate and the
honest-majority threshold variant."""

from .protocol import GmwMachine, GmwProtocol, gmw_from_spec, ot_instance_name
from .threshold import (
    ThresholdGmwMachine,
    ThresholdGmwProtocol,
    VssOutputDealer,
    reconstruction_threshold,
)

__all__ = [
    "GmwMachine",
    "GmwProtocol",
    "gmw_from_spec",
    "ot_instance_name",
    "ThresholdGmwMachine",
    "ThresholdGmwProtocol",
    "VssOutputDealer",
    "reconstruction_threshold",
]
