"""Π½GMW: the honest-majority fair variant of GMW (paper, Appendix B.1).

The protocol computes a (⌊n/2⌋+1)-out-of-n verifiable secret sharing of the
output and then publicly reconstructs it.  Any coalition of at most
⌊(n−1)/2⌋ parties can neither block reconstruction nor learn the secret
early; a coalition of ⌈n/2⌉ parties can do both (for even n it learns the
last missing share from the honest broadcasts thanks to rushing, then
withholds its own).  Lemma 17 shows this profile makes Π½GMW *not*
utility-balanced for even n, while for odd n it attains the balanced bound
(but is still not optimally fair — Appendix B.1).

Phase 1 is the honest-majority GMW computation, which enjoys guaranteed
output delivery; we model it as a non-abortable VSS-dealing functionality.
"""

from __future__ import annotations

from typing import Dict, List

from ..crypto import vss
from ..crypto.prf import Rng
from ..engine.messages import ABORT, Inbox
from ..engine.party import PartyContext, PartyMachine
from ..engine.protocol import Protocol
from ..functionalities.base import AdversaryHandle, Functionality
from ..functions.library import FunctionSpec


def reconstruction_threshold(n: int) -> int:
    """⌊n/2⌋ + 1: the smallest share count that reconstructs."""
    return n // 2 + 1


class VssOutputDealer(Functionality):
    """Phase-1 functionality: computes f, deals a VSS of the output.

    Honest-majority GMW guarantees output delivery, so there is no abort
    interface — the adversary may only request the corrupted parties'
    shares (which it gets anyway by corrupting them).
    """

    name = "F_vss_sfe"

    def __init__(self, func: FunctionSpec):
        self.func = func

    def invoke(
        self,
        inputs: Dict[int, object],
        adversary: AdversaryHandle,
        rng: Rng,
        n: int,
    ) -> Dict[int, object]:
        effective = tuple(
            inputs.get(i, self.func.default_inputs[i]) for i in range(n)
        )
        outputs = self.func.outputs_for(effective)
        y = _encode_global(outputs[0])
        threshold = reconstruction_threshold(n)
        shares, keys = vss.deal(y, threshold, n, rng.fork("vss"))
        payloads = {i: (shares[i], keys[i]) for i in range(n)}
        if adversary.corrupted:
            adversary.notify(
                "corrupted-outputs",
                {i: payloads[i] for i in sorted(adversary.corrupted)},
            )
        return payloads


class ThresholdGmwMachine(PartyMachine):
    """Phase 2: broadcast your share, reconstruct from the valid ones."""

    def __init__(self, index: int, n: int, func: FunctionSpec):
        super().__init__(index, n)
        self.func = func
        self.share = None
        self.verifier_key = None

    def on_round(self, round_no: int, inbox: Inbox, ctx: PartyContext) -> None:
        if round_no == 0:
            ctx.call(VssOutputDealer.name, self.input)
            return
        if round_no == 1:
            payload = inbox.from_functionality(VssOutputDealer.name)
            if payload is ABORT or payload is None:
                # Cannot happen with the robust dealer, but stay defensive.
                ctx.output_abort()
                return
            self.share, self.verifier_key = payload
            ctx.broadcast(("vss-share", self.share))
            return
        if round_no == 2:
            announced: List[vss.VssShare] = [self.share]
            for j in range(self.n):
                if j == self.index:
                    continue
                payload = inbox.one_from_party(j)
                if (
                    isinstance(payload, tuple)
                    and len(payload) == 2
                    and payload[0] == "vss-share"
                    and isinstance(payload[1], vss.VssShare)
                ):
                    announced.append(payload[1])
            threshold = reconstruction_threshold(self.n)
            try:
                y = vss.public_reconstruct(
                    announced, self.verifier_key, threshold
                )
            except vss.VssError:
                ctx.output_abort()
                return
            ctx.output(_decode_global(y))


class ThresholdGmwProtocol(Protocol):
    """Π½GMW as a Protocol: fair below n/2 corruptions, broken at ⌈n/2⌉."""

    def __init__(self, func: FunctionSpec):
        self.func = func
        self.n_parties = func.n_parties
        self.name = f"gmw-threshold[{func.name}]"
        self.max_rounds = 4

    def build_machines(self, rng: Rng) -> List[PartyMachine]:
        return [
            ThresholdGmwMachine(i, self.n_parties, self.func)
            for i in range(self.n_parties)
        ]

    def build_functionalities(self, rng: Rng) -> Dict[str, Functionality]:
        return {VssOutputDealer.name: VssOutputDealer(self.func)}


def _encode_global(y) -> int:
    """Pack a global output (int or tuple of ints) into a field element."""
    if isinstance(y, int):
        return (y << 1) | 0
    if isinstance(y, tuple):
        packed = 0
        for v in y:
            if not isinstance(v, int) or not 0 <= v < (1 << 16):
                raise TypeError(f"cannot VSS-encode component {v!r}")
            packed = (packed << 16) | v
        return (((packed << 8) | len(y)) << 1) | 1
    raise TypeError(f"cannot VSS-encode output {y!r}")


def _decode_global(encoded: int):
    is_tuple = encoded & 1
    packed = encoded >> 1
    if not is_tuple:
        return packed
    length = packed & 0xFF
    packed >>= 8
    values = []
    for _ in range(length):
        values.append(packed & 0xFFFF)
        packed >>= 16
    return tuple(reversed(values))
