"""The GMW protocol [16]: n-party SFE with abort in the OT-hybrid model.

Wire values are XOR-shared among all n parties.  XOR and NOT gates are
local; each AND gate layer costs one round of pairwise 1-out-of-2 OTs (for
ordered pair (i, j), sender i offers (r, r ⊕ xi) and receiver j chooses
with yj, producing additive shares of xi·yj).  The final round publicly
reconstructs the output wires by broadcasting shares — which is exactly
where GMW is *unfair*: a rushing adversary reads the honest shares, learns
the output, and can withhold its own, leaving the honest parties with ⊥.

This substrate realises Fsfe⊥ and is what the paper's phase-1 hybrid
functionalities abstract (RPD composition theorem); the library uses it
directly on small circuits and via the ideal hybrids for large sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..circuits.circuit import Circuit, Gate, GateKind
from ..circuits.compiler import bits_of, compile_truth_table, int_of
from ..crypto.prf import Rng, encode_seed
from ..crypto.secret_sharing import xor_share
from ..engine.messages import ABORT, Inbox
from ..engine.party import OUTPUT_DEFAULT, PartyContext, PartyMachine
from ..engine.protocol import Protocol
from ..functionalities.base import Functionality
from ..functionalities.ot import ObliviousTransfer, OtChoose, OtSend
from ..functions.library import FunctionSpec


def ot_instance_name(gate_wire: int, sender: int, receiver: int) -> str:
    return f"ot:g{gate_wire}:{sender}to{receiver}"


class GmwMachine(PartyMachine):
    """One party's GMW state machine.

    Round plan: 0 = input sharing out; 1 = input shares in + first AND
    layer's OT calls; 2..L = OT results in + next layer out; L+1 = output
    share broadcast; L+2 = reconstruction and output.
    """

    def __init__(
        self,
        index: int,
        n: int,
        circuit: Circuit,
        widths: List[int],
        func: FunctionSpec,
    ):
        super().__init__(index, n)
        self.circuit = circuit
        self.widths = widths
        self.func = func
        self.layers = circuit.and_layers()
        self.wire_shares: Dict[int, int] = {}
        self._pending_layer: Optional[int] = None
        self._pending_gates: List[Gate] = []
        self._sender_masks: Dict[str, int] = {}
        self._stage = "share-inputs"

    # -- helpers -------------------------------------------------------------
    def _my_input_bits(self) -> List[int]:
        return bits_of(self.input, self.widths[self.index])

    def _abort(self, ctx: PartyContext) -> None:
        ctx.output_abort()
        self._stage = "done"

    def _eval_local_gates(self) -> None:
        """Evaluate every gate whose share is now derivable locally."""
        for gate in self.circuit.gates:
            if gate.wire in self.wire_shares:
                continue
            if gate.kind == GateKind.CONST:
                self.wire_shares[gate.wire] = (
                    gate.value if self.index == 0 else 0
                )
            elif gate.kind == GateKind.XOR:
                if all(a in self.wire_shares for a in gate.args):
                    self.wire_shares[gate.wire] = (
                        self.wire_shares[gate.args[0]]
                        ^ self.wire_shares[gate.args[1]]
                    )
            elif gate.kind == GateKind.NOT:
                if gate.args[0] in self.wire_shares:
                    share = self.wire_shares[gate.args[0]]
                    self.wire_shares[gate.wire] = (
                        share ^ 1 if self.index == 0 else share
                    )

    def _issue_layer(self, layer_index: int, ctx: PartyContext) -> None:
        """Start OTs for AND layer ``layer_index``."""
        self._pending_layer = layer_index
        self._pending_gates = self.layers[layer_index]
        for gate in self._pending_gates:
            x = self.wire_shares[gate.args[0]]
            y = self.wire_shares[gate.args[1]]
            for j in range(self.n):
                if j == self.index:
                    continue
                # I am the sender holding x for pair (me -> j).
                name_out = ot_instance_name(gate.wire, self.index, j)
                mask = ctx.rng.randrange(2)
                self._sender_masks[name_out] = mask
                ctx.call(name_out, OtSend((mask, mask ^ x)))
                # I am the receiver choosing with y for pair (j -> me).
                name_in = ot_instance_name(gate.wire, j, self.index)
                ctx.call(name_in, OtChoose(y))

    def _complete_layer(self, inbox: Inbox, ctx: PartyContext) -> bool:
        """Fold OT results into the pending layer; False on abort."""
        for gate in self._pending_gates:
            x = self.wire_shares[gate.args[0]]
            y = self.wire_shares[gate.args[1]]
            z = x & y
            for j in range(self.n):
                if j == self.index:
                    continue
                name_out = ot_instance_name(gate.wire, self.index, j)
                name_in = ot_instance_name(gate.wire, j, self.index)
                ack = inbox.from_functionality(name_out)
                received = inbox.from_functionality(name_in)
                if ack is ABORT or received is ABORT or received is None:
                    return False
                if not isinstance(received, int):
                    return False
                z ^= self._sender_masks[name_out]
                z ^= received & 1
            self.wire_shares[gate.wire] = z
        self._pending_gates = []
        return True

    def _broadcast_outputs(self, ctx: PartyContext) -> None:
        shares = [self.wire_shares[w] for w in self.circuit.outputs]
        ctx.broadcast(("gmw-output-shares", tuple(shares)))
        self._stage = "reconstruct"

    # -- round handler ---------------------------------------------------------
    def on_round(self, round_no: int, inbox: Inbox, ctx: PartyContext) -> None:
        if self._stage == "done":
            return

        if self._stage == "share-inputs":
            my_gates = self.circuit.input_gates(self.index)
            bits = self._my_input_bits()
            per_party: Dict[int, Dict[int, int]] = {
                j: {} for j in range(self.n)
            }
            for gate in my_gates:
                shares = xor_share(bits[gate.input_index], self.n, ctx.rng)
                for j in range(self.n):
                    per_party[j][gate.wire] = shares[j]
            self.wire_shares.update(per_party[self.index])
            for j in range(self.n):
                if j != self.index:
                    ctx.send(j, ("gmw-input-shares", per_party[j]))
            self._stage = "collect-inputs"
            return

        if self._stage == "collect-inputs":
            for j in range(self.n):
                if j == self.index:
                    continue
                payload = inbox.one_from_party(j)
                if (
                    not isinstance(payload, tuple)
                    or len(payload) != 2
                    or payload[0] != "gmw-input-shares"
                    or not isinstance(payload[1], dict)
                ):
                    self._abort(ctx)
                    return
                expected = {g.wire for g in self.circuit.input_gates(j)}
                if set(payload[1]) != expected or not all(
                    v in (0, 1) for v in payload[1].values()
                ):
                    self._abort(ctx)
                    return
                self.wire_shares.update(payload[1])
            self._eval_local_gates()
            if self.layers:
                self._issue_layer(0, ctx)
                self._stage = "and-layers"
            else:
                self._broadcast_outputs(ctx)
            return

        if self._stage == "and-layers":
            if not self._complete_layer(inbox, ctx):
                self._abort(ctx)
                return
            self._eval_local_gates()
            next_layer = self._pending_layer + 1
            if next_layer < len(self.layers):
                self._issue_layer(next_layer, ctx)
            else:
                self._broadcast_outputs(ctx)
            return

        if self._stage == "reconstruct":
            collected: List[tuple] = []
            for j in range(self.n):
                if j == self.index:
                    continue
                payload = inbox.one_from_party(j)
                if (
                    not isinstance(payload, tuple)
                    or len(payload) != 2
                    or payload[0] != "gmw-output-shares"
                    or len(payload[1]) != len(self.circuit.outputs)
                ):
                    self._abort(ctx)
                    return
                collected.append(payload[1])
            bits = []
            for k in range(len(self.circuit.outputs)):
                bit = self.wire_shares[self.circuit.outputs[k]]
                for shares in collected:
                    bit ^= shares[k] & 1
                bits.append(bit)
            ctx.output(int_of(bits))
            self._stage = "done"
            return


class GmwProtocol(Protocol):
    """GMW over a circuit, presented through the Protocol interface."""

    def __init__(self, circuit: Circuit, widths: List[int], func: FunctionSpec):
        if circuit.n_parties != func.n_parties:
            raise ValueError("circuit/function party-count mismatch")
        expected_bits = circuit.input_bits_per_party()
        for i, w in enumerate(widths):
            if expected_bits.get(i, 0) != w:
                raise ValueError(
                    f"party {i}: circuit has {expected_bits.get(i, 0)} input "
                    f"bits, widths says {w}"
                )
        self.circuit = circuit
        self.widths = list(widths)
        self.func = func
        self.n_parties = func.n_parties
        self.name = f"gmw[{func.name}]"
        self.max_rounds = 4 + len(circuit.and_layers())
        self._cache_key = None

    @property
    def cache_key(self):
        """Content digest of the circuit, not just the function name.

        Two GMW instances behave identically iff they evaluate the same
        circuit over the same widths, so the chunk-cache fingerprint
        hashes the full gate list (computed lazily, once per instance).
        """
        if self._cache_key is None:
            gates = tuple(
                (g.wire, g.kind.value, g.args, g.owner, g.value, g.input_index)
                for g in self.circuit.gates
            )
            digest = encode_seed(
                ("gmw-circuit", gates, self.circuit.outputs, tuple(self.widths))
            ).hex()
            self._cache_key = (
                type(self).__name__,
                self.name,
                self.n_parties,
                digest,
            )
        return self._cache_key

    def build_machines(self, rng: Rng) -> List[PartyMachine]:
        return [
            GmwMachine(i, self.n_parties, self.circuit, self.widths, self.func)
            for i in range(self.n_parties)
        ]

    def build_functionalities(self, rng: Rng) -> Dict[str, Functionality]:
        functionalities: Dict[str, Functionality] = {}
        for gate in self.circuit.and_gates():
            for i in range(self.n_parties):
                for j in range(self.n_parties):
                    if i != j:
                        name = ot_instance_name(gate.wire, i, j)
                        functionalities[name] = ObliviousTransfer(i, j)
        return functionalities


def gmw_from_spec(func: FunctionSpec, widths: List[int]) -> GmwProtocol:
    """Compile a (small) FunctionSpec into a GMW protocol instance.

    The spec must have a global integer output; output width is inferred
    from ``func.output_bits``.  Compilation is content-memoized inside
    :func:`~repro.circuits.compiler.compile_truth_table`, so repeated
    instantiation for the same spec (every CLI invocation, benchmark,
    and test) reuses one immutable circuit instead of re-running the
    exponential minterm build.
    """

    def global_func(inputs: tuple) -> int:
        return func.outputs_for(inputs)[0]

    circuit = compile_truth_table(
        global_func, widths, func.output_bits, func.n_parties
    )
    return GmwProtocol(circuit, widths, func)
