"""Closed-form attacker utilities — the paper's proofs, transcribed.

Each function returns the analytic value of sup_A u_A(Π, A) (or the per-t
best) that the corresponding theorem/lemma establishes; the benchmarks
check the Monte-Carlo measurements against these.
"""

from __future__ import annotations

from ..core.payoff import PayoffVector


def u_naive_contract(gamma: PayoffVector) -> float:
    """Π1 (introduction): a corrupted p2 always collects γ10."""
    gamma.require_fair()
    return gamma.gamma10


def u_coin_contract(gamma: PayoffVector) -> float:
    """Π2 (introduction): the coin halves the unfair branch.

    The attacker's options: play out the coin and lock-watch —
    (γ10 + max(γ00, γ11))/2, since when the coin favours the honest party
    the attacker picks the better of completing (γ11) or refusing to open
    (γ00) — or abort the coin toss outright (γ00), or stay passive (γ11).
    """
    gamma.require_fair()
    return max(
        (gamma.gamma10 + max(gamma.gamma00, gamma.gamma11)) / 2.0,
        gamma.gamma00,
        gamma.gamma11,
    )


def u_opt_2sfe(gamma: PayoffVector) -> float:
    """Theorems 3 and 4: (γ10 + γ11)/2, tight for fswp."""
    gamma.require_fair()
    return (gamma.gamma10 + gamma.gamma11) / 2.0


def u_single_round(gamma: PayoffVector) -> float:
    """Lemma 10: one reconstruction round concedes γ10 outright."""
    gamma.require_fair()
    return gamma.gamma10


def u_dummy(gamma: PayoffVector, t: int, n: int) -> float:
    """ΦFsfe: γ01 for t = 0; otherwise max(γ00, γ11) (γ11 under Γ+fair)."""
    gamma.require_fair()
    if t == 0:
        return gamma.gamma01
    return max(gamma.gamma00, gamma.gamma11)


def u_opt_nsfe(gamma: PayoffVector, n: int, t: int) -> float:
    """Lemma 11/13: (t·γ10 + (n−t)·γ11)/n for a best t-adversary."""
    gamma.require_fair_plus()
    if not 1 <= t <= n - 1:
        raise ValueError(f"t must be in [1, n-1], got t={t}")
    return (t * gamma.gamma10 + (n - t) * gamma.gamma11) / n


def u_threshold_gmw(gamma: PayoffVector, n: int, t: int) -> float:
    """Lemma 17's profile for Π½GMW: γ10 once t ≥ ⌈n/2⌉, γ11 below."""
    gamma.require_fair_plus()
    if not 1 <= t <= n - 1:
        raise ValueError(f"t must be in [1, n-1], got t={t}")
    if t >= (n + 1) // 2:
        return gamma.gamma10
    return gamma.gamma11


def u_unbalanced_opt(gamma: PayoffVector, n: int, t: int) -> float:
    """Lemma 18's profile for the optimal-but-unbalanced protocol.

    A t-adversary with t ≤ n−2 baits the tails-branch: aborting when it
    holds the output (probability t/n) and deviating otherwise, where the
    coin gives γ10 or γ11 evenly.  The (n−1)-adversary gains nothing by
    deviating (the only honest party is the holder and keeps its output),
    so it matches the ΠOptnSFE profile.
    """
    gamma.require_fair_plus()
    if not 1 <= t <= n - 1:
        raise ValueError(f"t must be in [1, n-1], got t={t}")
    if t == n - 1:
        return u_opt_nsfe(gamma, n, t)
    deviate = (
        t * gamma.gamma10 + (n - t) * (gamma.gamma10 + gamma.gamma11) / 2.0
    ) / n
    return max(deviate, u_opt_nsfe(gamma, n, t))


def threshold_gmw_balance_sum(gamma: PayoffVector, n: int) -> float:
    """Σ_t u(Π½GMW, A_t): the Lemma-17 sum.

    Exceeds the balanced optimum by (γ10 − γ11)/2 for even n and meets it
    exactly for odd n.
    """
    return sum(u_threshold_gmw(gamma, n, t) for t in range(1, n))


def threshold_gmw_overshoot(gamma: PayoffVector, n: int) -> float:
    """The exact even-n excess of the Lemma-17 sum over the balanced bound.

    The paper's display writes the looser "+(γ10 − γ11)", but its own
    per-t counting — (n/2)·γ10 + (n/2 − 1)·γ11 against the optimum
    (n−1)(γ10+γ11)/2 — gives exactly (γ10 − γ11)/2 for even n and 0 for
    odd n.  This corrected constant is what the measurements reproduce
    (EXPERIMENTS.md E7, "Known deviations" item 4).
    """
    gamma.require_fair_plus()
    if n < 2:
        raise ValueError("need at least two parties")
    if n % 2:
        return 0.0
    return (gamma.gamma10 - gamma.gamma11) / 2.0


def opt_nsfe_corruption_cost(gamma: PayoffVector, n: int, t: int) -> float:
    """Theorem 6 / Lemma 22: the derived cost c(t) = φ(t) − s(t) for
    ΠOptnSFE, where φ(t) is the Lemma-11 per-t profile and s(t) = γ11 is
    the best t-adversary's payoff against the fully fair dummy."""
    return u_opt_nsfe(gamma, n, t) - gamma.gamma11


def gk_round_count(p: int, size: int, variant: str = "domain") -> int:
    """Theorems 23/24 round counts with our truncation margin of 20.

    The domain variant reveals for 20·p·|Y| rounds, the range variant for
    20·p²·|Z| rounds — the shapes O(p·|Y|) / O(p²·|Z|) of the paper, with
    the e⁻²⁰ truncation constant made explicit (EXPERIMENTS.md E10).
    """
    if p < 2:
        raise ValueError("p must be at least 2")
    if size < 1:
        raise ValueError("codomain size must be positive")
    if variant == "domain":
        return 20 * p * size
    if variant == "range":
        return 20 * p * p * size
    raise ValueError(f"variant must be 'domain' or 'range', got {variant!r}")


def gk_known_output_win_probability(alpha: float, q: float) -> float:
    """Pr[the first y-occurrence is exactly i*] for geometric(α) i* and
    per-round fake-hit probability q — the Theorem-23 stopping bound."""
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")
    if not 0 <= q <= 1:
        raise ValueError("q must be in [0, 1]")
    # Stop at the first y-occurrence; it falls on i* iff no fake hit y
    # earlier: Σ_i α(1−α)^{i−1}(1−q)^{i−1} = α / (α + q − αq).
    return alpha / (1 - (1 - alpha) * (1 - q))


def gk_fixed_round_win_probability(alpha: float, j: int) -> float:
    """Pr[i* = j+1] for a stop at reveal index j (geometric pmf)."""
    if j < 0:
        raise ValueError("reveal index must be non-negative")
    return alpha * (1 - alpha) ** j


def gk_known_output_e10(alpha: float, q_corrupted: float, q_honest: float) -> float:
    """Exact Pr[E10] for the known-output stopper.

    The adversary must stop exactly at i* (probability
    :func:`gk_known_output_win_probability` with the corrupted stream's
    hit rate), *and* the honest party's independently drawn banked fake
    must differ from its true output (probability 1 − q_honest).
    """
    return gk_known_output_win_probability(alpha, q_corrupted) * (
        1 - q_honest
    )
