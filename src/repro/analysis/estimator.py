"""Monte-Carlo estimation of attacker utilities.

The estimator runs a protocol against an adversary strategy many times,
classifies each execution into its fairness event (protocol-specific
classifier first, generic Fsfe⊥ classifier otherwise), and folds the event
frequencies with a payoff vector into a :class:`UtilityEstimate` carrying
Wilson confidence intervals.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from ..adversaries.search import AdversaryFactory
from ..core.balance import BalanceProfile
from ..core.events import classify
from ..core.fairness import ProtocolAssessment, assess
from ..core.payoff import PayoffVector
from ..core.utility import (
    EventCounts,
    UtilityEstimate,
    best_utility,
    estimate_from_counts,
)
from ..crypto.prf import Rng
from ..engine.execution import run_execution

InputSampler = Callable[[Rng], tuple]


def run_batch(
    protocol,
    adversary_factory: AdversaryFactory,
    n_runs: int,
    seed=0,
    input_sampler: Optional[InputSampler] = None,
) -> EventCounts:
    """Run ``n_runs`` executions, returning the event counts."""
    if n_runs <= 0:
        raise ValueError("need at least one run")
    sampler = input_sampler or protocol.func.sample_inputs
    master = Rng(seed)
    counts = EventCounts()
    for k in range(n_runs):
        rng = master.fork(f"run-{k}")
        inputs = sampler(rng.fork("inputs"))
        adversary = adversary_factory(rng.fork("adversary"))
        result = run_execution(protocol, inputs, adversary, rng.fork("exec"))
        event = protocol.classify_result(result)
        if event is None:
            event = classify(result, protocol.func)
        counts.record(event, result.corrupted)
    return counts


def estimate_utility(
    protocol,
    adversary_factory: AdversaryFactory,
    gamma: PayoffVector,
    n_runs: int = 400,
    seed=0,
    input_sampler: Optional[InputSampler] = None,
    cost=None,
) -> UtilityEstimate:
    """Estimate u_A(Π, A) for one strategy."""
    counts = run_batch(protocol, adversary_factory, n_runs, seed, input_sampler)
    return estimate_from_counts(
        counts,
        gamma,
        protocol=protocol.name,
        adversary=getattr(adversary_factory, "name", "adversary"),
        cost=cost,
    )


def sweep_strategies(
    protocol,
    factories: Iterable[AdversaryFactory],
    gamma: PayoffVector,
    n_runs: int = 400,
    seed=0,
    input_sampler: Optional[InputSampler] = None,
) -> List[UtilityEstimate]:
    """Estimate the utility of every strategy in a space."""
    estimates = []
    for idx, factory in enumerate(factories):
        estimates.append(
            estimate_utility(
                protocol,
                factory,
                gamma,
                n_runs=n_runs,
                seed=(seed, idx),
                input_sampler=input_sampler,
            )
        )
    return estimates


def assess_protocol(
    protocol,
    factories: Iterable[AdversaryFactory],
    gamma: PayoffVector,
    n_runs: int = 400,
    seed=0,
    input_sampler: Optional[InputSampler] = None,
) -> ProtocolAssessment:
    """sup over the strategy space → a ProtocolAssessment (Definition 1)."""
    estimates = sweep_strategies(
        protocol, factories, gamma, n_runs, seed, input_sampler
    )
    return assess(protocol.name, gamma, estimates)


def balance_profile(
    protocol,
    factories_per_t: dict,
    gamma: PayoffVector,
    n_runs: int = 400,
    seed=0,
) -> BalanceProfile:
    """Measure the best t-adversary's utility for each t in 1..n−1.

    ``factories_per_t[t]`` is the list of t-corruption strategies to sweep.
    """
    n = protocol.n_parties
    per_t = {}
    for t in range(1, n):
        estimates = sweep_strategies(
            protocol, factories_per_t[t], gamma, n_runs, seed=(seed, "t", t)
        )
        per_t[t] = best_utility(estimates)
    return BalanceProfile(
        protocol_name=protocol.name, n=n, gamma=gamma, per_t=per_t
    )
