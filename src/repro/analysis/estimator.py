"""Monte-Carlo estimation of attacker utilities.

The estimator runs a protocol against an adversary strategy many times,
classifies each execution into its fairness event (protocol-specific
classifier first, generic Fsfe⊥ classifier otherwise), and folds the event
frequencies with a payoff vector into a :class:`UtilityEstimate` carrying
Wilson confidence intervals.

All execution is routed through the batch runtime (``repro.runtime``):
each (protocol, strategy) pair becomes an :class:`ExecutionTask`, and the
selected :class:`BatchRunner` decides whether the runs happen in-process
or fan out over a worker pool.  ``jobs=None`` defers to the ``REPRO_JOBS``
environment variable; serial and parallel backends are bit-identical for
the same seed.  Strategy sweeps submit every (strategy, chunk) pair to one
pool so parallelism spans both axes.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from ..adversaries.search import AdversaryFactory
from ..core.balance import BalanceProfile
from ..core.fairness import ProtocolAssessment, assess
from ..core.payoff import PayoffVector
from ..core.utility import (
    EventCounts,
    UtilityEstimate,
    best_utility,
    estimate_from_counts,
)
from ..crypto.prf import Rng
from ..engine.faults import EngineFaults
from ..runtime import (
    BatchRunner,
    EarlyStopRule,
    ExecutionTask,
    MeasuredCounts,
    resolve_runner,
)

InputSampler = Callable[[Rng], tuple]


def _runner_for(runner: Optional[BatchRunner], jobs: Optional[int]) -> BatchRunner:
    return runner if runner is not None else resolve_runner(jobs)


def run_batch(
    protocol,
    adversary_factory: AdversaryFactory,
    n_runs: int,
    seed=0,
    input_sampler: Optional[InputSampler] = None,
    jobs: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
    early_stop: Optional[EarlyStopRule] = None,
    faults: Optional[EngineFaults] = None,
) -> EventCounts:
    """Run ``n_runs`` executions, returning the event counts.

    The result is a :class:`~repro.runtime.MeasuredCounts` — an
    :class:`EventCounts` that carries the batch's :class:`RunStats`
    (wall clock, executions/sec, backend, retry/degradation counters) as
    an explicit ``run_stats`` attribute rather than a monkey-patched one,
    so it survives pickling; merging folds back into plain event counts.

    ``faults`` optionally runs every execution under engine-level fault
    injection (``repro.engine.faults``); ``None`` — the default, never an
    environment variable — keeps the network lossless.
    """
    if n_runs <= 0:
        raise ValueError("need at least one run")
    task = ExecutionTask(
        protocol, adversary_factory, n_runs, seed, input_sampler, faults
    )
    active = _runner_for(runner, jobs)
    counts = active.run_one(task, early_stop=early_stop)
    return MeasuredCounts(counts, active.last_stats)


def estimate_utility(
    protocol,
    adversary_factory: AdversaryFactory,
    gamma: PayoffVector,
    n_runs: int = 400,
    seed=0,
    input_sampler: Optional[InputSampler] = None,
    cost=None,
    jobs: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
    early_stop: Optional[EarlyStopRule] = None,
    faults: Optional[EngineFaults] = None,
) -> UtilityEstimate:
    """Estimate u_A(Π, A) for one strategy."""
    counts = run_batch(
        protocol,
        adversary_factory,
        n_runs,
        seed,
        input_sampler,
        jobs=jobs,
        runner=runner,
        early_stop=early_stop,
        faults=faults,
    )
    return estimate_from_counts(
        counts,
        gamma,
        protocol=protocol.name,
        adversary=getattr(adversary_factory, "name", "adversary"),
        cost=cost,
    )


def sweep_strategies(
    protocol,
    factories: Iterable[AdversaryFactory],
    gamma: PayoffVector,
    n_runs: int = 400,
    seed=0,
    input_sampler: Optional[InputSampler] = None,
    jobs: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
    early_stop: Optional[EarlyStopRule] = None,
    faults: Optional[EngineFaults] = None,
) -> List[UtilityEstimate]:
    """Estimate the utility of every strategy in a space.

    All strategies are submitted to the runner as one batch, so a pool
    backend interleaves chunks across strategies ("strategies × chunks").
    """
    factories = list(factories)
    tasks = [
        ExecutionTask(
            protocol, factory, n_runs, (seed, idx), input_sampler, faults
        )
        for idx, factory in enumerate(factories)
    ]
    active = _runner_for(runner, jobs)
    counts_per_strategy = active.run(tasks, early_stop=early_stop)
    return [
        estimate_from_counts(
            counts,
            gamma,
            protocol=protocol.name,
            adversary=getattr(factory, "name", "adversary"),
        )
        for factory, counts in zip(factories, counts_per_strategy)
    ]


def assess_protocol(
    protocol,
    factories: Iterable[AdversaryFactory],
    gamma: PayoffVector,
    n_runs: int = 400,
    seed=0,
    input_sampler: Optional[InputSampler] = None,
    jobs: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
    early_stop: Optional[EarlyStopRule] = None,
    faults: Optional[EngineFaults] = None,
) -> ProtocolAssessment:
    """sup over the strategy space → a ProtocolAssessment (Definition 1)."""
    estimates = sweep_strategies(
        protocol,
        factories,
        gamma,
        n_runs,
        seed,
        input_sampler,
        jobs=jobs,
        runner=runner,
        early_stop=early_stop,
        faults=faults,
    )
    return assess(protocol.name, gamma, estimates)


def balance_profile(
    protocol,
    factories_per_t: dict,
    gamma: PayoffVector,
    n_runs: int = 400,
    seed=0,
    input_sampler: Optional[InputSampler] = None,
    jobs: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
    early_stop: Optional[EarlyStopRule] = None,
) -> BalanceProfile:
    """Measure the best t-adversary's utility for each t in 1..n−1.

    ``factories_per_t[t]`` is the list of t-corruption strategies to sweep.
    Every (t, strategy) batch is fanned out in a single runner call.
    ``input_sampler`` and ``early_stop`` pass through to the tasks/runner
    exactly as in every sibling estimator entry point.
    """
    n = protocol.n_parties
    tasks, keys = [], []
    for t in range(1, n):
        for idx, factory in enumerate(factories_per_t[t]):
            tasks.append(
                ExecutionTask(
                    protocol, factory, n_runs, ((seed, "t", t), idx), input_sampler
                )
            )
            keys.append((t, factory))
    active = _runner_for(runner, jobs)
    counts_list = active.run(tasks, early_stop=early_stop)
    estimates_per_t: dict = {}
    for (t, factory), counts in zip(keys, counts_list):
        estimates_per_t.setdefault(t, []).append(
            estimate_from_counts(
                counts,
                gamma,
                protocol=protocol.name,
                adversary=getattr(factory, "name", "adversary"),
            )
        )
    per_t = {t: best_utility(ests) for t, ests in estimates_per_t.items()}
    return BalanceProfile(
        protocol_name=protocol.name, n=n, gamma=gamma, per_t=per_t
    )
