"""The Theorem-3 simulator, executable (paper Appendix A).

The proof of Theorem 3 constructs a black-box straight-line simulator SA
for any adversary A attacking ΠOpt2SFE: it fakes the phase-1 share and
order coin without touching the ideal functionality, asks Fsfe⊥ only at the
moments the reconstruction forces it to, and maps A's behaviour onto the
(ask, abort) interface — provoking E01/E10/E11 exactly as the case analysis
says.

This module materialises SA as a *protocol*: :class:`IdealWorldOpt2Sfe`
looks like ΠOpt2SFE to the adversary (same hybrids, same wire format, same
rounds), but inside it is the simulator talking to Fsfe⊥.  Because our
adversaries are ordinary ITMs driven through the engine interface, the very
same strategy object can be run against the real protocol and against the
simulation, and the two outcome distributions compared — an executable
simulation-based security check.

Restricted to the swap function (the paper's own hard instance): there the
simulator can reconstruct the full encoded output vector from the corrupted
output component plus the corrupted input, which is what building the
consistent phase-2 share requires.  The corrupted party index is a harness
parameter (static corruptions, as in the proof's per-case analysis).
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional

from ..core.events import FairnessEvent, classify
from ..crypto import authenticated_sharing
from ..crypto.field import default_field
from ..crypto.mac import gen_mac_key, tag, verify
from ..crypto.prf import Rng
from ..engine.execution import run_execution
from ..engine.messages import ABORT, Inbox
from ..engine.party import OUTPUT_DEFAULT, PartyContext, PartyMachine
from ..engine.protocol import Protocol
from ..functionalities.base import AdversaryHandle, Functionality
from ..functionalities.priv_sfe import (
    ShareGenOutput,
    TwoPartyShareGen,
    _default_encode,
)
from ..functions.library import FunctionSpec
from ..protocols.opt_2sfe import Opt2SfeProtocol

_FIELD = default_field()


class _Coordinator:
    """Shared state between the simulator's two halves.

    Holds the faked sharing material, the corrupted party's extracted
    input, the ideal-functionality bookkeeping (asked? aborted?), and the
    honest party's pending ideal output.
    """

    def __init__(self, func: FunctionSpec, corrupted: int, rng: Rng):
        self.func = func
        self.corrupted = corrupted
        self.honest = 1 - corrupted
        self.rng = rng
        # Fake phase-1 material for the corrupted party.
        self.keys = {
            0: gen_mac_key(rng.fork("sim-key-0")),
            1: gen_mac_key(rng.fork("sim-key-1")),
        }
        self.fake_summand = _FIELD.random_element(rng.fork("sim-summand"))
        self.first_receiver = rng.fork("sim-coin").randrange(2)
        self.corrupted_input = None
        self.phase1_delivered = False
        self.phase1_aborted = False
        # Ideal-world bookkeeping (decides the fairness event).
        self.asked = False
        self.aborted = False
        self.honest_input = None
        self.honest_output: Optional[object] = None
        self.honest_kind: Optional[str] = None

    # -- the ideal functionality Fsfe⊥, inlined ------------------------------
    def _outputs(self, corrupted_input) -> tuple:
        inputs = [None, None]
        inputs[self.corrupted] = corrupted_input
        inputs[self.honest] = self.honest_input
        return self.func.outputs_for(tuple(inputs))

    def ask_corrupted_output(self):
        """SA asks Fsfe⊥ for the corrupted party's output (event bit i=1)."""
        self.asked = True
        return self._outputs(self.corrupted_input)[self.corrupted]

    def deliver_honest(self, corrupted_input=None, kind="real") -> None:
        """Fsfe⊥ delivers the honest output (no abort was sent)."""
        effective = (
            corrupted_input
            if corrupted_input is not None
            else self.corrupted_input
        )
        self.honest_output = self._outputs(effective)[self.honest]
        self.honest_kind = kind

    def abort_honest(self) -> None:
        """SA sends (abort): the honest party gets ⊥ (event bit j=0)."""
        self.aborted = True
        self.honest_output = ABORT
        self.honest_kind = "abort"

    # -- share fabrication -----------------------------------------------------
    def fake_share(self) -> authenticated_sharing.AuthenticatedShare:
        """The corrupted party's simulated share: uniform summand, a tag it
        cannot check (it is keyed to the honest party), and its own key."""
        return authenticated_sharing.AuthenticatedShare(
            index=self.corrupted + 1,
            summand=self.fake_summand,
            summand_tag=tag(self.fake_summand, self.keys[self.honest]),
            key=self.keys[self.corrupted],
        )

    def consistent_counter_share(self, y_corrupted) -> tuple:
        """The wire message SA fabricates so reconstruction yields y.

        Swap-specific step: from the corrupted output component and the
        corrupted input, the full output vector is determined."""
        outputs = [None, None]
        outputs[self.corrupted] = y_corrupted
        outputs[self.honest] = self.corrupted_input  # fswp: y_h = x_c
        encoded = _default_encode(tuple(outputs))
        payload = authenticated_sharing._pack(
            encoded,
            tag(encoded, self.keys[0]),
            tag(encoded, self.keys[1]),
        )
        counter_summand = _FIELD.sub(payload, self.fake_summand)
        return (
            counter_summand,
            tag(counter_summand, self.keys[self.corrupted]),
        )

    def wire_message_valid(self, payload) -> bool:
        """Did the adversary return the (only) valid share it was given?"""
        return (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == self.fake_summand
            and isinstance(payload[1], bytes)
            and verify(self.fake_summand, payload[1], self.keys[self.honest])
        )

    @property
    def ideal_event(self) -> FairnessEvent:
        """The event SA provoked at Fsfe⊥ (the paper's accounting)."""
        learned = self.asked
        honest = self.honest_output is not None and self.honest_kind != "abort"
        return FairnessEvent(f"{int(learned)}{int(honest)}")


class _SimulatedShareGen(Functionality):
    """The F^{f',⊥} the adversary sees — backed by fakery, not by f."""

    name = TwoPartyShareGen.name

    def __init__(self, coordinator: _Coordinator):
        self.coordinator = coordinator

    def invoke(
        self,
        inputs: Dict[int, object],
        adversary: AdversaryHandle,
        rng: Rng,
        n: int,
    ) -> Dict[int, object]:
        c = self.coordinator
        responses: Dict[int, object] = {}
        if c.corrupted not in inputs:
            # Refusal: the phase-1 substrate aborts for everyone; SA feeds
            # the default input and delivers (event E01).
            c.phase1_aborted = True
            c.deliver_honest(
                corrupted_input=c.func.default_inputs[c.corrupted],
                kind=OUTPUT_DEFAULT,
            )
            responses[c.honest] = ABORT
            return responses
        c.corrupted_input = inputs[c.corrupted]
        fake = ShareGenOutput(c.fake_share(), c.first_receiver)
        if adversary.query("request-outputs?"):
            adversary.notify("corrupted-outputs", {c.corrupted: fake})
            responses[c.corrupted] = fake
        if adversary.query("abort?"):
            c.phase1_aborted = True
            c.deliver_honest(
                corrupted_input=c.func.default_inputs[c.corrupted],
                kind=OUTPUT_DEFAULT,
            )
            responses[c.honest] = ABORT
            return responses
        c.phase1_delivered = True
        responses.setdefault(c.corrupted, fake)
        responses[c.honest] = "sim-placeholder"  # dummy party ignores it
        return responses


class _SimulatorMachine(PartyMachine):
    """The honest slot in the ideal world: dummy party + SA's wire half."""

    def __init__(self, index: int, n: int, coordinator: _Coordinator):
        super().__init__(index, n)
        self.coordinator = coordinator

    def on_round(self, round_no: int, inbox: Inbox, ctx: PartyContext) -> None:
        c = self.coordinator
        other = c.corrupted
        if round_no == 0:
            c.honest_input = self.input
            ctx.call(TwoPartyShareGen.name, "sim-input-marker")
            return
        if round_no == 1:
            if c.phase1_aborted or not c.phase1_delivered:
                # E01 branch: SA sent the default input; deliver locally.
                ctx.output(c.honest_output, OUTPUT_DEFAULT)
                return
            if c.first_receiver == other:
                # Reconstruction towards the corrupted party: SA asks Fsfe⊥
                # and fabricates the consistent counter-share.
                y_corrupted = c.ask_corrupted_output()
                ctx.send(other, c.consistent_counter_share(y_corrupted))
            return
        if round_no == 2:
            if c.first_receiver == self.index:
                payload = inbox.one_from_party(other)
                if c.wire_message_valid(payload):
                    # SA asks for the corrupted output (to build its own
                    # round-2 message) and lets Fsfe⊥ deliver: E11.
                    y_corrupted = c.ask_corrupted_output()
                    c.deliver_honest()
                    ctx.output(c.honest_output)
                    ctx.send(other, c.consistent_counter_share(y_corrupted))
                else:
                    # Invalid opening: SA substitutes the default input.
                    c.deliver_honest(
                        corrupted_input=c.func.default_inputs[other],
                        kind=OUTPUT_DEFAULT,
                    )
                    ctx.output(c.honest_output, OUTPUT_DEFAULT)
            return
        if round_no == 3:
            if c.first_receiver == other:
                payload = inbox.one_from_party(other)
                if c.wire_message_valid(payload):
                    c.deliver_honest()
                    ctx.output(c.honest_output)
                else:
                    # The corrupted side already holds y: abort Fsfe⊥.
                    c.abort_honest()
                    ctx.output_abort()
            return


class IdealWorldOpt2Sfe(Protocol):
    """ΠOpt2SFE's ideal world: SA + Fsfe⊥, engine-compatible.

    ``last_coordinator`` exposes the most recent execution's ideal-world
    bookkeeping (sequential runs), including the event SA provoked.
    """

    def __init__(self, func: FunctionSpec, corrupted: int):
        if func.n_parties != 2:
            raise ValueError("two-party simulation")
        if corrupted not in (0, 1):
            raise ValueError("corrupted must be 0 or 1")
        self.func = func
        self.corrupted = corrupted
        self.n_parties = 2
        self.name = f"ideal-opt-2sfe[{func.name}]"
        self.max_rounds = 4
        self.last_coordinator: Optional[_Coordinator] = None

    def build_functionalities(self, rng: Rng) -> Dict[str, Functionality]:
        # Called first in the Execution constructor: create this run's
        # coordinator here and let build_machines pick it up.
        coordinator = _Coordinator(self.func, self.corrupted, rng.fork("sim"))
        self.last_coordinator = coordinator
        return {TwoPartyShareGen.name: _SimulatedShareGen(coordinator)}

    def build_machines(self, rng: Rng) -> List[PartyMachine]:
        from ..protocols.opt_2sfe import Opt2SfeMachine

        coordinator = self.last_coordinator
        machines: List[PartyMachine] = [None, None]
        machines[coordinator.honest] = _SimulatorMachine(
            coordinator.honest, 2, coordinator
        )
        # The corrupted slot runs the genuine ΠOpt2SFE machine, so a
        # machine-driving adversary behaves byte-identically to the real
        # world (the adversary owns and drives it anyway).
        machines[self.corrupted] = Opt2SfeMachine(self.corrupted, 2, self.func)
        return machines


from ..functions.library import make_swap as _make_swap  # noqa: E402


# --------------------------------------------------------------------------
# The real-vs-ideal experiment
# --------------------------------------------------------------------------

def _canonical_outcome(result, func: FunctionSpec, corrupted: int) -> tuple:
    """An input-independent outcome summary for distribution comparison.

    (honest kind, honest status, adversary-claim status), where statuses
    are relative to the true outputs under the run's inputs — so runs with
    different sampled inputs remain comparable.
    """
    honest = 1 - corrupted
    true_outputs = func.outputs_for(result.inputs)
    defaulted = list(result.inputs)
    defaulted[corrupted] = func.default_inputs[corrupted]
    default_outputs = func.outputs_for(tuple(defaulted))

    rec = result.outputs[honest]
    if rec.is_abort:
        honest_status = "abort"
    elif rec.value == true_outputs[honest]:
        honest_status = "true"
    elif rec.value == default_outputs[honest]:
        honest_status = "default-eval"
    else:
        honest_status = "other"

    claim = result.adversary_claim
    if claim is None:
        claim_status = "none"
    elif claim == true_outputs[corrupted]:
        claim_status = "learned"
    else:
        claim_status = "wrong"
    return (rec.kind, honest_status, claim_status)


class _RealVsIdealTask:
    """Runtime task: paired real/ideal executions over a chunk of runs.

    The chunk partial is a mergeable ``(real, ideal, ideal_events)``
    Counter triple; per-run randomness is ``Rng(seed).fork(f"cmp-{k}")``
    exactly as the historical serial loop derived it, so any chunking of
    the run range reproduces the same executions.
    """

    def __init__(self, adversary_builder, corrupted, n_runs, seed, bits):
        self.adversary_builder = adversary_builder
        self.corrupted = corrupted
        self.n_runs = n_runs
        self.seed = seed
        self.bits = bits
        self.label = f"real-vs-ideal[corrupted={corrupted}]"

    def run_chunk(self, start: int, stop: int):
        func = _make_swap(self.bits)
        real_protocol = Opt2SfeProtocol(func)
        ideal_protocol = IdealWorldOpt2Sfe(func, self.corrupted)
        master = Rng(self.seed)
        real = Counter()
        ideal = Counter()
        ideal_events = Counter()
        for k in range(start, stop):
            rng = master.fork(f"cmp-{k}")
            inputs = func.sample_inputs(rng.fork("in"))
            r = run_execution(
                real_protocol, inputs, self.adversary_builder(), rng.fork("real")
            )
            real[_canonical_outcome(r, func, self.corrupted)] += 1

            i = run_execution(
                ideal_protocol, inputs, self.adversary_builder(), rng.fork("ideal")
            )
            ideal[_canonical_outcome(i, func, self.corrupted)] += 1
            ideal_events[ideal_protocol.last_coordinator.ideal_event] += 1
        return real, ideal, ideal_events


def opt2sfe_outcome_distributions(
    adversary_builder: Callable[[], object],
    corrupted: int,
    n_runs: int = 400,
    seed=0,
    bits: int = 16,
    jobs=None,
    runner=None,
):
    """Run one strategy against the real protocol and against SA's ideal
    world; return (real Counter, ideal Counter, ideal event Counter).

    ``jobs``/``runner`` select the batch backend (see ``repro.runtime``).
    """
    from ..runtime import resolve_runner

    task = _RealVsIdealTask(adversary_builder, corrupted, n_runs, seed, bits)
    active = runner if runner is not None else resolve_runner(jobs)
    real, ideal, ideal_events = active.run_one(task)
    return real, ideal, ideal_events
