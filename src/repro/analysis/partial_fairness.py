"""Utility-based fairness vs 1/p-security (paper §5, Appendix C).

Executable renditions of the section's results:

* **Theorem 23** — :func:`gk_realization_distance` builds the explicit
  ideal-world simulator for a GK stopping-rule adversary against the
  randomized-abort functionality Fsfe$ and measures the statistical
  distance between real and ideal outcome distributions (≈ 0 up to
  Monte-Carlo noise).
* **Lemma 25** — utility ≤ 1/p with ~γ = (0,0,1,0) together with the
  realization distance gives 1/p-security; :func:`gk_e10_probability`
  measures the utility side.
* **Lemma 26** — :func:`leaky_distinguisher_probabilities` runs the
  environments Z1/Z2 against the leaky protocol Π̃ and exhibits the
  real-vs-ideal gap (the real world has Pr[Z1=1] ≈ Pr[Z2=1], while any
  Fsfe$ simulator forces Pr[Z1=1] ≤ ¾·Pr[Z2=1]).
* **Lemma 27** — :func:`leaky_privacy_distance` implements the paper's
  privacy simulator (which legitimately extracts x1 by substituting
  x2' = 1) and shows the corrupted view is perfectly simulatable, i.e. Π̃
  *is* private in the [18] sense despite leaking the input.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Mapping, Optional, Tuple

from ..adversaries.gk_aborter import KnownOutputStopper, _GkStopperBase
from ..adversaries.leaky import LeakyInputExtractor
from ..core.events import FairnessEvent
from ..crypto.prf import Rng
from ..engine.execution import run_execution
from ..functionalities.share_gen import open_sealed
from ..protocols.gordon_katz import GordonKatzProtocol
from ..protocols.leaky_and import PROLOGUE_ROUNDS, LeakyAndProtocol


def statistical_distance(a: Mapping, b: Mapping) -> float:
    """Total variation distance between two empirical distributions.

    Accepts raw counters; normalises internally.
    """
    total_a = sum(a.values())
    total_b = sum(b.values())
    if total_a == 0 or total_b == 0:
        raise ValueError("empty distribution")
    support = set(a) | set(b)
    return 0.5 * sum(
        abs(a.get(k, 0) / total_a - b.get(k, 0) / total_b) for k in support
    )


# --------------------------------------------------------------------------
# Theorem 23: Fsfe$ realization via the explicit simulator
# --------------------------------------------------------------------------

def gk_real_outcomes(
    protocol: GordonKatzProtocol,
    stopper_builder: Callable[[], _GkStopperBase],
    inputs: tuple,
    n_runs: int,
    seed=0,
) -> Counter:
    """Real-world outcome distribution for a stopping-rule adversary.

    Outcome = (honest party's output, #values the adversary opened,
    last value the adversary opened).
    """
    master = Rng(seed)
    outcomes = Counter()
    for k in range(n_runs):
        rng = master.fork(f"real-{k}")
        adversary = stopper_builder()
        result = run_execution(protocol, inputs, adversary, rng)
        honest = next(iter(result.honest))
        honest_output = result.outputs[honest].value
        seen = tuple(adversary.observed)
        outcomes[
            (honest_output, len(seen), seen[-1] if seen else None)
        ] += 1
    return outcomes


def gk_ideal_outcomes(
    protocol: GordonKatzProtocol,
    stopper_builder: Callable[[], _GkStopperBase],
    inputs: tuple,
    n_runs: int,
    seed=0,
) -> Counter:
    """Ideal-world (Fsfe$ + simulator) outcome distribution.

    The simulator from Theorem 23's proof: it draws i* itself, feeds the
    adversary simulated stream values (fakes from the ShareGen
    distribution before i*, the true corrupted output from i* on — asking
    Fsfe$ only then), and on an abort strictly before i* replaces the
    honest output through the randomized-abort interface (a fresh draw
    from Y_honest); at or after i* the honest party receives the value its
    banked stream position dictates.
    """
    sharegen = protocol._template
    func = protocol.func
    outputs = func.outputs_for(inputs)
    master = Rng(seed)
    outcomes = Counter()
    mask = (1 << 64) - 1
    for k in range(n_runs):
        rng = master.fork(f"ideal-{k}")
        stopper = stopper_builder()
        corrupted = stopper.corrupt_index
        honest = 1 - corrupted
        i_star = sharegen._draw_i_star(rng.fork("i_star"))
        corrupted_sampler = sharegen.fake_samplers[corrupted]
        honest_sampler = sharegen.fake_samplers[honest]

        seen = []
        stopped_at: Optional[int] = None
        for j in range(sharegen.rounds):
            if j < i_star - 1:
                value = corrupted_sampler(inputs, rng.fork(f"cf-{j}")) & mask
            else:
                value = outputs[corrupted] & mask  # simulator asks Fsfe$
            seen.append(value)
            if stopper.should_stop(j, value):
                stopped_at = j
                break

        if stopped_at is None or stopped_at >= i_star - 1:
            # Completed, or aborted no earlier than i*: the honest party's
            # banked position decides.
            banked = (stopped_at - 1) if stopped_at is not None else None
            if banked is None or banked >= i_star - 1:
                honest_output = outputs[honest]
            else:
                honest_output = (
                    honest_sampler(inputs, rng.fork("replace")) & mask
                )
        else:
            # Aborted strictly before i*: randomized abort, no ask.
            honest_output = honest_sampler(inputs, rng.fork("replace")) & mask
        outcomes[
            (honest_output, len(seen), seen[-1] if seen else None)
        ] += 1
    return outcomes


def gk_realization_distance(
    protocol: GordonKatzProtocol,
    stopper_builder: Callable[[], _GkStopperBase],
    inputs: tuple,
    n_runs: int = 500,
    seed=0,
) -> float:
    """Statistical distance between real and simulated executions."""
    real = gk_real_outcomes(protocol, stopper_builder, inputs, n_runs, seed)
    ideal = gk_ideal_outcomes(
        protocol, stopper_builder, inputs, n_runs, (seed, "ideal")
    )
    return statistical_distance(real, ideal)


def gk_e10_probability(
    protocol: GordonKatzProtocol,
    stopper_builder: Callable[[], _GkStopperBase],
    inputs: tuple,
    n_runs: int = 500,
    seed=0,
) -> float:
    """Measured Pr[E10] for a stopping-rule adversary (the 1/p bound)."""
    master = Rng(seed)
    hits = 0
    for k in range(n_runs):
        rng = master.fork(f"e10-{k}")
        adversary = stopper_builder()
        result = run_execution(protocol, inputs, adversary, rng)
        event = protocol.classify_result(result)
        if event is FairnessEvent.E10:
            hits += 1
    return hits / n_runs


# --------------------------------------------------------------------------
# Lemma 26: the Z1/Z2 distinguishers against Π̃
# --------------------------------------------------------------------------

def leaky_distinguisher_probabilities(
    n_runs: int = 2000, seed=0
) -> Tuple[float, float]:
    """Measured (Pr[Z1 = 1], Pr[Z2 = 1]) in the real Π̃ execution.

    Both environments choose x1 uniformly, corrupt p2 with x2 = 0, and
    have it send the deviating 1-bit; Z1 outputs 1 when p1's input leaked
    correctly *and* z1 = 0, Z2 outputs 1 when any input bit leaked.
    """
    protocol = LeakyAndProtocol()
    master = Rng(seed)
    z1_hits = 0
    z2_hits = 0
    for k in range(n_runs):
        rng = master.fork(f"dist-{k}")
        x1 = rng.fork("x1").randrange(2)
        adversary = LeakyInputExtractor()
        result = run_execution(protocol, (x1, 0), adversary, rng.fork("exec"))
        z1_output = result.outputs[0].value
        leaked = adversary.extracted_input
        if leaked is not None:
            z2_hits += 1
            if leaked == x1 and z1_output == 0:
                z1_hits += 1
    return z1_hits / n_runs, z2_hits / n_runs


def leaky_ideal_bound_violated(
    p_z1: float, p_z2: float, tolerance: float
) -> bool:
    """Lemma 26's contradiction: any Fsfe$ simulator forces
    Pr[Z1=1] ≤ ¾·Pr[Z2=1]; the real world violates this."""
    return p_z1 > 0.75 * p_z2 + tolerance


# --------------------------------------------------------------------------
# Lemma 27: privacy of Π̃ via the explicit view simulator
# --------------------------------------------------------------------------

def leaky_real_views(n_runs: int = 1000, seed=0) -> Counter:
    """Corrupted p2's view distribution in the real (deviating) run.

    View summary = (x1, leaked-or-None, #stream values seen, stream
    constant-zero?), jointly with the environment's input choice.
    """
    protocol = LeakyAndProtocol()
    master = Rng(seed)
    views = Counter()
    for k in range(n_runs):
        rng = master.fork(f"view-{k}")
        x1 = rng.fork("x1").randrange(2)
        adversary = _ViewCollectingExtractor()
        run_execution(protocol, (x1, 0), adversary, rng.fork("exec"))
        views[
            (
                x1,
                adversary.extracted_input,
                len(adversary.stream_values),
                all(v == 0 for v in adversary.stream_values),
            )
        ] += 1
    return views


def leaky_simulated_views(n_runs: int = 1000, seed=0) -> Counter:
    """The Lemma-27 privacy simulator's view distribution.

    The simulator substitutes x2' = 1, legitimately obtaining
    x1 ∧ 1 = x1 from the functionality, then reproduces the leak coin and
    the (all-zero, since the real second stage runs on x2 = 0) stream with
    a freshly drawn i*.
    """
    protocol = LeakyAndProtocol()
    template = protocol.build_functionalities(Rng(b"probe"))["F_sharegen_gk"]
    master = Rng(seed)
    views = Counter()
    for k in range(n_runs):
        rng = master.fork(f"sim-{k}")
        x1 = rng.fork("x1").randrange(2)  # obtained via x2' = 1 from F
        leaked = x1 if rng.fork("coin").coin(0.25) else None
        # Stream: with x2 = 0 every value (fake or real) is 0, and the
        # honest p1 reveals the full schedule.
        rounds = template.rounds
        views[(x1, leaked, rounds, True)] += 1
    return views


def leaky_privacy_distance(n_runs: int = 1000, seed=0) -> float:
    """Statistical distance real-view vs simulated-view (≈ 0: private)."""
    real = leaky_real_views(n_runs, seed)
    simulated = leaky_simulated_views(n_runs, (seed, "sim"))
    return statistical_distance(real, simulated)


class _ViewCollectingExtractor(LeakyInputExtractor):
    """LeakyInputExtractor that also opens and records the GK stream.

    The peek happens in :meth:`should_abort` — i.e. *after* the corrupted
    machine was stepped this round, so its ShareGen payload is available
    from reveal index 0 on (rushing shows each token one round before the
    machine banks it).
    """

    def __init__(self):
        super().__init__()
        self.stream_values = []

    def should_abort(self, iface, contexts) -> bool:
        runner = self._runners.get(1)
        payload = (
            getattr(runner.machine, "payload", None) if runner else None
        )
        if payload is not None:
            reveal_index = iface.round - PROLOGUE_ROUNDS - 1
            if 0 <= reveal_index < payload.rounds:
                for message in iface.rushing_messages():
                    if message.receiver != 1:
                        continue
                    try:
                        value = open_sealed(
                            message.payload,
                            payload.incoming_pads[reveal_index],
                            payload.mac_key,
                            "b",
                        )
                    except ValueError:
                        continue
                    self.stream_values.append(value)
        return False
