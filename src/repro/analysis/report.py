"""Plain-text table rendering for benchmark output.

Benchmarks print rows of "paper claim vs measured value"; this module keeps
the formatting in one place so every experiment reports uniformly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def experiment_banner(exp_id: str, claim: str) -> str:
    bar = "=" * 72
    return f"{bar}\n{exp_id}: {claim}\n{bar}"


def check_row(
    label: str, paper_value: float, measured: float, tolerance: float
) -> List:
    """A standard paper-vs-measured row with a pass/fail verdict."""
    ok = abs(paper_value - measured) <= tolerance
    return [label, paper_value, measured, tolerance, "ok" if ok else "MISMATCH"]


def bound_row(
    label: str, bound: float, measured: float, tolerance: float, kind: str = "<="
) -> List:
    """A row checking measured against an upper/lower bound."""
    if kind == "<=":
        ok = measured <= bound + tolerance
    elif kind == ">=":
        ok = measured >= bound - tolerance
    else:
        raise ValueError("kind must be '<=' or '>='")
    return [label, f"{kind} {bound:.4f}", measured, tolerance, "ok" if ok else "VIOLATED"]
