"""Trade-off and sensitivity analysis across payoff vectors and corruption
budgets.

The fairness relation is parameterised by ~γ, and multi-party protocols
trade per-t utilities against each other (Π½GMW concedes *nothing extra*
to small coalitions but everything to large ones; ΠOptnSFE spreads the
concession).  These helpers chart those trade-offs:

* :func:`utility_curve` — measured u(Π, A_t) as a function of t;
* :func:`crossover` — the corruption budget at which one protocol stops
  being the better choice;
* :func:`gamma_ratio_sweep` — best-attack utilities as γ11/γ10 varies,
  normalising γ10 = 1 (the relation only depends on ratios after the
  γ01 = 0 shift).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..adversaries import LockWatchingAborter, fixed
from ..core.payoff import PayoffVector
from ..core.utility import UtilityEstimate, best_utility
from .estimator import estimate_utility, sweep_strategies


@dataclass(frozen=True)
class UtilityCurve:
    """u(Π, A_t) for t = 1..n−1, at a fixed payoff vector."""

    protocol_name: str
    gamma: PayoffVector
    points: Dict[int, UtilityEstimate]

    def value(self, t: int) -> float:
        return self.points[t].mean

    def as_rows(self) -> List[list]:
        return [
            [t, self.points[t].mean, self.points[t].adversary]
            for t in sorted(self.points)
        ]


def utility_curve(
    protocol,
    gamma: PayoffVector,
    n_runs: int = 300,
    seed=0,
    strategies_per_t: Optional[Dict[int, list]] = None,
    jobs=None,
    runner=None,
) -> UtilityCurve:
    """Measure the per-t best-attack curve of a protocol.

    All (t, strategy) batches are fanned out through the batch runtime in
    a single call; ``jobs``/``runner`` select the backend.
    """
    from ..core.utility import estimate_from_counts
    from ..runtime import ExecutionTask, resolve_runner

    n = protocol.n_parties
    tasks, keys = [], []
    for t in range(1, n):
        factories = (
            strategies_per_t[t]
            if strategies_per_t is not None
            else [
                fixed(
                    f"lock-watch-t{t}",
                    lambda t=t: LockWatchingAborter(set(range(t))),
                )
            ]
        )
        for idx, factory in enumerate(factories):
            tasks.append(
                ExecutionTask(protocol, factory, n_runs, ((seed, t), idx))
            )
            keys.append((t, factory))
    active = runner if runner is not None else resolve_runner(jobs)
    counts_list = active.run(tasks)
    estimates_per_t: Dict[int, list] = {}
    for (t, factory), counts in zip(keys, counts_list):
        estimates_per_t.setdefault(t, []).append(
            estimate_from_counts(
                counts,
                gamma,
                protocol=protocol.name,
                adversary=getattr(factory, "name", "adversary"),
            )
        )
    points = {t: best_utility(ests) for t, ests in estimates_per_t.items()}
    return UtilityCurve(protocol.name, gamma, points)


def crossover(curve_a: UtilityCurve, curve_b: UtilityCurve) -> Optional[int]:
    """Smallest t at which protocol A stops being at least as good as B.

    "Good" for the honest parties means a *lower* attacker utility.
    Returns None when A is at least as good everywhere.
    """
    if set(curve_a.points) != set(curve_b.points):
        raise ValueError("curves cover different corruption budgets")
    for t in sorted(curve_a.points):
        if curve_a.value(t) > curve_b.value(t):
            return t
    return None


def dominates_everywhere(
    curve_a: UtilityCurve, curve_b: UtilityCurve, tol: float = 0.0
) -> bool:
    """Is A at least as fair as B at *every* corruption budget?"""
    return all(
        curve_a.value(t) <= curve_b.value(t) + tol
        for t in sorted(curve_a.points)
    )


def gamma_ratio_sweep(
    protocol_builder: Callable[[], object],
    strategies,
    ratios: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.9),
    n_runs: int = 300,
    seed=0,
    jobs=None,
    runner=None,
) -> List[tuple]:
    """Best-attack utility as a function of the ratio γ11/γ10 (γ10 = 1).

    Returns [(ratio, sup utility)].  For ΠOpt2SFE the curve is the line
    (1 + ratio)/2 — the Theorem-3 bound traced across Γfair.
    """
    from ..runtime import resolve_runner

    active = runner if runner is not None else resolve_runner(jobs)
    results = []
    for ratio in ratios:
        if not 0.0 <= ratio < 1.0:
            raise ValueError("γ11/γ10 must be in [0, 1) inside Γfair")
        gamma = PayoffVector(0.0, 0.0, 1.0, ratio)
        protocol = protocol_builder()
        estimates = sweep_strategies(
            protocol, strategies, gamma, n_runs, seed=(seed, ratio), runner=active
        )
        results.append((ratio, best_utility(estimates).mean))
    return results


def expected_attacker_advantage(
    curve: UtilityCurve, corruption_budget_distribution: Dict[int, float]
) -> float:
    """Average attacker utility under a distribution over budgets t.

    A deployment-planning helper: given beliefs about how many parties an
    attacker can corrupt, what does it expect to extract from Π?
    """
    total = sum(corruption_budget_distribution.values())
    if not 0.999 <= total <= 1.001:
        raise ValueError("budget distribution must sum to 1")
    return sum(
        curve.value(t) * p for t, p in corruption_budget_distribution.items()
    )
