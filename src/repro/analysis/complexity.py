"""Protocol cost measurement: rounds, messages, and hybrid calls.

Fairness is bought with rounds — that is the paper's central trade-off
(ΠOpt2SFE is optimal *and* reconstruction-round-optimal; the Gordon–Katz
protocols push unfairness to 1/p at O(p·|Y|) rounds).  This module
measures the cost side so the frontier can be charted next to the utility
side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..adversaries.base import PassiveAdversary
from ..crypto.prf import Rng
from ..engine.execution import run_execution


@dataclass(frozen=True)
class ProtocolCost:
    """Average honest-execution costs of a protocol."""

    protocol_name: str
    rounds: float
    point_to_point_messages: float
    broadcasts: float
    functionality_responses: float

    @property
    def total_messages(self) -> float:
        return (
            self.point_to_point_messages
            + self.broadcasts
            + self.functionality_responses
        )


def measure_cost(protocol, n_runs: int = 20, seed=0) -> ProtocolCost:
    """Average costs over honest executions with sampled inputs."""
    if n_runs <= 0:
        raise ValueError("need at least one run")
    master = Rng(seed)
    rounds = p2p = broadcast = func = 0
    for k in range(n_runs):
        rng = master.fork(f"cost-{k}")
        inputs = protocol.func.sample_inputs(rng.fork("in"))
        result = run_execution(
            protocol, inputs, PassiveAdversary(), rng.fork("x")
        )
        rounds += result.rounds_used
        for message in result.transcript:
            if isinstance(message.sender, str):
                func += 1
            elif message.broadcast:
                broadcast += 1
            else:
                p2p += 1
    return ProtocolCost(
        protocol_name=protocol.name,
        rounds=rounds / n_runs,
        point_to_point_messages=p2p / n_runs,
        broadcasts=broadcast / n_runs,
        functionality_responses=func / n_runs,
    )


@dataclass(frozen=True)
class FrontierPoint:
    """One protocol's position on the fairness-vs-cost frontier."""

    protocol_name: str
    utility: float  # best-attack utility (lower = fairer)
    rounds: float
    total_messages: float


def fairness_cost_frontier(
    entries,
    gamma,
    n_runs_utility: int = 300,
    n_runs_cost: int = 20,
    seed=0,
) -> list:
    """Chart protocols as (utility, rounds, messages) frontier points.

    ``entries`` is a list of (protocol, adversary_factories) pairs.
    """
    from ..core.utility import best_utility
    from .estimator import sweep_strategies

    points = []
    for protocol, factories in entries:
        estimates = sweep_strategies(
            protocol, factories, gamma, n_runs_utility, seed=(seed, protocol.name)
        )
        cost = measure_cost(protocol, n_runs_cost, seed=(seed, "cost"))
        points.append(
            FrontierPoint(
                protocol_name=protocol.name,
                utility=best_utility(estimates).mean,
                rounds=cost.rounds,
                total_messages=cost.total_messages,
            )
        )
    return sorted(points, key=lambda p: (p.utility, p.rounds))


def pareto_optimal(points) -> list:
    """Frontier points not dominated in (utility, rounds) by any other."""
    result = []
    for p in points:
        dominated = any(
            (q.utility <= p.utility and q.rounds < p.rounds)
            or (q.utility < p.utility and q.rounds <= p.rounds)
            for q in points
            if q is not p
        )
        if not dominated:
            result.append(p)
    return result
