"""Fairness partial-order construction over a set of assessed protocols.

Builds the ⪯γ relation (Definition 1) on measured data, identifies the
maximal (optimally fair) elements within the assessed universe, and derives
the Hasse-diagram edges for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.fairness import Comparison, ProtocolAssessment, compare


@dataclass
class FairnessOrder:
    """The measured ⪯γ partial order over a protocol universe."""

    assessments: List[ProtocolAssessment]
    tolerance: float = 0.0
    relations: Dict[Tuple[str, str], Comparison] = field(default_factory=dict)

    def __post_init__(self):
        names = [a.protocol_name for a in self.assessments]
        if len(set(names)) != len(names):
            raise ValueError("duplicate protocol names in assessment set")
        for a in self.assessments:
            for b in self.assessments:
                if a.protocol_name != b.protocol_name:
                    self.relations[(a.protocol_name, b.protocol_name)] = (
                        compare(a, b, self.tolerance)
                    )

    def _by_name(self, name: str) -> ProtocolAssessment:
        for a in self.assessments:
            if a.protocol_name == name:
                return a
        raise KeyError(name)

    def at_least_as_fair(self, a: str, b: str) -> bool:
        rel = self.relations[(a, b)]
        return rel in (Comparison.FAIRER, Comparison.EQUAL)

    def strictly_fairer(self, a: str, b: str) -> bool:
        return self.relations[(a, b)] is Comparison.FAIRER

    def maximal_elements(self) -> List[str]:
        """Protocols that are at least as fair as every other — the
        optimally fair elements of the assessed universe (Definition 2)."""
        result = []
        for a in self.assessments:
            if all(
                self.at_least_as_fair(a.protocol_name, b.protocol_name)
                for b in self.assessments
                if b.protocol_name != a.protocol_name
            ):
                result.append(a.protocol_name)
        return result

    def equivalence_classes(self) -> List[List[str]]:
        """Groups of equally fair protocols, fairest class first."""
        remaining = sorted(self.assessments, key=lambda a: a.utility)
        classes: List[List[str]] = []
        for a in remaining:
            placed = False
            for cls in classes:
                rep = self._by_name(cls[0])
                if (
                    self.relations[(a.protocol_name, rep.protocol_name)]
                    is Comparison.EQUAL
                ):
                    cls.append(a.protocol_name)
                    placed = True
                    break
            if not placed:
                classes.append([a.protocol_name])
        return classes

    def hasse_edges(self) -> List[Tuple[str, str]]:
        """Covering pairs (a, b): a strictly fairer than b with nothing
        strictly between."""
        classes = self.equivalence_classes()
        edges = []
        for i, upper in enumerate(classes):
            if i + 1 < len(classes):
                lower = classes[i + 1]
                edges.append((upper[0], lower[0]))
        return edges

    def render(self) -> str:
        """A text report of the measured order."""
        lines = ["Fairness partial order (fairest first):"]
        for rank, cls in enumerate(self.equivalence_classes(), start=1):
            members = ", ".join(sorted(cls))
            utility = self._by_name(cls[0]).utility
            lines.append(f"  {rank}. [{members}]  best-attack utility ≈ {utility:.4f}")
        maximal = ", ".join(sorted(self.maximal_elements())) or "(none)"
        lines.append(f"  optimally fair within this universe: {maximal}")
        return "\n".join(lines)


def build_order(
    assessments: Sequence[ProtocolAssessment], tolerance: float = 0.0
) -> FairnessOrder:
    return FairnessOrder(list(assessments), tolerance)
