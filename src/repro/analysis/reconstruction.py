"""Reconstruction-round measurement (Definition 8, Lemmas 9-10).

A protocol has ℓ reconstruction rounds when an abort in any of its first
m − ℓ rounds still leaves the outcome fair (it implements the *fair*
functionality against such adversaries), while an abort in round m − ℓ + 1
can already produce unfairness.  Operationally we sweep the abort round r
and every single-party corruption, estimate Pr[E10], and count the rounds
from which an abort is unfair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..adversaries.aborting import AbortAtRound
from ..adversaries.search import AdversaryFactory, fixed
from ..core.events import FairnessEvent, classify
from ..crypto.prf import Rng
from ..engine.execution import run_execution
from ..adversaries.base import PassiveAdversary


@dataclass(frozen=True)
class ReconstructionMeasurement:
    """Per-abort-round unfairness probabilities and the derived count."""

    protocol_name: str
    honest_rounds: int
    unfair_probability: Dict[int, float]  # abort round -> max Pr[E10]
    threshold: float

    @property
    def unfair_rounds(self) -> List[int]:
        return sorted(
            r
            for r, p in self.unfair_probability.items()
            if p >= self.threshold
        )

    @property
    def reconstruction_rounds(self) -> int:
        """The size of the unfair-abort window (Definition 8's ℓ)."""
        return len(self.unfair_rounds)


def honest_round_count(protocol, seed=0) -> int:
    """Rounds used by an all-honest execution."""
    rng = Rng((seed, "honest"))
    inputs = protocol.func.sample_inputs(rng.fork("inputs"))
    result = run_execution(
        protocol, inputs, PassiveAdversary(), rng.fork("exec")
    )
    return result.rounds_used


@dataclass
class _AbortSweepTask:
    """Runtime task: one (abort round, corrupted party) cell of the sweep.

    The chunk partial is the plain count of E10 hits (ints merge by
    addition); run ``k`` draws from ``Rng(seed).fork(f"rec-{r}-{party}-{k}")``
    exactly as the historical serial triple loop did.
    """

    protocol: object
    r: int
    party: int
    n_runs: int
    seed: object

    @property
    def label(self) -> str:
        return f"abort@r{self.r}[party {self.party}]"

    def run_chunk(self, start: int, stop: int) -> int:
        master = Rng(self.seed)
        hits = 0
        for k in range(start, stop):
            rng = master.fork(f"rec-{self.r}-{self.party}-{k}")
            inputs = self.protocol.func.sample_inputs(rng.fork("inputs"))
            adversary = AbortAtRound({self.party}, self.r)
            result = run_execution(
                self.protocol, inputs, adversary, rng.fork("exec")
            )
            event = self.protocol.classify_result(result)
            if event is None:
                event = classify(result, self.protocol.func)
            if event is FairnessEvent.E10:
                hits += 1
        return hits


def measure_reconstruction_rounds(
    protocol,
    n_runs: int = 200,
    seed=0,
    threshold: float = 0.1,
    jobs=None,
    runner=None,
) -> ReconstructionMeasurement:
    """Sweep abort rounds x single corruptions, measuring Pr[E10].

    The (round × party) grid is fanned out through the batch runtime as
    one batch; ``jobs``/``runner`` select the backend.
    """
    from ..runtime import resolve_runner

    m = honest_round_count(protocol, seed)
    tasks = [
        _AbortSweepTask(protocol, r, party, n_runs, seed)
        for r in range(m)
        for party in range(protocol.n_parties)
    ]
    active = runner if runner is not None else resolve_runner(jobs)
    hit_counts = active.run(tasks) if tasks else []
    per_round: Dict[int, float] = {}
    for task, hits in zip(tasks, hit_counts):
        rate = hits / n_runs
        per_round[task.r] = max(per_round.get(task.r, 0.0), rate)
    return ReconstructionMeasurement(
        protocol_name=protocol.name,
        honest_rounds=m,
        unfair_probability=per_round,
        threshold=threshold,
    )
