"""JSON export of measurement artefacts.

Serialises the analysis layer's result objects — utility estimates,
protocol assessments, balance profiles, fairness orders, attack games —
into plain dictionaries (and files) so downstream tooling can consume runs
without importing the library.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..core.attack_game import AttackGame
from ..core.balance import BalanceProfile
from ..core.fairness import ProtocolAssessment
from ..core.payoff import PayoffVector
from ..core.utility import UtilityEstimate
from ..engine.faults import EngineFaults
from ..runtime import ChunkStats, RunStats
from ..verify.claims import Claim, Measurement
from ..verify.checker import ClaimCheck, VerificationReport
from .comparison import FairnessOrder
from .fault_sensitivity import FaultSensitivityCurve, FaultSensitivityPoint
from .reconstruction import ReconstructionMeasurement


def gamma_to_dict(gamma: PayoffVector) -> dict:
    return {
        "gamma00": gamma.gamma00,
        "gamma01": gamma.gamma01,
        "gamma10": gamma.gamma10,
        "gamma11": gamma.gamma11,
    }


def estimate_to_dict(estimate: UtilityEstimate) -> dict:
    return {
        "protocol": estimate.protocol,
        "adversary": estimate.adversary,
        "mean": estimate.mean,
        "ci_low": estimate.ci_low,
        "ci_high": estimate.ci_high,
        "n_runs": estimate.n_runs,
        "cost_mean": estimate.cost_mean,
        "events": {
            e.name: p for e, p in estimate.event_distribution.items() if p
        },
    }


def assessment_to_dict(assessment: ProtocolAssessment) -> dict:
    return {
        "protocol": assessment.protocol_name,
        "gamma": gamma_to_dict(assessment.gamma),
        "best_attack": estimate_to_dict(assessment.best_attack),
        "utility": assessment.utility,
    }


def profile_to_dict(profile: BalanceProfile) -> dict:
    return {
        "protocol": profile.protocol_name,
        "n": profile.n,
        "gamma": gamma_to_dict(profile.gamma),
        "per_t": {
            str(t): estimate_to_dict(est) for t, est in profile.per_t.items()
        },
        "utility_sum": profile.utility_sum,
    }


def order_to_dict(order: FairnessOrder) -> dict:
    return {
        "tolerance": order.tolerance,
        "assessments": [assessment_to_dict(a) for a in order.assessments],
        "equivalence_classes": order.equivalence_classes(),
        "maximal_elements": order.maximal_elements(),
        "hasse_edges": [list(edge) for edge in order.hasse_edges()],
    }


def game_to_dict(game: AttackGame) -> dict:
    return {
        "gamma": gamma_to_dict(game.gamma),
        "matrix": {p: dict(row) for p, row in game.matrix.items()},
        "value": game.game_value(),
        "minimax_protocols": game.minimax_protocols(),
        "best_responses": {
            p: list(game.best_response(p)) for p in game.matrix
        },
    }


def reconstruction_to_dict(m: ReconstructionMeasurement) -> dict:
    return {
        "protocol": m.protocol_name,
        "honest_rounds": m.honest_rounds,
        "threshold": m.threshold,
        "unfair_probability": {
            str(r): p for r, p in m.unfair_probability.items()
        },
        "unfair_rounds": m.unfair_rounds,
        "reconstruction_rounds": m.reconstruction_rounds,
    }


def chunk_stats_to_dict(chunk: ChunkStats) -> dict:
    return {
        "task_index": chunk.task_index,
        "start": chunk.start,
        "stop": chunk.stop,
        "attempts": chunk.attempts,
        "outcome": chunk.outcome,
        "backend": chunk.backend,
        "wall_clock_s": chunk.wall_clock_s,
        "setup_s": chunk.setup_s,
        "execute_s": chunk.execute_s,
        "classify_s": chunk.classify_s,
        "cache": chunk.cache,
        "engine": chunk.engine,
        "worker": chunk.worker,
        "predicted_cost": chunk.predicted_cost,
    }


def run_stats_to_dict(stats: RunStats) -> dict:
    return {
        "backend": stats.backend,
        "jobs": stats.jobs,
        "n_tasks": stats.n_tasks,
        "n_chunks": stats.n_chunks,
        "requested": stats.requested,
        "executions": stats.executions,
        "wall_clock_s": stats.wall_clock_s,
        "executions_per_sec": stats.executions_per_sec,
        "stopped_early": stats.stopped_early,
        "failed_attempts": stats.failed_attempts,
        "retries": stats.retries,
        "timeouts": stats.timeouts,
        "serial_replays": stats.serial_replays,
        "cancelled_chunks": stats.cancelled_chunks,
        "worker_deaths": stats.worker_deaths,
        "journal_replayed_chunks": stats.journal_replayed_chunks,
        "journal_appended_chunks": stats.journal_appended_chunks,
        "journal_corrupt_records": stats.journal_corrupt_records,
        "journal_stale_records": stats.journal_stale_records,
        "cache_corrupt_entries": stats.cache_corrupt_entries,
        "cache_write_errors": stats.cache_write_errors,
        "degraded": stats.degraded,
        "setup_s": stats.setup_s,
        "execute_s": stats.execute_s,
        "classify_s": stats.classify_s,
        "memo_hits": stats.memo_hits,
        "memo_misses": stats.memo_misses,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "cache_stores": stats.cache_stores,
        "execution_backend": stats.execution_backend,
        "vectorized_runs": stats.vectorized_runs,
        "schedule": stats.schedule,
        "service_dedup_hits": stats.service_dedup_hits,
        "service_rate_limited": stats.service_rate_limited,
        "chunks": [chunk_stats_to_dict(c) for c in stats.chunks],
    }


def engine_faults_to_dict(faults: EngineFaults) -> dict:
    return faults.to_dict()


def fault_point_to_dict(point: FaultSensitivityPoint) -> dict:
    return {
        "loss": point.loss,
        "crash_rate": point.crash_rate,
        "utility": point.utility,
        "hung_fraction": point.hung_fraction,
        "best": estimate_to_dict(point.estimate),
        "estimates": [estimate_to_dict(e) for e in point.estimates],
        "faults": (
            engine_faults_to_dict(point.faults)
            if point.faults is not None
            else {}
        ),
    }


def fault_curve_to_dict(curve: FaultSensitivityCurve) -> dict:
    return {
        "protocol": curve.protocol_name,
        "gamma": gamma_to_dict(curve.gamma),
        "n_runs": curve.n_runs,
        "seed": repr(curve.seed),
        "fault_seed": repr(curve.fault_seed),
        "points": [
            dict(
                fault_point_to_dict(p),
                erosion=curve.erosion(p),
            )
            for p in curve.points
        ],
    }


def claim_to_dict(claim: Claim) -> dict:
    return {
        "claim_id": claim.claim_id,
        "experiment": claim.experiment,
        "paper_ref": claim.paper_ref,
        "statement": claim.statement,
        "kind": claim.kind.value,
        "base_runs": claim.base_runs,
        "tolerance_policy": {
            "slack": claim.tolerance.slack,
            "z": claim.tolerance.z,
            "spread": claim.tolerance.spread,
        },
    }


def measurement_to_dict(m: Measurement) -> dict:
    return {
        "value": m.value,
        "n_runs": m.n_runs,
        "successes": m.successes,
        "spread": m.spread,
        "ci_low": m.ci_low,
        "ci_high": m.ci_high,
        "detail": m.detail,
    }


def claim_check_to_dict(check: ClaimCheck) -> dict:
    """One claim's verdict with its replay metadata.

    Everything outside the ``timing`` key is a pure function of
    ``(registry, master seed, budget)`` — byte-stable across backends,
    warm caches, and fault replay.  Wall clocks and per-batch RunStats
    live under ``timing`` so replay comparisons can strip them.
    """
    return {
        "claim": claim_to_dict(check.claim),
        "analytic": check.analytic_value,
        "measurement": measurement_to_dict(check.measurement),
        "verdict": check.verdict.value,
        "tolerance": check.tolerance,
        "ci_low": check.ci_low,
        "ci_high": check.ci_high,
        "margin": check.margin,
        "seed": repr(check.seed),
        "chunk_spans": [list(span) for span in check.chunk_spans],
        "timing": {
            "wall_clock_s": check.wall_clock_s,
            "run_stats": [run_stats_to_dict(s) for s in check.run_stats],
        },
    }


def report_to_dict(report: VerificationReport) -> dict:
    return {
        "budget": report.budget,
        "scale": report.scale,
        "master_seed": repr(report.master_seed),
        "summary": report.counts(),
        "exit_code": report.exit_code,
        "checks": [claim_check_to_dict(c) for c in report.checks],
        "timing": {
            "wall_clock_s": report.wall_clock_s,
            "backend": report.runner_backend,
            "jobs": report.jobs,
            "journal": report.journal_summary(),
        },
    }


def deterministic_payload(payload):
    """Strip every ``timing`` and ``chunk_spans`` subtree from an artefact.

    What remains of a :func:`report_to_dict` export is the
    backend-invariant portion: re-running ``repro verify`` with the
    embedded seeds must reproduce it byte-for-byte on any backend (the
    bit-identity the verify tests and the EXPERIMENTS.md tables rely
    on).  ``chunk_spans`` are replay metadata but describe the *chunk
    layout* the scheduler happened to pick — serial runners coalesce a
    task into one span where pools split it — so they are deterministic
    per backend, not across backends.
    """
    if isinstance(payload, dict):
        return {
            k: deterministic_payload(v)
            for k, v in payload.items()
            if k not in ("timing", "chunk_spans")
        }
    if isinstance(payload, list):
        return [deterministic_payload(v) for v in payload]
    return payload


_EXPORTERS = {
    VerificationReport: report_to_dict,
    ClaimCheck: claim_check_to_dict,
    Claim: claim_to_dict,
    Measurement: measurement_to_dict,
    FaultSensitivityCurve: fault_curve_to_dict,
    FaultSensitivityPoint: fault_point_to_dict,
    EngineFaults: engine_faults_to_dict,
    UtilityEstimate: estimate_to_dict,
    ProtocolAssessment: assessment_to_dict,
    BalanceProfile: profile_to_dict,
    FairnessOrder: order_to_dict,
    AttackGame: game_to_dict,
    ReconstructionMeasurement: reconstruction_to_dict,
    PayoffVector: gamma_to_dict,
    RunStats: run_stats_to_dict,
    ChunkStats: chunk_stats_to_dict,
}


def to_dict(artefact) -> dict:
    """Dispatch to the right exporter for any supported artefact."""
    for cls, exporter in _EXPORTERS.items():
        if isinstance(artefact, cls):
            return exporter(artefact)
    raise TypeError(f"no JSON exporter for {type(artefact).__name__}")


def save_json(artefact, path: Union[str, Path]) -> Path:
    """Serialise one artefact (or a list of them) to a JSON file."""
    path = Path(path)
    if isinstance(artefact, (list, tuple)):
        payload = [to_dict(a) for a in artefact]
    else:
        payload = to_dict(artefact)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path
