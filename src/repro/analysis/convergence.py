"""Estimator convergence diagnostics.

Every fairness claim in this library is a Monte-Carlo estimate; choosing
the run budget is a precision decision.  These helpers chart how an
estimate and its confidence interval tighten with the budget, and pick the
budget needed to separate two analytic values — used by the benchmarks'
tolerance choices and available to users calibrating their own sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..core.payoff import PayoffVector
from .estimator import estimate_utility


@dataclass(frozen=True)
class ConvergencePoint:
    n_runs: int
    mean: float
    ci_width: float


def convergence_curve(
    protocol,
    adversary_factory,
    gamma: PayoffVector,
    budgets: Sequence[int] = (50, 100, 200, 400, 800),
    seed=0,
    jobs=None,
    runner=None,
) -> List[ConvergencePoint]:
    """Estimate at increasing budgets; CI width should shrink ~1/√n.

    ``jobs``/``runner`` select the batch backend (see ``repro.runtime``).
    """
    from ..runtime import resolve_runner

    active = runner if runner is not None else resolve_runner(jobs)
    points = []
    for n_runs in budgets:
        est = estimate_utility(
            protocol,
            adversary_factory,
            gamma,
            n_runs,
            seed=(seed, n_runs),
            runner=active,
        )
        points.append(
            ConvergencePoint(
                n_runs=n_runs,
                mean=est.mean,
                ci_width=est.ci_high - est.ci_low,
            )
        )
    return points


def runs_to_separate(
    value_a: float,
    value_b: float,
    payoff_spread: float = 1.0,
    z: float = 3.0,
) -> int:
    """Smallest run budget that statistically separates two utilities.

    Conservative normal approximation: the tolerance z·spread/(2·√n) must
    fall below half the gap between the analytic values.
    """
    gap = abs(value_a - value_b)
    if gap <= 0:
        raise ValueError("the values coincide; no budget separates them")
    half_gap = gap / 2.0
    n = (z * payoff_spread / (2.0 * half_gap)) ** 2
    return max(1, math.ceil(n))


def is_converging(points: Sequence[ConvergencePoint], factor: float = 1.5) -> bool:
    """Sanity check: CI width at the largest budget is at least ``factor``
    times tighter than at the smallest (≈ √(budget ratio) expected)."""
    if len(points) < 2:
        raise ValueError("need at least two budgets")
    first, last = points[0], points[-1]
    if first.ci_width == 0:
        return True
    return first.ci_width / max(last.ci_width, 1e-12) >= factor
