"""Symbolic per-protocol cost models: closed forms for transcript costs.

``analysis.complexity`` *measures* what a protocol spends — rounds,
point-to-point messages, broadcasts, functionality responses — by
running honest executions and counting transcript entries.  This module
states the same quantities as **closed forms**: per-protocol sympy
expressions in the symbols of the paper's cost analysis (party count
``n``, release bit-length ``B``, the Gordon–Katz reveal-round parameter
``R`` = ``gk_round_count(p, m)``), bound to a concrete protocol instance
by :func:`evaluate`.

The models are used two ways:

* **verification** — claim family E21 asserts that
  :func:`~repro.analysis.complexity.measure_cost` matches these
  predictions *exactly* (equality, zero tolerance): the engine's honest
  executions spend precisely the rounds and messages the paper's
  protocol descriptions say they do, and

* **scheduling** — the batch runtime's cost-aware chunk planner
  (``--schedule cost``) uses :attr:`PredictedCost.weight` as a per-run
  cost proxy, sizing chunks so predicted per-chunk cost is equalized
  across heterogeneous sweeps and dispatching the most expensive chunks
  first (LPT).

sympy is a guarded dependency, exactly like numpy for the vectorized
backend: when it is installed the closed forms are genuine sympy
expressions (inspectable, printable, substitutable); when it is absent
the same formulas evaluate through plain integer arithmetic, so
:func:`evaluate` — and therefore the E21 claims and the scheduler —
work identically either way.  Each formula is written once, as a Python
callable that accepts either ints or sympy symbols.

Honest-execution counting semantics (``measure_cost``): a transcript
entry with a string sender is a functionality response, one with the
broadcast flag is a single broadcast (however many parties receive it),
anything else is one point-to-point message.  ``rounds_used`` is the
engine's round count through the round in which every honest party
produced output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

try:  # pragma: no cover - exercised implicitly by the fallback tests
    import sympy

    HAVE_SYMPY = True
except ImportError:  # pragma: no cover
    sympy = None
    HAVE_SYMPY = False

#: Symbol glossary (docs/architecture.md "Cost models and scheduling").
SYMBOLS: Dict[str, str] = {
    "n": "number of parties",
    "B": "gradual-release bit length (RELEASE_BITS)",
    "R": "Gordon-Katz reveal rounds: 20*p*|Y| (domain variant) or "
         "20*p^2*|Z| (range variant) -- analysis.analytic.gk_round_count",
    "p": "Gordon-Katz 1/p-unfairness parameter",
    "m": "codomain size |Y| (domain variant) / range size |Z| (range)",
}


@dataclass(frozen=True)
class PredictedCost:
    """A protocol's predicted per-honest-execution transcript costs.

    Field-for-field comparable with
    :class:`~repro.analysis.complexity.ProtocolCost` (the measured
    side); all values are exact integers — honest executions are
    deterministic in these quantities, whatever the inputs.
    """

    protocol_name: str
    rounds: int
    point_to_point_messages: int
    broadcasts: int
    functionality_responses: int

    @property
    def total_messages(self) -> int:
        return (
            self.point_to_point_messages
            + self.broadcasts
            + self.functionality_responses
        )

    @property
    def weight(self) -> float:
        """Scalar per-run cost proxy for the cost-aware scheduler.

        Rounds plus total transcript traffic: both engine-loop
        iterations and per-message bookkeeping cost wall-clock, and the
        sum tracks the measured per-run times across the protocol zoo
        well enough to equalize chunk costs (the scheduler only needs
        relative magnitudes, not milliseconds).
        """
        return float(self.rounds + self.total_messages)


@dataclass(frozen=True)
class CostModel:
    """One protocol family's closed forms plus its symbol binder.

    The four formula callables are polynomial in their parameters and
    accept ints *or* sympy symbols — call them with symbols (see
    :func:`symbolic`) to get the closed-form expression, with the
    bound integers (see :func:`evaluate`) to get a prediction.
    ``bind`` extracts the parameter values from a live protocol
    instance (e.g. ``R`` from ``GordonKatzProtocol.reveal_rounds``).
    """

    family: str
    params: Tuple[str, ...]
    rounds: Callable
    point_to_point: Callable
    broadcasts: Callable
    functionality: Callable
    bind: Callable


def _release_bits(protocol) -> dict:
    from ..protocols.gradual_release import RELEASE_BITS

    return {"B": getattr(protocol, "release_bits", RELEASE_BITS)}


#: The registry, keyed by protocol class name (subclasses inherit their
#: base's model via the MRO walk in :func:`model_for`).
_MODELS: Dict[str, CostModel] = {
    # ShareGen round + commit round + two reveal rounds; each party
    # sends one share reveal; both parties call ShareGen.
    "Opt2SfeProtocol": CostModel(
        family="Opt2SfeProtocol", params=(),
        rounds=lambda: 4, point_to_point=lambda: 2,
        broadcasts=lambda: 0, functionality=lambda: 2,
        bind=lambda protocol: {},
    ),
    # One functionality round, one exchange round, one output round.
    "SingleRoundProtocol": CostModel(
        family="SingleRoundProtocol", params=(),
        rounds=lambda: 3, point_to_point=lambda: 2,
        broadcasts=lambda: 0, functionality=lambda: 2,
        bind=lambda protocol: {},
    ),
    # B bit-release rounds after setup: each releases one bit per
    # party (2B messages) on top of the initial share exchange (2).
    "GradualReleaseProtocol": CostModel(
        family="GradualReleaseProtocol", params=("B",),
        rounds=lambda B: B + 3, point_to_point=lambda B: 2 * B + 2,
        broadcasts=lambda B: 0, functionality=lambda B: 2,
        bind=_release_bits,
    ),
    # R reveal rounds (Theorems 23/24: R = 20*p*|Y| domain,
    # 20*p^2*|Z| range), two token messages per reveal round, plus the
    # ShareGen round and the output round.
    "GordonKatzProtocol": CostModel(
        family="GordonKatzProtocol", params=("R",),
        rounds=lambda R: R + 2, point_to_point=lambda R: 2 * R,
        broadcasts=lambda R: 0, functionality=lambda R: 2,
        bind=lambda protocol: {"R": protocol.reveal_rounds},
    ),
    # All n parties call ShareGen, then each broadcasts its share.
    "OptNSfeProtocol": CostModel(
        family="OptNSfeProtocol", params=("n",),
        rounds=lambda n: 3, point_to_point=lambda n: 0,
        broadcasts=lambda n: n, functionality=lambda n: n,
        bind=lambda protocol: {"n": protocol.n_parties},
    ),
    # Same shape: the VSS output dealer answers every party, then each
    # broadcasts its (threshold-shared) output share.
    "ThresholdGmwProtocol": CostModel(
        family="ThresholdGmwProtocol", params=("n",),
        rounds=lambda n: 3, point_to_point=lambda n: 0,
        broadcasts=lambda n: n, functionality=lambda n: n,
        bind=lambda protocol: {"n": protocol.n_parties},
    ),
}


def covered_families() -> Tuple[str, ...]:
    """The protocol class names with a registered cost model."""
    return tuple(_MODELS)


def model_for(protocol) -> Optional[CostModel]:
    """The cost model covering this protocol instance, or ``None``.

    Resolution walks the class MRO so protocol subclasses inherit the
    base family's closed forms.
    """
    for cls in type(protocol).__mro__:
        model = _MODELS.get(cls.__name__)
        if model is not None:
            return model
    return None


def covered(protocol) -> bool:
    return model_for(protocol) is not None


def _quantities(model: CostModel, binding: dict) -> Tuple[int, int, int, int]:
    args = [binding[name] for name in model.params]
    return (
        int(model.rounds(*args)),
        int(model.point_to_point(*args)),
        int(model.broadcasts(*args)),
        int(model.functionality(*args)),
    )


def symbolic(model: CostModel) -> Dict[str, "sympy.Expr"]:
    """The model's closed forms as sympy expressions.

    Returns ``{"rounds": ..., "point_to_point_messages": ...,
    "broadcasts": ..., "functionality_responses": ...}`` over positive
    integer symbols named by ``model.params``.  Requires sympy.
    """
    if not HAVE_SYMPY:
        raise RuntimeError(
            "sympy is not installed; symbolic() needs it (evaluate() "
            "works without sympy through the integer fallback)"
        )
    syms = {
        name: sympy.Symbol(name, positive=True, integer=True)
        for name in model.params
    }
    args = [syms[name] for name in model.params]
    return {
        "rounds": sympy.sympify(model.rounds(*args)),
        "point_to_point_messages": sympy.sympify(model.point_to_point(*args)),
        "broadcasts": sympy.sympify(model.broadcasts(*args)),
        "functionality_responses": sympy.sympify(model.functionality(*args)),
    }


def gk_reveal_rounds_symbolic(variant: str = "domain") -> "sympy.Expr":
    """The Gordon–Katz round parameter ``R`` itself as a closed form.

    ``R = 20·p·m`` for the domain variant, ``20·p²·m`` for the range
    variant (``m`` the codomain/range size) — the Theorem 23/24 shapes
    with the explicit e⁻²⁰ truncation margin used throughout
    (``analysis.analytic.gk_round_count``).  Requires sympy.
    """
    if not HAVE_SYMPY:
        raise RuntimeError("sympy is not installed")
    p = sympy.Symbol("p", positive=True, integer=True)
    m = sympy.Symbol("m", positive=True, integer=True)
    if variant == "domain":
        return 20 * p * m
    if variant == "range":
        return 20 * p ** 2 * m
    raise ValueError(f"variant must be 'domain' or 'range', got {variant!r}")


def evaluate(protocol) -> PredictedCost:
    """Bind a concrete protocol instance into its model's closed forms.

    With sympy installed the prediction is computed by substituting the
    bound parameter values into the symbolic expressions; without it,
    by the same formulas over plain integers — bit-identical results
    either way (asserted by the test suite).  Raises ``ValueError`` for
    a protocol with no registered model.
    """
    model = model_for(protocol)
    if model is None:
        raise ValueError(
            f"no symbolic cost model for {type(protocol).__name__}; "
            f"covered families: {', '.join(covered_families())}"
        )
    binding = model.bind(protocol)
    if HAVE_SYMPY:
        exprs = symbolic(model)
        subs = {
            sympy.Symbol(name, positive=True, integer=True): value
            for name, value in binding.items()
        }
        rounds, p2p, broadcast, func = (
            int(exprs["rounds"].subs(subs)),
            int(exprs["point_to_point_messages"].subs(subs)),
            int(exprs["broadcasts"].subs(subs)),
            int(exprs["functionality_responses"].subs(subs)),
        )
    else:
        rounds, p2p, broadcast, func = _quantities(model, binding)
    return PredictedCost(
        protocol_name=protocol.name,
        rounds=rounds,
        point_to_point_messages=p2p,
        broadcasts=broadcast,
        functionality_responses=func,
    )
