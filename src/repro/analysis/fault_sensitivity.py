"""Fault-sensitivity sweeps: how fairness degrades on a faulty network.

The paper's guarantees assume lossless channels; this module measures what
a *faulty engine* does to them.  For every point of a (channel-loss rate ×
crash probability) grid it runs the full strategy sweep under that fault
configuration and records the best attacker's utility, the fairness-event
distribution, and the fraction of runs in which an honest party hung
outright — the adversarial-utility **erosion curve**.

Grid points share the Monte-Carlo seed and the fault seed: run ``k`` at
loss 0.05 and at loss 0.1 draws the *same* uniform variate per delivery
attempt and compares it against the two thresholds, so the drop sets are
nested (threshold coupling).  That keeps the measured curves
monotonicity-sane at realistic run counts instead of jittering with
independent sampling noise.

All (grid point × strategy) batches go to the runner in a single call, so
a pool backend parallelises across the whole experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.events import FairnessEvent
from ..core.payoff import PayoffVector
from ..core.utility import UtilityEstimate, best_utility, estimate_from_counts
from ..engine.faults import ChannelFaultModel, EngineFaults, PartyFaultModel
from ..runtime import BatchRunner, ExecutionTask
from .estimator import InputSampler, _runner_for

#: Default channel-loss grid for the CLI sweep.
DEFAULT_LOSS_RATES = (0.0, 0.05, 0.1, 0.2)


@dataclass(frozen=True)
class FaultSensitivityPoint:
    """One grid point: the sup-over-strategies estimate under its faults."""

    loss: float
    crash_rate: float
    estimate: UtilityEstimate
    estimates: Tuple[UtilityEstimate, ...]
    hung_fraction: float
    faults: Optional[EngineFaults]

    @property
    def utility(self) -> float:
        return self.estimate.mean

    def event_frequency(self, event: FairnessEvent) -> float:
        return self.estimate.event_distribution.get(event, 0.0)


@dataclass(frozen=True)
class FaultSensitivityCurve:
    """The erosion curve of one protocol across a fault grid."""

    protocol_name: str
    gamma: PayoffVector
    n_runs: int
    seed: object
    fault_seed: object
    points: Tuple[FaultSensitivityPoint, ...]

    @property
    def baseline(self) -> Optional[FaultSensitivityPoint]:
        """The lossless point (loss = crash = 0), if the grid includes it."""
        for point in self.points:
            if point.loss == 0.0 and point.crash_rate == 0.0:
                return point
        return None

    def erosion(self, point: FaultSensitivityPoint) -> Optional[float]:
        """Utility shift relative to the lossless baseline.

        Negative values mean the faults *cost* the attacker utility (the
        usual case: its carefully timed abort gets pre-empted by random
        drops); positive values mean the noise helps it.
        """
        base = self.baseline
        if base is None:
            return None
        return point.utility - base.utility

    def hung_fractions(self) -> Dict[Tuple[float, float], float]:
        return {
            (p.loss, p.crash_rate): p.hung_fraction for p in self.points
        }


def _grid(
    loss_rates: Sequence[float], crash_rates: Sequence[float]
) -> List[Tuple[float, float]]:
    return [(loss, crash) for loss in loss_rates for crash in crash_rates]


def _faults_for(
    loss: float, crash: float, fault_seed: object, max_delay: int
) -> Optional[EngineFaults]:
    channel = (
        ChannelFaultModel(loss=loss, max_delay=max_delay, seed=fault_seed)
        if loss > 0
        else None
    )
    party = (
        PartyFaultModel(crash_rate=crash, seed=fault_seed)
        if crash > 0
        else None
    )
    if channel is None and party is None:
        return None
    return EngineFaults(channel=channel, party=party)


def fault_sensitivity(
    protocol,
    factories: Iterable,
    gamma: PayoffVector,
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    crash_rates: Sequence[float] = (0.0,),
    n_runs: int = 400,
    seed=0,
    fault_seed=0,
    max_delay: int = 2,
    input_sampler: Optional[InputSampler] = None,
    jobs: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
) -> FaultSensitivityCurve:
    """Sweep the fault grid; one :class:`FaultSensitivityPoint` per cell.

    Each point runs every strategy in ``factories`` under that cell's
    :class:`EngineFaults` and takes the sup, exactly as
    :func:`~repro.analysis.estimator.assess_protocol` does on a lossless
    network.  The Monte-Carlo seed is shared across cells (threshold
    coupling — see the module docstring), so only the fault rates vary.
    """
    factories = list(factories)
    if not factories:
        raise ValueError("need at least one adversary strategy")
    cells = _grid(loss_rates, crash_rates)
    tasks, keys = [], []
    for cell_index, (loss, crash) in enumerate(cells):
        faults = _faults_for(loss, crash, fault_seed, max_delay)
        for idx, factory in enumerate(factories):
            # Seed matches sweep_strategies' (seed, idx): identical base
            # randomness in every cell, so curves differ only by faults.
            tasks.append(
                ExecutionTask(
                    protocol, factory, n_runs, (seed, idx), input_sampler,
                    faults,
                )
            )
            keys.append((cell_index, factory, faults))
    active = _runner_for(runner, jobs)
    counts_list = active.run(tasks)

    per_cell: Dict[int, List[UtilityEstimate]] = {}
    hung_counts: Dict[int, int] = {}
    totals: Dict[int, int] = {}
    cell_faults: Dict[int, Optional[EngineFaults]] = {}
    for (cell_index, factory, faults), counts in zip(keys, counts_list):
        cell_faults[cell_index] = faults
        per_cell.setdefault(cell_index, []).append(
            estimate_from_counts(
                counts,
                gamma,
                protocol=protocol.name,
                adversary=getattr(factory, "name", "adversary"),
            )
        )
        hung_counts[cell_index] = hung_counts.get(cell_index, 0) + (
            counts.counts.get(FairnessEvent.HONEST_HUNG, 0)
        )
        totals[cell_index] = totals.get(cell_index, 0) + counts.total

    points = []
    for cell_index, (loss, crash) in enumerate(cells):
        estimates = per_cell[cell_index]
        points.append(
            FaultSensitivityPoint(
                loss=loss,
                crash_rate=crash,
                estimate=best_utility(estimates),
                estimates=tuple(estimates),
                hung_fraction=(
                    hung_counts[cell_index] / max(totals[cell_index], 1)
                ),
                faults=cell_faults[cell_index],
            )
        )
    return FaultSensitivityCurve(
        protocol_name=protocol.name,
        gamma=gamma,
        n_runs=n_runs,
        seed=seed,
        fault_seed=fault_seed,
        points=tuple(points),
    )
