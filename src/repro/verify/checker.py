"""The claim checker: registry in, structured verdicts out.

``verify_claims`` resolves a ``--claims`` spec against a registry, runs
each claim's Monte-Carlo side through one shared batch runner (so jobs,
retry policy, chunk cache, and fault injection all apply), judges the
result against the analytic side via the differential layer, and returns
a :class:`VerificationReport` whose JSON export regenerates the
EXPERIMENTS.md tables.

Replayability is the design center: each :class:`ClaimCheck` embeds the
claim's derived seed and the exact chunk spans its batches executed, and
the report embeds the master seed and budget.  Re-running the same spec
with the same seed reproduces every measurement bit-identically — the
deterministic portion of the artifact (everything outside the ``timing``
keys) is byte-equal across serial, pool, warm-cache, and fault-replay
executions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from ..runtime import BatchRunner, RunStats, SerialRunner
from .claims import (
    Claim,
    ClaimConfigError,
    ClaimContext,
    ClaimRegistry,
    Measurement,
    default_registry,
    resolve_budget,
)
from .differential import (
    VERDICT_OK,
    VERDICT_VIOLATED,
    VERDICT_WITHIN_TOLERANCE,
    compare,
    confidence_interval,
)


class Verdict(Enum):
    OK = VERDICT_OK
    WITHIN_TOLERANCE = VERDICT_WITHIN_TOLERANCE
    VIOLATED = VERDICT_VIOLATED


@dataclass(frozen=True)
class ClaimCheck:
    """One claim's structured verdict.

    Carries everything a replay needs — the derived seed, the realised
    run count, and the ``(task, start, stop)`` chunk spans of every batch
    the measurement spawned — plus the statistical context (tolerance,
    confidence interval, signed margin) that justified the verdict.
    """

    claim: Claim
    analytic_value: float
    measurement: Measurement
    verdict: Verdict
    tolerance: float
    ci_low: float
    ci_high: float
    margin: float
    seed: tuple
    chunk_spans: Tuple[Tuple[int, int, int], ...] = ()
    run_stats: Tuple[RunStats, ...] = ()
    wall_clock_s: float = 0.0

    @property
    def passed(self) -> bool:
        return self.verdict is not Verdict.VIOLATED

    def __str__(self) -> str:
        return (
            f"[{self.verdict.value:>16}] {self.claim.claim_id:<16} "
            f"analytic={self.analytic_value:.4f} "
            f"measured={self.measurement.value:.4f} "
            f"ci=[{self.ci_low:.4f}, {self.ci_high:.4f}] "
            f"tol={self.tolerance:.4f} n={self.measurement.n_runs}"
        )


@dataclass
class VerificationReport:
    """The full outcome of one ``repro verify`` invocation."""

    checks: List[ClaimCheck]
    budget: str
    scale: float
    master_seed: object
    wall_clock_s: float = 0.0
    runner_backend: str = "serial"
    jobs: int = 1

    def counts(self) -> dict:
        summary = {v.value: 0 for v in Verdict}
        for check in self.checks:
            summary[check.verdict.value] += 1
        return summary

    @property
    def ok(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def exit_code(self) -> int:
        """0 when every claim is ok/within-tolerance, 1 otherwise.

        Config errors never reach a report — ``verify_claims`` raises
        :class:`~.claims.ClaimConfigError` and the CLI maps that to 2.
        """
        return 0 if self.ok else 1

    def journal_summary(self) -> dict:
        """Aggregated run-ledger traffic across every claim's batches.

        All zeros when no journal was configured; on a resume the
        ``replayed`` count is how much recomputation the ledger saved.
        """
        totals = {"replayed": 0, "appended": 0, "corrupt": 0, "stale": 0}
        for check in self.checks:
            for stats in check.run_stats:
                totals["replayed"] += stats.journal_replayed_chunks
                totals["appended"] += stats.journal_appended_chunks
                totals["corrupt"] += stats.journal_corrupt_records
                totals["stale"] += stats.journal_stale_records
        return totals

    def __str__(self) -> str:
        lines = [str(check) for check in self.checks]
        summary = self.counts()
        lines.append(
            f"{len(self.checks)} claims: {summary[VERDICT_OK]} ok, "
            f"{summary[VERDICT_WITHIN_TOLERANCE]} within-tolerance, "
            f"{summary[VERDICT_VIOLATED]} violated "
            f"(budget={self.budget}, seed={self.master_seed!r}, "
            f"{self.wall_clock_s:.1f}s)"
        )
        ledger = self.journal_summary()
        if any(ledger.values()):
            lines.append(
                f"run ledger: {ledger['replayed']} spans replayed, "
                f"{ledger['appended']} appended, {ledger['corrupt']} "
                f"corrupt, {ledger['stale']} stale"
            )
        return "\n".join(lines)


def check_claim(
    claim: Claim,
    ctx: ClaimContext,
) -> ClaimCheck:
    """Evaluate one claim: run the Monte-Carlo side, judge it against the
    analytic side, and package the verdict with its replay metadata."""
    runner = ctx.runner
    mark = runner.history_mark()
    t0 = time.perf_counter()
    measurement = claim.measure(ctx)
    wall = time.perf_counter() - t0
    analytic_value = float(claim.analytic())
    ci = confidence_interval(measurement)
    verdict, margin = compare(
        claim.kind, analytic_value, measurement, claim.tolerance, ci=ci
    )
    batches = tuple(runner.stats_since(mark))
    spans: Tuple[Tuple[int, int, int], ...] = tuple(
        span for stats in batches for span in stats.chunk_spans
    )
    return ClaimCheck(
        claim=claim,
        analytic_value=analytic_value,
        measurement=measurement,
        verdict=Verdict(verdict),
        tolerance=claim.tolerance.tolerance(measurement.n_runs),
        ci_low=ci[0],
        ci_high=ci[1],
        margin=margin,
        seed=ctx.seed_for(),
        chunk_spans=spans,
        run_stats=batches,
        wall_clock_s=wall,
    )


def verify_claims(
    claim_spec: str = "all",
    budget="medium",
    seed="verify",
    runner: Optional[BatchRunner] = None,
    registry: Optional[ClaimRegistry] = None,
) -> VerificationReport:
    """Verify a selection of claims and return the structured report.

    ``claim_spec`` is the CLI's ``--claims`` value (``all``, claim ids,
    or experiment ids, comma-separated); ``budget`` a name or an integer
    run target.  Raises :class:`~.claims.ClaimConfigError` on a bad spec
    — the CLI maps that to exit code 2.
    """
    registry = registry if registry is not None else default_registry()
    scale = resolve_budget(budget)
    selected = registry.select(claim_spec)
    runner = runner if runner is not None else SerialRunner()
    budget_name = budget if isinstance(budget, str) else str(int(budget))

    t0 = time.perf_counter()
    checks = []
    for claim in selected:
        ctx = ClaimContext(
            seed=(seed, "verify", claim.claim_id),
            scale=scale,
            budget=budget_name,
            runner=runner,
        )
        checks.append(check_claim(claim, ctx))
    return VerificationReport(
        checks=checks,
        budget=budget_name,
        scale=scale,
        master_seed=seed,
        wall_clock_s=time.perf_counter() - t0,
        runner_backend=runner.backend,
        jobs=getattr(runner, "jobs", 1),
    )
