"""The differential layer: confidence intervals and verdict arithmetic.

Everything statistical about verification lives here: the Wilson and
Hoeffding interval constructions around a :class:`~.claims.Measurement`,
and the ``compare`` routine that turns (bound kind, analytic value,
measurement, tolerance) into a verdict string plus a signed margin.

The checker calls :func:`compare` per claim; :func:`assert_agreement`
offers the loud-failure form for equality claims — it raises
:class:`DifferentialMismatch` whenever Monte-Carlo and closed form
disagree beyond the combined CI width, which is how the test suite and CI
surface an analytic/empirical divergence as a hard error instead of a
silently-recorded verdict.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ..core.utility import wilson_interval
from .claims import BoundKind, Measurement, TolerancePolicy

#: Verdict strings shared by the checker and the CLI.
VERDICT_OK = "ok"
VERDICT_WITHIN_TOLERANCE = "within-tolerance"
VERDICT_VIOLATED = "violated"


class DifferentialMismatch(AssertionError):
    """Monte-Carlo and analytic sides disagree beyond CI width."""

    def __init__(self, claim_id: str, analytic: float, measurement: Measurement,
                 ci: Tuple[float, float]):
        self.claim_id = claim_id
        self.analytic = analytic
        self.measurement = measurement
        self.ci = ci
        super().__init__(
            f"claim {claim_id}: analytic {analytic:.6g} outside the "
            f"measured interval [{ci[0]:.6g}, {ci[1]:.6g}] "
            f"(measured {measurement.value:.6g}, n={measurement.n_runs})"
        )


def hoeffding_halfwidth(
    n_runs: int, spread: float = 1.0, delta: float = 0.01
) -> float:
    """Hoeffding's two-sided half-width: with probability ≥ 1−δ the mean
    of ``n_runs`` samples with range ``spread`` lies this close to its
    expectation.  Distribution-free — the envelope partner to Wilson."""
    if n_runs <= 0:
        return 0.0
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    return spread * math.sqrt(math.log(2.0 / delta) / (2.0 * n_runs))


def confidence_interval(
    m: Measurement, delta: float = 0.01
) -> Tuple[float, float]:
    """The widest (most conservative) interval supported by ``m``.

    Combines whichever constructions the measurement carries — an exact
    Wilson interval when the value is a binomial proportion, the
    estimator's own per-event CI when present, and the distribution-free
    Hoeffding band — and returns their envelope.  An exact measurement
    (``n_runs == 0``) gets the degenerate point interval.
    """
    if m.n_runs <= 0:
        return (m.value, m.value)
    intervals = []
    if m.successes is not None:
        intervals.append(wilson_interval(m.successes, m.n_runs))
    if m.ci_low is not None and m.ci_high is not None:
        intervals.append((m.ci_low, m.ci_high))
    half = hoeffding_halfwidth(m.n_runs, spread=m.spread, delta=delta)
    intervals.append((m.value - half, m.value + half))
    return (min(lo for lo, _ in intervals), max(hi for _, hi in intervals))


def compare(
    kind: BoundKind,
    analytic: float,
    measurement: Measurement,
    tolerance: TolerancePolicy,
    ci: Optional[Tuple[float, float]] = None,
) -> Tuple[str, float]:
    """Judge a measurement against its analytic side.

    Returns ``(verdict, margin)`` where the margin is the signed distance
    in the claim's "bad" direction: positive margins mean the measurement
    moved past the bound (or away from the target), so ``margin ≤ 0`` is
    a clean ``ok``, ``0 < margin ≤ tol`` is ``within-tolerance``, and
    beyond that the claim is ``violated``.
    """
    if ci is None:
        ci = confidence_interval(measurement)
    tol = tolerance.tolerance(measurement.n_runs)
    value = measurement.value

    if kind is BoundKind.UPPER:
        margin = value - analytic
    elif kind is BoundKind.LOWER:
        margin = analytic - value
    elif kind is BoundKind.EQUALITY:
        margin = abs(value - analytic)
        # ok when the analytic value sits inside the measured interval
        # (plus model slack); this degenerates to exact equality for
        # deterministic measurements, whose interval is a point.
        if ci[0] - tolerance.slack <= analytic <= ci[1] + tolerance.slack:
            return VERDICT_OK, margin
        return (
            (VERDICT_WITHIN_TOLERANCE, margin)
            if margin <= tol
            else (VERDICT_VIOLATED, margin)
        )
    elif kind is BoundKind.STRICT_ORDER:
        # The measurement is the gap itself; it must be strictly positive
        # and (when the registry gives a predicted gap) close to it.
        if value <= 0:
            return VERDICT_VIOLATED, -value
        margin = abs(value - analytic)
        return (
            (VERDICT_OK, margin)
            if margin <= tol
            else (VERDICT_WITHIN_TOLERANCE, margin)
        )
    else:  # pragma: no cover - exhaustive over BoundKind
        raise ValueError(f"unhandled bound kind {kind!r}")

    # Directional bounds (UPPER/LOWER) share the same ladder.
    if margin <= 0:
        return VERDICT_OK, margin
    if margin <= tol:
        return VERDICT_WITHIN_TOLERANCE, margin
    return VERDICT_VIOLATED, margin


def assert_agreement(
    claim_id: str,
    analytic: float,
    measurement: Measurement,
    slack: float = 0.0,
    delta: float = 0.01,
) -> Tuple[float, float]:
    """Fail loudly when an equality claim's sides disagree beyond CI width.

    Returns the interval on success so callers can record it.  Raises
    :class:`DifferentialMismatch` — an ``AssertionError`` — otherwise,
    which pytest and CI treat as a hard failure rather than a recorded
    verdict.
    """
    ci = confidence_interval(measurement, delta=delta)
    if not (ci[0] - slack <= analytic <= ci[1] + slack):
        raise DifferentialMismatch(claim_id, analytic, measurement, ci)
    return ci
