"""Machine-checkable verification of the paper's quantitative claims.

The subsystem has three layers:

* :mod:`.claims` — the declarative registry: each E1–E21 claim as a
  :class:`Claim` with paper reference, bound kind, closed-form analytic
  side, Monte-Carlo measurement recipe, and explicit tolerance policy;
* :mod:`.differential` — Wilson/Hoeffding confidence intervals and the
  verdict arithmetic that cross-checks the two sides;
* :mod:`.checker` — runs selections through the batch runtime and emits
  replayable :class:`VerificationReport` artifacts (``repro verify``).
"""

from .claims import (
    BUDGET_SCALES,
    MIN_RUNS,
    BoundKind,
    Claim,
    ClaimConfigError,
    ClaimContext,
    ClaimRegistry,
    Measurement,
    TolerancePolicy,
    constant_inputs,
    default_registry,
    resolve_budget,
)
from .differential import (
    DifferentialMismatch,
    assert_agreement,
    compare,
    confidence_interval,
    hoeffding_halfwidth,
)
from .checker import (
    ClaimCheck,
    VerificationReport,
    Verdict,
    check_claim,
    verify_claims,
)

__all__ = [
    "BUDGET_SCALES",
    "MIN_RUNS",
    "BoundKind",
    "Claim",
    "ClaimCheck",
    "ClaimConfigError",
    "ClaimContext",
    "ClaimRegistry",
    "DifferentialMismatch",
    "Measurement",
    "TolerancePolicy",
    "VerificationReport",
    "Verdict",
    "assert_agreement",
    "check_claim",
    "compare",
    "confidence_interval",
    "constant_inputs",
    "default_registry",
    "hoeffding_halfwidth",
    "resolve_budget",
    "verify_claims",
]
