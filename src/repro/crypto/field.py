"""Prime-field arithmetic and bitstring helpers.

The authenticated secret-sharing scheme from Appendix A of the paper shares
field elements: a secret ``s`` is split into two uniformly random summands
``s1 + s2 = (s, tag(s, k1), tag(s, k2))`` over a field large enough to hold
the payload.  We work over a fixed Mersenne-like prime field GF(p) that
comfortably holds 128-bit payloads, plus a variable-size field for Shamir
sharing with small party counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, List, Sequence

#: Default prime: 2**521 - 1 (a Mersenne prime), large enough to embed
#: (value, tag, tag) triples of the sizes used throughout the library.
DEFAULT_PRIME = 2**521 - 1

#: Hit/miss counters of the Lagrange-basis memo (the validated-modulus and
#: field-interning caches report through ``lru_cache.cache_info``); the
#: runtime's instrumentation reads all of them via :func:`memo_counters`.
_LAGRANGE_COUNTS = {"hits": 0, "misses": 0}


def is_probable_prime(n: int, rounds: int = 16) -> bool:
    """Miller-Rabin primality test (deterministic witnesses for small n)."""
    if n < 2:
        return False
    small_primes = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]
    for p in small_primes:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # Deterministic witness set; sound for n < 3.3e24 and a strong
    # probabilistic test beyond that, which suffices for library parameters.
    for a in small_primes[:rounds]:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


@lru_cache(maxsize=None)
def _validated_modulus(p: int) -> int:
    """Check a candidate modulus once per process.

    Every :class:`Field` construction funnels through this cache, so the
    Miller-Rabin cost of validating the fixed 521-bit ``DEFAULT_PRIME``
    (or any other modulus) is paid exactly once per process instead of on
    every construction in the Monte-Carlo hot path.
    """
    if p < 2:
        raise ValueError(f"field modulus must be >= 2, got {p}")
    if not is_probable_prime(p):
        raise ValueError(f"field modulus must be prime, got {p}")
    return p


class Field:
    """A prime field GF(p) with the handful of operations the library needs.

    Instances are lightweight and hashable; two fields compare equal iff
    their moduli are equal.  The modulus is validated (probable-prime) on
    construction, with the validation memoized per process; hot call
    sites should prefer the interned instances from :func:`get_field` /
    :func:`default_field`, whose Lagrange-basis memo then persists across
    calls.
    """

    __slots__ = ("p", "_lagrange_memo")

    def __init__(self, p: int = DEFAULT_PRIME):
        self.p = _validated_modulus(p)
        # Reconstruction bases keyed by the tuple of interpolation
        # x-coordinates; see lagrange_interpolate_at_zero.
        self._lagrange_memo = {}

    # -- structural -------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Field) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("Field", self.p))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Field(p={self.p})"

    # -- arithmetic -------------------------------------------------------
    def reduce(self, x: int) -> int:
        return x % self.p

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.p

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def neg(self, a: int) -> int:
        return (-a) % self.p

    def inv(self, a: int) -> int:
        a %= self.p
        if a == 0:
            raise ZeroDivisionError("0 has no inverse")
        return pow(a, self.p - 2, self.p)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        return pow(a % self.p, e, self.p)

    def sum(self, xs: Iterable[int]) -> int:
        total = 0
        for x in xs:
            total = (total + x) % self.p
        return total

    # -- sampling ---------------------------------------------------------
    def random_element(self, rng) -> int:
        """Uniform element of GF(p) using ``rng.randrange``."""
        return rng.randrange(self.p)

    def random_nonzero(self, rng) -> int:
        return 1 + rng.randrange(self.p - 1)

    # -- polynomials (for Shamir) ------------------------------------------
    def poly_eval(self, coeffs: Sequence[int], x: int) -> int:
        """Evaluate a polynomial given low-to-high coefficients at ``x``."""
        acc = 0
        for c in reversed(coeffs):
            acc = (acc * x + c) % self.p
        return acc

    def lagrange_interpolate_at_zero(self, points: Sequence[tuple]) -> int:
        """Interpolate the polynomial through ``points`` and return f(0).

        ``points`` is a sequence of distinct (x, y) pairs.  The basis
        coefficients λ_i = Π(-x_j)/Π(x_i-x_j) depend only on the tuple of
        x-coordinates, which in Shamir/VSS reconstruction is a small
        recurring subset of party indices — so the bases (and their
        expensive ~p-sized modular inversions) are memoized per field
        instance and f(0) reduces to the inner product Σ y_i·λ_i.
        """
        xs = tuple(x for x, _ in points)
        if len(set(xs)) != len(xs):
            raise ValueError("interpolation points must have distinct x")
        basis = self._lagrange_memo.get(xs)
        if basis is None:
            _LAGRANGE_COUNTS["misses"] += 1
            coeffs = []
            for i, xi in enumerate(xs):
                num, den = 1, 1
                for j, xj in enumerate(xs):
                    if i == j:
                        continue
                    num = (num * (-xj)) % self.p
                    den = (den * (xi - xj)) % self.p
                coeffs.append((num * self.inv(den)) % self.p)
            basis = tuple(coeffs)
            self._lagrange_memo[xs] = basis
        else:
            _LAGRANGE_COUNTS["hits"] += 1
        secret = 0
        for (_, yi), coeff in zip(points, basis):
            secret = (secret + yi * coeff) % self.p
        return secret


@lru_cache(maxsize=None)
def get_field(p: int = DEFAULT_PRIME) -> Field:
    """Interned :class:`Field` for ``p`` (one instance per process).

    Interning keeps the per-instance Lagrange-basis memo warm across call
    sites that used to construct a throwaway ``Field(DEFAULT_PRIME)`` per
    invocation (``vss``, ``authenticated_sharing``).
    """
    return Field(p)


def default_field() -> Field:
    """The interned field over :data:`DEFAULT_PRIME`."""
    return get_field(DEFAULT_PRIME)


def memo_counters() -> dict:
    """Aggregate hit/miss counts of this module's setup memos.

    Read by ``repro.runtime.cache`` when assembling batch statistics; the
    crypto layer itself never imports the runtime.
    """
    validated = _validated_modulus.cache_info()
    interned = get_field.cache_info()
    return {
        "hits": validated.hits + interned.hits + _LAGRANGE_COUNTS["hits"],
        "misses": (
            validated.misses + interned.misses + _LAGRANGE_COUNTS["misses"]
        ),
    }


@dataclass(frozen=True)
class Bits:
    """An immutable bitstring with xor and integer conversions.

    Used for one-time-pad blinding and GMW wire values.
    """

    values: tuple

    def __post_init__(self):
        for b in self.values:
            if b not in (0, 1):
                raise ValueError(f"bit values must be 0/1, got {b!r}")

    @classmethod
    def from_int(cls, x: int, width: int) -> "Bits":
        if x < 0 or x >= (1 << width):
            raise ValueError(f"{x} does not fit in {width} bits")
        return cls(tuple((x >> i) & 1 for i in range(width)))

    @classmethod
    def zeros(cls, width: int) -> "Bits":
        return cls((0,) * width)

    @classmethod
    def random(cls, width: int, rng) -> "Bits":
        return cls(tuple(rng.randrange(2) for _ in range(width)))

    def to_int(self) -> int:
        return sum(b << i for i, b in enumerate(self.values))

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, i):
        return self.values[i]

    def __xor__(self, other: "Bits") -> "Bits":
        if len(self) != len(other):
            raise ValueError("xor of bitstrings with different widths")
        return Bits(tuple(a ^ b for a, b in zip(self.values, other.values)))

    def concat(self, other: "Bits") -> "Bits":
        return Bits(self.values + other.values)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError("xor_bytes requires equal lengths")
    return bytes(x ^ y for x, y in zip(a, b))


def int_to_bytes(x: int, length: int) -> bytes:
    return x.to_bytes(length, "big")


def bytes_to_int(b: bytes) -> int:
    return int.from_bytes(b, "big")


def split_blocks(data: bytes, block: int) -> List[bytes]:
    """Split ``data`` into ``block``-sized chunks (last one may be short)."""
    if block <= 0:
        raise ValueError("block size must be positive")
    return [data[i : i + block] for i in range(0, len(data), block)]
