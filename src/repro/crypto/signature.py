"""Lamport one-time signatures.

The multi-party protocol ΠOptnSFE (Appendix B) has the ideal phase-1
functionality sign the output ``y`` once under a freshly generated key pair,
so a *one-time* signature scheme is exactly what the construction requires.
Lamport signatures are existentially unforgeable for a single message
assuming preimage resistance of SHA-256 — no number theory needed.

The message is hashed to 256 bits; each bit selects one of two secret
preimages whose hashes form the public key.
"""

from __future__ import annotations

from .immutable import Immutable

import hashlib
import hmac
from dataclasses import dataclass
from typing import Tuple

from .mac import _encode
from .prf import Rng

_HASH_BITS = 256
_CHUNK = 32  # bytes per preimage


@dataclass(frozen=True)
class VerificationKey(Immutable):
    """Lamport public key: 2x256 hash values, flattened."""

    pairs: tuple  # tuple of 256 (h0, h1) byte pairs

    def __post_init__(self):
        if len(self.pairs) != _HASH_BITS:
            raise ValueError("malformed verification key")


@dataclass(frozen=True)
class SigningKey(Immutable):
    pairs: tuple  # tuple of 256 (x0, x1) byte pairs


@dataclass(frozen=True)
class Signature(Immutable):
    preimages: tuple  # 256 revealed preimages


def _digest(message) -> bytes:
    return hashlib.sha256(_encode(message)).digest()


def _bits(digest: bytes):
    for byte in digest:
        for i in range(8):
            yield (byte >> i) & 1


def gen(rng: Rng) -> Tuple[SigningKey, VerificationKey]:
    """Generate a one-time key pair (paper notation: ``Gen(1^k)``)."""
    sk_pairs = []
    vk_pairs = []
    for _ in range(_HASH_BITS):
        x0 = rng.randbytes(_CHUNK)
        x1 = rng.randbytes(_CHUNK)
        sk_pairs.append((x0, x1))
        vk_pairs.append(
            (hashlib.sha256(x0).digest(), hashlib.sha256(x1).digest())
        )
    return SigningKey(tuple(sk_pairs)), VerificationKey(tuple(vk_pairs))


def sign(message, sk: SigningKey) -> Signature:
    """Sign ``message`` (paper notation: ``Sign(y, sk)``)."""
    digest = _digest(message)
    preimages = tuple(
        sk.pairs[i][bit] for i, bit in enumerate(_bits(digest))
    )
    return Signature(preimages)


def ver(message, signature, vk: VerificationKey) -> bool:
    """Verify a signature (paper notation: ``Ver``)."""
    if not isinstance(signature, Signature):
        return False
    if len(signature.preimages) != _HASH_BITS:
        return False
    try:
        digest = _digest(message)
    except TypeError:
        return False
    for i, bit in enumerate(_bits(digest)):
        preimage = signature.preimages[i]
        if not isinstance(preimage, bytes):
            return False
        expected = vk.pairs[i][bit]
        if not hmac.compare_digest(hashlib.sha256(preimage).digest(), expected):
            return False
    return True
