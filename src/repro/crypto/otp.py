"""One-time-pad blinding (paper, Appendix B).

ΠOptnSFE converts private outputs to a public output: each party pi
contributes a one-time-pad key ki and receives the vector
``y = (y1 ⊕ k1, ..., yn ⊕ kn)``; pi decrypts component i with its key and
learns nothing about the other components, which stay perfectly blinded.
"""

from __future__ import annotations

from typing import List, Sequence

from .prf import Rng


def gen_pad(width_bits: int, rng: Rng) -> int:
    """Sample a uniform ``width_bits``-bit pad."""
    if width_bits <= 0:
        raise ValueError("pad width must be positive")
    return rng.getrandbits(width_bits)


def blind(value: int, pad: int, width_bits: int) -> int:
    """XOR-encrypt ``value`` with ``pad`` (both < 2**width_bits)."""
    if not 0 <= value < (1 << width_bits):
        raise ValueError(f"value does not fit in {width_bits} bits")
    return value ^ (pad & ((1 << width_bits) - 1))


def unblind(ciphertext: int, pad: int, width_bits: int) -> int:
    """XOR-decrypt; identical to :func:`blind` by involution."""
    return blind(ciphertext, pad, width_bits)


def blind_vector(
    values: Sequence[int], pads: Sequence[int], width_bits: int
) -> List[int]:
    """Blind the private-output vector component-wise (Appendix B transform)."""
    if len(values) != len(pads):
        raise ValueError("one pad per value is required")
    return [blind(v, k, width_bits) for v, k in zip(values, pads)]
