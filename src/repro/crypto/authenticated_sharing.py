"""Authenticated additive secret sharing (paper, Appendix A).

A sharing of a secret ``s`` is a pair of random field elements (the
*summands*) with ``s1 + s2 = (s, tag(s, k1), tag(s, k2))`` where ``k1, k2``
are MAC keys held by p1 and p2.  Each party pi holds:

* its summand ``si`` together with ``tag(si, k¬i)`` — so the *other* party
  can verify the summand when it is sent over for reconstruction, and
* its own key ``ki``, used to verify both the incoming summand's tag and
  the tag embedded in the reconstructed payload.

Reconstruction towards pi: p¬i sends ``(s¬i, tag(s¬i, ki))``; pi verifies the
summand tag under ki, adds the summands, unpacks ``(s, t1, t2)`` and verifies
``ti`` under ki.  Any failure raises :class:`ShareVerificationError`, which
the calling protocol turns into an abort.
"""

from __future__ import annotations

from .immutable import Immutable

from dataclasses import dataclass
from typing import Tuple

from .field import Field, default_field
from .mac import MacKey, TAG_LENGTH, gen_mac_key, tag, verify
from .prf import Rng

#: Maximum bit-width of the secret payload packed into a field element.
SECRET_BITS = 128
_TAG_BITS = TAG_LENGTH * 8


class ShareVerificationError(Exception):
    """A MAC check failed during reconstruction (cheating detected)."""


def _pack(secret: int, t1: bytes, t2: bytes) -> int:
    """Pack the (s, tag1, tag2) triple into a single field element."""
    if not 0 <= secret < (1 << SECRET_BITS):
        raise ValueError(f"secret must fit in {SECRET_BITS} bits")
    return (
        (secret << (2 * _TAG_BITS))
        | (int.from_bytes(t1, "big") << _TAG_BITS)
        | int.from_bytes(t2, "big")
    )


def _unpack(packed: int) -> Tuple[int, bytes, bytes]:
    mask = (1 << _TAG_BITS) - 1
    t2 = (packed & mask).to_bytes(TAG_LENGTH, "big")
    t1 = ((packed >> _TAG_BITS) & mask).to_bytes(TAG_LENGTH, "big")
    secret = packed >> (2 * _TAG_BITS)
    return secret, t1, t2


@dataclass(frozen=True)
class AuthenticatedShare(Immutable):
    """Party pi's share ``<s>_i``: summand, its cross-tag, and pi's key."""

    index: int  # 1 or 2
    summand: int
    summand_tag: bytes  # tag(summand, k_{other})
    key: MacKey  # k_i

    def wire_message(self) -> Tuple[int, bytes]:
        """What pi sends to the other party during reconstruction."""
        return (self.summand, self.summand_tag)


def deal(
    secret: int, rng: Rng, field: Field = None
) -> Tuple[AuthenticatedShare, AuthenticatedShare]:
    """Create an authenticated 2-of-2 sharing ``<s>`` of ``secret``."""
    field = field or default_field()
    if field.p.bit_length() <= SECRET_BITS + 2 * _TAG_BITS:
        raise ValueError("field too small for authenticated payload")
    k1 = gen_mac_key(rng.fork("mac-key-1"))
    k2 = gen_mac_key(rng.fork("mac-key-2"))
    payload = _pack(secret, tag(secret, k1), tag(secret, k2))
    s1 = field.random_element(rng)
    s2 = field.sub(payload, s1)
    share1 = AuthenticatedShare(1, s1, tag(s1, k2), k1)
    share2 = AuthenticatedShare(2, s2, tag(s2, k1), k2)
    return share1, share2


def reconstruct(
    own: AuthenticatedShare,
    received: Tuple[int, bytes],
    field: Field = None,
) -> int:
    """Reconstruct the secret towards the holder of ``own``.

    ``received`` is the other party's wire message ``(summand, tag)``.
    Raises :class:`ShareVerificationError` on any MAC failure.
    """
    field = field or default_field()
    if (
        not isinstance(received, tuple)
        or len(received) != 2
        or not isinstance(received[0], int)
        or not isinstance(received[1], bytes)
    ):
        raise ShareVerificationError("malformed reconstruction message")
    other_summand, other_tag = received
    if not verify(other_summand, other_tag, own.key):
        raise ShareVerificationError("summand MAC verification failed")
    payload = field.add(own.summand, other_summand)
    secret, t1, t2 = _unpack(payload)
    own_payload_tag = t1 if own.index == 1 else t2
    if not verify(secret, own_payload_tag, own.key):
        raise ShareVerificationError("payload MAC verification failed")
    return secret
