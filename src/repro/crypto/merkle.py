"""Merkle trees over SHA-256.

Substrate for the many-time signature scheme
(:mod:`repro.crypto.mts`): the signer commits to a batch of one-time
verification keys with a single root; each signature carries an
authentication path.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import List, Sequence

from .immutable import Immutable


def _hash_leaf(data: bytes) -> bytes:
    return hashlib.sha256(b"leaf:" + data).digest()


def _hash_node(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(b"node:" + left + right).digest()


@dataclass(frozen=True)
class MerkleProof(Immutable):
    """Authentication path for one leaf."""

    index: int
    siblings: tuple  # bottom-up sibling hashes


class MerkleTree:
    """A complete binary Merkle tree (leaf count padded to a power of 2)."""

    def __init__(self, leaves: Sequence[bytes]):
        if not leaves:
            raise ValueError("need at least one leaf")
        if not all(isinstance(l, bytes) for l in leaves):
            raise TypeError("leaves must be bytes")
        self.n_leaves = len(leaves)
        size = 1
        while size < len(leaves):
            size *= 2
        padded = list(leaves) + [b""] * (size - len(leaves))
        level: List[bytes] = [_hash_leaf(l) for l in padded]
        self._levels: List[List[bytes]] = [level]
        while len(level) > 1:
            level = [
                _hash_node(level[i], level[i + 1])
                for i in range(0, len(level), 2)
            ]
            self._levels.append(level)

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    def prove(self, index: int) -> MerkleProof:
        """Authentication path for leaf ``index``."""
        if not 0 <= index < self.n_leaves:
            raise IndexError(f"no such leaf: {index}")
        siblings = []
        position = index
        for level in self._levels[:-1]:
            sibling = position ^ 1
            siblings.append(level[sibling])
            position //= 2
        return MerkleProof(index, tuple(siblings))


def verify_inclusion(root: bytes, leaf: bytes, proof: MerkleProof) -> bool:
    """Check that ``leaf`` sits at ``proof.index`` under ``root``."""
    if not isinstance(proof, MerkleProof) or not isinstance(leaf, bytes):
        return False
    node = _hash_leaf(leaf)
    position = proof.index
    for sibling in proof.siblings:
        if not isinstance(sibling, bytes):
            return False
        if position % 2 == 0:
            node = _hash_node(node, sibling)
        else:
            node = _hash_node(sibling, node)
        position //= 2
    return hmac.compare_digest(node, root)
