"""Hash-based PRG / PRF utilities.

All randomness inside protocol machines is drawn from explicit ``Rng``
objects so that executions are reproducible given a seed.  The PRG expands a
seed deterministically with SHA-256 in counter mode; ``Rng`` wraps it with a
``random.Random``-compatible subset of the API (``randrange``, ``random``,
``choice``, ``getrandbits``, ``randbytes``) plus a ``fork`` operation for
deriving independent sub-streams — the standard trick for giving each party,
functionality, and adversary its own stream while keeping one master seed.
"""

from __future__ import annotations

import hashlib
from typing import Sequence


class Prg:
    """SHA-256 counter-mode pseudorandom generator."""

    def __init__(self, seed: bytes):
        if not isinstance(seed, (bytes, bytearray)):
            raise TypeError("Prg seed must be bytes")
        self._seed = bytes(seed)
        self._counter = 0
        self._buffer = b""

    def read(self, n: int) -> bytes:
        """Return the next ``n`` pseudorandom bytes."""
        if n < 0:
            raise ValueError("cannot read a negative number of bytes")
        # Accumulate whole blocks in a list and join once: appending to a
        # bytes buffer inside the loop re-copies the buffer per block,
        # turning large reads quadratic.
        blocks = [self._buffer]
        have = len(self._buffer)
        while have < n:
            block = hashlib.sha256(
                self._seed + self._counter.to_bytes(8, "big")
            ).digest()
            self._counter += 1
            blocks.append(block)
            have += len(block)
        buffer = b"".join(blocks)
        out, self._buffer = buffer[:n], buffer[n:]
        return out


def _encode_component(x) -> bytes:
    """Type-tagged, length-prefixed encoding of one piece of seed material.

    Injective across the supported types: ``("cli", 1)`` and
    ``("cli", "1")`` (or a string that happens to equal a tuple's repr)
    can never produce the same byte string, because every component
    carries its own type tag and exact length.
    """
    if isinstance(x, bool):  # before int: bool is an int subclass
        return b"B1" if x else b"B0"
    if isinstance(x, int):
        body = str(x).encode()
        return b"i" + len(body).to_bytes(4, "big") + body
    if isinstance(x, str):
        body = x.encode()
        return b"s" + len(body).to_bytes(4, "big") + body
    if isinstance(x, (bytes, bytearray)):
        return b"b" + len(x).to_bytes(4, "big") + bytes(x)
    if x is None:
        return b"n"
    if isinstance(x, float):
        body = x.hex().encode()
        return b"f" + len(body).to_bytes(4, "big") + body
    if isinstance(x, (tuple, list)):
        parts = b"".join(_encode_component(item) for item in x)
        return b"t" + len(x).to_bytes(4, "big") + parts
    body = repr(x).encode()
    return b"r" + len(body).to_bytes(4, "big") + body


def encode_seed(material) -> bytes:
    """Canonical digest of composite seed material.

    The single funnel for every call site that builds seeds out of
    labels, indices, and nested tuples (``(seed, idx)``, ``(seed, "t",
    t)``, …).  All structure is encoded unambiguously before hashing, so
    distinct composites yield distinct seeds regardless of how a caller
    would have stringified them.
    """
    return hashlib.sha256(b"seed:" + _encode_component(material)).digest()


class Rng:
    """Deterministic RNG with fork support, backed by :class:`Prg`."""

    def __init__(self, seed):
        if isinstance(seed, int) and not isinstance(seed, bool):
            seed = seed.to_bytes(16, "big", signed=True)
        elif isinstance(seed, str):
            seed = seed.encode()
        elif not isinstance(seed, (bytes, bytearray)):
            # Composite seeds (tuples of run labels, etc.): canonical,
            # collision-free encoding via encode_seed.
            seed = encode_seed(seed)
        self._prg = Prg(hashlib.sha256(b"rng:" + bytes(seed)).digest())
        self._seed = bytes(seed)

    @property
    def seed_bytes(self) -> bytes:
        """The canonical seed material ``fork`` derives children from.

        Exposed so alternative stream implementations (the vectorized
        backend) can replicate the fork tree without re-encoding the
        original seed object.
        """
        return self._seed

    def fork(self, label: str) -> "Rng":
        """Derive an independent RNG for the given label.

        Forking with the same label twice yields identical streams, so
        labels must be unique per logical consumer.
        """
        return Rng(hashlib.sha256(self._seed + b"/" + label.encode()).digest())

    # -- random.Random-compatible subset -----------------------------------
    def getrandbits(self, k: int) -> int:
        if k < 0:
            raise ValueError("number of bits must be non-negative")
        if k == 0:
            return 0
        nbytes = (k + 7) // 8
        x = int.from_bytes(self._prg.read(nbytes), "big")
        return x >> (nbytes * 8 - k)

    def randbytes(self, n: int) -> bytes:
        return self._prg.read(n)

    def randrange(self, start: int, stop: int = None) -> int:
        if stop is None:
            start, stop = 0, start
        width = stop - start
        if width <= 0:
            raise ValueError(f"empty range ({start}, {stop})")
        k = width.bit_length()
        # Rejection sampling for uniformity.
        while True:
            x = self.getrandbits(k)
            if x < width:
                return start + x

    def randint(self, a: int, b: int) -> int:
        return self.randrange(a, b + 1)

    def random(self) -> float:
        return self.getrandbits(53) / (1 << 53)

    def choice(self, seq: Sequence):
        if not seq:
            raise IndexError("cannot choose from an empty sequence")
        return seq[self.randrange(len(seq))]

    def shuffle(self, xs: list) -> None:
        for i in range(len(xs) - 1, 0, -1):
            j = self.randrange(i + 1)
            xs[i], xs[j] = xs[j], xs[i]

    def sample(self, population: Sequence, k: int) -> list:
        if k > len(population):
            raise ValueError("sample larger than population")
        pool = list(population)
        self.shuffle(pool)
        return pool[:k]

    def coin(self, p_heads: float = 0.5) -> bool:
        """Biased coin toss; True with probability ``p_heads``."""
        if not 0.0 <= p_heads <= 1.0:
            raise ValueError("probability must lie in [0, 1]")
        return self.random() < p_heads
