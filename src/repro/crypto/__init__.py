"""Cryptographic substrates for the fairness library.

Everything is implemented from scratch on SHA-256: MACs (HMAC), commitments,
Lamport one-time signatures, additive/Shamir/authenticated secret sharing,
one-time pads, and a deterministic forkable RNG.  See DESIGN.md §2 for the
mapping from paper primitives to these modules.
"""

from .field import Bits, DEFAULT_PRIME, Field
from .prf import Prg, Rng, encode_seed
from .mac import MacKey, gen_mac_key, tag, verify
from .commitment import Commitment, Opening, commit, open_commitment
from .signature import Signature, SigningKey, VerificationKey, gen, sign, ver
from .secret_sharing import (
    ShamirShare,
    additive_reconstruct,
    additive_share,
    shamir_reconstruct,
    shamir_share,
    xor_reconstruct,
    xor_share,
)
from .authenticated_sharing import (
    AuthenticatedShare,
    ShareVerificationError,
    deal,
    reconstruct,
)
from .otp import blind, blind_vector, gen_pad, unblind
from .vss import VssError, VssShare, VssVerifierKey
from .merkle import MerkleProof, MerkleTree, verify_inclusion
from .mts import (
    MtsPublicKey,
    MtsSignature,
    MtsSigner,
    SignatureCapacityExceeded,
    mts_verify,
)

__all__ = [
    "Bits",
    "DEFAULT_PRIME",
    "Field",
    "Prg",
    "Rng",
    "encode_seed",
    "MacKey",
    "gen_mac_key",
    "tag",
    "verify",
    "Commitment",
    "Opening",
    "commit",
    "open_commitment",
    "Signature",
    "SigningKey",
    "VerificationKey",
    "gen",
    "sign",
    "ver",
    "ShamirShare",
    "additive_reconstruct",
    "additive_share",
    "shamir_reconstruct",
    "shamir_share",
    "xor_reconstruct",
    "xor_share",
    "AuthenticatedShare",
    "ShareVerificationError",
    "deal",
    "reconstruct",
    "blind",
    "blind_vector",
    "gen_pad",
    "unblind",
    "MerkleProof",
    "MerkleTree",
    "verify_inclusion",
    "MtsPublicKey",
    "MtsSignature",
    "MtsSigner",
    "SignatureCapacityExceeded",
    "mts_verify",
    "VssError",
    "VssShare",
    "VssVerifierKey",
]
