"""Message authentication codes.

The paper's authenticated secret sharing (Appendix A) attaches MAC tags to
shares and to the reconstructed secret.  We instantiate with HMAC-SHA256,
which is existentially unforgeable under standard assumptions; the fairness
events never depend on a forgery, so the concrete scheme only needs to make
cheating detectable, which HMAC does except with probability 2^-128.
"""

from __future__ import annotations

from .immutable import Immutable

import hashlib
import hmac
from dataclasses import dataclass

from .prf import Rng

TAG_LENGTH = 16  # bytes; 128-bit tags
KEY_LENGTH = 16  # bytes


@dataclass(frozen=True)
class MacKey(Immutable):
    """An opaque MAC key."""

    material: bytes

    def __post_init__(self):
        if len(self.material) != KEY_LENGTH:
            raise ValueError(f"MAC keys are {KEY_LENGTH} bytes")


def gen_mac_key(rng: Rng) -> MacKey:
    """Sample a fresh MAC key."""
    return MacKey(rng.randbytes(KEY_LENGTH))


def _encode(message) -> bytes:
    """Canonical byte encoding for the message types the library MACs."""
    if isinstance(message, bytes):
        return b"B" + message
    if isinstance(message, int):
        return b"I" + str(message).encode()
    if isinstance(message, str):
        return b"S" + message.encode()
    if isinstance(message, tuple):
        parts = [_encode(m) for m in message]
        inner = b"".join(len(p).to_bytes(4, "big") + p for p in parts)
        return b"T" + inner
    if message is None:
        return b"N"
    raise TypeError(f"cannot MAC message of type {type(message).__name__}")


def tag(message, key: MacKey) -> bytes:
    """Compute a MAC tag for ``message`` under ``key``.

    Mirrors the paper's ``tag(x, k)`` notation.
    """
    return hmac.new(key.material, _encode(message), hashlib.sha256).digest()[
        :TAG_LENGTH
    ]


def verify(message, candidate_tag: bytes, key: MacKey) -> bool:
    """Constant-time verification of a MAC tag."""
    return hmac.compare_digest(tag(message, key), candidate_tag)
