"""Hash-based commitments.

Protocols Π1 and Π2 from the paper's introduction exchange commitments to
signed contracts and to coin-toss bits.  We use the standard hash commitment
``commit(m; r) = H(r ∥ m)`` with a 128-bit random nonce: computationally
hiding (random-oracle style) and binding up to collisions of SHA-256.
"""

from __future__ import annotations

from .immutable import Immutable

import hashlib
import hmac
from dataclasses import dataclass

from .mac import _encode
from .prf import Rng

NONCE_LENGTH = 16


@dataclass(frozen=True)
class Commitment(Immutable):
    """The public commitment string."""

    digest: bytes


@dataclass(frozen=True)
class Opening(Immutable):
    """The opening information: nonce plus the committed message."""

    nonce: bytes
    message: object


def commit(message, rng: Rng) -> tuple:
    """Commit to ``message``; returns ``(Commitment, Opening)``."""
    nonce = rng.randbytes(NONCE_LENGTH)
    digest = hashlib.sha256(nonce + _encode(message)).digest()
    return Commitment(digest), Opening(nonce, message)


def open_commitment(commitment: Commitment, opening: Opening) -> bool:
    """Check that ``opening`` is a valid opening of ``commitment``."""
    if not isinstance(opening, Opening) or not isinstance(commitment, Commitment):
        return False
    try:
        encoded = _encode(opening.message)
    except TypeError:
        return False
    digest = hashlib.sha256(opening.nonce + encoded).digest()
    return hmac.compare_digest(digest, commitment.digest)
