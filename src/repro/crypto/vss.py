"""Verifiable secret sharing (threshold sharing with per-share MACs).

Lemma 17's analysis of Π½GMW relies on the protocol computing a
d(n/2)e-out-of-n *verifiable* secret sharing of the output which is then
publicly reconstructed: any coalition of at most b(n-1)/2c parties cannot
block reconstruction nor learn the secret early, whereas a coalition of
d(n/2)e parties can do both.

We model verifiability with pairwise MACs: the dealer tags each Shamir share
under every receiver's verification key, so wrong shares announced during
public reconstruction are detected and ignored (a (t-1)-adversary cannot
confuse honest parties into accepting a wrong value).
"""

from __future__ import annotations

from .immutable import Immutable

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .field import Field, default_field
from .mac import MacKey, gen_mac_key, tag, verify
from .prf import Rng
from .secret_sharing import ShamirShare, shamir_reconstruct, shamir_share


class VssError(Exception):
    """Raised when public reconstruction cannot complete honestly."""


@dataclass(frozen=True)
class VssShare(Immutable):
    """Party pi's VSS share.

    ``tags[j]`` authenticates ``(x, y)`` under party pj's verification key,
    letting pj check the share when pi broadcasts it.
    """

    holder: int
    share: ShamirShare
    tags: tuple  # tags[j] for each verifier index j in [0, n)


@dataclass(frozen=True)
class VssVerifierKey(Immutable):
    """Party pj's key for checking broadcast shares."""

    index: int
    key: MacKey


def deal(
    secret: int,
    threshold: int,
    n: int,
    rng: Rng,
    field: Field = None,
) -> Tuple[List[VssShare], List[VssVerifierKey]]:
    """Deal a verifiable ``threshold``-out-of-``n`` sharing of ``secret``."""
    field = field or default_field()
    shares = shamir_share(secret, threshold, n, field, rng)
    keys = [
        VssVerifierKey(j, gen_mac_key(rng.fork(f"vss-key-{j}")))
        for j in range(n)
    ]
    vss_shares = []
    for i, sh in enumerate(shares):
        tags = tuple(tag((sh.x, sh.y), keys[j].key) for j in range(n))
        vss_shares.append(VssShare(holder=i, share=sh, tags=tags))
    return vss_shares, keys


def check_broadcast_share(
    announced: VssShare, verifier: VssVerifierKey
) -> bool:
    """Can verifier pj accept pi's announced share?"""
    if not isinstance(announced, VssShare):
        return False
    if verifier.index >= len(announced.tags):
        return False
    return verify(
        (announced.share.x, announced.share.y),
        announced.tags[verifier.index],
        verifier.key,
    )


def public_reconstruct(
    announced: Sequence[VssShare],
    verifier: VssVerifierKey,
    threshold: int,
    field: Field = None,
) -> int:
    """Reconstruct from broadcast shares, discarding invalid ones.

    Raises :class:`VssError` when fewer than ``threshold`` valid shares
    remain — exactly the situation a blocking coalition of size >= n-t+1
    creates in Π½GMW.
    """
    field = field or default_field()
    valid: Dict[int, ShamirShare] = {}
    for ann in announced:
        if check_broadcast_share(ann, verifier):
            valid[ann.share.x] = ann.share
    if len(valid) < threshold:
        raise VssError(
            f"only {len(valid)} valid shares announced, need {threshold}"
        )
    return shamir_reconstruct(list(valid.values()), threshold, field)
