"""Plain (unauthenticated) secret sharing: additive n-of-n and Shamir t-of-n.

Additive sharing underlies both the two-party authenticated scheme from the
paper's Appendix A and the GMW wire sharing (over GF(2)).  Shamir sharing
underlies the honest-majority threshold variant Π½GMW analysed in Lemma 17,
whose d(n/2)e-out-of-n verifiable secret sharing we model with Shamir shares
plus per-share MACs (see :mod:`repro.crypto.vss`).
"""

from __future__ import annotations

from .immutable import Immutable

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .field import Field
from .prf import Rng


# --------------------------------------------------------------------------
# Additive sharing
# --------------------------------------------------------------------------

def additive_share(secret: int, n: int, field: Field, rng: Rng) -> List[int]:
    """Split ``secret`` into ``n`` additive summands over ``field``.

    Any n-1 summands are jointly uniform; all n reconstruct by summation.
    """
    if n < 1:
        raise ValueError("need at least one share")
    secret = field.reduce(secret)
    shares = [field.random_element(rng) for _ in range(n - 1)]
    last = field.sub(secret, field.sum(shares))
    shares.append(last)
    return shares


def additive_reconstruct(shares: Sequence[int], field: Field) -> int:
    """Recombine additive summands."""
    if not shares:
        raise ValueError("no shares to reconstruct from")
    return field.sum(shares)


def xor_share(bit: int, n: int, rng: Rng) -> List[int]:
    """Additive sharing over GF(2): the GMW wire representation."""
    if bit not in (0, 1):
        raise ValueError("xor_share shares single bits")
    shares = [rng.randrange(2) for _ in range(n - 1)]
    last = bit
    for s in shares:
        last ^= s
    shares.append(last)
    return shares


def xor_reconstruct(shares: Sequence[int]) -> int:
    acc = 0
    for s in shares:
        if s not in (0, 1):
            raise ValueError("xor shares must be bits")
        acc ^= s
    return acc


# --------------------------------------------------------------------------
# Shamir sharing
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ShamirShare(Immutable):
    """One party's Shamir share: the evaluation point and the value."""

    x: int
    y: int


def shamir_share(
    secret: int, threshold: int, n: int, field: Field, rng: Rng
) -> List[ShamirShare]:
    """Shamir ``threshold``-out-of-``n`` sharing of ``secret``.

    ``threshold`` shares are necessary and sufficient for reconstruction
    (polynomial degree is ``threshold - 1``).
    """
    if not 1 <= threshold <= n:
        raise ValueError(f"need 1 <= threshold <= n, got t={threshold}, n={n}")
    if n >= field.p:
        raise ValueError("field too small for this many parties")
    coeffs = [field.reduce(secret)] + [
        field.random_element(rng) for _ in range(threshold - 1)
    ]
    return [
        ShamirShare(x=i, y=field.poly_eval(coeffs, i)) for i in range(1, n + 1)
    ]


def shamir_reconstruct(
    shares: Sequence[ShamirShare], threshold: int, field: Field
) -> int:
    """Reconstruct from (at least) ``threshold`` distinct Shamir shares."""
    if len({s.x for s in shares}) < threshold:
        raise ValueError(
            f"need {threshold} distinct shares, got {len(set(s.x for s in shares))}"
        )
    points = [(s.x, s.y) for s in shares[:]]
    # Use exactly `threshold` points; extra consistent shares are redundant.
    seen: Dict[int, int] = {}
    unique = []
    for x, y in points:
        if x not in seen:
            seen[x] = y
            unique.append((x, y))
    return field.lagrange_interpolate_at_zero(unique[:threshold])
