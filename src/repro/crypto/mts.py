"""Many-time hash-based signatures (Merkle-certified Lamport keys).

The Dolev–Strong broadcast substrate needs each party to sign several
messages per execution; plain Lamport keys are one-time.  The classic fix:
generate a batch of one-time key pairs, commit to their verification keys
in a Merkle tree, and publish only the root.  Each signature reveals the
one-time key used plus its authentication path; security reduces to the
one-time scheme plus collision resistance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from . import signature as ots
from .immutable import Immutable
from .merkle import MerkleProof, MerkleTree, verify_inclusion
from .prf import Rng


class SignatureCapacityExceeded(Exception):
    """The signer has used all of its one-time keys."""


def _encode_vk(vk: ots.VerificationKey) -> bytes:
    return b"".join(h0 + h1 for h0, h1 in vk.pairs)


@dataclass(frozen=True)
class MtsSignature(Immutable):
    """A many-time signature: the OTS signature plus key certification."""

    index: int
    ots_signature: ots.Signature
    verification_key: ots.VerificationKey
    proof: MerkleProof


@dataclass(frozen=True)
class MtsPublicKey(Immutable):
    """The Merkle root over the batch of one-time verification keys."""

    root: bytes
    capacity: int


class MtsSigner:
    """Stateful signer over a fixed batch of one-time keys."""

    def __init__(self, rng: Rng, capacity: int = 8):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._keypairs: Tuple = tuple(
            ots.gen(rng.fork(f"mts-{i}")) for i in range(capacity)
        )
        self._tree = MerkleTree(
            [_encode_vk(vk) for _, vk in self._keypairs]
        )
        self._next = 0

    @property
    def public_key(self) -> MtsPublicKey:
        return MtsPublicKey(self._tree.root, self.capacity)

    @property
    def remaining(self) -> int:
        return self.capacity - self._next

    def sign(self, message) -> MtsSignature:
        """Sign with the next unused one-time key."""
        if self._next >= self.capacity:
            raise SignatureCapacityExceeded(
                f"all {self.capacity} one-time keys used"
            )
        index = self._next
        self._next += 1
        sk, vk = self._keypairs[index]
        return MtsSignature(
            index=index,
            ots_signature=ots.sign(message, sk),
            verification_key=vk,
            proof=self._tree.prove(index),
        )


def mts_verify(message, sig: MtsSignature, public_key: MtsPublicKey) -> bool:
    """Verify a many-time signature against the Merkle root."""
    if not isinstance(sig, MtsSignature) or not isinstance(
        public_key, MtsPublicKey
    ):
        return False
    if not 0 <= sig.index < public_key.capacity:
        return False
    if sig.proof.index != sig.index:
        return False
    if not isinstance(sig.verification_key, ots.VerificationKey):
        return False
    if not verify_inclusion(
        public_key.root, _encode_vk(sig.verification_key), sig.proof
    ):
        return False
    return ots.ver(message, sig.ots_signature, sig.verification_key)
