"""Deep-copy shortcut for immutable value objects.

Lock-watching adversaries clone party machines every round (the coalition
probe); machine state is dominated by frozen crypto dataclasses, which are
safe to share across clones.  Mixing this in turns their deep copies into
identity operations.
"""

from __future__ import annotations


class Immutable:
    """Opt-out of deep copying: instances are frozen value objects."""

    __slots__ = ()

    def __deepcopy__(self, memo):
        return self

    def __copy__(self):
        return self
