"""Crash-safe run ledger: durable checkpoints of completed chunk partials.

A :class:`RunJournal` makes a batch *resumable*: every chunk a runner
completes is appended to an on-disk ledger, and a batch restarted with
``resume=True`` (CLI ``--resume`` / ``REPRO_RESUME``) replays the
journaled spans instead of recomputing them.  Soundness rests on the same
contract as the chunk cache: PR 1/2 made every ``(task, seed, span)``
triple bit-identically replayable, so a journaled partial *is* the value
the chunk would compute, the merge order is unchanged, and the resumed
``deterministic_payload`` is byte-identical to an uninterrupted run on
every venue (serial, process-pool, distributed).

Ledger format — built to survive a SIGKILL at any instant:

* One record per chunk under ``<root>/records/<key>.json`` where ``key``
  is the hex fingerprint of the task's canonical content description
  (:meth:`~repro.runtime.tasks.ExecutionTask.cache_material`) plus the
  chunk span and the journal schema version, derived through the same
  injective :func:`~repro.crypto.prf.encode_seed` encoder that seeds the
  runs themselves.  Opaque tasks (no stable content identity) are simply
  never journaled.
* Appends are atomic: write to a temp file in the same directory, fsync,
  ``os.replace``.  A crash mid-append leaves at worst a stray ``.tmp``
  the next load ignores — never a half-written record.
* Every record carries a SHA-256 over its canonical JSON body.  A record
  that fails the checksum, fails to parse, or does not decode to a
  mergeable partial is **quarantined** (moved to ``<root>/quarantine/``)
  and counted — a corrupt ledger degrades to recomputation, never to a
  wrong answer.
* A record whose span matches but whose fingerprint does not (the task
  definition, seed, or fault config changed since the journal was
  written) is a **stale** record: quarantined and counted separately, so
  a resume against the wrong journal is visible in RunStats instead of
  silently recomputing everything.
* Cross-process appends are serialised with an advisory ``flock`` on
  ``<root>/.lock`` where the platform provides one (the atomic replace
  makes concurrent writers safe even without it).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..crypto.prf import encode_seed

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

#: Environment variable naming the journal directory (opt-in).
ENV_JOURNAL_DIR = "REPRO_JOURNAL_DIR"

#: Environment flag requesting replay of journaled spans on the next run.
ENV_RESUME = "REPRO_RESUME"

#: Bumped whenever the meaning of a journaled partial changes (event
#: vocabulary, chunk planning, codec): old records then read as stale
#: instead of poisoning resumed runs.
JOURNAL_SCHEMA_VERSION = 1

_RECORD_SUFFIX = ".json"

_TRUE_FLAGS = ("1", "true", "yes", "on")
_FALSE_FLAGS = ("", "0", "false", "no", "off")


def _env_flag(name: str) -> bool:
    raw = os.environ.get(name, "").strip().lower()
    if raw in _FALSE_FLAGS:
        return False
    if raw in _TRUE_FLAGS:
        return True
    raise ValueError(
        f"{name} must be a boolean flag (1/0/true/false/yes/no/on/off), "
        f"got {raw!r}"
    )


def _canonical(body: dict) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


class RunJournal:
    """Append-only, checksummed ledger of completed chunk partials.

    ``resume`` gates *reads*: a journal always records what the batch
    completes, but only replays prior records when the caller explicitly
    asked to resume — so an operator cannot accidentally serve a fresh
    run from last week's ledger.
    """

    def __init__(self, root, resume: bool = False):
        self.root = Path(root)
        self.resume = bool(resume)
        self.records_dir = self.root / "records"
        self.quarantine_dir = self.root / "quarantine"
        self.records_dir.mkdir(parents=True, exist_ok=True)
        self._lock_path = self.root / ".lock"
        self._index: Optional[Dict[str, dict]] = None
        self._by_span: Dict[Tuple[str, int, int], List[str]] = {}
        # Incremental quarantine counts, drained by the runner into the
        # BatchLog so RunStats attributes them to the right batch.
        self._new_corrupt = 0
        self._new_stale = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RunJournal(root={str(self.root)!r}, resume={self.resume})"

    @classmethod
    def from_env(cls) -> Optional["RunJournal"]:
        """Journal implied by ``REPRO_JOURNAL_DIR`` / ``REPRO_RESUME``.

        ``None`` when no directory is named; a resume request without a
        journal directory is a configuration error, not a silent no-op.
        """
        raw = os.environ.get(ENV_JOURNAL_DIR, "").strip()
        resume = _env_flag(ENV_RESUME)
        if not raw:
            if resume:
                raise ValueError(
                    f"{ENV_RESUME} is set but {ENV_JOURNAL_DIR} names no "
                    "journal directory to resume from"
                )
            return None
        return cls(raw, resume=resume)

    # -- keys ----------------------------------------------------------------

    def key_for(self, task, start: int, stop: int) -> Optional[str]:
        """Fingerprint of one chunk, or ``None`` when the task is opaque."""
        material = getattr(task, "cache_material", None)
        if material is None:
            return None
        material = material()
        if material is None:
            return None
        return encode_seed(
            ("run-journal", JOURNAL_SCHEMA_VERSION, material, start, stop)
        ).hex()

    def _record_path(self, key: str) -> Path:
        return self.records_dir / (key + _RECORD_SUFFIX)

    # -- locking -------------------------------------------------------------

    @contextmanager
    def _locked(self):
        """Advisory cross-process exclusion for ledger mutation."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        with open(self._lock_path, "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # -- appends -------------------------------------------------------------

    def record(self, task, task_index: int, start: int, stop: int, partial) -> bool:
        """Durably append one completed chunk; ``True`` when journaled.

        Best-effort like the chunk cache: an opaque task, an unencodable
        partial, or a full disk makes the chunk unjournaled (it will be
        recomputed on resume), never a failed batch.
        """
        key = self.key_for(task, start, stop)
        if key is None:
            return False
        from .distributed.wire import WireError, encode_partial

        try:
            payload = encode_partial(partial)
        except WireError:
            return False
        body = {
            "schema": JOURNAL_SCHEMA_VERSION,
            "key": key,
            "task_label": str(getattr(task, "label", "")),
            "task_index": task_index,
            "start": start,
            "stop": stop,
            "partial": payload,
        }
        record = dict(body)
        record["sha256"] = hashlib.sha256(_canonical(body)).hexdigest()
        path = self._record_path(key)
        try:
            with self._locked():
                fd, tmp = tempfile.mkstemp(
                    dir=str(self.records_dir), suffix=".tmp"
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as handle:
                        json.dump(record, handle, separators=(",", ":"))
                        handle.flush()
                        os.fsync(handle.fileno())
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
        except OSError:
            return False
        if self._index is not None:
            self._index[key] = record
            span = (body["task_label"], start, stop)
            keys = self._by_span.setdefault(span, [])
            if key not in keys:
                keys.append(key)
        return True

    # -- replay --------------------------------------------------------------

    def _verify_record(self, path: Path) -> Optional[dict]:
        """Parse + checksum one record file; ``None`` when corrupt."""
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict):
            return None
        digest = record.get("sha256")
        body = {k: v for k, v in record.items() if k != "sha256"}
        try:
            expected = hashlib.sha256(_canonical(body)).hexdigest()
        except (TypeError, ValueError):
            return None
        if digest != expected:
            return None
        key = record.get("key")
        if not isinstance(key, str) or path.name != key + _RECORD_SUFFIX:
            # A record renamed onto the wrong key must not satisfy that
            # key's fetch: the fingerprint is part of the integrity story.
            return None
        if not isinstance(record.get("start"), int) or not isinstance(
            record.get("stop"), int
        ):
            return None
        return record

    def _load(self) -> None:
        if self._index is not None:
            return
        index: Dict[str, dict] = {}
        by_span: Dict[Tuple[str, int, int], List[str]] = {}
        with self._locked():
            for path in sorted(self.records_dir.glob("*" + _RECORD_SUFFIX)):
                record = self._verify_record(path)
                if record is None:
                    self._quarantine(path)
                    self._new_corrupt += 1
                    continue
                key = record["key"]
                index[key] = record
                span = (
                    str(record.get("task_label", "")),
                    record["start"],
                    record["stop"],
                )
                by_span.setdefault(span, []).append(key)
        self._index = index
        self._by_span = by_span

    def fetch(self, task, task_index: int, start: int, stop: int):
        """``(True, partial)`` when a resumable record exists.

        Only consults the ledger when ``resume`` was requested.  A miss
        quarantines any *stale* records for the same span (same task
        label and run range, different content fingerprint — the task
        changed under the journal) so they are counted rather than
        silently ignored forever.
        """
        if not self.resume:
            return False, None
        self._load()
        assert self._index is not None
        key = self.key_for(task, start, stop)
        if key is None:
            return False, None
        record = self._index.get(key)
        if record is None:
            span = (str(getattr(task, "label", "")), start, stop)
            for other in self._by_span.pop(span, []):
                if self._index.pop(other, None) is not None:
                    self._quarantine(self._record_path(other))
                    self._new_stale += 1
            return False, None
        from .distributed.wire import WireError, decode_partial

        try:
            partial = decode_partial(record["partial"])
        except (WireError, KeyError, TypeError, ValueError):
            self._index.pop(key, None)
            self._quarantine(self._record_path(key))
            self._new_corrupt += 1
            return False, None
        return True, partial

    # -- bookkeeping ---------------------------------------------------------

    def _quarantine(self, path: Path) -> None:
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass

    def drain_new_counts(self) -> Dict[str, int]:
        """Quarantine counts since the last drain (corrupt / stale)."""
        counts = {"corrupt": self._new_corrupt, "stale": self._new_stale}
        self._new_corrupt = 0
        self._new_stale = 0
        return counts

    def __len__(self) -> int:
        """Number of live (non-quarantined) records on disk."""
        return sum(1 for _ in self.records_dir.glob("*" + _RECORD_SUFFIX))


def resolve_journal(path=None, resume: Optional[bool] = None) -> Optional[RunJournal]:
    """Explicit path > ``REPRO_JOURNAL_DIR`` > no journal.

    ``resume`` composes with ``REPRO_RESUME`` (either requests a resume);
    resuming with no journal directory raises — there is nothing to
    resume from, and pretending otherwise would silently recompute.
    """
    env_resume = _env_flag(ENV_RESUME)
    resume = env_resume if resume is None else bool(resume) or env_resume
    if path is not None:
        return RunJournal(path, resume=resume)
    raw = os.environ.get(ENV_JOURNAL_DIR, "").strip()
    if raw:
        return RunJournal(raw, resume=resume)
    if resume:
        raise ValueError(
            f"--resume requested but neither --journal nor {ENV_JOURNAL_DIR} "
            "names a journal directory to resume from"
        )
    return None
