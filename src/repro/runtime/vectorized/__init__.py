"""The vectorized batch-execution backend.

A NumPy engine that evaluates whole Monte-Carlo chunks of eligible
``(protocol, adversary strategy)`` combinations as array operations over
stacked per-run RNG streams, instead of stepping the
``engine.execution`` state machine once per run.  Results are
bit-identical to the reference engine — same ``EventCounts``, same cache
keys, same ``deterministic_payload`` — because every kernel recomputes
the exact labelled SHA-256 streams the reference ``Rng`` forks would
produce (see :mod:`.streams`) and derives the per-run fairness event in
closed form (see :mod:`.kernels`).

Public surface:

* :func:`resolve_backend` / :data:`BACKENDS` / :data:`ENV_BACKEND` — the
  ``auto``/``reference``/``vectorized`` dispatch policy;
* :func:`kernel_for` / :func:`vectorizable` / :func:`register_kernel` —
  the vectorizability registry;
* :data:`HAVE_NUMPY` — whether the backend can run at all.
"""

from __future__ import annotations

from .np_compat import HAVE_NUMPY
from .registry import (
    BACKENDS,
    COUNTERS,
    ENV_BACKEND,
    BackendError,
    SentinelRng,
    SentinelRngUsed,
    kernel_for,
    register_kernel,
    resolve_backend,
    vectorizable,
)

__all__ = [
    "BACKENDS",
    "COUNTERS",
    "ENV_BACKEND",
    "BackendError",
    "HAVE_NUMPY",
    "SentinelRng",
    "SentinelRngUsed",
    "kernel_for",
    "register_kernel",
    "resolve_backend",
    "vectorizable",
]
