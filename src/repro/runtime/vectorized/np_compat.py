"""Guarded NumPy import for the vectorized backend.

The vectorized engine is strictly optional: when NumPy is missing the
dispatcher reports every task as non-vectorizable and the reference
engine handles the whole batch, so nothing above this module needs to
care.  Import ``np``/``HAVE_NUMPY`` from here instead of importing numpy
directly — that keeps the degradation decision in exactly one place.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised implicitly by every vectorized test
    import numpy as np

    HAVE_NUMPY = True
except Exception:  # pragma: no cover - numpy-less environments
    np = None
    HAVE_NUMPY = False


def require_numpy() -> None:
    """Raise a clear error when numpy-dependent code is reached without it."""
    if not HAVE_NUMPY:
        raise RuntimeError(
            "the vectorized backend needs numpy, which is not installed; "
            "install numpy or use --backend reference"
        )
