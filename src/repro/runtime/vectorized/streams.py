"""Vectorized replicas of :class:`repro.crypto.prf.Rng` draw semantics.

Each helper reproduces, bit for bit, what one labelled ``Rng`` sub-stream
of the reference engine would produce — but for N runs at once, with the
run dimension mapped onto NumPy arrays:

* ``fork``: child seed = ``sha256(parent_seed + b"/" + label)``; labels
  are independent of consumption order, so a kernel may derive exactly
  the sub-streams it needs and skip the rest.
* ``Prg``: block ``j`` of a stream is ``sha256(prgseed + j.to_bytes(8))``
  where ``prgseed = sha256(b"rng:" + seed)``; draws consume bytes
  front-to-back.
* ``random()``: 7 stream bytes, big-endian, ``>> 3``, divided by 2**53.
  Multiplying the integer by ``2.0**-53`` is exact in float64 (the
  mantissa fits), so the ``< alpha`` comparisons below agree with
  CPython's float division to the last ulp.
* ``randrange(w)`` / ``choice``: rejection sampling over
  ``getrandbits(w.bit_length())``, each attempt consuming
  ``ceil(bits/8)`` bytes and keeping the top ``bits`` of them.

Every lane of a batch consumes draws in lockstep (draw ``t`` of every
lane sits at the same byte offset), so a labelled stream needs no
per-lane cursor — rejection loops simply shrink the active lane set.
"""

from __future__ import annotations

from typing import List

from .np_compat import np, require_numpy
from .sha import rows_with_suffix, sha256_batch

_RNG_PREFIX = b"rng:"


def fork_rows(seeds, label: bytes) -> "np.ndarray":
    """``Rng.fork(label)`` for every row of an (N, 32) seed matrix."""
    return sha256_batch(rows_with_suffix(seeds, b"/" + label))


def prg_seeds(seeds) -> "np.ndarray":
    """Per-lane ``Prg`` seeds: ``sha256(b"rng:" + seed)``."""
    require_numpy()
    prefix = np.frombuffer(_RNG_PREFIX, dtype=np.uint8)
    seeds = np.ascontiguousarray(seeds, dtype=np.uint8)
    msgs = np.empty(
        (seeds.shape[0], len(prefix) + seeds.shape[1]), dtype=np.uint8
    )
    msgs[:, : len(prefix)] = prefix
    msgs[:, len(prefix):] = seeds
    return sha256_batch(msgs)


class PrgMatrix:
    """Lazily-extended counter-mode byte streams for N lanes.

    Holds one growing ``(N, 32*blocks)`` byte matrix; ``ensure(nbytes)``
    appends whole blocks until every lane has at least ``nbytes`` of
    stream available.  Lanes are never extended individually — callers
    shrink the lane set instead (see the rejection loops below).
    """

    def __init__(self, rng_seeds):
        require_numpy()
        self._prg_seeds = prg_seeds(rng_seeds)
        self._blocks: List["np.ndarray"] = []

    @property
    def n_lanes(self) -> int:
        return self._prg_seeds.shape[0]

    def subset(self, selector) -> "PrgMatrix":
        """A view of this stream restricted to the selected lanes.

        Carries the already-generated blocks over, so shrinking the lane
        set inside a rejection/first-success loop never re-hashes earlier
        counters for the surviving lanes.
        """
        clone = object.__new__(PrgMatrix)
        clone._prg_seeds = self._prg_seeds[selector]
        clone._blocks = [block[selector] for block in self._blocks]
        return clone

    def ensure(self, nbytes: int) -> None:
        while len(self._blocks) * 32 < nbytes:
            counter = len(self._blocks).to_bytes(8, "big")
            self._blocks.append(
                sha256_batch(rows_with_suffix(self._prg_seeds, counter))
            )

    def take(self, offset: int, nbytes: int) -> "np.ndarray":
        """Bytes ``[offset, offset + nbytes)`` of every lane's stream."""
        self.ensure(offset + nbytes)
        stream = np.concatenate(self._blocks, axis=1)
        return stream[:, offset: offset + nbytes]


def _bytes_to_uint64(chunk) -> "np.ndarray":
    """Big-endian bytes (N, b<=8) -> uint64 per lane."""
    out = np.zeros(chunk.shape[0], dtype=np.uint64)
    for col in range(chunk.shape[1]):
        out = (out << np.uint64(8)) | chunk[:, col].astype(np.uint64)
    return out


def random_draw(prg: PrgMatrix, draw_index: int) -> "np.ndarray":
    """Draw ``draw_index`` of ``Rng.random()`` for every lane (float64).

    ``random()`` is ``getrandbits(53)/2**53``; 53 bits read 7 bytes and
    shift right by 3.  Consecutive ``random()`` calls therefore sit at
    7-byte strides.
    """
    raw = _bytes_to_uint64(prg.take(7 * draw_index, 7))
    return (raw >> np.uint64(3)).astype(np.float64) * (2.0 ** -53)


def randrange_rows(rng_seeds, width: int) -> "np.ndarray":
    """One ``Rng.randrange(width)`` draw per lane, as int64.

    Mirrors the reference rejection loop exactly: attempt ``t`` reads
    ``ceil(k/8)`` bytes at offset ``t*ceil(k/8)`` (``k`` = bit length of
    ``width``), keeps the top ``k`` bits, and accepts when the value is
    below ``width``.  Lanes that accept drop out of the loop; the stream
    matrix only grows when some lane is still rejecting.
    """
    require_numpy()
    if width <= 0:
        raise ValueError("width must be positive")
    bits = width.bit_length()
    nbytes = (bits + 7) // 8
    shift = np.uint64(nbytes * 8 - bits)

    n = rng_seeds.shape[0]
    values = np.empty(n, dtype=np.int64)
    lanes = np.arange(n)
    prg = PrgMatrix(rng_seeds)
    attempt = 0
    while lanes.size:
        chunk = prg.take(attempt * nbytes, nbytes)[lanes]
        drawn = (_bytes_to_uint64(chunk) >> shift).astype(np.int64)
        accepted = drawn < width
        values[lanes[accepted]] = drawn[accepted]
        lanes = lanes[~accepted]
        attempt += 1
    return values
