"""Vectorized kernel: Gordon–Katz 1/p protocols vs the known-output stopper.

The reference engine steps ~``reveal_rounds`` protocol rounds per run and
has ShareGen derive hundreds of labelled sub-streams (pads, MAC keys,
full fake streams for both parties).  Under the registered worst-case
adversary the fairness event of a run is a closed-form function of a
handful of those streams, because every labelled ``Rng`` fork depends
only on its seed and label — never on how much of any sibling stream was
consumed.  Per run the event is determined by:

* ``i_star`` — ShareGen's geometric switch round, the first
  ``random() < alpha`` success of the ``i_star`` sub-stream;
* the corrupted party's value stream ``s_c[j] = fake_c(j+1)`` for
  ``j+1 < i_star`` and ``y_c`` after — the stopper aborts at the first
  index ``j*`` with ``s_c[j*] == known_output`` (it peeks index ``j`` via
  the rushing token at round ``j+1``);
* the honest party's abort output — its last banked value
  ``fake_h(j*)``, or ShareGen's ``fallback_h`` when ``j* = 0``.

From those, exactly as ``classify_gk`` computes on the transcript:
``learned = (j* >= i_star - 1)`` (the corrupted party saw a real value)
and ``honest = (abort output == y_h)``; a run whose stream never shows
``known_output`` completes normally (E11).  Each quantity is evaluated
for the whole chunk at once over batched SHA-256 lanes; the fake values
come from a precomputed table indexed by the vectorized ``choice`` draw.
"""

from __future__ import annotations

from typing import Optional

from ....core.events import FairnessEvent
from ....core.utility import EventCounts
from ..np_compat import np
from ..sha import rows_with_rows, sha256_batch
from ..streams import PrgMatrix, fork_rows, random_draw, randrange_rows

_VALUE_MASK = (1 << 64) - 1
#: Largest fake-value table the kernel will precompute.
_MAX_DOMAIN = 1 << 16

_EVENT_BY_CODE = (
    FairnessEvent.E00,
    FairnessEvent.E01,
    FairnessEvent.E10,
    FairnessEvent.E11,
)


def _ascii_digits(values, digits: int):
    """Decimal ASCII rendering of ``values`` (all with ``digits`` digits)."""
    tail = np.empty((values.size, digits), dtype=np.uint8)
    rem = values.astype(np.int64).copy()
    for col in range(digits - 1, -1, -1):
        tail[:, col] = (rem % 10 + ord("0")).astype(np.uint8)
        rem //= 10
    return tail


def run_seed_rows(master_seed: bytes, start: int, stop: int):
    """Seed matrix of ``Rng(seed).fork(f"run-{k}")`` for k in [start, stop).

    Rows are grouped by the decimal width of ``k`` so every
    ``sha256_batch`` call sees equal-length messages.
    """
    out = np.empty((stop - start, 32), dtype=np.uint8)
    prefix = np.frombuffer(master_seed + b"/run-", dtype=np.uint8)
    k = start
    while k < stop:
        digits = len(str(k))
        hi = min(stop, 10 ** digits)
        ks = np.arange(k, hi)
        msgs = np.empty((ks.size, prefix.size + digits), dtype=np.uint8)
        msgs[:, : prefix.size] = prefix
        msgs[:, prefix.size:] = _ascii_digits(ks, digits)
        out[k - start: hi - start] = sha256_batch(msgs)
        k = hi
    return out


def _first_success(istar_seeds, alpha: float, rounds: int):
    """Vectorized ``GkShareGen._draw_i_star``: per-lane geometric switch
    round, truncated to ``[1, rounds]`` (draw ``t`` succeeding means
    ``i_star = t + 1``; at most ``rounds - 1`` draws)."""
    n = istar_seeds.shape[0]
    i_star = np.full(n, rounds, dtype=np.int64)
    lanes = np.arange(n)
    prg = PrgMatrix(istar_seeds)
    for t in range(rounds - 1):
        if not lanes.size:
            break
        success = random_draw(prg, t) < alpha
        i_star[lanes[success]] = t + 1
        lanes = lanes[~success]
        prg = prg.subset(~success)
    return i_star


def _fake_table(func, inputs, variant: str, party: int):
    """``(width, table)`` replicating ``fake_samplers[party]``: the table
    maps the sampler's single ``choice`` index to the masked fake value."""
    if variant == "range":
        domain = func.output_domain
        values = [int(z) & _VALUE_MASK for z in domain]
    else:
        other = 1 - party
        domain = func.input_domains[other]
        values = []
        for x in domain:
            fake = list(inputs)
            fake[other] = x
            values.append(int(func.outputs_for(tuple(fake))[party]) & _VALUE_MASK)
    return len(domain), np.array(values, dtype=np.uint64)


def _int_sampler_draws(sg_seeds, label: bytes, width: int, table):
    """Fake/fallback values for every row: fork ``label``, one
    ``choice``-style draw, table lookup."""
    idx = randrange_rows(fork_rows(sg_seeds, label), width)
    return table[idx]


def matcher(task, adversary) -> Optional[callable]:
    """Kernel for ``GordonKatzProtocol`` vs ``KnownOutputStopper``."""
    from ....adversaries.gk_aborter import KnownOutputStopper
    from ....protocols.gordon_katz import GordonKatzProtocol

    protocol = task.protocol
    if type(protocol) is not GordonKatzProtocol:
        return None
    if type(adversary) is not KnownOutputStopper:
        return None
    if adversary.start_round != 0:
        return None
    c = adversary.corrupt_index
    if c not in (0, 1) or adversary._static_corruptions != {c}:
        return None
    v = adversary.known_output
    if not isinstance(v, int) or not 0 <= v <= _VALUE_MASK:
        return None
    # The event depends on the run's inputs (through y_c/y_h and the
    # domain-variant fake tables), so only pinned-input batches vectorize.
    sampler = task.input_sampler
    token = getattr(sampler, "cache_token", None)
    if not (isinstance(token, str) and token.startswith("const:")):
        return None
    inputs = tuple(sampler(None))
    func = protocol.func
    if len(inputs) != func.n_parties or func.n_parties != 2:
        return None
    if not all(isinstance(x, int) for x in inputs):
        return None
    variant = protocol.variant
    if variant == "range":
        if func.output_domain is None or len(func.output_domain) > _MAX_DOMAIN:
            return None
    elif variant == "domain":
        if func.input_domains is None or any(
            d is None or len(d) > _MAX_DOMAIN for d in func.input_domains
        ):
            return None
    else:
        return None

    h = 1 - c
    outputs = func.outputs_for(inputs)
    if not all(
        isinstance(y, int) and 0 <= y <= _VALUE_MASK for y in outputs
    ):
        return None
    y_c = int(outputs[c])
    y_h = int(outputs[h])
    alpha = protocol.alpha
    rounds = protocol.reveal_rounds
    width_c, table_c = _fake_table(func, inputs, variant, c)
    width_h, table_h = _fake_table(func, inputs, variant, h)
    from ....crypto.prf import Rng

    master_seed = Rng(task.seed).seed_bytes
    corruption = frozenset({c})

    def kernel(start: int, stop: int) -> EventCounts:
        n = stop - start
        run_seeds = run_seed_rows(master_seed, start, stop)
        exec_seeds = fork_rows(run_seeds, b"exec")
        sg_seeds = fork_rows(exec_seeds, b"F_sharegen_gk@0")
        i_star = _first_success(
            fork_rows(sg_seeds, b"i_star"), alpha, rounds
        )

        # Scan the corrupted party's fake region for the first value equal
        # to known_output; stream index j = i - 1.
        j_star = np.full(n, -1, dtype=np.int64)
        unresolved = np.ones(n, dtype=bool)
        for i in range(1, rounds):
            active = np.where(unresolved & (i < i_star))[0]
            if not active.size:
                # i only grows, so no unresolved lane can re-enter the
                # fake region once none is in it.
                break
            fakes = _int_sampler_draws(
                sg_seeds[active], b"fake-%d-%d" % (c, i), width_c, table_c
            )
            hits = active[fakes == v]
            j_star[hits] = i - 1
            unresolved[hits] = False
        # Lanes that exhausted the fake region reach the real value y_c.
        if y_c == v:
            real_hits = np.where(unresolved)[0]
            j_star[real_hits] = i_star[real_hits] - 1
            unresolved[real_hits] = False
        no_hit = unresolved

        # Honest party's abort output: fallback before any reveal, else
        # its own last banked (fake) value fake_h(j*).
        honest_ok = np.zeros(n, dtype=bool)
        j0 = np.where(~no_hit & (j_star == 0))[0]
        if j0.size:
            values = _int_sampler_draws(
                sg_seeds[j0], b"fallback-%d" % h, width_h, table_h
            )
            honest_ok[j0] = values == y_h
        prefix = b"/fake-%d-" % h
        pref_arr = np.frombuffer(prefix, dtype=np.uint8)
        remaining = np.where(~no_hit & (j_star >= 1))[0]
        for digits in range(1, len(str(rounds)) + 1):
            lo = 1 if digits == 1 else 10 ** (digits - 1)
            hi = 10 ** digits
            sel = remaining[(j_star[remaining] >= lo) & (j_star[remaining] < hi)]
            if not sel.size:
                continue
            tails = np.empty((sel.size, pref_arr.size + digits), dtype=np.uint8)
            tails[:, : pref_arr.size] = pref_arr
            tails[:, pref_arr.size:] = _ascii_digits(j_star[sel], digits)
            rng_seeds = sha256_batch(rows_with_rows(sg_seeds[sel], tails))
            values = table_h[randrange_rows(rng_seeds, width_h)]
            honest_ok[sel] = values == y_h

        learned = np.zeros(n, dtype=bool)
        learned[~no_hit] = (j_star == i_star - 1)[~no_hit]
        learned[no_hit] = True
        honest_ok[no_hit] = True

        codes = learned.astype(np.int64) * 2 + honest_ok.astype(np.int64)
        tally = np.bincount(codes, minlength=4)
        counts = EventCounts()
        for code, event in enumerate(_EVENT_BY_CODE):
            if tally[code]:
                counts.counts[event] += int(tally[code])
        counts.corruption_counts[corruption] = n
        return counts

    return kernel
