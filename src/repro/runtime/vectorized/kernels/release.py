"""Vectorized kernel: release-style protocols vs the lock-watching aborter.

``SingleRoundProtocol`` and ``GradualReleaseProtocol`` against
``LockWatchingAborter`` produce a *structurally constant* fairness event:
the aborter's coalition probe first reconstructs one step ahead at a
round fixed by the message schedule (round 1 for the single-round
protocol; the final bit-release round for gradual release), it then
claims the — always correct — reconstructed output and withholds the
corrupted share, and the honest party's next step finds an empty inbox
and outputs ⊥.  Neither the abort round nor either side's
learned/not-learned status depends on the run's inputs or randomness, so
the per-run event is a constant of the ``(protocol, corruption set)``
pair: E10 for a partial corruption, E11 when every party is corrupted
(the all-corrupted convention), E01 for the empty coalition.

Rather than hard-coding that table, the matcher *calibrates*: it runs
one reference execution at build time and replicates its classified
event across the chunk.  That keeps the kernel exact even if the event
table above ever shifts, at the cost of a single reference run per task.
"""

from __future__ import annotations

from typing import Optional

from ....core.events import FairnessEvent, classify
from ....core.utility import EventCounts
from ....crypto.prf import Rng
from ....engine.execution import ProtocolViolation, run_execution

_CALIBRATION_SEED = "repro-vectorized-release-calibration"


def _calibrate(protocol, factory):
    """Classify one reference run (default inputs, throwaway rng)."""
    rng = Rng((_CALIBRATION_SEED, protocol.name))
    inputs = protocol.func.default_inputs
    adversary = factory(rng.fork("adversary"))
    try:
        result = run_execution(protocol, inputs, adversary, rng.fork("exec"))
    except ProtocolViolation:
        return None, None
    if result.hung:
        return None, None
    event = protocol.classify_result(result)
    if event is None:
        event = classify(result, protocol.func)
    return event, frozenset(result.corrupted)


def matcher(task, adversary) -> Optional[callable]:
    """Kernel for the release-family protocols vs ``LockWatchingAborter``."""
    from ....adversaries.aborting import LockWatchingAborter
    from ....protocols.gradual_release import GradualReleaseProtocol
    from ....protocols.single_round import SingleRoundProtocol

    protocol = task.protocol
    if type(protocol) not in (SingleRoundProtocol, GradualReleaseProtocol):
        return None
    # Exact type: subclasses (e.g. the rng-seeded random corruptor) may
    # deviate in ways the constant-event argument does not cover.
    if type(adversary) is not LockWatchingAborter:
        return None
    event, corruption = _calibrate(protocol, task.factory)
    if not isinstance(event, FairnessEvent):
        return None

    def kernel(start: int, stop: int) -> EventCounts:
        n = stop - start
        counts = EventCounts()
        counts.counts[event] += n
        counts.corruption_counts[corruption] = n
        return counts

    return kernel
