"""Protocol-family kernels for the vectorized backend.

Importing this package registers every built-in kernel matcher with
:mod:`..registry`.  One module per protocol family; each module exposes a
``matcher(task, adversary)`` that returns a chunk kernel (a callable
``kernel(start, stop) -> EventCounts``) when the task is eligible, and
``None`` otherwise.
"""

from __future__ import annotations

from ..registry import register_kernel
from . import gordon_katz, release

register_kernel(gordon_katz.matcher)
register_kernel(release.matcher)

__all__ = ["gordon_katz", "release"]
