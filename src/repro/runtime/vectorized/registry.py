"""Vectorizability registry and backend dispatch policy.

The dispatcher answers one question per task: *is there a kernel that
reproduces the reference engine's event counts bit-for-bit for this
exact ``(protocol, adversary strategy, input sampler)`` combination?*
Kernels register a *matcher*; :func:`kernel_for` runs the matchers once
per task (memoized on the task object) behind hard eligibility gates:

* NumPy present, task is an :class:`~repro.runtime.tasks.ExecutionTask`
  (anything else — e.g. a transcript-digest task — needs the real
  engine), and no active fault spec;
* the adversary factory ignores its per-run RNG — probed by building one
  instance with a :class:`SentinelRng` that raises on any use, which is
  what keeps rng-consuming strategies (random corruption draws) on the
  reference engine.

The *backend policy* — ``auto`` / ``reference`` / ``vectorized`` — comes
from an explicit runner argument or the ``REPRO_BACKEND`` environment
variable.  ``auto`` silently falls back per task; ``vectorized`` is an
assertion and raises on any non-vectorizable task; ``reference`` never
consults the registry.  The chosen engine is visible afterwards in
``RunStats`` (``execution_backend`` / ``vectorized_runs``).
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional

from .np_compat import HAVE_NUMPY

#: Recognised backend policies, in CLI order.
BACKENDS = ("auto", "reference", "vectorized")

#: Environment variable consulted when no explicit backend is passed.
ENV_BACKEND = "REPRO_BACKEND"

#: Module-level monotonic counters, shipped through the same
#: instrumentation snapshot/delta channel as the cache and memo counters
#: (workers ship deltas back to the parent inside chunk results).
COUNTERS = {"vectorized_runs": 0}


class BackendError(ValueError):
    """A backend request that cannot be honoured."""


class SentinelRngUsed(RuntimeError):
    """Raised by :class:`SentinelRng` on any attempted use."""


class SentinelRng:
    """An ``Rng`` stand-in that raises on any draw or fork.

    Adversary factories are probed with one of these: a factory that
    completes without touching it is per-run-RNG-free, so a single built
    instance characterises the strategy for the whole batch.
    """

    __slots__ = ()

    def __getattr__(self, name: str):
        raise SentinelRngUsed(
            f"adversary factory consumed per-run randomness ({name})"
        )


_MATCHERS: List[Callable] = []

_KERNEL_ATTR = "_vectorized_kernel"
_UNSET = object()


def register_kernel(matcher: Callable) -> Callable:
    """Add a ``matcher(task, adversary) -> kernel | None`` to the registry.

    Matchers run in registration order; the first non-``None`` kernel
    wins.  A kernel is a callable ``kernel(start, stop) -> partial``
    whose result must be *identical* (not just statistically equal) to
    ``task.run_chunk(start, stop)``.
    """
    _MATCHERS.append(matcher)
    return matcher


def resolve_backend(backend: Optional[str] = None) -> str:
    """Normalise a backend request: explicit arg, else env, else auto."""
    value = backend or os.environ.get(ENV_BACKEND) or "auto"
    if value not in BACKENDS:
        raise BackendError(
            f"unknown backend {value!r}; expected one of {', '.join(BACKENDS)}"
        )
    return value


def kernel_for(task) -> Optional[Callable]:
    """The task's vectorized chunk kernel, or ``None`` (memoized)."""
    cached = getattr(task, _KERNEL_ATTR, _UNSET)
    if cached is not _UNSET:
        return cached
    kernel = _build_kernel(task)
    try:
        setattr(task, _KERNEL_ATTR, kernel)
    except (AttributeError, TypeError):
        pass  # slotted/frozen tasks just re-probe per chunk
    return kernel


def _build_kernel(task) -> Optional[Callable]:
    from . import kernels  # noqa: F401  (importing registers the matchers)
    from ..tasks import ExecutionTask

    if not HAVE_NUMPY:
        return None
    if not isinstance(task, ExecutionTask):
        return None
    if task.faults is not None and getattr(task.faults, "active", True):
        return None
    try:
        adversary = task.factory(SentinelRng())
    except SentinelRngUsed:
        return None
    for matcher in list(_MATCHERS):
        kernel = matcher(task, adversary)
        if kernel is not None:
            return kernel
    return None


def vectorizable(task) -> bool:
    """Whether the dispatcher would hand this task to a kernel."""
    return kernel_for(task) is not None
