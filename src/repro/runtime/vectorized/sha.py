"""Batched SHA-256 over NumPy byte matrices.

The whole determinism contract of the runtime bottoms out in SHA-256:
``Rng.fork`` derives child seeds as ``sha256(seed + b"/" + label)`` and
``Prg`` expands seeds in counter mode as ``sha256(prgseed + counter)``.
Vectorizing a protocol therefore means vectorizing exactly those two
shapes — N independent messages of *identical* byte length, hashed to N
digests.  This module implements the FIPS 180-4 compression function
with the lane dimension mapped onto NumPy arrays: the Python-level loops
run over the 64 rounds and the (few) 64-byte blocks, never over runs.

Correctness is checked against :mod:`hashlib` in the test suite; the
reference engine never calls into this module.
"""

from __future__ import annotations

from .np_compat import np, require_numpy

#: FIPS 180-4 round constants (fractional parts of cube roots of primes).
_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

#: Initial hash state (fractional parts of square roots of primes).
_H0 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)


def _rotr(x, n: int):
    # uint32 arrays: numpy wraps shifts/additions mod 2**32, which is
    # exactly the arithmetic SHA-256 wants.
    return (x >> np.uint32(n)) | (x << np.uint32(32 - n))


def sha256_batch(msgs) -> "np.ndarray":
    """SHA-256 of N equal-length messages.

    ``msgs`` is an ``(N, L)`` uint8 array (one message per row, all rows
    the same length — group variable-length labels by length before
    calling).  Returns the ``(N, 32)`` uint8 digest matrix.
    """
    require_numpy()
    msgs = np.ascontiguousarray(msgs, dtype=np.uint8)
    if msgs.ndim != 2:
        raise ValueError("sha256_batch wants an (N, L) byte matrix")
    n, length = msgs.shape

    # Standard padding: 0x80, zeros, 64-bit big-endian bit length.
    padded_len = ((length + 8) // 64 + 1) * 64
    data = np.zeros((n, padded_len), dtype=np.uint8)
    data[:, :length] = msgs
    data[:, length] = 0x80
    bit_len = (length * 8).to_bytes(8, "big")
    data[:, -8:] = np.frombuffer(bit_len, dtype=np.uint8)

    # (N, blocks, 16) big-endian 32-bit words.
    quads = data.reshape(n, padded_len // 64, 16, 4).astype(np.uint32)
    words = (
        (quads[..., 0] << np.uint32(24))
        | (quads[..., 1] << np.uint32(16))
        | (quads[..., 2] << np.uint32(8))
        | quads[..., 3]
    )

    state = [np.full(n, h, dtype=np.uint32) for h in _H0]
    w = np.empty((64, n), dtype=np.uint32)
    for blk in range(padded_len // 64):
        w[:16] = words[:, blk, :].T
        for t in range(16, 64):
            s0 = _rotr(w[t - 15], 7) ^ _rotr(w[t - 15], 18) ^ (w[t - 15] >> np.uint32(3))
            s1 = _rotr(w[t - 2], 17) ^ _rotr(w[t - 2], 19) ^ (w[t - 2] >> np.uint32(10))
            w[t] = w[t - 16] + s0 + w[t - 7] + s1
        a, b, c, d, e, f, g, h = state
        a, b, c, d = a.copy(), b.copy(), c.copy(), d.copy()
        e, f, g, h = e.copy(), f.copy(), g.copy(), h.copy()
        for t in range(64):
            big_s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
            ch = (e & f) ^ (~e & g)
            temp1 = h + big_s1 + ch + np.uint32(_K[t]) + w[t]
            big_s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
            maj = (a & b) ^ (a & c) ^ (b & c)
            temp2 = big_s0 + maj
            h = g
            g = f
            f = e
            e = d + temp1
            d = c
            c = b
            b = a
            a = temp1 + temp2
        state = [
            state[0] + a, state[1] + b, state[2] + c, state[3] + d,
            state[4] + e, state[5] + f, state[6] + g, state[7] + h,
        ]

    out = np.empty((n, 32), dtype=np.uint8)
    for i, word in enumerate(state):
        out[:, 4 * i] = (word >> np.uint32(24)).astype(np.uint8)
        out[:, 4 * i + 1] = (word >> np.uint32(16)).astype(np.uint8)
        out[:, 4 * i + 2] = (word >> np.uint32(8)).astype(np.uint8)
        out[:, 4 * i + 3] = word.astype(np.uint8)
    return out


def rows_with_suffix(rows, suffix: bytes) -> "np.ndarray":
    """Append a constant byte suffix to every row of an (N, L) matrix."""
    rows = np.ascontiguousarray(rows, dtype=np.uint8)
    tail = np.frombuffer(suffix, dtype=np.uint8)
    out = np.empty((rows.shape[0], rows.shape[1] + len(tail)), dtype=np.uint8)
    out[:, : rows.shape[1]] = rows
    out[:, rows.shape[1]:] = tail
    return out


def rows_with_rows(rows, tails) -> "np.ndarray":
    """Concatenate two byte matrices row-wise: ``out[i] = rows[i] + tails[i]``."""
    rows = np.ascontiguousarray(rows, dtype=np.uint8)
    tails = np.ascontiguousarray(tails, dtype=np.uint8)
    out = np.empty((rows.shape[0], rows.shape[1] + tails.shape[1]), dtype=np.uint8)
    out[:, : rows.shape[1]] = rows
    out[:, rows.shape[1]:] = tails
    return out
