"""Deterministic chaos campaigns: seeded fault-composition trials.

The runtime's failure semantics are tested piecewise (retry ladder,
cache integrity, journal resume, worker death) — this module tests them
*composed*.  A campaign is a seeded, fully reproducible plan of trials;
each trial picks an execution venue (serial / pool / distributed) and a
subset of fault dimensions, runs a fixed reference workload under those
faults, and asserts the invariants the runtime promises no matter what
was injected:

* **payload bit-identity** — the merged task values equal a fault-free
  serial baseline, byte for byte (compared through the canonical wire
  encoding, the same representation ``deterministic_payload`` rests on);
* **no leaked resources** — no pool worker processes and no extra
  threads survive the trial;
* **counter consistency** — the failure counters in :class:`RunStats`
  match the injected schedule (exactly on the serial venue, where the
  fault pattern is a pure function the harness can evaluate itself; as
  lower bounds on venues with nondeterministic scheduling);
* **ledger accounting** — resumed runs replay journaled spans, corrupted
  journal records and cache entries surface in the corruption counters.

Every random choice (venue, dimension subset, fault rate, interrupt
point, which byte to corrupt) derives from ``Rng((seed, label, index))``,
so re-running a campaign with the same seed replays the identical trial
sequence — a failing trial is a test case, not an anecdote.

Dimensions
----------
``chunk-faults``        deterministic injected chunk failures (``raise``)
``engine-faults``       unreliable channels / party crashes inside runs
``worker-kill``         injected faults become process kills (``exit``)
``interrupt-resume``    KeyboardInterrupt mid-batch, then ``--resume``
``cache-corruption``    a warm chunk-cache entry gets a byte flipped
``journal-corruption``  a journal record gets a byte flipped before resume

``interrupt-resume`` is mutually exclusive with the two corruption
dimensions: those pre-populate the very store whose replay would swallow
the injected interrupt (a journaled or cached span is never re-executed,
so the boom chunk would never run).

Process-level trials (:func:`run_process_trials`) go one step further
and exercise the *coordinator* process itself: a ``repro verify`` child
is SIGKILLed (and separately SIGINTed) mid-batch, one journal record is
corrupted, and the relaunched ``--resume`` run must produce a
byte-identical deterministic payload while counting the replayed and
quarantined records.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..crypto.prf import Rng
from .cache import ChunkCache
from .journal import RunJournal
from .retry import NO_FAULTS, FaultSpec, RetryPolicy
from .runner import ProcessPoolRunner, SerialRunner
from .tasks import ExecutionTask, plan_chunks

#: Execution venues a trial can target.
VENUES = ("serial", "pool", "distributed")

#: Fault dimensions a trial can compose (canonical order).
DIMENSIONS = (
    "chunk-faults",
    "engine-faults",
    "worker-kill",
    "interrupt-resume",
    "cache-corruption",
    "journal-corruption",
)

#: Dimensions that pre-populate the journal/cache a resumed run reads —
#: incompatible with ``interrupt-resume`` (see module docstring).
_PREPOPULATING = ("cache-corruption", "journal-corruption")

#: Fast retry ladder so injected faults do not dominate wall clock.
_FAST_RETRY = RetryPolicy(
    max_retries=2, backoff_s=0.01, backoff_multiplier=1.0, chunk_timeout_s=None
)

#: Environment knobs scrubbed from trial subprocesses: ambient config
#: must not change what a seeded campaign injects.
_SCRUBBED_ENV = (
    "REPRO_FAULT_RATE",
    "REPRO_FAULT_KIND",
    "REPRO_FAULT_SEED",
    "REPRO_CACHE_DIR",
    "REPRO_JOURNAL_DIR",
    "REPRO_RESUME",
    "REPRO_WORKERS",
    "REPRO_JOBS",
    "REPRO_MAX_RETRIES",
    "REPRO_CHUNK_TIMEOUT",
)


# ---------------------------------------------------------------------------
# campaign planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrialSpec:
    """One planned trial: a venue, a dimension subset, and seeded knobs."""

    index: int
    venue: str
    dims: Tuple[str, ...]
    fault_rate: float

    @property
    def fault_kind(self) -> Optional[str]:
        if "worker-kill" in self.dims:
            return "exit"
        if "chunk-faults" in self.dims:
            return "raise"
        return None

    def fault_spec(self) -> Optional[FaultSpec]:
        """Chunk-level fault spec implied by the dimensions (or ``None``)."""
        kind = self.fault_kind
        if kind is None:
            return None
        return FaultSpec(
            rate=self.fault_rate,
            kind=kind,
            seed=("chaos-fault", self.index),
            max_consecutive=2,
        )

    def describe(self) -> str:
        return f"{self.venue}:{'+'.join(self.dims)}"

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "venue": self.venue,
            "dims": list(self.dims),
            "fault_rate": self.fault_rate,
            "fault_kind": self.fault_kind,
        }


def _canonical_dims(dims: Iterable[str]) -> Tuple[str, ...]:
    dims = tuple(dims)
    unknown = sorted(set(dims) - set(DIMENSIONS))
    if unknown:
        raise ValueError(
            f"unknown chaos dimension(s) {', '.join(unknown)}; "
            f"available: {', '.join(DIMENSIONS)}"
        )
    return tuple(d for d in DIMENSIONS if d in set(dims))


def _reconcile(dims: Tuple[str, ...]) -> Tuple[str, ...]:
    """Drop dimensions that cannot compose (planner-side, silent)."""
    if "interrupt-resume" in dims:
        dims = tuple(d for d in dims if d not in _PREPOPULATING)
    return dims


def plan_campaign(
    seed,
    n_trials: int,
    venues: Sequence[str] = ("serial", "pool"),
    dims: Sequence[str] = DIMENSIONS,
) -> List[TrialSpec]:
    """Deterministic trial plan: same ``(seed, args)`` → same specs."""
    venues = tuple(venues)
    for venue in venues:
        if venue not in VENUES:
            raise ValueError(
                f"unknown venue {venue!r}; available: {', '.join(VENUES)}"
            )
    if not venues:
        raise ValueError("need at least one venue")
    pool = _canonical_dims(dims)
    if not pool:
        raise ValueError("need at least one chaos dimension")
    specs = []
    for index in range(n_trials):
        rng = Rng((seed, "chaos-trial", index))
        venue = venues[rng.randrange(len(venues))]
        k = 1 + rng.randrange(min(3, len(pool)))
        drawn = set(rng.sample(pool, k))
        chosen = _reconcile(tuple(d for d in DIMENSIONS if d in drawn))
        rate = round(0.25 + 0.35 * rng.random(), 3)
        specs.append(
            TrialSpec(index=index, venue=venue, dims=chosen, fault_rate=rate)
        )
    return specs


def parse_trial_spec(text: str, index: int, seed) -> TrialSpec:
    """``VENUE:DIM+DIM`` → a :class:`TrialSpec` (for explicit CI coverage).

    Unlike the planner, an explicit spec never silently drops a
    dimension: an impossible combination is a usage error.
    """
    venue, sep, dim_text = text.partition(":")
    venue = venue.strip()
    if not sep or venue not in VENUES:
        raise ValueError(
            f"trial spec must be VENUE:DIM+DIM with VENUE one of "
            f"{', '.join(VENUES)}; got {text!r}"
        )
    dims = _canonical_dims(
        d.strip() for d in dim_text.split("+") if d.strip()
    )
    if not dims:
        raise ValueError(f"trial spec {text!r} names no dimensions")
    if "interrupt-resume" in dims and any(d in dims for d in _PREPOPULATING):
        raise ValueError(
            f"trial spec {text!r}: interrupt-resume cannot compose with "
            f"{' or '.join(_PREPOPULATING)} (a pre-populated ledger would "
            "replay the span the interrupt is injected into)"
        )
    rng = Rng((seed, "chaos-explicit", index, text))
    rate = round(0.25 + 0.35 * rng.random(), 3)
    return TrialSpec(index=index, venue=venue, dims=dims, fault_rate=rate)


# ---------------------------------------------------------------------------
# reference workload
# ---------------------------------------------------------------------------


def _workload():
    # Lazy: the runtime layer must not import protocols at module import.
    from ..adversaries import strategy_space_for_protocol
    from ..functions import make_swap
    from ..protocols import Opt2SfeProtocol

    protocol = Opt2SfeProtocol(make_swap(8))
    factories = strategy_space_for_protocol(protocol)[:2]
    return protocol, factories


def _engine_fault_bundle():
    from ..engine.faults import ChannelFaultModel, EngineFaults, PartyFaultModel

    return EngineFaults(
        channel=ChannelFaultModel(
            loss=0.08,
            delay=0.05,
            duplicate=0.04,
            broadcast_loss=0.04,
            seed="chaos-engine",
        ),
        party=PartyFaultModel(crash_rate=0.04, seed="chaos-engine"),
    )


def payload_fingerprint(values) -> str:
    """Canonical digest of a batch's merged values.

    Built on the wire codec (the one representation every venue already
    round-trips), so "bit-identical" means the same thing here as it
    does for journal records and distributed partials.
    """
    from .distributed.wire import encode_partial

    blob = json.dumps(
        [encode_partial(v) for v in values],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class _InterruptingTask:
    """Delegating task wrapper that raises ``KeyboardInterrupt`` on one span.

    Shares the inner task's ``cache_material`` (and thus journal key), so
    the spans it *does* complete are resumable by the unwrapped task.
    """

    def __init__(self, inner, boom_start: int):
        self._inner = inner
        self._boom_start = boom_start

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def run_chunk(self, start: int, stop: int):
        if start == self._boom_start:
            raise KeyboardInterrupt(f"chaos: injected interrupt at run {start}")
        return self._inner.run_chunk(start, stop)


def _flip_byte(path: Path) -> None:
    """Corrupt one byte in the middle of a file (XOR — always a change)."""
    data = bytearray(path.read_bytes())
    if not data:
        data = bytearray(b"\x00")
    pos = len(data) // 2
    data[pos] ^= 0xFF
    path.write_bytes(bytes(data))


def _subprocess_env() -> dict:
    """Child environment: this checkout importable, ambient knobs scrubbed."""
    import repro

    src = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    for key in _SCRUBBED_ENV:
        env.pop(key, None)
    return env


@contextmanager
def _worker_fleet(n: int):
    """``n`` real ``repro worker`` subprocesses; yields their addresses."""
    env = _subprocess_env()
    procs: List[subprocess.Popen] = []
    addrs: List[str] = []
    try:
        for _ in range(n):
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "worker",
                    "--listen", "127.0.0.1:0",
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                text=True,
                env=env,
            )
            procs.append(proc)
            line = proc.stdout.readline()
            info = json.loads(line)
            addrs.append(f"127.0.0.1:{info['port']}")
        yield addrs
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass
            if proc.stdout is not None:
                proc.stdout.close()


def _leak_failure(threads_before: int, deadline_s: float = 10.0) -> Optional[str]:
    """``None`` when the process is back to its pre-trial footprint."""
    import multiprocessing

    t_end = time.monotonic() + deadline_s
    while True:
        children = multiprocessing.active_children()
        threads = threading.active_count()
        if not children and threads <= threads_before:
            return None
        if time.monotonic() >= t_end:
            return (
                f"leaked resources after trial: {len(children)} worker "
                f"process(es), {max(0, threads - threads_before)} extra "
                "thread(s)"
            )
        time.sleep(0.05)


# ---------------------------------------------------------------------------
# trial execution
# ---------------------------------------------------------------------------


@dataclass
class TrialResult:
    """Outcome of one trial: pass/fail plus the evidence."""

    name: str
    ok: bool
    failures: List[str]
    observed: Dict[str, object]
    spec: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "failures": list(self.failures),
            "observed": dict(self.observed),
            "spec": self.spec,
        }


@dataclass
class CampaignReport:
    """All trial results of one campaign, JSON-exportable."""

    seed_repr: str
    results: List[TrialResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_dict(self) -> dict:
        failed = [r.name for r in self.results if not r.ok]
        return {
            "schema": 1,
            "seed": self.seed_repr,
            "ok": self.ok,
            "n_trials": len(self.results),
            "failed_trials": failed,
            "trials": [r.to_dict() for r in self.results],
        }

    def __str__(self) -> str:
        lines = []
        for result in self.results:
            verdict = "ok" if result.ok else "FAIL"
            lines.append(f"{result.name:<55s} {verdict}")
            for failure in result.failures:
                lines.append(f"    - {failure}")
        good = sum(1 for r in self.results if r.ok)
        lines.append(
            f"chaos campaign (seed {self.seed_repr}): "
            f"{good}/{len(self.results)} trials ok"
        )
        return "\n".join(lines)


class _Campaign:
    """Shared state of one campaign run: workload, baselines, directories."""

    def __init__(self, seed, workdir: Path, trial_runs: int, chunk_size: int):
        self.seed = seed
        self.workdir = Path(workdir)
        self.trial_runs = trial_runs
        self.chunk_size = chunk_size
        self._baselines: Dict[bool, str] = {}

    def tasks(self, engine_faults: bool) -> List[ExecutionTask]:
        """Fresh task list (tasks hold per-run state like setup memos)."""
        protocol, factories = _workload()
        faults = _engine_fault_bundle() if engine_faults else None
        return [
            ExecutionTask(
                protocol,
                factory,
                self.trial_runs,
                seed=("chaos-workload", index),
                faults=faults,
            )
            for index, factory in enumerate(factories)
        ]

    def baseline(self, engine_faults: bool) -> str:
        """Fault-free serial fingerprint (engine faults are part of the
        task content, so they get their own baseline)."""
        key = bool(engine_faults)
        if key not in self._baselines:
            runner = self._isolated(
                SerialRunner(chunk_size=self.chunk_size, retry=_FAST_RETRY,
                             fault=NO_FAULTS)
            )
            self._baselines[key] = payload_fingerprint(
                runner.run(self.tasks(engine_faults))
            )
        return self._baselines[key]

    @staticmethod
    def _isolated(runner):
        # BatchRunner consults REPRO_CACHE_DIR / REPRO_JOURNAL_DIR when
        # not given explicit instances; a baseline must not inherit
        # ambient stores.
        runner.cache = None
        runner.journal = None
        return runner

    @contextmanager
    def venue_runner(self, spec: TrialSpec, fault, journal, cache):
        """A runner on the trial's venue with exactly the given stores."""
        kwargs = dict(
            chunk_size=self.chunk_size,
            retry=_FAST_RETRY,
            fault=fault if fault is not None else NO_FAULTS,
            journal=journal,
        )
        if spec.venue == "serial":
            runner = SerialRunner(**kwargs)
            runner.cache = cache
            yield runner
        elif spec.venue == "pool":
            runner = ProcessPoolRunner(2, min_parallel_runs=0, **kwargs)
            runner.cache = cache
            yield runner
        elif spec.venue == "distributed":
            from .distributed import DistributedRunner

            with _worker_fleet(2) as addrs:
                runner = DistributedRunner(addrs, **kwargs)
                runner.cache = cache
                yield runner
        else:  # pragma: no cover - specs are validated at construction
            raise ValueError(f"unknown venue {spec.venue!r}")


def _serial_prepass(campaign: _Campaign, engine: bool, journal=None, cache=None):
    """Quiet serial run used to pre-populate a journal or cache."""
    runner = SerialRunner(
        chunk_size=campaign.chunk_size, retry=_FAST_RETRY, fault=NO_FAULTS,
        journal=journal,
    )
    runner.cache = cache
    if journal is None:
        runner.journal = None
    runner.run(campaign.tasks(engine))
    return runner.last_stats


def run_trial(spec: TrialSpec, campaign: _Campaign) -> TrialResult:
    """Execute one trial and check every invariant it implies."""
    failures: List[str] = []
    observed: Dict[str, object] = {}
    rng = Rng((campaign.seed, "chaos-run", spec.index))
    trial_dir = campaign.workdir / f"trial-{spec.index:03d}"
    journal_dir = trial_dir / "journal"
    cache_dir = trial_dir / "cache"
    engine = "engine-faults" in spec.dims
    use_cache = "cache-corruption" in spec.dims
    fault = spec.fault_spec()
    baseline = campaign.baseline(engine)
    threads_before = threading.active_count()
    phase_stats = []
    resume = False

    # --- pre-phases: populate and damage the stores under test ------------
    if use_cache:
        _serial_prepass(campaign, engine, cache=ChunkCache(cache_dir))
        entries = sorted(cache_dir.glob("*/*.pkl"))
        if not entries:
            failures.append("cache warm-up stored no entries")
        else:
            _flip_byte(entries[rng.randrange(len(entries))])
            observed["cache_entries"] = len(entries)

    if "journal-corruption" in spec.dims:
        _serial_prepass(campaign, engine, journal=RunJournal(journal_dir))
        records = sorted((journal_dir / "records").glob("*.json"))
        if not records:
            failures.append("journal seeding run appended no records")
        else:
            _flip_byte(records[rng.randrange(len(records))])
            observed["journal_records"] = len(records)
        resume = True

    if "interrupt-resume" in spec.dims:
        spans = plan_chunks(campaign.trial_runs, campaign.chunk_size)
        boom_start = spans[1 + rng.randrange(len(spans) - 1)][0]
        observed["boom_start"] = boom_start
        tasks = campaign.tasks(engine)
        tasks[0] = _InterruptingTask(tasks[0], boom_start)
        with campaign.venue_runner(
            spec, fault, RunJournal(journal_dir), None
        ) as runner:
            try:
                runner.run(tasks)
                failures.append(
                    "interrupt phase ran to completion without raising"
                )
            except KeyboardInterrupt:
                stats = runner.last_stats
                if stats is None or stats.cancelled_chunks < 1:
                    failures.append(
                        "interrupted batch recorded no cancelled chunks"
                    )
                if stats is not None:
                    phase_stats.append(stats)
                    observed["interrupt_cancelled"] = stats.cancelled_chunks
        resume = True

    # --- main phase --------------------------------------------------------
    values = None
    stats = None
    journal = RunJournal(journal_dir, resume=resume)
    cache = ChunkCache(cache_dir) if use_cache else None
    with campaign.venue_runner(spec, fault, journal, cache) as runner:
        try:
            values = runner.run(campaign.tasks(engine))
        except Exception as exc:
            failures.append(
                f"main phase raised {type(exc).__name__}: {exc} "
                "(faults must degrade, never fail a batch)"
            )
        stats = runner.last_stats
        if stats is not None:
            phase_stats.append(stats)

    # --- invariants ---------------------------------------------------------
    if values is not None:
        fingerprint = payload_fingerprint(values)
        observed["payload_sha256"] = fingerprint
        if fingerprint != baseline:
            failures.append(
                "merged payload diverged from the fault-free serial baseline"
            )
    if stats is not None and values is not None:
        if stats.executions != stats.requested:
            failures.append(
                f"covered {stats.executions} of {stats.requested} "
                "requested runs"
            )
        executed = [
            (c.task_index, c.start)
            for c in stats.chunks
            if c.outcome in ("ok", "retried", "replayed")
        ]
        if fault is not None:
            schedule = {
                span: fault.fault_attempts(*span) for span in executed
            }
            faulted = sum(1 for n in schedule.values() if n > 0)
            observed["faulted_chunks"] = faulted
            max_retries = _FAST_RETRY.max_retries
            if spec.venue == "serial":
                # Serial execution is fully deterministic, so the failure
                # counters must match the injected schedule *exactly*.
                predicted_failed = sum(
                    min(n, max_retries + 1) for n in schedule.values()
                )
                predicted_replays = sum(
                    1 for n in schedule.values() if n > max_retries
                )
                if stats.failed_attempts != predicted_failed:
                    failures.append(
                        f"failed_attempts {stats.failed_attempts} != "
                        f"schedule-predicted {predicted_failed}"
                    )
                if stats.serial_replays != predicted_replays:
                    failures.append(
                        f"serial_replays {stats.serial_replays} != "
                        f"schedule-predicted {predicted_replays}"
                    )
            else:
                if faulted and stats.failed_attempts < 1:
                    failures.append(
                        "injected chunk faults left no failed-attempt trace"
                    )
                if (
                    spec.venue == "distributed"
                    and fault.kind == "exit"
                    and faulted
                    and stats.worker_deaths < 1
                ):
                    failures.append(
                        "worker-kill faults registered no worker deaths"
                    )

    def across_phases(attr: str) -> int:
        return sum(getattr(s, attr) for s in phase_stats)

    observed["journal_replayed"] = across_phases("journal_replayed_chunks")
    observed["journal_appended"] = across_phases("journal_appended_chunks")
    if resume and values is not None:
        if stats is not None and stats.journal_replayed_chunks < 1:
            failures.append("resumed run replayed no journaled spans")
    if "journal-corruption" in spec.dims:
        corrupt = across_phases("journal_corrupt_records")
        observed["journal_corrupt"] = corrupt
        if corrupt < 1:
            failures.append(
                "corrupted journal record was not detected and quarantined"
            )
    if use_cache:
        corrupt = across_phases("cache_corrupt_entries")
        observed["cache_corrupt"] = corrupt
        if corrupt < 1:
            failures.append(
                "corrupted cache entry was not detected and quarantined"
            )

    leak = _leak_failure(threads_before)
    if leak is not None:
        failures.append(leak)

    return TrialResult(
        name=f"trial-{spec.index:03d} {spec.describe()}",
        ok=not failures,
        failures=failures,
        observed=observed,
        spec=spec.to_dict(),
    )


# ---------------------------------------------------------------------------
# process-level trials: kill the coordinator itself
# ---------------------------------------------------------------------------


def _verify_cmd(seed, claims: str, budget: str, json_out: Path,
                journal: Optional[Path] = None, resume: bool = False):
    cmd = [
        sys.executable, "-m", "repro", "--seed", str(seed),
        "verify", "--claims", claims, "--budget", budget,
        "--json", str(json_out),
    ]
    if journal is not None:
        cmd += ["--journal", str(journal)]
    if resume:
        cmd += ["--resume"]
    return cmd


def _journal_counters(report: dict) -> Dict[str, int]:
    totals = {"replayed": 0, "corrupt": 0, "stale": 0, "appended": 0}
    for check in report.get("checks", []):
        for stats in check.get("timing", {}).get("run_stats", []):
            totals["replayed"] += stats.get("journal_replayed_chunks", 0)
            totals["corrupt"] += stats.get("journal_corrupt_records", 0)
            totals["stale"] += stats.get("journal_stale_records", 0)
            totals["appended"] += stats.get("journal_appended_chunks", 0)
    return totals


def run_process_trials(
    seed,
    workdir: Path,
    claims: str = "E2",
    budget: str = "small",
    echo=None,
) -> List[TrialResult]:
    """Kill a real ``repro verify`` coordinator mid-batch; resume; compare.

    Two trials: SIGKILL (plus one corrupted journal record) and SIGINT.
    Both must resume to a byte-identical deterministic payload.
    """
    import signal as _signal

    from ..analysis.export import deterministic_payload

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    env = _subprocess_env()

    base_out = workdir / "baseline.json"
    base = subprocess.run(
        _verify_cmd(seed, claims, budget, base_out),
        env=env, capture_output=True, text=True, timeout=600,
    )
    base_payload = None
    if base_out.exists():
        base_payload = deterministic_payload(json.loads(base_out.read_text()))

    results = []
    trials = (
        ("coordinator-sigkill-resume", _signal.SIGKILL, True),
        ("coordinator-sigint-resume", _signal.SIGINT, False),
    )
    for name, sig, corrupt in trials:
        if echo is not None:
            echo(f"process trial: {name}")
        failures: List[str] = []
        observed: Dict[str, object] = {}
        if base_payload is None:
            results.append(TrialResult(
                name=f"process {name}", ok=False,
                failures=[
                    "baseline verify run produced no artifact "
                    f"(rc={base.returncode}): {base.stderr.strip()[:200]}"
                ],
                observed=observed,
            ))
            continue
        trial_dir = workdir / name
        journal_dir = trial_dir / "journal"
        records_dir = journal_dir / "records"
        first_out = trial_dir / "interrupted.json"
        proc = subprocess.Popen(
            _verify_cmd(seed, claims, budget, first_out, journal=journal_dir),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        # Wait for at least two durable records before killing: one to
        # corrupt, one whose replay proves the resume actually resumed.
        deadline = time.monotonic() + 300
        while proc.poll() is None and time.monotonic() < deadline:
            if (
                records_dir.is_dir()
                and sum(1 for _ in records_dir.glob("*.json")) >= 2
            ):
                break
            time.sleep(0.01)
        killed_midrun = proc.poll() is None
        if killed_midrun:
            proc.send_signal(sig)
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        observed["killed_midrun"] = killed_midrun

        records = sorted(records_dir.glob("*.json")) if records_dir.is_dir() else []
        observed["records_at_resume"] = len(records)
        if not records:
            failures.append(
                "no journal records survived the kill (nothing to resume)"
            )
        if corrupt and records:
            _flip_byte(records[len(records) // 2])

        resumed_out = trial_dir / "resumed.json"
        resumed = subprocess.run(
            _verify_cmd(seed, claims, budget, resumed_out,
                        journal=journal_dir, resume=True),
            env=env, capture_output=True, text=True, timeout=600,
        )
        if resumed.returncode != base.returncode:
            failures.append(
                f"resumed run exited {resumed.returncode}, baseline exited "
                f"{base.returncode}: {resumed.stderr.strip()[:200]}"
            )
        if not resumed_out.exists():
            failures.append("resumed run wrote no artifact")
        else:
            report = json.loads(resumed_out.read_text())
            if deterministic_payload(report) != base_payload:
                failures.append(
                    "resumed deterministic payload diverged from the "
                    "uninterrupted baseline"
                )
            counters = _journal_counters(report)
            observed.update(
                journal_replayed=counters["replayed"],
                journal_corrupt=counters["corrupt"],
            )
            if corrupt and records and counters["corrupt"] < 1:
                failures.append(
                    "corrupted journal record was not quarantined on resume"
                )
            # With >1 surviving record at least one span must replay even
            # after the corruption quarantined another.
            if len(records) > 1 and counters["replayed"] < 1:
                failures.append("resumed run replayed no journaled spans")
        results.append(TrialResult(
            name=f"process {name}", ok=not failures,
            failures=failures, observed=observed,
        ))
    return results


# ---------------------------------------------------------------------------
# campaign driver
# ---------------------------------------------------------------------------


def run_campaign(
    seed,
    n_trials: int = 4,
    venues: Sequence[str] = ("serial", "pool"),
    dims: Sequence[str] = DIMENSIONS,
    explicit: Sequence[str] = (),
    workdir=None,
    trial_runs: int = 48,
    chunk_size: int = 8,
    process_trials: bool = False,
    echo=None,
) -> CampaignReport:
    """Plan and execute one campaign; returns the JSON-exportable report.

    ``explicit`` appends ``VENUE:DIM+DIM`` specs after the ``n_trials``
    planned ones — CI uses this for deterministic coverage of specific
    combinations.  ``workdir`` keeps the trial directories for post
    mortems; the default is a temporary directory, cleaned up afterward.
    """
    import tempfile

    specs = plan_campaign(seed, n_trials, venues=venues, dims=dims)
    specs += [
        parse_trial_spec(text, len(specs) + offset, seed)
        for offset, text in enumerate(explicit)
    ]
    report = CampaignReport(seed_repr=repr(seed))
    cleanup = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        workdir, cleanup = tmp.name, tmp
    try:
        campaign = _Campaign(seed, Path(workdir), trial_runs, chunk_size)
        for spec in specs:
            if echo is not None:
                echo(f"trial {spec.index:03d}: {spec.describe()}")
            try:
                report.results.append(run_trial(spec, campaign))
            except Exception as exc:
                # A harness crash is a *failed trial*, not a lost campaign.
                report.results.append(TrialResult(
                    name=f"trial-{spec.index:03d} {spec.describe()}",
                    ok=False,
                    failures=[
                        f"trial harness error: {type(exc).__name__}: {exc}"
                    ],
                    observed={},
                    spec=spec.to_dict(),
                ))
        if process_trials:
            report.results.extend(
                run_process_trials(seed, Path(workdir) / "process", echo=echo)
            )
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    return report
