"""Batch tasks: the unit of work a runner fans out and folds back.

A *task* is anything with an ``n_runs`` attribute and a
``run_chunk(start, stop)`` method returning a **mergeable partial** — a
value that can be combined with another chunk's partial via
:func:`merge_partials` (``EventCounts``, ``collections.Counter``, plain
ints, or tuples of those).  Runners split ``range(n_runs)`` into chunks,
execute the chunks (serially or across worker processes) and merge the
partials in ascending chunk order, so the folded result never depends on
which backend ran the chunks.

:class:`ExecutionTask` is the standard task: the estimator's
protocol-vs-adversary Monte-Carlo loop.  Its seed derivation is the
contract that makes parallelism invisible: run ``k`` *always* draws from
``Rng(seed).fork(f"run-{k}")``, exactly as the original serial loop did,
so any partition of ``range(n_runs)`` into chunks replays bit-identical
executions.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..core.events import FairnessEvent, classify
from ..core.utility import EventCounts
from ..crypto.prf import Rng
from ..engine.execution import ProtocolViolation, run_execution
from ..engine.faults import EngineFaults
from .cache import PHASES, faults_fingerprint


#: Chunk-planning modes accepted by :func:`plan_chunks` (and the
#: ``--schedule`` / ``REPRO_SCHEDULE`` knobs that select between them).
SCHEDULES = ("uniform", "cost")

#: Reference per-run weight the cost planner equalizes against: the
#: cheapest modelled protocol (ΠSingleRound — 3 rounds + 2 messages +
#: 2 functionality responses).  A fixed global constant, *not* the
#: cheapest task in the batch, so a task's chunk size never depends on
#: what else happens to be in the batch (journal fingerprints and cache
#: keys are span-addressed and must survive batch recomposition).
COST_UNIT_WEIGHT = 7.0

#: Cost-mode chunks never grow beyond this multiple of the uniform size:
#: very cheap (vectorized) tasks would otherwise collapse into a single
#: mega-chunk, defeating early-stop granularity and pool balancing.
COST_CHUNK_GROWTH = 4


def default_chunk_size(n_runs: int) -> int:
    """Chunk size used when none is given: a pure function of ``n_runs``.

    Deliberately independent of the worker count so that early-stopping
    decisions (taken at chunk boundaries) land on the same run index no
    matter which backend executes the batch.
    """
    return max(16, math.ceil(n_runs / 32))


def cost_chunk_size(
    n_runs: int,
    weight: Optional[float],
    chunk_size: Optional[int] = None,
) -> int:
    """Chunk size that equalizes *predicted* per-chunk cost across tasks.

    ``weight`` is the task's predicted per-run cost (see
    ``analysis.symbolic_cost.PredictedCost.weight``, discounted for the
    vectorized engine by the runner).  The uniform size for this
    ``n_runs`` costs ``COST_UNIT_WEIGHT * base`` at the reference
    weight; tasks above that per-run weight get proportionally smaller
    chunks (down to 1 run), cheaper tasks proportionally larger ones
    (capped at ``COST_CHUNK_GROWTH`` times the uniform size).  Tasks
    without a cost model (``weight is None``) keep the uniform size.
    A pure function of its arguments — no batch context — so plans stay
    deterministic and batch-composition-independent.
    """
    base = chunk_size if chunk_size is not None else default_chunk_size(n_runs)
    if weight is None or weight <= 0:
        return base
    target = COST_UNIT_WEIGHT * base
    size = int(round(target / weight))
    return max(1, min(size, COST_CHUNK_GROWTH * base))


def plan_chunks(
    n_runs: int,
    chunk_size: Optional[int] = None,
    schedule: str = "uniform",
    weight: Optional[float] = None,
) -> List[Tuple[int, int]]:
    """Partition ``range(n_runs)`` into contiguous ``(start, stop)`` spans.

    ``schedule="uniform"`` sizes every chunk identically (``chunk_size``
    or :func:`default_chunk_size`); ``schedule="cost"`` resizes via
    :func:`cost_chunk_size` so predicted per-chunk cost is roughly equal
    across a heterogeneous batch.  Either way the plan is a pure
    deterministic function of the arguments: same task, same knobs →
    byte-identical spans, on every venue.
    """
    if n_runs <= 0:
        raise ValueError("need at least one run")
    if schedule not in SCHEDULES:
        raise ValueError(
            f"unknown schedule {schedule!r}; expected one of {SCHEDULES}"
        )
    if chunk_size is not None and chunk_size <= 0:
        raise ValueError("chunk size must be positive")
    if schedule == "cost":
        size = cost_chunk_size(n_runs, weight, chunk_size)
    else:
        size = chunk_size if chunk_size is not None else default_chunk_size(n_runs)
    if size <= 0:
        raise ValueError("chunk size must be positive")
    return [(lo, min(lo + size, n_runs)) for lo in range(0, n_runs, size)]


def merge_partials(a, b):
    """Fold two chunk partials into one (tuples merge element-wise)."""
    if isinstance(a, tuple) and isinstance(b, tuple):
        if len(a) != len(b):
            raise ValueError("cannot merge tuples of different arity")
        return tuple(merge_partials(x, y) for x, y in zip(a, b))
    return a + b


@dataclass
class ExecutionTask:
    """One protocol-vs-strategy Monte-Carlo batch.

    ``run_chunk`` reproduces the estimator's historical serial loop
    verbatim: per-run RNGs are ``Rng(seed).fork(f"run-{k}")``, with
    ``inputs``/``adversary``/``exec`` sub-streams, so chunked execution is
    bit-identical to a single serial sweep over ``range(n_runs)``.
    """

    protocol: object
    factory: Callable[[Rng], object]
    n_runs: int
    seed: object = 0
    input_sampler: Optional[Callable[[Rng], tuple]] = None
    faults: Optional[EngineFaults] = None

    @property
    def label(self) -> str:
        return getattr(self.factory, "name", "adversary")

    def cache_material(self):
        """Canonical content description for chunk-cache fingerprints.

        Returns ``None`` — meaning "never cache me" — when any component
        lacks a stable identity: a protocol without a ``cache_key``, an
        anonymous adversary factory, or a custom input sampler without a
        ``cache_token`` attribute.  The material deliberately excludes
        ``n_runs`` (chunks are keyed by their span, so a 400-run and an
        800-run sweep share their common prefix) and anything
        payoff-related (chunk partials are raw event counts, folded with
        γ only downstream).
        """
        protocol_key = getattr(self.protocol, "cache_key", None)
        factory_name = getattr(self.factory, "name", None)
        if protocol_key is None or factory_name is None:
            return None
        if self.input_sampler is None:
            sampler_token = ""
        else:
            sampler_token = getattr(self.input_sampler, "cache_token", None)
            if sampler_token is None:
                return None
        return (
            "execution-task",
            protocol_key,
            factory_name,
            sampler_token,
            faults_fingerprint(self.faults),
            self.seed,
        )

    def run_chunk(self, start: int, stop: int) -> EventCounts:
        sampler = self.input_sampler or self.protocol.func.sample_inputs
        master = Rng(self.seed)
        faults_active = self.faults is not None and self.faults.active
        counts = EventCounts()
        clock = time.perf_counter
        for k in range(start, stop):
            t0 = clock()
            rng = master.fork(f"run-{k}")
            inputs = sampler(rng.fork("inputs"))
            adversary = self.factory(rng.fork("adversary"))
            run_faults = None
            if faults_active:
                # Re-salt the fault seeds with material from the run's own
                # stream: each run sees an independent fault pattern, yet
                # run k replays bit-identically in any chunk partition.
                # The fork only happens when faults are active, so the
                # zero-fault RNG sequence is untouched.
                salt = rng.fork("faults").randbytes(16)
                run_faults = self.faults.seeded(salt)
            t1 = clock()
            PHASES.setup_s += t1 - t0
            try:
                result = run_execution(
                    self.protocol,
                    inputs,
                    adversary,
                    rng.fork("exec"),
                    faults=run_faults,
                )
            except ProtocolViolation as exc:
                t2 = clock()
                PHASES.execute_s += t2 - t1
                # Belt and braces: the engine only raises this with no
                # faults active, but a batch must degrade to a classified
                # event, not die.  The attached result carries the hung set.
                if exc.result is None:
                    raise
                counts.record(FairnessEvent.HONEST_HUNG, exc.result.corrupted)
                PHASES.classify_s += clock() - t2
                continue
            t2 = clock()
            PHASES.execute_s += t2 - t1
            if result.hung:
                # Even a protocol-specific classifier cannot say anything
                # about a run whose honest parties never produced output.
                counts.record(FairnessEvent.HONEST_HUNG, result.corrupted)
                PHASES.classify_s += clock() - t2
                continue
            event = self.protocol.classify_result(result)
            if event is None:
                event = classify(result, self.protocol.func)
            counts.record(event, result.corrupted)
            PHASES.classify_s += clock() - t2
        return counts
