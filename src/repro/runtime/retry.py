"""Failure semantics for the batch runtime: retry policy and fault injection.

The paper's claims are event-probability bounds, so a crashed worker or a
silently dropped chunk does not just slow a sweep down — it biases the
measured adversarial utility.  The runtime therefore treats every chunk as
re-executable: the determinism contract (run ``k`` always draws from
``Rng(seed).fork(f"run-{k}")``) makes any ``(task, start, stop)`` triple
bit-identically replayable, so recovery never changes a result, it only
changes where the work happened.

Two pieces live here:

* :class:`RetryPolicy` — how a runner reacts to a failed chunk attempt:
  bounded in-pool retries with exponential backoff, an optional per-chunk
  wall-clock deadline, and (implicitly, in the runners) the final rung of
  the degradation ladder: trusted in-process serial replay with fault
  injection disabled.
* :class:`FaultSpec` — deterministic fault injection for exercising that
  recovery machinery in tests and CI.  Whether attempt ``a`` of the chunk
  starting at run ``s`` of task ``t`` fails is a pure function of
  ``(spec.seed, t, s, a)``, so the parent and every worker agree on the
  fault pattern and injected failures are reproducible across platforms.

Both have ``from_env`` constructors (``REPRO_MAX_RETRIES``,
``REPRO_CHUNK_TIMEOUT``, ``REPRO_FAULT_RATE``, ``REPRO_FAULT_KIND``,
``REPRO_FAULT_SEED``) so CI can run the whole suite with faults enabled
without touching any call site.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

from ..crypto.prf import Rng
from .cache import PHASES

#: Retry/timeout environment knobs (no explicit argument wins over these).
ENV_MAX_RETRIES = "REPRO_MAX_RETRIES"
ENV_CHUNK_TIMEOUT = "REPRO_CHUNK_TIMEOUT"

#: Fault-injection environment knobs.
ENV_FAULT_RATE = "REPRO_FAULT_RATE"
ENV_FAULT_KIND = "REPRO_FAULT_KIND"
ENV_FAULT_SEED = "REPRO_FAULT_SEED"


class InjectedFault(RuntimeError):
    """A deliberately injected chunk failure (never a real task bug)."""


class ChunkTimeout(RuntimeError):
    """Raised parent-side when a chunk misses its wall-clock deadline."""


@dataclass(frozen=True)
class RetryPolicy:
    """How a runner reacts to a failed or timed-out chunk attempt.

    ``max_retries`` bounds the *re*-executions after the first attempt;
    once they are exhausted the runners degrade to a trusted in-process
    serial replay (with fault injection disabled) instead of raising, so
    an injected failure can never abort a batch.  ``chunk_timeout_s`` is
    the per-chunk result deadline for pool backends (``None`` = wait
    forever); it is measured parent-side from when the chunk's result is
    awaited, with queue wait excluded while the chunk has not started.
    """

    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    chunk_timeout_s: Optional[float] = None

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= 0:
            raise ValueError("chunk_timeout_s must be positive (or None)")

    def backoff_for(self, attempt: int) -> float:
        """Seconds to sleep before re-submission number ``attempt`` (1-based)."""
        return self.backoff_s * self.backoff_multiplier ** max(0, attempt - 1)

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Policy implied by ``REPRO_MAX_RETRIES``/``REPRO_CHUNK_TIMEOUT``."""
        retries = cls.max_retries
        raw = os.environ.get(ENV_MAX_RETRIES, "").strip()
        if raw:
            try:
                retries = int(raw)
            except ValueError:
                raise ValueError(f"{ENV_MAX_RETRIES} must be an integer, got {raw!r}")
        timeout: Optional[float] = None
        raw = os.environ.get(ENV_CHUNK_TIMEOUT, "").strip()
        if raw:
            try:
                timeout = float(raw)
            except ValueError:
                raise ValueError(f"{ENV_CHUNK_TIMEOUT} must be a float, got {raw!r}")
            if timeout <= 0:
                # Consistent with __post_init__: a non-positive deadline
                # is a configuration error, not "wait forever" (unset
                # the variable to disable the deadline).
                raise ValueError(
                    f"{ENV_CHUNK_TIMEOUT} must be positive, got {raw!r} "
                    "(unset it to disable the chunk deadline)"
                )
        return cls(max_retries=max(0, retries), chunk_timeout_s=timeout)


#: Supported failure modes: raise in the worker, kill the worker process
#: (provokes ``BrokenProcessPool``), or stall past the chunk deadline.
FAULT_KINDS = ("raise", "exit", "sleep")


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic fault injection for the recovery path.

    Attempt ``a`` of the chunk starting at run ``s`` of task ``t`` fails
    iff the first ``a+1`` draws of ``Rng((spec.seed, "fault", t, s))`` all
    land below ``rate`` — i.e. each chunk fails a deterministic,
    geometrically distributed number of consecutive times (capped at
    ``max_consecutive``) and then succeeds forever.  The trusted serial
    replay rung never consults the spec, so injected faults can exercise
    retry exhaustion without ever losing a batch.
    """

    rate: float = 0.0
    kind: str = "raise"
    seed: object = 0
    sleep_s: float = 0.6
    max_consecutive: int = 8

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("fault rate must lie in [0, 1]")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"fault kind must be one of {FAULT_KINDS}")

    @property
    def active(self) -> bool:
        return self.rate > 0.0

    def fault_attempts(self, task_index: int, start: int) -> int:
        """How many consecutive attempts of this chunk fail (pure function)."""
        if not self.active:
            return 0
        rng = Rng((self.seed, "fault", task_index, start))
        count = 0
        while count < self.max_consecutive and rng.random() < self.rate:
            count += 1
        return count

    def should_fail(self, task_index: int, start: int, attempt: int) -> bool:
        return attempt < self.fault_attempts(task_index, start)

    @classmethod
    def from_env(cls) -> Optional["FaultSpec"]:
        """Spec implied by ``REPRO_FAULT_*``; ``None`` when injection is off."""
        raw = os.environ.get(ENV_FAULT_RATE, "").strip()
        if not raw:
            return None
        try:
            rate = float(raw)
        except ValueError:
            raise ValueError(f"{ENV_FAULT_RATE} must be a float, got {raw!r}")
        if rate <= 0:
            return None
        kind = os.environ.get(ENV_FAULT_KIND, "").strip() or "raise"
        seed: object = os.environ.get(ENV_FAULT_SEED, "").strip() or 0
        if isinstance(seed, str):
            # encode_seed is type-tagged, so the string "0" and the
            # default int 0 would select *different* fault patterns;
            # parse numeric env seeds so explicitly setting the default
            # value is a no-op.
            try:
                seed = int(seed)
            except ValueError:
                pass
        return cls(rate=min(rate, 1.0), kind=kind, seed=seed)


#: Explicitly disable fault injection (overrides ``REPRO_FAULT_RATE``).
NO_FAULTS = FaultSpec(rate=0.0)


def _execute_chunk(task, start: int, stop: int, backend: str):
    """Run one chunk on the requested execution backend.

    ``auto`` consults the vectorizability registry and silently falls
    back to the reference engine; ``vectorized`` raises on tasks no
    kernel covers; ``reference`` never consults the registry.  Kernel
    results are bit-identical to ``task.run_chunk`` by the registry's
    contract, so cache keys and merge semantics are backend-independent.
    """
    if backend != "reference":
        from .vectorized import BackendError, kernel_for
        from .vectorized.registry import COUNTERS

        kernel = kernel_for(task)
        if kernel is not None:
            t0 = time.perf_counter()
            part = kernel(start, stop)
            PHASES.execute_s += time.perf_counter() - t0
            COUNTERS["vectorized_runs"] += stop - start
            return part
        if backend == "vectorized":
            raise BackendError(
                f"backend 'vectorized' was forced but task "
                f"{getattr(task, 'label', task)!r} has no registered "
                "kernel (unknown strategy, active faults, non-constant "
                "inputs, or numpy unavailable); use --backend auto"
            )
    return task.run_chunk(start, stop)


def run_task_chunk(
    task,
    task_index: int,
    start: int,
    stop: int,
    attempt: int = 0,
    fault: Optional[FaultSpec] = None,
    in_worker: bool = False,
    cache=None,
    backend: str = "auto",
):
    """Execute one chunk attempt, injecting a fault first when due.

    ``in_worker`` gates the destructive fault kinds: a parent process
    never ``os._exit``s or stalls itself — outside a worker every kind
    degrades to a plain :class:`InjectedFault` raise.

    ``cache`` is an optional :class:`~repro.runtime.cache.ChunkCache`:
    when the task can fingerprint itself, a stored partial is returned
    directly and a freshly computed one is persisted.  The fault check
    deliberately runs first, so injected failures exercise the retry
    ladder identically with and without a cache; the trusted serial
    replay rung (``task.run_chunk`` called by the runners) never
    consults the cache at all.

    ``backend`` selects the execution engine (see
    :mod:`repro.runtime.vectorized`).  Vectorized and reference chunks
    share cache keys — their partials are bit-identical — so a cache
    warmed under one backend serves the other.
    """
    if fault is not None and fault.should_fail(task_index, start, attempt):
        if in_worker and fault.kind == "exit":
            os._exit(13)
        if in_worker and fault.kind == "sleep":
            time.sleep(fault.sleep_s)
        raise InjectedFault(
            f"injected {fault.kind} fault: task {task_index}, "
            f"chunk [{start}, {stop}), attempt {attempt}"
        )
    if cache is not None:
        key = cache.key_for(task, start, stop)
        if key is not None:
            hit, value = cache.fetch(key)
            if hit:
                return value
            part = _execute_chunk(task, start, stop, backend)
            cache.store(key, part)
            return part
    return _execute_chunk(task, start, stop, backend)
