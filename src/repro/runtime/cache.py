"""Hot-path caching: persistent chunk results and per-phase instrumentation.

Two distinct kinds of reuse live in the performance layer, with very
different soundness arguments:

* **Process-local setup memoization** — pure, content-keyed caches on the
  deterministic constructors the profiler flagged as hot: validated prime
  moduli and interned :class:`~repro.crypto.field.Field` instances
  (``crypto.field``), Lagrange reconstruction bases, compiled truth-table
  circuits (``circuits.compiler``), and circuit layer plans
  (``circuits.circuit``).  Those memos live next to the constructors they
  accelerate (the low layers must not import the runtime); this module
  only *aggregates* their hit/miss counters into the batch statistics.

* **Persistent chunk-result cache** (:class:`ChunkCache`) — an opt-in
  on-disk store of chunk partials keyed by a canonical fingerprint of
  (protocol, strategy, input sampler, fault config, master seed, chunk
  span, schema version, user salt), built on the same injective
  :func:`~repro.crypto.prf.encode_seed` encoder that derives run seeds.
  Sound because PR 1/2 made every ``(task, seed, span)`` triple
  bit-identically replayable: a cached partial *is* the value the chunk
  would compute, so merge order and early-stop decisions are unchanged.
  Strictly opt-in: a cache exists only when ``--cache`` or
  ``REPRO_CACHE_DIR`` names a directory — there is no ambient default.

What may never be cached: anything downstream of an ``Rng`` draw inside a
run (adversary instances, dealt shares, transcripts in flight) keyed by
less than the full task fingerprint, and any object a consumer mutates.
Tasks opt into chunk caching by providing ``cache_material()`` returning
a canonical description of everything their partials depend on — tasks
that cannot name their content (closures without labels) return ``None``
and are simply never cached.

Per-phase wall-clock (setup / execute / classify) is accumulated in the
process-local :data:`PHASES` clock by ``ExecutionTask.run_chunk``;
runners snapshot/delta the combined instrumentation around each chunk so
worker processes ship their phase times and counter increments back to
the parent inside the chunk result.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Tuple

from ..crypto.prf import encode_seed

#: Environment variable naming the chunk-cache directory (opt-in).
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Bumped whenever the meaning of a cached partial changes (event
#: vocabulary, classifier semantics, chunk planning) **or** the on-disk
#: entry format changes: old entries then miss instead of poisoning new
#: runs.  Version 2 added the per-entry integrity header below.
CACHE_SCHEMA_VERSION = 2

#: On-disk entry layout since schema v2: a 4-byte magic, the SHA-256 of
#: the pickled payload, then the payload itself.  The digest turns a
#: torn write or a flipped bit into a *detected* corruption (quarantined
#: and counted) instead of an undifferentiated miss — or worse, an
#: unpickling error with an unbounded blast radius.
_ENTRY_MAGIC = b"RCC2"
_DIGEST_BYTES = 32


class PhaseClock:
    """Process-local accumulator of per-phase wall-clock seconds."""

    __slots__ = ("setup_s", "execute_s", "classify_s")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.setup_s = 0.0
        self.execute_s = 0.0
        self.classify_s = 0.0


#: The clock ``ExecutionTask.run_chunk`` feeds (one per process; workers
#: ship deltas back to the parent inside chunk results).
PHASES = PhaseClock()

#: Keys of the instrumentation snapshot/delta dictionaries.
INSTRUMENT_KEYS = (
    "setup_s",
    "execute_s",
    "classify_s",
    "memo_hits",
    "memo_misses",
    "cache_hits",
    "cache_misses",
    "cache_stores",
    "cache_corrupt",
    "cache_write_errors",
    "vectorized_runs",
)


def instrumentation_snapshot() -> dict:
    """Current process-local phase clocks and cache counters.

    Runners bracket each chunk with ``snapshot``/``delta`` so the
    increments can be attributed to that chunk (and, for pool chunks,
    shipped from the worker back to the parent).
    """
    # Imported lazily: the memos live in the low layers, and the runtime
    # reads their counters without the low layers knowing about us.
    from ..circuits import compiler
    from ..crypto import field
    from .vectorized.registry import COUNTERS as vectorized_counters

    field_memo = field.memo_counters()
    circuit_memo = compiler.memo_counters()
    return {
        "setup_s": PHASES.setup_s,
        "execute_s": PHASES.execute_s,
        "classify_s": PHASES.classify_s,
        "memo_hits": field_memo["hits"] + circuit_memo["hits"],
        "memo_misses": field_memo["misses"] + circuit_memo["misses"],
        "cache_hits": ChunkCache.counters["hits"],
        "cache_misses": ChunkCache.counters["misses"],
        "cache_stores": ChunkCache.counters["stores"],
        "cache_corrupt": ChunkCache.counters["corrupt"],
        "cache_write_errors": ChunkCache.counters["write_errors"],
        "vectorized_runs": vectorized_counters["vectorized_runs"],
    }


def instrumentation_delta(before: dict) -> dict:
    """Instrumentation increments since a ``before`` snapshot."""
    after = instrumentation_snapshot()
    return {k: after[k] - before[k] for k in INSTRUMENT_KEYS}


def faults_fingerprint(faults) -> str:
    """Canonical string form of an ``EngineFaults`` bundle (or ``None``)."""
    if faults is None:
        return ""
    return json.dumps(faults.to_dict(), sort_keys=True)


class ChunkCache:
    """Content-addressed on-disk store of chunk partials.

    Entries are pickled mergeable partials (behind a magic + SHA-256
    integrity header, see :data:`_ENTRY_MAGIC`) under
    ``<root>/<key[:2]>/<key>.pkl`` where ``key`` is the hex digest of the
    task's canonical fingerprint plus the chunk span, schema version, and
    user salt.  Lookups and stores are best-effort: an unreadable entry
    is a miss, a *corrupt* entry (bad magic or checksum mismatch) is a
    quarantined miss counted in ``counters["corrupt"]``, and a failed
    write is counted in ``counters["write_errors"]`` — the cache can
    make a sweep faster but can never make it fail or change its result.

    ``salt`` partitions the key space for callers whose downstream
    interpretation differs even when the raw event counts would not
    (e.g. embedding a payoff-vector tag); the measured partials
    themselves are payoff-independent, so the default empty salt shares
    entries across payoff vectors soundly.
    """

    #: Process-wide traffic counters (workers ship deltas back).
    counters = {
        "hits": 0,
        "misses": 0,
        "stores": 0,
        "corrupt": 0,
        "write_errors": 0,
    }

    def __init__(self, root, salt: str = ""):
        self.root = Path(root)
        self.salt = str(salt)
        self.root.mkdir(parents=True, exist_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ChunkCache(root={str(self.root)!r}, salt={self.salt!r})"

    @classmethod
    def from_env(cls) -> Optional["ChunkCache"]:
        """Cache implied by ``REPRO_CACHE_DIR``; ``None`` when unset."""
        raw = os.environ.get(ENV_CACHE_DIR, "").strip()
        if not raw:
            return None
        return cls(raw)

    # -- keys ---------------------------------------------------------------
    def key_for(self, task, start: int, stop: int) -> Optional[str]:
        """Fingerprint of one chunk, or ``None`` when the task is opaque."""
        material = getattr(task, "cache_material", None)
        if material is None:
            return None
        material = material()
        if material is None:
            return None
        return encode_seed(
            (
                "chunk-cache",
                CACHE_SCHEMA_VERSION,
                self.salt,
                material,
                start,
                stop,
            )
        ).hex()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # -- access -------------------------------------------------------------
    def fetch(self, key: str) -> Tuple[bool, object]:
        """``(True, partial)`` on a hit, ``(False, None)`` otherwise.

        An entry that fails its integrity check — wrong magic, short
        header, checksum mismatch, or an unpicklable payload behind a
        *valid* checksum (a schema bug, not bit rot, but equally unsafe)
        — is quarantined (renamed aside so it cannot poison the next
        lookup either) and counted as both corrupt and a miss.
        """
        path = self._path(key)
        try:
            data = path.read_bytes()
        except OSError:
            # Missing or unreadable entry: an ordinary miss.
            ChunkCache.counters["misses"] += 1
            return False, None
        try:
            if data[: len(_ENTRY_MAGIC)] != _ENTRY_MAGIC:
                raise ValueError("bad magic")
            header_len = len(_ENTRY_MAGIC) + _DIGEST_BYTES
            digest = data[len(_ENTRY_MAGIC):header_len]
            payload = data[header_len:]
            if len(digest) != _DIGEST_BYTES:
                raise ValueError("truncated header")
            if hashlib.sha256(payload).digest() != digest:
                raise ValueError("checksum mismatch")
            value = pickle.loads(payload)
        except Exception:
            ChunkCache.counters["corrupt"] += 1
            ChunkCache.counters["misses"] += 1
            self._quarantine(path)
            return False, None
        ChunkCache.counters["hits"] += 1
        return True, value

    @staticmethod
    def _quarantine(path: Path) -> None:
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass

    def store(self, key: str, value) -> None:
        """Atomically persist one partial (best-effort, checksummed)."""
        path = self._path(key)
        payload = pickle.dumps(value)
        blob = _ENTRY_MAGIC + hashlib.sha256(payload).digest() + payload
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            ChunkCache.counters["write_errors"] += 1
            return
        ChunkCache.counters["stores"] += 1

    def __len__(self) -> int:
        """Number of stored entries (walks the directory)."""
        return sum(1 for _ in self.root.glob("*/*.pkl"))


def resolve_cache(path=None, salt: str = "") -> Optional[ChunkCache]:
    """Explicit path > ``REPRO_CACHE_DIR`` > no cache."""
    if path is not None:
        return ChunkCache(path, salt=salt)
    return ChunkCache.from_env()
