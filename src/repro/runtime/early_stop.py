"""Adaptive early stopping for Monte-Carlo batches.

Runners evaluate a stop rule on the *merged-so-far* :class:`EventCounts`
at every chunk boundary; once the rule fires, the task's remaining chunks
are dropped (parallel backends cancel their outstanding futures).  Because
chunk boundaries are a pure function of ``n_runs`` (see
:func:`~repro.runtime.tasks.default_chunk_size`), a stopped batch halts at
the same run index under every backend — early-stopped results stay
reproducible, they are just computed from fewer runs than requested.

The canonical rule is :class:`UtilityBoundStop`: stop once the Wilson
confidence interval of the folded utility estimate separates from the
analytic bound being tested (above or below), so sweeps do not spend their
full budget on strategies whose verdict is already statistically settled.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.payoff import PayoffVector
from ..core.utility import EventCounts, estimate_from_counts


class EarlyStopRule:
    """Interface: ``should_stop(counts)`` on merged-so-far event counts."""

    def should_stop(self, counts: EventCounts) -> bool:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class UtilityBoundStop(EarlyStopRule):
    """Stop once the utility CI separates from ``bound``.

    ``min_runs`` guards against spurious separation at tiny sample sizes;
    ``margin`` widens the required separation (in utility units).
    """

    gamma: PayoffVector
    bound: float
    min_runs: int = 100
    margin: float = 0.0

    def should_stop(self, counts: EventCounts) -> bool:
        if counts.total < self.min_runs:
            return False
        est = estimate_from_counts(counts, self.gamma)
        return (
            est.ci_high < self.bound - self.margin
            or est.ci_low > self.bound + self.margin
        )


@dataclass(frozen=True)
class CiWidthStop(EarlyStopRule):
    """Stop once the utility CI is narrower than ``width``."""

    gamma: PayoffVector
    width: float
    min_runs: int = 100

    def should_stop(self, counts: EventCounts) -> bool:
        if counts.total < self.min_runs:
            return False
        est = estimate_from_counts(counts, self.gamma)
        return (est.ci_high - est.ci_low) < self.width
