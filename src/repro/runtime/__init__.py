"""Parallel Monte-Carlo runtime: batch runners, tasks, early stopping.

The analysis layer expresses every measurement as a list of tasks and
hands them to a :class:`BatchRunner`; :class:`SerialRunner` replays the
historical in-process loop, :class:`ProcessPoolRunner` fans chunks out
over worker processes.  Both produce bit-identical results for the same
seed — see docs/architecture.md ("Measurement runtime").
"""

from .early_stop import CiWidthStop, EarlyStopRule, UtilityBoundStop
from .runner import (
    REPRO_JOBS_ENV,
    SMALL_BATCH_THRESHOLD,
    BatchRunner,
    ProcessPoolRunner,
    SerialRunner,
    resolve_jobs,
    resolve_runner,
)
from .stats import RunStats
from .tasks import (
    ExecutionTask,
    default_chunk_size,
    merge_partials,
    plan_chunks,
)

__all__ = [
    "BatchRunner",
    "SerialRunner",
    "ProcessPoolRunner",
    "ExecutionTask",
    "RunStats",
    "EarlyStopRule",
    "UtilityBoundStop",
    "CiWidthStop",
    "resolve_jobs",
    "resolve_runner",
    "default_chunk_size",
    "merge_partials",
    "plan_chunks",
    "REPRO_JOBS_ENV",
    "SMALL_BATCH_THRESHOLD",
]
