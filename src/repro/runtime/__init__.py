"""Parallel Monte-Carlo runtime: batch runners, tasks, early stopping,
failure semantics.

The analysis layer expresses every measurement as a list of tasks and
hands them to a :class:`BatchRunner`; :class:`SerialRunner` replays the
historical in-process loop, :class:`ProcessPoolRunner` fans chunks out
over forked worker processes, and :class:`DistributedRunner` ships them
to TCP workers on other hosts (``runtime.distributed``).  All three
produce bit-identical results for the same seed — and all recover from
failed chunk attempts through the retry ladder in ``runtime.retry``
(bounded retries, then trusted serial replay), so a crashed worker can
never bias a measured event frequency.
Orthogonally to the venue, each chunk is computed by an *execution
backend*: the reference state machine, or — for eligible tasks — a
NumPy kernel from ``runtime.vectorized`` that reproduces the reference
results bit-for-bit.  See docs/architecture.md ("Measurement runtime" /
"Failure semantics" / "Execution backends").
"""

from .cache import (
    CACHE_SCHEMA_VERSION,
    ENV_CACHE_DIR,
    PHASES,
    ChunkCache,
    instrumentation_delta,
    instrumentation_snapshot,
    resolve_cache,
)
from .early_stop import CiWidthStop, EarlyStopRule, UtilityBoundStop
from .retry import (
    ENV_CHUNK_TIMEOUT,
    ENV_FAULT_KIND,
    ENV_FAULT_RATE,
    ENV_FAULT_SEED,
    ENV_MAX_RETRIES,
    NO_FAULTS,
    ChunkTimeout,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    run_task_chunk,
)
from .runner import (
    ENV_CHUNK_SIZE,
    ENV_SCHEDULE,
    REPRO_JOBS_ENV,
    SMALL_BATCH_THRESHOLD,
    VECTORIZED_DISCOUNT,
    BatchRunner,
    ProcessPoolRunner,
    SerialRunner,
    resolve_chunk_size,
    resolve_jobs,
    resolve_runner,
    resolve_schedule,
)
# (after .runner: the coordinator builds on BatchRunner/SerialRunner)
from .distributed import (
    ENV_HEARTBEAT,
    ENV_WORKERS,
    DistributedRunner,
    parse_workers,
    resolve_heartbeat,
)
from .journal import (
    ENV_JOURNAL_DIR,
    ENV_RESUME,
    JOURNAL_SCHEMA_VERSION,
    RunJournal,
    resolve_journal,
)
from .stats import ChunkStats, MeasuredCounts, RunStats
from .tasks import (
    COST_CHUNK_GROWTH,
    COST_UNIT_WEIGHT,
    SCHEDULES,
    ExecutionTask,
    cost_chunk_size,
    default_chunk_size,
    merge_partials,
    plan_chunks,
)
from .vectorized import (
    BACKENDS,
    ENV_BACKEND,
    HAVE_NUMPY,
    BackendError,
    resolve_backend,
    vectorizable,
)

__all__ = [
    "BatchRunner",
    "SerialRunner",
    "ProcessPoolRunner",
    "DistributedRunner",
    "parse_workers",
    "ENV_WORKERS",
    "ExecutionTask",
    "RunStats",
    "ChunkStats",
    "MeasuredCounts",
    "RetryPolicy",
    "FaultSpec",
    "InjectedFault",
    "ChunkTimeout",
    "NO_FAULTS",
    "run_task_chunk",
    "EarlyStopRule",
    "UtilityBoundStop",
    "CiWidthStop",
    "resolve_jobs",
    "resolve_runner",
    "default_chunk_size",
    "cost_chunk_size",
    "merge_partials",
    "plan_chunks",
    "SCHEDULES",
    "COST_UNIT_WEIGHT",
    "COST_CHUNK_GROWTH",
    "VECTORIZED_DISCOUNT",
    "resolve_schedule",
    "resolve_chunk_size",
    "ENV_SCHEDULE",
    "ENV_CHUNK_SIZE",
    "REPRO_JOBS_ENV",
    "SMALL_BATCH_THRESHOLD",
    "ENV_MAX_RETRIES",
    "ENV_CHUNK_TIMEOUT",
    "ENV_FAULT_RATE",
    "ENV_FAULT_KIND",
    "ENV_FAULT_SEED",
    "ChunkCache",
    "resolve_cache",
    "instrumentation_snapshot",
    "instrumentation_delta",
    "PHASES",
    "ENV_CACHE_DIR",
    "CACHE_SCHEMA_VERSION",
    "RunJournal",
    "resolve_journal",
    "ENV_JOURNAL_DIR",
    "ENV_RESUME",
    "JOURNAL_SCHEMA_VERSION",
    "ENV_HEARTBEAT",
    "resolve_heartbeat",
    "BACKENDS",
    "ENV_BACKEND",
    "HAVE_NUMPY",
    "BackendError",
    "resolve_backend",
    "vectorizable",
]
