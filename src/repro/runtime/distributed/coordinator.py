"""Distributed coordinator: the third runner venue.

:class:`DistributedRunner` fans a batch's chunks out over TCP workers
(see :mod:`.worker`) instead of forked processes.  The same determinism
contract as the serial and pool venues applies: every chunk is a pure
function of ``(task, seed, span)``, partials are folded in ascending
chunk order, and early stopping is evaluated at identical run indices —
so the three venues produce bit-identical results and the distributed
venue can always fall back to either of the others.

Scheduling is a work-stealing pull queue: workers announce ``ready`` and
the coordinator hands out the next outstanding span, so heterogeneous
hosts self-balance without any capacity declaration.  Tasks travel as
content-fingerprinted specs (:mod:`.codec`); a task with no spec (an
opaque closure, active engine faults) is executed coordinator-side
through the ordinary in-process retry ladder instead — shipping code is
never an option.

Failure handling feeds the existing
:class:`~repro.runtime.retry.RetryPolicy` degradation ladder:

* **failed attempt** (worker raised, injected fault, codec refusal) —
  requeued with an incremented attempt number, bounded by
  ``max_retries``, then resolved by trusted in-process replay.
* **wedged chunk** (deadline missed, worker still heartbeating) —
  requeued under a bumped *generation*; the stale result, should the
  worker eventually produce it, is recognised and discarded, and the
  worker keeps serving.
* **dead worker** (EOF, send failure, stale heartbeat) — its in-flight
  chunk is requeued as a failed attempt and its connection retired;
  ``RunStats.worker_deaths`` counts the casualties.
* **total worker loss** — every remaining span resolves through the
  in-process ladder, exactly like a pool whose every process broke.

Per-chunk attribution lands in ``ChunkStats.worker`` so a slow or flaky
host is visible in the exported stats.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..cache import instrumentation_delta, instrumentation_snapshot
from ..early_stop import EarlyStopRule
from ..retry import run_task_chunk
from ..runner import BatchRunner, SerialRunner
from ..stats import BatchLog
from ..tasks import merge_partials
from ..vectorized import BackendError
from .codec import encode_task
from .wire import (
    PROTOCOL_VERSION,
    WireError,
    decode_partial,
    recv_frame,
    send_frame,
)
from .worker import DEFAULT_HEARTBEAT_S, fault_spec_to_dict, resolve_heartbeat

#: Environment variable listing worker addresses (``host:port,host:port``).
ENV_WORKERS = "REPRO_WORKERS"

#: A worker whose last heartbeat is older than this many heartbeat
#: periods is declared dead.
_STALE_HEARTBEATS = 4.0

#: Default per-chunk deadline (seconds) when the retry policy sets none.
#: Distribution cannot wait forever: a silently wedged worker would
#: stall the batch, and unlike the pool venue there is no child process
#: to join on.
DEFAULT_CHUNK_DEADLINE_S = 60.0


def parse_workers(spec) -> List[Tuple[str, int]]:
    """``host:port,host:port`` (string or iterable) → address list.

    Explicit argument wins; ``None`` consults :data:`ENV_WORKERS`; an
    empty result means "no distribution".
    """
    if spec is None:
        spec = os.environ.get(ENV_WORKERS, "")
    addrs: List[Tuple[str, int]] = []
    if isinstance(spec, str):
        parts = [p.strip() for p in spec.split(",") if p.strip()]
    else:
        parts = []
        for item in spec:
            if isinstance(item, (tuple, list)) and len(item) == 2:
                addrs.append((str(item[0]), int(item[1])))
            elif str(item).strip():
                parts.append(str(item).strip())
    for part in parts:
        host, sep, port = part.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"worker address {part!r} is not host:port (set --workers "
                f"or {ENV_WORKERS} to a comma-separated list)"
            )
        try:
            port_num = int(port)
        except ValueError:
            raise ValueError(
                f"worker address {part!r} (from --workers or {ENV_WORKERS}) "
                "has a non-integer port"
            )
        if not 1 <= port_num <= 65535:
            raise ValueError(
                f"worker address {part!r} (from --workers or {ENV_WORKERS}) "
                "has an out-of-range port (need 1-65535)"
            )
        addrs.append((host, port_num))
    return addrs


class _Chunk:
    """One span's scheduling state (guarded by the batch lock).

    ``state`` walks ``queued → assigned → resolved`` on the happy path;
    failures send it back to ``queued`` (bounded by ``max_retries``) or
    forward to ``replay`` (in-process trusted replay pending); early
    stopping parks it at ``cancelled``.  ``gen`` increments on every
    reassignment so a stale result from a previous assignment can never
    be folded.
    """

    __slots__ = (
        "ti", "start", "stop", "gen", "attempt", "t0",
        "deadline", "state", "worker",
    )

    def __init__(self, ti: int, start: int, stop: int):
        self.ti = ti
        self.start = start
        self.stop = stop
        self.gen = 0
        self.attempt = 0
        self.t0: Optional[float] = None  # set at first assignment
        self.deadline: Optional[float] = None
        self.state = "queued"
        self.worker = ""


class _WorkerConn:
    """Coordinator-side view of one connected worker."""

    def __init__(self, addr: Tuple[str, int], conn: socket.socket,
                 worker_id: str, tasks_ok: Sequence[bool]):
        self.addr = addr
        self.conn = conn
        self.worker_id = worker_id
        self.tasks_ok = list(tasks_ok)
        self.last_seen = time.monotonic()
        self.wants_work = False
        self.assigned: Optional[_Chunk] = None
        self.dead = False
        self.thread: Optional[threading.Thread] = None

    def can_run(self, ti: int) -> bool:
        return ti < len(self.tasks_ok) and bool(self.tasks_ok[ti])


class DistributedRunner(BatchRunner):
    """Chunked fan-out over TCP workers (the third venue).

    ``workers`` is a list of ``(host, port)`` pairs or a
    ``host:port,host:port`` string (see :func:`parse_workers`).  Workers
    are dialled per batch; one that cannot be reached, dies mid-chunk,
    or refuses a task simply shrinks the fleet — the batch always
    completes, on the coordinator alone if necessary, with bit-identical
    results.
    """

    backend = "distributed"

    def __init__(
        self,
        workers,
        chunk_size: Optional[int] = None,
        retry=None,
        fault=None,
        cache=None,
        backend: Optional[str] = None,
        connect_timeout_s: float = 5.0,
        heartbeat_s: Optional[float] = None,
        journal=None,
        schedule: Optional[str] = None,
    ):
        super().__init__(
            chunk_size=chunk_size, retry=retry, fault=fault, cache=cache,
            backend=backend, journal=journal, schedule=schedule,
        )
        self.worker_addrs = parse_workers(workers)
        if not self.worker_addrs:
            raise ValueError("DistributedRunner needs at least one worker address")
        self.connect_timeout_s = connect_timeout_s
        # Explicit argument > REPRO_HEARTBEAT_S > default; both paths
        # validate (non-numeric or non-positive values raise, naming the
        # knob) instead of failing deep in the death detector.
        self.heartbeat_s = resolve_heartbeat(heartbeat_s)
        self.jobs = len(self.worker_addrs)

    def chunk_deadline_s(self) -> float:
        if self.retry.chunk_timeout_s is not None:
            return self.retry.chunk_timeout_s
        return DEFAULT_CHUNK_DEADLINE_S

    # -- batch entry ---------------------------------------------------------

    def run(self, tasks: Sequence, early_stop: Optional[EarlyStopRule] = None) -> List:
        tasks = list(tasks)
        requested = sum(t.n_runs for t in tasks)
        specs = [encode_task(t) for t in tasks]
        fleet = self._connect(specs)
        if not fleet:
            # Nobody answered the phone: the batch still runs, in
            # process; the serial RunStats lands in this runner's
            # history so callers can see the degradation.
            serial = SerialRunner(
                chunk_size=self.chunk_size, retry=self.retry,
                fault=self.fault, cache=self.cache, backend=self.exec_backend,
                journal=self.journal, schedule=self.schedule,
            )
            serial.chunk_observer = self.chunk_observer
            try:
                return serial.run(tasks, early_stop=early_stop)
            finally:
                if serial.last_stats is not None:
                    self.last_stats = serial.last_stats
                    self.stats_history.append(serial.last_stats)

        t0 = time.perf_counter()
        log = BatchLog(observer=self.chunk_observer)
        log.task_weights = self._batch_weights(tasks)
        state = _BatchState(self, tasks, specs, early_stop, log)
        interrupted: Optional[BaseException] = None
        for wc in fleet:
            wc.thread = threading.Thread(
                target=self._worker_loop, args=(wc, state), daemon=True
            )
            wc.thread.start()
        try:
            self._drive(state, fleet)
        except KeyboardInterrupt as exc:
            interrupted = exc
            raise
        finally:
            state.done.set()
            with state.lock:
                if interrupted is not None:
                    for chunk in state.chunks:
                        if chunk.state not in ("resolved", "cancelled"):
                            chunk.state = "cancelled"
                            log.chunk(
                                chunk.ti, chunk.start, chunk.stop, 0,
                                "cancelled", "distributed", 0.0,
                                worker=chunk.worker,
                            )
            for wc in fleet:
                if wc.thread is not None:
                    wc.thread.join(timeout=2.0)
                try:
                    wc.conn.close()
                except OSError:
                    pass
            log.worker_deaths = state.worker_deaths
            self._record(len(tasks), requested, t0, state.stopped_any, log)
            if interrupted is not None:
                interrupted.run_stats = self.last_stats
            elif state.error is not None:
                raise state.error
        return state.values()

    # -- fleet setup ---------------------------------------------------------

    def _connect(self, specs) -> List[_WorkerConn]:
        hello = {
            "type": "hello",
            "version": PROTOCOL_VERSION,
            "backend": self.exec_backend,
            "fault": fault_spec_to_dict(self.fault),
            "heartbeat_s": self.heartbeat_s,
            "tasks": specs,
        }
        fleet: List[_WorkerConn] = []
        for addr in self.worker_addrs:
            try:
                conn = socket.create_connection(addr, timeout=self.connect_timeout_s)
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                send_frame(conn, hello)
                conn.settimeout(self.connect_timeout_s)
                ack = recv_frame(conn)
                if (
                    ack.get("type") != "hello-ack"
                    or ack.get("version") != PROTOCOL_VERSION
                ):
                    conn.close()
                    continue
                fleet.append(
                    _WorkerConn(
                        addr, conn,
                        ack.get("worker_id", f"{addr[0]}:{addr[1]}"),
                        ack.get("tasks_ok", []),
                    )
                )
            except (OSError, WireError):
                continue
        return fleet

    # -- worker connection thread --------------------------------------------

    def _worker_loop(self, wc: _WorkerConn, state: "_BatchState") -> None:
        conn = wc.conn
        try:
            while not state.done.is_set():
                if wc.wants_work:
                    chunk = state.next_remote_chunk(wc)
                    if chunk is not None:
                        send_frame(
                            conn,
                            {
                                "type": "chunk",
                                "task": chunk.ti,
                                "start": chunk.start,
                                "stop": chunk.stop,
                                "attempt": chunk.attempt,
                                "gen": chunk.gen,
                            },
                        )
                        wc.wants_work = False
                        continue
                # Poll fast while a ready is outstanding (a requeue can
                # arrive any moment); otherwise just drain heartbeats.
                conn.settimeout(0.05 if wc.wants_work else 0.25)
                try:
                    msg = recv_frame(conn)
                except socket.timeout:
                    continue
                wc.last_seen = time.monotonic()
                kind = msg.get("type")
                if kind == "heartbeat":
                    continue
                if kind == "ready":
                    wc.wants_work = True
                elif kind == "result":
                    state.on_result(wc, msg)
                elif kind == "error":
                    break
            # Batch over: a worker blocked in its pull loop is released.
            try:
                conn.settimeout(0.5)
                send_frame(conn, {"type": "shutdown"})
            except (OSError, WireError):
                pass
        except (WireError, OSError):
            state.on_worker_death(wc)
        except Exception as exc:  # defensive: never strand the batch
            state.on_worker_death(wc)
            state.record_error(exc)

    # -- main drive loop -----------------------------------------------------

    def _drive(self, state: "_BatchState", fleet: List[_WorkerConn]) -> None:
        stale_after = self.heartbeat_s * _STALE_HEARTBEATS
        while True:
            with state.lock:
                if state.finished():
                    return
                if state.error is not None:
                    return
            now = time.monotonic()
            for wc in fleet:
                if not wc.dead and now - wc.last_seen > stale_after:
                    state.on_worker_death(wc)
            state.check_deadlines()
            if all(wc.dead for wc in fleet):
                # Total worker loss: the final rung of the ladder.
                state.drain_locally()
                return
            # Exhausted chunks (trusted replay due) and chunks no
            # connected worker can decode run right here, interleaved
            # with the remote traffic.
            chunk, replay = state.next_local_chunk(fleet)
            if chunk is not None:
                state.run_local(chunk, replay)
                continue
            time.sleep(0.01)


class _BatchState:
    """All mutable per-batch state, shared by the drive and worker threads.

    Everything below is guarded by ``self.lock`` except ``done`` (an
    Event) and the chunk *executions* themselves, which run unlocked —
    only their bookkeeping takes the lock.
    """

    def __init__(self, runner: DistributedRunner, tasks, specs, early_stop, log):
        self.runner = runner
        self.tasks = tasks
        self.specs = specs
        self.early_stop = early_stop
        self.log = log
        self.lock = threading.RLock()
        self.done = threading.Event()
        self.worker_deaths = 0
        self.stopped_any = False
        self.error: Optional[BaseException] = None
        self.chunks: List[_Chunk] = []
        self.per_task: List[List[_Chunk]] = []
        self.pending: Deque[_Chunk] = deque()
        self._folded: List[object] = [None] * len(tasks)
        self._next_span: List[int] = [0] * len(tasks)
        self._parts: List[Dict[int, object]] = [dict() for _ in tasks]
        self._task_stopped: List[bool] = [False] * len(tasks)
        for ti, task in enumerate(tasks):
            records = []
            for start, stop in runner._plan(task):
                chunk = _Chunk(ti, start, stop)
                records.append(chunk)
                self.chunks.append(chunk)
                self.pending.append(chunk)
            self.per_task.append(records)
        if runner.schedule == "cost" and log.task_weights:
            # LPT pull order: workers claim predicted-expensive chunks
            # first, cheap ones backfill the tail.  Folding stays in
            # ascending span order (``_fold`` buffers out-of-order
            # arrivals), so results are dispatch-order-invariant.
            weights = log.task_weights
            self.pending = deque(
                sorted(
                    self.pending,
                    key=lambda c: (
                        -weights.get(c.ti, 0.0) * (c.stop - c.start),
                        c.ti,
                        c.start,
                    ),
                )
            )
        # Resume: resolve journaled spans before any scheduling, folding
        # them in ascending span order so early stopping fires at the
        # same run indices as an uninterrupted serial batch.  Resolved
        # chunks left in the pending deque are dropped as ghosts by the
        # schedulers.
        if runner.journal is not None:
            for ti, task in enumerate(tasks):
                for chunk in self.per_task[ti]:
                    if self._task_stopped[ti]:
                        break
                    hit, part = runner._journal_fetch(
                        task, ti, chunk.start, chunk.stop, log
                    )
                    if not hit:
                        continue
                    chunk.state = "resolved"
                    log.chunk(
                        ti, chunk.start, chunk.stop, 0, "journaled",
                        "distributed", 0.0,
                    )
                    self._fold(ti, chunk, part)

    # -- scheduling ----------------------------------------------------------

    def _mark_assigned(self, chunk: _Chunk, worker_id: str) -> None:
        now = time.monotonic()
        chunk.state = "assigned"
        chunk.worker = worker_id
        if chunk.t0 is None:
            chunk.t0 = now
        chunk.deadline = (
            now + self.runner.chunk_deadline_s() if worker_id else None
        )

    def next_remote_chunk(self, wc: _WorkerConn) -> Optional[_Chunk]:
        """Next queued chunk this worker can decode (work stealing: the
        first asker wins it)."""
        with self.lock:
            for _ in range(len(self.pending)):
                chunk = self.pending.popleft()
                if chunk.state == "queued" and (
                    self.specs[chunk.ti] is not None
                    and wc.can_run(chunk.ti)
                ):
                    self._mark_assigned(chunk, wc.worker_id)
                    wc.assigned = chunk
                    return chunk
                if chunk.state in ("queued", "replay"):
                    # Not for this worker (or coordinator-only): keep it.
                    self.pending.append(chunk)
                # cancelled/resolved ghosts are simply dropped.
            return None

    def next_local_chunk(self, fleet) -> Tuple[Optional[_Chunk], bool]:
        """A chunk the coordinator itself should run: retry-exhausted
        (``replay`` state) first, then any span no live worker can
        execute.  Returns ``(chunk, is_trusted_replay)``."""
        with self.lock:
            live = [wc for wc in fleet if not wc.dead]
            for _ in range(len(self.pending)):
                chunk = self.pending.popleft()
                if chunk.state == "replay":
                    self._mark_assigned(chunk, "")
                    return chunk, True
                if chunk.state != "queued":
                    continue
                remotely_runnable = self.specs[chunk.ti] is not None and any(
                    wc.can_run(chunk.ti) for wc in live
                )
                if not remotely_runnable:
                    self._mark_assigned(chunk, "")
                    return chunk, False
                self.pending.append(chunk)
            return None, False

    # -- failure paths -------------------------------------------------------

    def on_worker_death(self, wc: _WorkerConn) -> None:
        with self.lock:
            if wc.dead:
                return
            wc.dead = True
            self.worker_deaths += 1
            try:
                wc.conn.close()
            except OSError:
                pass
            chunk = wc.assigned
            wc.assigned = None
            if chunk is not None and chunk.state == "assigned":
                self._failed_attempt(chunk)

    def check_deadlines(self) -> None:
        now = time.monotonic()
        with self.lock:
            for chunk in self.chunks:
                if (
                    chunk.state == "assigned"
                    and chunk.deadline is not None
                    and now > chunk.deadline
                ):
                    # Wedged, not dead: the worker may still be alive, so
                    # bump the generation — a late (stale) result is then
                    # recognised and dropped, and the worker keeps its
                    # connection.
                    self.log.timeouts += 1
                    self._failed_attempt(chunk)

    def _failed_attempt(self, chunk: _Chunk) -> None:
        """Requeue (bounded) or mark for trusted replay; lock held."""
        self.log.failed_attempts += 1
        chunk.gen += 1
        chunk.attempt += 1
        chunk.worker = ""
        chunk.deadline = None
        if chunk.attempt > self.runner.retry.max_retries:
            chunk.state = "replay"
        else:
            self.log.retries += 1
            chunk.state = "queued"
        self.pending.append(chunk)

    def record_error(self, exc: BaseException) -> None:
        with self.lock:
            if self.error is None:
                self.error = exc

    # -- results -------------------------------------------------------------

    def on_result(self, wc: _WorkerConn, msg: dict) -> None:
        with self.lock:
            ti = int(msg["task"])
            start, stop = int(msg["start"]), int(msg["stop"])
            chunk = self._find(ti, start, stop)
            if wc.assigned is chunk:
                wc.assigned = None
            if (
                chunk is None
                or chunk.state != "assigned"
                or msg.get("gen", 0) != chunk.gen
                or chunk.worker != wc.worker_id
            ):
                return  # stale generation (chunk was reassigned) — drop.
            if msg.get("ok"):
                try:
                    part = decode_partial(msg["partial"])
                except WireError:
                    self._failed_attempt(chunk)
                    return
                chunk.state = "resolved"
                self.log.chunk(
                    ti, start, stop, chunk.attempt + 1,
                    "ok" if chunk.attempt == 0 else "retried",
                    "distributed",
                    time.monotonic() - (chunk.t0 or time.monotonic()),
                    inst=msg.get("inst"),
                    worker=wc.worker_id,
                )
                self.runner._journal_record(
                    self.tasks[ti], ti, start, stop, part, self.log
                )
                self._fold(ti, chunk, part)
            elif msg.get("error_kind") == "BackendError":
                # A forced-backend assertion is a configuration error,
                # not a transient (see BatchRunner._serial_chunk):
                # propagate instead of degrading.
                chunk.state = "resolved"
                self.record_error(BackendError(msg.get("error", "")))
            else:
                self._failed_attempt(chunk)

    def _find(self, ti: int, start: int, stop: int) -> Optional[_Chunk]:
        if not 0 <= ti < len(self.per_task):
            return None
        for chunk in self.per_task[ti]:
            if chunk.start == start and chunk.stop == stop:
                return chunk
        return None

    # -- local execution (drive thread; lock NOT held during compute) --------

    def run_local(self, chunk: _Chunk, replay: bool) -> None:
        """Resolve one chunk in-process.

        ``replay=False`` walks the same bounded retry ladder as
        ``BatchRunner._serial_chunk`` (this is how spec-less tasks run);
        ``replay=True`` jumps straight to the trusted rung: no fault
        injection, cache bypassed.  Log/fold bookkeeping is done under
        the lock; the execution itself is not, so worker results keep
        flowing while the coordinator computes.
        """
        runner = self.runner
        task = self.tasks[chunk.ti]
        policy = runner.retry
        t0 = chunk.t0 or time.monotonic()
        before = instrumentation_snapshot()
        part = None
        outcome = None
        attempt = chunk.attempt
        try:
            if not replay:
                first_attempt = attempt
                while attempt <= policy.max_retries:
                    try:
                        part = run_task_chunk(
                            task, chunk.ti, chunk.start, chunk.stop, attempt,
                            runner.fault, in_worker=False, cache=runner.cache,
                            backend=runner.exec_backend,
                        )
                        outcome = "ok" if attempt == first_attempt == 0 else "retried"
                        break
                    except BackendError:
                        raise
                    except Exception:
                        with self.lock:
                            self.log.failed_attempts += 1
                            if attempt < policy.max_retries:
                                self.log.retries += 1
                        attempt += 1
                        if attempt <= policy.max_retries:
                            time.sleep(policy.backoff_for(attempt))
            if part is None:
                # Trusted replay: a genuine task bug raises here and
                # propagates (stats still recorded by run()'s finally).
                part = task.run_chunk(chunk.start, chunk.stop)
                outcome = "replayed"
        except BaseException as exc:
            # Leave the chunk "assigned": run()'s finally then accounts
            # it as cancelled on an interrupt — the same accounting the
            # serial and pool venues give the chunk the interrupt landed
            # in — and a non-interrupt error still propagates via
            # record_error without mislabelling the chunk resolved.
            self.record_error(exc)
            raise
        with self.lock:
            if chunk.state == "cancelled":
                return  # early stop fired while we were computing.
            chunk.state = "resolved"
            self.log.chunk(
                chunk.ti, chunk.start, chunk.stop, attempt + 1, outcome,
                "serial" if outcome == "replayed" else "distributed",
                time.monotonic() - t0,
                inst=instrumentation_delta(before),
            )
            self.runner._journal_record(
                task, chunk.ti, chunk.start, chunk.stop, part, self.log
            )
            self._fold(chunk.ti, chunk, part)

    def drain_locally(self) -> None:
        """Total worker loss: resolve every outstanding span in-process,
        in ascending task/span order so early stopping keeps its cadence."""
        while True:
            with self.lock:
                for chunk in self.chunks:
                    if chunk.state == "assigned" and chunk.worker:
                        # In flight on a connection that no longer exists.
                        self._failed_attempt(chunk)
                chunk = next(
                    (
                        c for c in self.chunks
                        if c.state in ("queued", "replay")
                    ),
                    None,
                )
                if chunk is None:
                    return
                replay = chunk.state == "replay"
                self._mark_assigned(chunk, "")
            self.run_local(chunk, replay)

    # -- in-order fold + early stop ------------------------------------------

    def _fold(self, ti: int, chunk: _Chunk, part) -> None:
        """Buffer the partial; fold the contiguous prefix; lock held.

        Folding strictly in ascending span order — buffering partials
        that arrive early — is what keeps merge order, and therefore
        float summation order and early-stop decisions, identical to the
        serial venue.
        """
        if self._task_stopped[ti]:
            return
        span_index = self.per_task[ti].index(chunk)
        self._parts[ti][span_index] = part
        while self._next_span[ti] in self._parts[ti]:
            index = self._next_span[ti]
            value = self._parts[ti].pop(index)
            folded = self._folded[ti]
            self._folded[ti] = (
                value if folded is None else merge_partials(folded, value)
            )
            self._next_span[ti] = index + 1
            if self.early_stop is not None and self.early_stop.should_stop(
                self._folded[ti]
            ):
                self._task_stopped[ti] = True
                self.stopped_any = True
                self._cancel_remaining(ti)
                break

    def _cancel_remaining(self, ti: int) -> None:
        """Early stop fired for task ``ti``: unconsumed spans are dead
        weight.  In-flight results will still arrive, be recognised as
        cancelled, and dropped — matching the pool venue's accounting."""
        for chunk in self.per_task[ti]:
            if chunk.state in ("queued", "assigned", "replay"):
                chunk.state = "cancelled"
                self.log.chunk(
                    chunk.ti, chunk.start, chunk.stop, 0, "cancelled",
                    "distributed", 0.0, worker=chunk.worker,
                )
        self._parts[ti].clear()

    # -- completion ----------------------------------------------------------

    def finished(self) -> bool:
        return all(c.state in ("resolved", "cancelled") for c in self.chunks)

    def values(self) -> List:
        return list(self._folded)
