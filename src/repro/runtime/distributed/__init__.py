"""Multi-host distributed execution: the third runner venue.

The coordinator (:class:`DistributedRunner`) ships content-fingerprinted
chunk descriptors to TCP workers (``repro worker --listen``) over a
length-prefixed JSON wire protocol, folds the returned partials in
ascending chunk order, and degrades through the familiar retry ladder on
any failure — so serial, pool, and distributed batches stay
bit-identical.  See the submodule docstrings for the protocol
(:mod:`.wire`), the task-spec codec (:mod:`.codec`), the worker server
(:mod:`.worker`), and the scheduling/failure semantics
(:mod:`.coordinator`).
"""

from .codec import (
    CodecError,
    decode_task,
    encode_task,
    register_function,
    register_protocol,
    register_strategy,
    task_fingerprint,
)
from .coordinator import DistributedRunner, ENV_WORKERS, parse_workers
from .wire import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    ConnectionClosed,
    FrameError,
    WireError,
    decode_partial,
    encode_partial,
    recv_frame,
    send_frame,
)
from .worker import ENV_HEARTBEAT, WorkerServer, resolve_heartbeat, serve

__all__ = [
    "CodecError",
    "ConnectionClosed",
    "DistributedRunner",
    "ENV_HEARTBEAT",
    "ENV_WORKERS",
    "resolve_heartbeat",
    "FrameError",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "WireError",
    "WorkerServer",
    "decode_partial",
    "decode_task",
    "encode_partial",
    "encode_task",
    "parse_workers",
    "recv_frame",
    "register_function",
    "register_protocol",
    "register_strategy",
    "send_frame",
    "serve",
    "task_fingerprint",
]
