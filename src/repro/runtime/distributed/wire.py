"""Wire protocol for the distributed runner: framing and payload codecs.

Everything that crosses a coordinator↔worker TCP connection is one
*frame*: a 4-byte big-endian length prefix followed by that many bytes of
UTF-8 JSON.  JSON (rather than pickle) is a deliberate security and
portability boundary — the fork-only closure restriction of
``ProcessPoolRunner`` must not leak into the wire protocol, and a worker
must never execute code smuggled inside a task description.  Frames are
bounded by :data:`MAX_FRAME`; an oversized, truncated, or non-JSON frame
raises :class:`FrameError` on the receiving side, which the peer treats
as a dead connection (never as a crash).

Chunk partials are mergeable values (see ``runtime.tasks``): this module
can round-trip :class:`~repro.core.utility.EventCounts`, ``int``, and
(nested) tuples of those.  Encoding preserves dict insertion order, so a
partial decoded from the wire merges byte-identically to one computed
in-process — the distributed venue inherits the determinism contract for
free.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

from ...core.events import FairnessEvent
from ...core.utility import EventCounts

#: Bumped on any incompatible change to frames or task specs; a worker
#: refuses a coordinator speaking a different version.
PROTOCOL_VERSION = 1

#: Hard cap on a single frame's payload (a chunk partial is a few KB;
#: anything near this bound is a corrupt or hostile peer).
MAX_FRAME = 16 * 1024 * 1024

_LEN = struct.Struct(">I")


class WireError(RuntimeError):
    """Base class for wire-level failures."""


class FrameError(WireError):
    """An oversized, truncated, or non-JSON frame."""


class ConnectionClosed(WireError):
    """The peer closed the connection (EOF mid-frame or between frames)."""


# -- framing -----------------------------------------------------------------


def send_frame(sock: socket.socket, message: dict) -> None:
    """Serialise one message and write it length-prefixed."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    sock.sendall(_LEN.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        piece = sock.recv(remaining)
        if not piece:
            raise ConnectionClosed(
                f"connection closed with {remaining}/{n} bytes outstanding"
            )
        chunks.append(piece)
        remaining -= len(piece)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict:
    """Read one length-prefixed JSON frame (honours the socket timeout).

    Raises :class:`ConnectionClosed` on EOF, :class:`FrameError` on an
    oversized length prefix or a body that is not a JSON object, and
    propagates ``socket.timeout`` untouched so callers can poll.
    """
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if length > MAX_FRAME:
        raise FrameError(f"frame of {length} bytes exceeds MAX_FRAME")
    body = _recv_exact(sock, length)
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise FrameError(
            f"frame must decode to an object, got {type(message).__name__}"
        )
    return message


# -- chunk-partial codec -----------------------------------------------------


def encode_partial(value):
    """Tagged-JSON form of a mergeable chunk partial.

    Supports exactly the partial types the distributed venue ships:
    :class:`EventCounts`, ``int``, and tuples/lists of those.  Raises
    :class:`WireError` on anything else — the coordinator then executes
    that task locally instead of shipping it.
    """
    if isinstance(value, bool):
        raise WireError("bool is not a mergeable partial")
    if isinstance(value, int):
        return {"t": "int", "v": value}
    if isinstance(value, EventCounts):
        return {
            "t": "events",
            # Insertion order matters downstream (float folds iterate
            # these dicts), so both mappings are shipped as ordered
            # pair-lists and rebuilt in the same order.
            "counts": [[e.name, c] for e, c in value.counts.items()],
            "corr": [
                [sorted(subset), c]
                for subset, c in value.corruption_counts.items()
            ],
        }
    if isinstance(value, (tuple, list)):
        return {"t": "tuple", "v": [encode_partial(item) for item in value]}
    raise WireError(
        f"no wire encoding for partial type {type(value).__name__}"
    )


def decode_partial(payload):
    """Inverse of :func:`encode_partial` (raises :class:`WireError`)."""
    if not isinstance(payload, dict) or "t" not in payload:
        raise WireError("malformed partial payload")
    tag = payload["t"]
    if tag == "int":
        return int(payload["v"])
    if tag == "events":
        counts = EventCounts(counts={}, corruption_counts={})
        for name, c in payload["counts"]:
            counts.counts[FairnessEvent[name]] = int(c)
        for members, c in payload["corr"]:
            counts.corruption_counts[frozenset(members)] = int(c)
        return counts
    if tag == "tuple":
        return tuple(decode_partial(item) for item in payload["v"])
    raise WireError(f"unknown partial tag {tag!r}")
