"""Task-spec codec: describing an :class:`ExecutionTask` without code.

A distributed worker cannot inherit live task objects the way a forked
pool worker does, and the wire protocol deliberately refuses pickled
closures.  Instead the coordinator ships a *task spec* — plain JSON
naming the protocol (class + function-spec name + parameters), the
strategy, the input sampler, and the (tagged) master seed — and the
worker rebuilds the task locally from registries it already trusts.

Every spec embeds the task's **content fingerprint**: the digest of the
same ``cache_material()`` the persistent chunk cache keys on.  After
rebuilding, the worker recomputes the fingerprint and refuses the task
on any mismatch, so a registry drift between hosts degrades to "this
worker sits the task out" rather than a silently different measurement.
The fingerprint inherits the cache layer's identity contract: protocol
``cache_key``s and strategy names are canonical descriptions of
behaviour.

Tasks that cannot name their content — anonymous factories, unregistered
protocol classes, custom samplers without a ``cache_token``, active
engine faults — simply encode to ``None`` and are executed in-process by
the coordinator, bit-identically as always.

The registries are extensible: :func:`register_function`,
:func:`register_protocol`, and :func:`register_strategy` let new
workloads opt their components into distribution (register the same
names on every host).
"""

from __future__ import annotations

import ast
import re
from typing import Callable, Dict, Optional

from ...crypto.prf import encode_seed
from ..tasks import ExecutionTask

#: Bumped whenever spec layout or fingerprint derivation changes.
CODEC_VERSION = 1


class CodecError(RuntimeError):
    """A task spec this host cannot (or refuses to) rebuild."""


# -- tagged seed values ------------------------------------------------------
# Seeds are arbitrary compositions of the types ``encode_seed`` supports;
# this tagging makes exactly that set JSON-round-trippable (and nothing
# more — objects that ``encode_seed`` would repr-fallback are rejected,
# because their repr is not a stable cross-host identity).


def tag_value(value):
    """Tagged-JSON form of one seed component (raises CodecError)."""
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    if isinstance(value, int):
        return {"t": "int", "v": str(value)}
    if isinstance(value, str):
        return {"t": "str", "v": value}
    if isinstance(value, (bytes, bytearray)):
        return {"t": "bytes", "v": bytes(value).hex()}
    if isinstance(value, float):
        return {"t": "float", "v": value.hex()}
    if value is None:
        return {"t": "none"}
    if isinstance(value, (tuple, list)):
        return {
            "t": "tuple" if isinstance(value, tuple) else "list",
            "v": [tag_value(item) for item in value],
        }
    raise CodecError(f"seed component {value!r} has no canonical wire form")


def untag_value(payload):
    """Inverse of :func:`tag_value` (raises CodecError)."""
    if not isinstance(payload, dict) or "t" not in payload:
        raise CodecError("malformed tagged value")
    tag = payload["t"]
    if tag == "bool":
        return bool(payload["v"])
    if tag == "int":
        return int(payload["v"])
    if tag == "str":
        return str(payload["v"])
    if tag == "bytes":
        return bytes.fromhex(payload["v"])
    if tag == "float":
        return float.fromhex(payload["v"])
    if tag == "none":
        return None
    if tag in ("tuple", "list"):
        items = [untag_value(item) for item in payload["v"]]
        return tuple(items) if tag == "tuple" else items
    raise CodecError(f"unknown value tag {tag!r}")


# -- function specs ----------------------------------------------------------
# The library names its FunctionSpecs canonically (swap16, and,
# concat5x8, contract16, ...); the builders below rebuild exactly the
# constructions those names denote.

_FUNCTION_BUILDERS: Dict[str, Callable[[], object]] = {}


def register_function(name: str, builder: Callable[[], object]) -> None:
    """Register a zero-arg builder for a named FunctionSpec."""
    _FUNCTION_BUILDERS[name] = builder


def build_function(name: str):
    """Rebuild the FunctionSpec a canonical library name denotes."""
    from ...functions import (
        make_and,
        make_concat,
        make_contract_exchange,
        make_swap,
        make_xor,
    )

    if name in _FUNCTION_BUILDERS:
        return _FUNCTION_BUILDERS[name]()
    if name == "and":
        return make_and()
    if name == "xor":
        return make_xor()
    match = re.fullmatch(r"swap(\d+)", name)
    if match:
        return make_swap(int(match.group(1)))
    match = re.fullmatch(r"contract(\d+)", name)
    if match:
        return make_contract_exchange(int(match.group(1)))
    match = re.fullmatch(r"concat(\d+)x(\d+)", name)
    if match:
        return make_concat(int(match.group(1)), int(match.group(2)))
    raise CodecError(f"no registered builder for function spec {name!r}")


# -- protocols ---------------------------------------------------------------

#: Protocol classes rebuildable from ``(class name, func name[, params])``.
_SIMPLE_PROTOCOLS = (
    "NaiveContractSigning",
    "CoinOrderedContractSigning",
    "IdealCoinContractSigning",
    "Opt2SfeProtocol",
    "SingleRoundProtocol",
    "GradualReleaseProtocol",
    "DummyProtocol",
    "OptNSfeProtocol",
    "UnbalancedOptProtocol",
    "ThresholdGmwProtocol",
)

_PROTOCOL_BUILDERS: Dict[str, Callable[[dict], object]] = {}


def register_protocol(name: str, builder: Callable[[dict], object]) -> None:
    """Register a custom protocol builder (``params`` dict → protocol)."""
    _PROTOCOL_BUILDERS[name] = builder


def _protocol_class(name: str):
    from ...gmw import ThresholdGmwProtocol
    from ... import protocols as P

    if name == "ThresholdGmwProtocol":
        return ThresholdGmwProtocol
    return getattr(P, name, None)


def encode_protocol(protocol) -> Optional[dict]:
    """Spec for a protocol instance, or ``None`` when it has no codec."""
    cls = type(protocol).__name__
    func_name = getattr(getattr(protocol, "func", None), "name", None)
    if func_name is None:
        return None
    spec = {"cls": cls, "func": func_name}
    if cls == "GordonKatzProtocol":
        spec["p"] = protocol.p
        spec["variant"] = protocol.variant
    elif cls not in _SIMPLE_PROTOCOLS and cls not in _PROTOCOL_BUILDERS:
        return None
    try:
        spec["cache_key"] = tag_value(tuple(protocol.cache_key))
    except (CodecError, TypeError):
        return None
    return spec


def decode_protocol(spec: dict):
    """Rebuild a protocol from its spec, cross-checking ``cache_key``."""
    cls_name = spec.get("cls")
    if cls_name in _PROTOCOL_BUILDERS:
        protocol = _PROTOCOL_BUILDERS[cls_name](spec)
    else:
        cls = _protocol_class(cls_name)
        if cls is None or (
            cls_name not in _SIMPLE_PROTOCOLS
            and cls_name != "GordonKatzProtocol"
        ):
            raise CodecError(f"no registered protocol codec for {cls_name!r}")
        func = build_function(spec["func"])
        if cls_name == "GordonKatzProtocol":
            protocol = cls(func, p=int(spec["p"]), variant=spec["variant"])
        else:
            protocol = cls(func)
    expected = untag_value(spec["cache_key"])
    if tuple(protocol.cache_key) != expected:
        raise CodecError(
            f"rebuilt protocol identity {tuple(protocol.cache_key)!r} does "
            f"not match shipped {expected!r}"
        )
    return protocol


# -- strategies --------------------------------------------------------------
# Strategy identity is the factory *name* — exactly the contract the
# chunk cache already keys on.  The resolvers below rebuild every naming
# convention the codebase uses; explicit registrations win.

_STRATEGY_BUILDERS: Dict[str, Callable[[], object]] = {}


def register_strategy(name: str, build: Callable[[], object]) -> None:
    """Register a zero-arg adversary constructor under a factory name."""
    _STRATEGY_BUILDERS[name] = build


def _parse_party_set(text: str) -> frozenset:
    """Corruption set from a bracket label: ``"01"`` or ``"0, 1"``."""
    text = text.strip()
    if "," in text:
        return frozenset(int(part) for part in text.split(","))
    if not text.isdigit():
        raise CodecError(f"unparseable corruption label {text!r}")
    return frozenset(int(ch) for ch in text)


def resolve_strategy(name: str):
    """Rebuild the :class:`AdversaryFactory` a name denotes.

    Covers the standard sweep (``passive[01]``, ``lock-watch[01]``,
    ``abort@r3[01]``, ``func-abort[coin,ask][01]``), the claim-registry
    spellings (``lock-watch[0, 1]``, ``lock-watch-t2``, ``lw2``), and any
    name explicitly registered via :func:`register_strategy`.
    """
    from ...adversaries import (
        AbortAtRound,
        FunctionalityAborter,
        KnownOutputStopper,
        LockWatchingAborter,
        PassiveAdversary,
        SignalDeviator,
        fixed,
    )

    if name in _STRATEGY_BUILDERS:
        return fixed(name, _STRATEGY_BUILDERS[name])
    match = re.fullmatch(r"passive\[([^\]]*)\]", name)
    if match:
        parties = _parse_party_set(match.group(1))
        return fixed(name, lambda: PassiveAdversary(set(parties)))
    match = re.fullmatch(r"lock-watch\[([^\]]*)\]", name)
    if match:
        parties = _parse_party_set(match.group(1))
        return fixed(name, lambda: LockWatchingAborter(set(parties)))
    match = re.fullmatch(r"abort@r(\d+)\[([^\]]*)\]", name)
    if match:
        rnd = int(match.group(1))
        parties = _parse_party_set(match.group(2))
        return fixed(name, lambda: AbortAtRound(set(parties), rnd))
    match = re.fullmatch(r"func-abort\[([^,\]]+),(ask|noask)\]\[([^\]]*)\]", name)
    if match:
        fname = match.group(1)
        ask = match.group(2) == "ask"
        parties = _parse_party_set(match.group(3))
        return fixed(
            name,
            lambda: FunctionalityAborter(set(parties), fname, ask_first=ask),
        )
    match = re.fullmatch(r"(?:lock-watch-t|lw)(\d+)", name)
    if match:
        t = int(match.group(1))
        return fixed(name, lambda: LockWatchingAborter(set(range(t))))
    if name == "lw-t2":
        return fixed(name, lambda: LockWatchingAborter({0, 1}))
    if name == "sd1":
        return fixed(name, lambda: SignalDeviator({0}))
    if name == "known-output":
        return fixed(name, lambda: KnownOutputStopper(0, known_output=1))
    raise CodecError(f"no registered strategy codec for {name!r}")


# -- input samplers ----------------------------------------------------------


def decode_sampler(token: str):
    """Rebuild an input sampler from its ``cache_token`` (or ``None``)."""
    if not token:
        return None
    if token.startswith("const:"):
        from ...verify.claims import constant_inputs

        try:
            inputs = ast.literal_eval(token[len("const:"):])
        except (ValueError, SyntaxError):
            raise CodecError(f"unparseable sampler token {token!r}") from None
        return constant_inputs(tuple(inputs))
    raise CodecError(f"no registered sampler codec for {token!r}")


# -- whole-task specs --------------------------------------------------------


def task_fingerprint(task) -> Optional[str]:
    """Content digest of a task (the chunk cache's identity, versioned)."""
    material = getattr(task, "cache_material", None)
    if material is None:
        return None
    material = material()
    if material is None:
        return None
    return encode_seed(("task-spec", CODEC_VERSION, material)).hex()


def encode_task(task) -> Optional[dict]:
    """Wire spec for a task, or ``None`` when it must stay local.

    A task is shippable when its content fingerprint exists (the cache
    contract), its protocol and sampler have registered codecs, its seed
    is canonical, and it runs no engine faults (fault bundles carry
    seeded closures the wire cannot describe yet).
    """
    if not isinstance(task, ExecutionTask):
        return None
    if task.faults is not None and task.faults.active:
        return None
    fingerprint = task_fingerprint(task)
    if fingerprint is None:
        return None
    protocol_spec = encode_protocol(task.protocol)
    if protocol_spec is None:
        return None
    strategy_name = getattr(task.factory, "name", None)
    if strategy_name is None:
        return None
    if task.input_sampler is None:
        sampler_token = ""
    else:
        sampler_token = getattr(task.input_sampler, "cache_token", None)
        if sampler_token is None:
            return None
    try:
        seed = tag_value(task.seed)
        # Encode-side dry run: never ship a spec this very codebase
        # could not rebuild (registry gaps surface here, not remotely).
        resolve_strategy(strategy_name)
        decode_sampler(sampler_token)
    except CodecError:
        return None
    return {
        "kind": "execution-task",
        "version": CODEC_VERSION,
        "fingerprint": fingerprint,
        "protocol": protocol_spec,
        "strategy": strategy_name,
        "sampler": sampler_token,
        "n_runs": task.n_runs,
        "seed": seed,
    }


def decode_task(spec: dict) -> ExecutionTask:
    """Rebuild a task from its wire spec, verifying the fingerprint."""
    if not isinstance(spec, dict) or spec.get("kind") != "execution-task":
        raise CodecError("not an execution-task spec")
    if spec.get("version") != CODEC_VERSION:
        raise CodecError(
            f"task-spec version {spec.get('version')!r} != {CODEC_VERSION}"
        )
    task = ExecutionTask(
        protocol=decode_protocol(spec["protocol"]),
        factory=resolve_strategy(spec["strategy"]),
        n_runs=int(spec["n_runs"]),
        seed=untag_value(spec["seed"]),
        input_sampler=decode_sampler(spec["sampler"]),
        faults=None,
    )
    rebuilt = task_fingerprint(task)
    if rebuilt != spec["fingerprint"]:
        raise CodecError(
            f"rebuilt task fingerprint {rebuilt} does not match shipped "
            f"{spec['fingerprint']} (registry drift between hosts?)"
        )
    return task
