"""Distributed worker: serves chunk executions to one coordinator at a time.

A worker is a passive TCP server.  The coordinator connects, introduces
the batch (protocol version, execution backend, fault spec, and the
task-spec list — see :mod:`.codec`), and the worker then *pulls* work:
it announces ``ready``, receives one ``(task, start, stop, attempt)``
chunk descriptor, executes it through the exact same
:func:`~repro.runtime.retry.run_task_chunk` entry point a forked pool
worker uses (fault injection first, then cache, then the selected
engine), ships back ``(partial, instrumentation delta)``, and announces
``ready`` again.  Pull scheduling is what makes the fleet self-balance:
a fast worker simply asks more often.

Liveness is a background heartbeat thread sharing the connection under a
send lock, so a long chunk never makes a healthy worker look dead.  A
``kind="exit"`` injected fault kills the whole process (heartbeats
included — the coordinator sees EOF); a ``kind="sleep"`` fault stalls
only the chunk, so heartbeats keep flowing and the coordinator's
*chunk deadline*, not its death detector, is what fires — exactly the
wedged-vs-dead distinction the reassignment logic wants to exercise.

Local environment knobs are honoured: ``REPRO_BACKEND`` overrides the
coordinator's suggested engine, ``REPRO_CACHE_DIR`` gives the worker its
own persistent chunk cache, and ``REPRO_FAULT_*`` applies when the
coordinator ships no fault spec of its own.  Execution stays
deterministic regardless: a chunk's partial is a pure function of
``(task, seed, span)`` whatever host computes it.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
from typing import Dict, Optional

from ..cache import ChunkCache, instrumentation_delta, instrumentation_snapshot
from ..retry import FaultSpec, run_task_chunk
from ..vectorized import resolve_backend
from .codec import CodecError, decode_task, tag_value, untag_value
from .wire import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    WireError,
    encode_partial,
    recv_frame,
    send_frame,
)

#: Seconds between worker heartbeats when the coordinator names none.
DEFAULT_HEARTBEAT_S = 1.0

#: Environment override for the coordinator's heartbeat interval.
ENV_HEARTBEAT = "REPRO_HEARTBEAT_S"


def resolve_heartbeat(value: Optional[float] = None) -> float:
    """Effective heartbeat interval: explicit > ``REPRO_HEARTBEAT_S`` > 1s.

    Validates like ``REPRO_CHUNK_TIMEOUT``: a non-numeric or non-positive
    value raises ``ValueError`` naming the knob instead of seeding the
    stale-heartbeat death detector with garbage.
    """
    if value is None:
        raw = os.environ.get(ENV_HEARTBEAT, "").strip()
        if not raw:
            return DEFAULT_HEARTBEAT_S
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"{ENV_HEARTBEAT} must be a number of seconds, got {raw!r}"
            )
        if not value > 0:
            raise ValueError(
                f"{ENV_HEARTBEAT} must be positive, got {raw!r}"
            )
        return value
    value = float(value)
    if not value > 0:
        raise ValueError(
            f"heartbeat interval must be positive, got {value!r}"
        )
    return value


def fault_spec_to_dict(fault: Optional[FaultSpec]) -> Optional[dict]:
    """Wire form of a fault spec (tagged seed keeps int/str distinct)."""
    if fault is None:
        return None
    return {
        "rate": fault.rate,
        "kind": fault.kind,
        "seed": tag_value(fault.seed),
        "sleep_s": fault.sleep_s,
        "max_consecutive": fault.max_consecutive,
    }


def fault_spec_from_dict(payload: Optional[dict]) -> Optional[FaultSpec]:
    if payload is None:
        return None
    return FaultSpec(
        rate=float(payload["rate"]),
        kind=payload["kind"],
        seed=untag_value(payload["seed"]),
        sleep_s=float(payload["sleep_s"]),
        max_consecutive=int(payload["max_consecutive"]),
    )


class _Heartbeat(threading.Thread):
    """Sends ``heartbeat`` frames under the shared send lock until stopped."""

    def __init__(self, conn: socket.socket, lock: threading.Lock, every_s: float):
        super().__init__(daemon=True)
        self._conn = conn
        self._lock = lock
        self._every_s = max(0.05, every_s)
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self._every_s):
            try:
                with self._lock:
                    send_frame(self._conn, {"type": "heartbeat"})
            except OSError:
                return

    def stop(self) -> None:
        self._stop.set()


class WorkerServer:
    """One worker process: accept coordinators sequentially, serve chunks."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = port
        self._listener: Optional[socket.socket] = None
        self.worker_id = f"{socket.gethostname()}:{os.getpid()}"

    # -- lifecycle -----------------------------------------------------------

    def bind(self) -> int:
        """Bind the listening socket; returns the actual port (``port=0``
        asks the OS for a free one — the announce line carries it)."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(4)
        self._listener = listener
        self.port = listener.getsockname()[1]
        return self.port

    def announce(self, out=None) -> None:
        """Print the machine-readable ``listening`` line (port discovery
        for tests/CI that bind port 0)."""
        import json

        out = out if out is not None else sys.stdout
        print(
            json.dumps(
                {
                    "event": "listening",
                    "host": self.host,
                    "port": self.port,
                    "worker_id": self.worker_id,
                }
            ),
            file=out,
            flush=True,
        )

    def serve_forever(self, once: bool = False) -> None:
        """Accept coordinator sessions until interrupted (or one, with
        ``once`` — the test/CI mode that exits when its coordinator
        disconnects)."""
        assert self._listener is not None, "bind() first"
        try:
            while True:
                conn, _addr = self._listener.accept()
                try:
                    self.serve_coordinator(conn)
                finally:
                    try:
                        conn.close()
                    except OSError:
                        pass
                if once:
                    return
        finally:
            self._listener.close()

    # -- one coordinator session ---------------------------------------------

    def serve_coordinator(self, conn: socket.socket) -> None:
        """Run one hello → pull-loop session over an accepted connection."""
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            hello = recv_frame(conn)
        except WireError:
            return
        if hello.get("type") != "hello" or hello.get("version") != PROTOCOL_VERSION:
            try:
                send_frame(
                    conn,
                    {
                        "type": "error",
                        "error": (
                            f"expected hello v{PROTOCOL_VERSION}, got "
                            f"{hello.get('type')!r} v{hello.get('version')!r}"
                        ),
                    },
                )
            except OSError:
                pass
            return

        # Local env wins over the coordinator's suggestion for the engine;
        # fault spec: the coordinator's (cluster-consistent pattern) wins
        # over this host's env.
        if os.environ.get("REPRO_BACKEND", "").strip():
            backend = resolve_backend(None)
        else:
            backend = resolve_backend(hello.get("backend"))
        try:
            fault = fault_spec_from_dict(hello.get("fault"))
        except (CodecError, KeyError, ValueError):
            fault = None
        if fault is None:
            fault = FaultSpec.from_env()
        if fault is not None and not fault.active:
            fault = None
        cache = ChunkCache.from_env()

        tasks: Dict[int, object] = {}
        tasks_ok = []
        for index, spec in enumerate(hello.get("tasks", [])):
            if spec is None:
                tasks_ok.append(False)
                continue
            try:
                tasks[index] = decode_task(spec)
                tasks_ok.append(True)
            except (CodecError, KeyError, TypeError, ValueError):
                # Registry drift or a fingerprint mismatch: sit this task
                # out rather than compute something subtly different.
                tasks_ok.append(False)

        # The coordinator's interval is a remote suggestion, not a local
        # config error: clamp anything malformed (non-numeric, zero,
        # negative, NaN) to the default rather than dropping the session.
        try:
            heartbeat_s = float(hello.get("heartbeat_s", DEFAULT_HEARTBEAT_S))
        except (TypeError, ValueError):
            heartbeat_s = DEFAULT_HEARTBEAT_S
        if not heartbeat_s > 0:
            heartbeat_s = DEFAULT_HEARTBEAT_S
        send_lock = threading.Lock()
        with send_lock:
            send_frame(
                conn,
                {
                    "type": "hello-ack",
                    "version": PROTOCOL_VERSION,
                    "worker_id": self.worker_id,
                    "tasks_ok": tasks_ok,
                },
            )
        heartbeat = _Heartbeat(conn, send_lock, heartbeat_s / 2.0)
        heartbeat.start()
        try:
            self._pull_loop(conn, send_lock, tasks, fault, cache, backend)
        except (WireError, OSError):
            # Coordinator went away mid-session; nothing to salvage.
            return
        finally:
            heartbeat.stop()

    def _pull_loop(self, conn, send_lock, tasks, fault, cache, backend) -> None:
        while True:
            with send_lock:
                send_frame(conn, {"type": "ready"})
            # Block until the coordinator has work (it may hold the ready
            # while chunks are in flight elsewhere) or shuts us down.
            msg = recv_frame(conn)
            kind = msg.get("type")
            if kind == "shutdown":
                return
            if kind != "chunk":
                raise WireError(f"unexpected frame {kind!r} in pull loop")
            reply = self._execute(msg, tasks, fault, cache, backend)
            with send_lock:
                send_frame(conn, reply)

    def _execute(self, msg, tasks, fault, cache, backend) -> dict:
        ti = int(msg["task"])
        start, stop = int(msg["start"]), int(msg["stop"])
        attempt = int(msg.get("attempt", 0))
        reply = {
            "type": "result",
            "task": ti,
            "start": start,
            "stop": stop,
            "gen": msg.get("gen", 0),
            "worker_id": self.worker_id,
        }
        task = tasks.get(ti)
        if task is None:
            reply.update(ok=False, error="task not decodable on this worker",
                         error_kind="CodecError")
            return reply
        before = instrumentation_snapshot()
        try:
            part = run_task_chunk(
                task, ti, start, stop, attempt, fault,
                in_worker=True, cache=cache, backend=backend,
            )
            reply.update(
                ok=True,
                partial=encode_partial(part),
                inst=instrumentation_delta(before),
            )
        except ConnectionClosed:
            raise
        except Exception as exc:  # InjectedFault, BackendError, task bugs
            reply.update(
                ok=False,
                error=f"{type(exc).__name__}: {exc}",
                error_kind=type(exc).__name__,
            )
        return reply


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    once: bool = False,
    announce: bool = True,
) -> None:
    """Entry point behind ``repro worker --listen host:port``."""
    server = WorkerServer(host, port)
    server.bind()
    if announce:
        server.announce()
    server.serve_forever(once=once)
