"""Batch runners: serial and process-pool Monte-Carlo execution.

The measurement layer hands a runner a list of tasks (see
``runtime.tasks``); the runner splits each task's run range into chunks,
executes the chunks, and folds the partials back in ascending chunk order.
Two interchangeable backends:

* :class:`SerialRunner` — the historical in-process loop; default, and
  always used for tiny batches where worker startup would dominate.
* :class:`ProcessPoolRunner` — fans all chunks of all tasks out over a
  ``concurrent.futures`` process pool (``fork`` start method: workers
  inherit the live task objects, so strategy factories built from closures
  need no pickling; submitted work items are just ``(task, start, stop)``
  index triples, and results come back as picklable partials).

Determinism contract: per-run randomness depends only on ``(seed, k)``
via ``Rng(seed).fork(f"run-{k}")`` inside the task, and partials are
merged in ascending chunk order, so both backends produce bit-identical
results for the same seed.

Failure semantics (see ``runtime.retry`` and docs/architecture.md): a
chunk attempt that raises, breaks its worker, or misses its deadline is
retried — in-pool with bounded backoff first, then on the final rung of
the degradation ladder via trusted in-process serial replay with fault
injection disabled — so a worker crash can delay a batch but never bias
or lose it.  Every chunk leaves a :class:`~repro.runtime.stats.ChunkStats`
record, and the batch-wide :class:`~repro.runtime.stats.RunStats` is
recorded in a ``finally`` so ``last_stats`` survives even a failing batch.

Backend selection: an explicit ``runner=`` argument wins; otherwise
``jobs`` (CLI ``--jobs`` / keyword) is consulted, falling back to the
``REPRO_JOBS`` environment variable, falling back to serial.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import CancelledError as FuturesCancelled
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Sequence

from .cache import ChunkCache, instrumentation_delta, instrumentation_snapshot
from .early_stop import EarlyStopRule
from .journal import RunJournal
from .retry import ChunkTimeout, FaultSpec, RetryPolicy, run_task_chunk
from .stats import BatchLog, RunStats
from .tasks import SCHEDULES, merge_partials, plan_chunks
from .vectorized import BackendError, resolve_backend

#: Environment variable consulted when no explicit ``jobs`` is given.
REPRO_JOBS_ENV = "REPRO_JOBS"

#: Environment variable consulted when no explicit ``schedule`` is given.
ENV_SCHEDULE = "REPRO_SCHEDULE"

#: Environment variable consulted when no explicit ``chunk_size`` is given.
ENV_CHUNK_SIZE = "REPRO_CHUNK_SIZE"

#: Measured vectorized-over-reference speedup (BENCH_vectorized.json).
#: The cost planner divides a task's predicted weight by this when the
#: task will execute on a NumPy kernel: a vectorized run costs ~1/35th
#: of its reference-engine prediction, and chunk sizing should reflect
#: the engine that will actually run.  Intentionally a fixed constant
#: (not re-measured per host) so plans are machine-independent.
VECTORIZED_DISCOUNT = 35.0

#: Batches smaller than this run serially even when a pool was requested.
SMALL_BATCH_THRESHOLD = 64

#: How many chunk deadlines a still-queued future may sit out before the
#: wait itself is treated as a timeout (guards against a pool whose every
#: worker is wedged on someone else's chunk).
_QUEUE_WAIT_DEADLINES = 20

#: Liveness backstop for pools run *without* a chunk deadline.  Executor
#: churn (one pool per batch) can very rarely starve a fresh pool: the
#: work-item handoff is lost inside the executor machinery, its workers
#: sit forever in ``call_queue.get()`` and ``future.result()`` would
#: block indefinitely.  If the awaited future has not even *started*
#: after this many seconds without any chunk resolving batch-wide, the
#: pool is declared wedged and respawned.  A chunk that is actually
#: running is never interrupted by this path.
_STARVATION_POLL_S = 15.0
_STARVATION_GRACE_S = 120.0


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit arg > ``REPRO_JOBS`` > 1.

    ``0`` (or the env value ``"auto"``) means "use every CPU".
    """
    if jobs is None:
        raw = os.environ.get(REPRO_JOBS_ENV, "").strip()
        if not raw:
            return 1
        if raw.lower() == "auto":
            jobs = os.cpu_count() or 1
        else:
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(
                    f"{REPRO_JOBS_ENV} must be an integer or 'auto', got {raw!r}"
                )
            if jobs < 0:
                # Name the variable: this value came from the environment,
                # and "jobs must be non-negative" gives the operator no
                # clue *which* knob to fix (cf. REPRO_CHUNK_TIMEOUT).
                raise ValueError(
                    f"{REPRO_JOBS_ENV} must be non-negative or 'auto', "
                    f"got {raw!r}"
                )
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    return max(1, jobs)


def resolve_schedule(schedule: Optional[str] = None) -> str:
    """Effective chunk-planning mode: explicit arg > ``REPRO_SCHEDULE`` >
    ``"uniform"``.  Validated against :data:`~repro.runtime.tasks.SCHEDULES`,
    naming the environment variable when the bad value came from it."""
    if schedule is not None:
        if schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {schedule!r}; expected one of {SCHEDULES}"
            )
        return schedule
    raw = os.environ.get(ENV_SCHEDULE, "").strip().lower()
    if not raw:
        return "uniform"
    if raw not in SCHEDULES:
        raise ValueError(
            f"{ENV_SCHEDULE} must be one of {SCHEDULES}, got {raw!r}"
        )
    return raw


def resolve_chunk_size(chunk_size: Optional[int] = None) -> Optional[int]:
    """Effective chunk size: explicit arg > ``REPRO_CHUNK_SIZE`` > ``None``
    (meaning "derive from ``n_runs``" — see ``default_chunk_size``).

    Mirrors the ``--chunk-size`` flag; non-numeric or non-positive
    environment values raise a ``ValueError`` naming the variable
    (cf. ``REPRO_JOBS``/``REPRO_CHUNK_TIMEOUT``).
    """
    if chunk_size is not None:
        if chunk_size <= 0:
            raise ValueError(
                f"chunk size must be positive, got {chunk_size}"
            )
        return chunk_size
    raw = os.environ.get(ENV_CHUNK_SIZE, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_CHUNK_SIZE} must be a positive integer, got {raw!r}"
        )
    if value <= 0:
        raise ValueError(
            f"{ENV_CHUNK_SIZE} must be a positive integer, got {raw!r}"
        )
    return value


def resolve_runner(
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    fault: Optional[FaultSpec] = None,
    cache: Optional[ChunkCache] = None,
    backend: Optional[str] = None,
    workers=None,
    journal: Optional[RunJournal] = None,
    schedule: Optional[str] = None,
) -> "BatchRunner":
    """Build the runner implied by ``workers``/``jobs`` (serial if ≤ 1).

    Venue precedence: ``workers`` (CLI ``--workers`` / ``REPRO_WORKERS``
    — the distributed venue) > ``jobs``/``REPRO_JOBS`` (process pool) >
    serial.  ``retry``/``fault``/``cache``/``backend``/``journal``
    default to the ``REPRO_MAX_RETRIES`` / ``REPRO_CHUNK_TIMEOUT`` /
    ``REPRO_FAULT_*`` / ``REPRO_CACHE_DIR`` / ``REPRO_BACKEND`` /
    ``REPRO_JOURNAL_DIR`` environment knobs.
    """
    from .distributed import DistributedRunner, parse_workers

    addrs = parse_workers(workers)
    if addrs:
        return DistributedRunner(
            addrs, chunk_size=chunk_size, retry=retry, fault=fault,
            cache=cache, backend=backend, journal=journal,
            schedule=schedule,
        )
    n = resolve_jobs(jobs)
    if n <= 1:
        return SerialRunner(
            chunk_size=chunk_size, retry=retry, fault=fault, cache=cache,
            backend=backend, journal=journal, schedule=schedule,
        )
    return ProcessPoolRunner(
        n, chunk_size=chunk_size, retry=retry, fault=fault, cache=cache,
        backend=backend, journal=journal, schedule=schedule,
    )


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class BatchRunner:
    """Common chunking/merging/retry/stats machinery for both backends."""

    backend = "abstract"

    def __init__(
        self,
        chunk_size: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        fault: Optional[FaultSpec] = None,
        cache: Optional[ChunkCache] = None,
        backend: Optional[str] = None,
        journal: Optional[RunJournal] = None,
        schedule: Optional[str] = None,
    ):
        self.chunk_size = resolve_chunk_size(chunk_size)
        #: Chunk-planning mode (``"uniform"``/``"cost"`` — explicit
        #: argument > ``REPRO_SCHEDULE`` > uniform).  Cost mode sizes
        #: chunks from the symbolic cost models and dispatches predicted-
        #: expensive chunks first (LPT) in the parallel venues.
        self.schedule = resolve_schedule(schedule)
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        fault = fault if fault is not None else FaultSpec.from_env()
        self.fault = fault if fault is not None and fault.active else None
        #: Persistent chunk-result cache; strictly opt-in (an explicit
        #: instance or the ``REPRO_CACHE_DIR`` environment knob).
        self.cache = cache if cache is not None else ChunkCache.from_env()
        #: Crash-safe run ledger (see ``runtime.journal``); opt-in like
        #: the cache (an explicit instance or ``REPRO_JOURNAL_DIR``).
        #: Completed chunks are always recorded; journaled spans are only
        #: *replayed* when the journal was opened with ``resume=True``.
        self.journal = journal if journal is not None else RunJournal.from_env()
        #: Execution engine policy (``auto``/``reference``/``vectorized``)
        #: — distinct from the venue (``self.backend``): the venue says
        #: *where* chunks run, the execution backend says *what* computes
        #: them.  Explicit argument > ``REPRO_BACKEND`` > ``auto``.
        self.exec_backend = resolve_backend(backend)
        self.last_stats: Optional[RunStats] = None
        #: Every batch's RunStats, oldest first (the CLI ``--stats`` dump).
        self.stats_history: List[RunStats] = []
        #: Optional callable invoked with each :class:`ChunkStats` as it
        #: resolves, mid-batch (see ``BatchLog.observer``).  The service
        #: venue sets this to stream chunk-granularity partials to
        #: clients; ``None`` (the default) costs nothing.
        self.chunk_observer = None

    def history_mark(self) -> int:
        """Bookmark the stats history before a multi-batch measurement."""
        return len(self.stats_history)

    def stats_since(self, mark: int) -> List[RunStats]:
        """Every batch recorded since :meth:`history_mark` returned
        ``mark`` — the verdict plumbing used by ``verify.checker`` to
        attribute chunk spans to the claim that spawned them."""
        return self.stats_history[mark:]

    def run(self, tasks: Sequence, early_stop: Optional[EarlyStopRule] = None) -> List:
        """Run every task to completion; return one merged value per task.

        Also records a batch-wide :class:`RunStats` in ``self.last_stats``
        (even when the batch ultimately raises).
        """
        raise NotImplementedError

    def run_one(self, task, early_stop: Optional[EarlyStopRule] = None):
        """Convenience wrapper for single-task batches."""
        return self.run([task], early_stop=early_stop)[0]

    def _task_weight(self, task) -> Optional[float]:
        """Predicted per-run cost weight for one task, or ``None``.

        ``None`` means the task's protocol is outside the symbolic cost
        models' coverage (or the task has no protocol at all) — such
        tasks keep uniform chunk sizing even under ``schedule="cost"``.
        The weight is discounted by :data:`VECTORIZED_DISCOUNT` when the
        execution-backend policy will route the task to a NumPy kernel.
        Imported lazily: ``analysis`` imports ``runtime`` at module
        load, so the reverse edge must wait until call time.
        """
        from ..analysis.symbolic_cost import evaluate, model_for

        protocol = getattr(task, "protocol", None)
        if protocol is None or model_for(protocol) is None:
            return None
        weight = evaluate(protocol).weight
        if self.exec_backend != "reference":
            from .vectorized import vectorizable

            if vectorizable(task):
                weight /= VECTORIZED_DISCOUNT
        return weight

    def _batch_weights(self, tasks: Sequence) -> dict:
        """``{task_index: per-run weight}`` for every modelled task.

        Computed under both schedule modes — it is pure observability
        (``ChunkStats.predicted_cost``) until ``schedule="cost"`` also
        feeds it to the planner and the LPT dispatch order.
        """
        weights = {}
        for ti, task in enumerate(tasks):
            weight = self._task_weight(task)
            if weight is not None:
                weights[ti] = weight
        return weights

    def _plan(self, task) -> List[tuple]:
        # With no early stopping there is no reason to pay per-chunk
        # overhead in the serial backend, but the plan must stay a pure
        # function of (task, cost model, chunk_size/schedule knobs) so
        # every backend checks a stop rule at identical run indices and
        # journal fingerprints replay across venues.
        weight = None
        if self.schedule == "cost":
            weight = self._task_weight(task)
        return plan_chunks(
            task.n_runs, self.chunk_size,
            schedule=self.schedule, weight=weight,
        )

    def _record(self, n_tasks, requested, t0, stopped, log: BatchLog) -> None:
        engines = {
            c.engine
            for c in log.chunks
            if c.outcome != "cancelled" and c.engine not in ("cache", "journal")
        }
        if not log.vectorized_runs:
            execution_backend = "reference"
        elif engines == {"vectorized"}:
            execution_backend = "vectorized"
        else:
            execution_backend = "mixed"
        self.last_stats = RunStats(
            backend=self.backend,
            jobs=getattr(self, "jobs", 1),
            n_tasks=n_tasks,
            n_chunks=log.n_chunks,
            requested=requested,
            executions=log.executions,
            wall_clock_s=time.perf_counter() - t0,
            stopped_early=stopped,
            failed_attempts=log.failed_attempts,
            retries=log.retries,
            timeouts=log.timeouts,
            serial_replays=log.serial_replays,
            cancelled_chunks=log.cancelled,
            worker_deaths=log.worker_deaths,
            journal_replayed_chunks=log.journal_replayed,
            journal_appended_chunks=log.journal_appends,
            journal_corrupt_records=log.journal_corrupt,
            journal_stale_records=log.journal_stale,
            cache_corrupt_entries=log.cache_corrupt,
            cache_write_errors=log.cache_write_errors,
            setup_s=log.setup_s,
            execute_s=log.execute_s,
            classify_s=log.classify_s,
            memo_hits=log.memo_hits,
            memo_misses=log.memo_misses,
            cache_hits=log.cache_hits,
            cache_misses=log.cache_misses,
            cache_stores=log.cache_stores,
            execution_backend=execution_backend,
            vectorized_runs=log.vectorized_runs,
            schedule=self.schedule,
            chunks=tuple(log.chunks),
        )
        self.stats_history.append(self.last_stats)

    def _journal_fetch(self, task, ti, start, stop, log: BatchLog):
        """Look one span up in the run ledger; drain quarantine counts.

        Does *not* log a chunk record — the caller logs the span as
        ``"journaled"`` only when it actually consumes the partial, so
        spans dropped by early stopping or an interrupt are accounted
        identically whether or not a journal record existed for them.
        """
        if self.journal is None:
            return False, None
        hit, part = self.journal.fetch(task, ti, start, stop)
        drained = self.journal.drain_new_counts()
        log.journal_corrupt += drained["corrupt"]
        log.journal_stale += drained["stale"]
        return hit, part

    def _journal_record(self, task, ti, start, stop, part, log: BatchLog) -> None:
        """Durably append one computed span to the run ledger."""
        if self.journal is None:
            return
        if self.journal.record(task, ti, start, stop, part):
            log.journal_appends += 1

    def _serial_chunk(self, task, ti, start, stop, log: BatchLog):
        """In-process chunk execution with the full retry ladder.

        Injected faults are retried up to ``max_retries`` times and then
        bypassed entirely on the trusted replay rung; a genuine task bug
        raises again there and propagates (after the stats are logged by
        the caller's ``finally``).
        """
        t0 = time.perf_counter()
        before = instrumentation_snapshot()
        policy = self.retry
        for attempt in range(policy.max_retries + 1):
            try:
                part = run_task_chunk(
                    task, ti, start, stop, attempt, self.fault,
                    in_worker=False, cache=self.cache,
                    backend=self.exec_backend,
                )
                outcome = "ok" if attempt == 0 else "retried"
                log.chunk(
                    ti, start, stop, attempt + 1, outcome, "serial",
                    time.perf_counter() - t0,
                    inst=instrumentation_delta(before),
                )
                return part
            except BackendError:
                # A forced-``vectorized`` task with no kernel is a
                # configuration error, not a transient failure: retrying
                # (or degrading to the reference replay rung) would
                # silently void the caller's backend assertion.
                raise
            except Exception:
                log.failed_attempts += 1
                if attempt < policy.max_retries:
                    log.retries += 1
                    time.sleep(policy.backoff_for(attempt + 1))
        # Retries exhausted: trusted replay, fault injection disabled
        # (and cache bypassed — the replay rung must recompute).
        part = task.run_chunk(start, stop)
        log.chunk(
            ti, start, stop, policy.max_retries + 2, "replayed", "serial",
            time.perf_counter() - t0,
            inst=instrumentation_delta(before),
        )
        return part


class SerialRunner(BatchRunner):
    """In-process execution; chunked only to honour early-stop cadence."""

    backend = "serial"
    jobs = 1

    def _spans_for(self, task, early_stop) -> List[tuple]:
        if (
            early_stop is None
            and self.cache is None
            and self.journal is None
            and self.chunk_size is None
            and self.schedule == "uniform"
        ):
            # Single sweep: identical result, no merge overhead.  (A
            # cache forces planned chunks so serial and pool batches
            # store/fetch identical chunk spans; a journal does too —
            # resume must find the exact spans the interrupted run
            # recorded, whichever venue wrote them; an explicit
            # chunk_size likewise, so the venues account interrupts over
            # the same span set; cost scheduling likewise — its plan is
            # the contract the parallel venues share.)
            return [(0, task.n_runs)]
        return self._plan(task)

    def run(self, tasks: Sequence, early_stop: Optional[EarlyStopRule] = None) -> List:
        tasks = list(tasks)
        t0 = time.perf_counter()
        log = BatchLog(observer=self.chunk_observer)
        log.task_weights = self._batch_weights(tasks)
        values: List = []
        stopped_any = False
        interrupted: Optional[BaseException] = None
        requested = sum(t.n_runs for t in tasks)
        handled: set = set()
        try:
            for ti, task in enumerate(tasks):
                value = None
                stopped = False
                for start, stop in self._spans_for(task, early_stop):
                    if stopped:
                        # Mirror the pool venue: spans dropped by early
                        # stopping are accounted as cancelled.
                        log.chunk(ti, start, stop, 0, "cancelled", "serial", 0.0)
                        handled.add((ti, start, stop))
                        continue
                    hit, part = self._journal_fetch(task, ti, start, stop, log)
                    if hit:
                        log.chunk(ti, start, stop, 0, "journaled", "serial", 0.0)
                    else:
                        part = self._serial_chunk(task, ti, start, stop, log)
                        self._journal_record(task, ti, start, stop, part, log)
                    handled.add((ti, start, stop))
                    value = part if value is None else merge_partials(value, part)
                    if early_stop is not None and early_stop.should_stop(value):
                        stopped = stopped_any = True
                values.append(value)
        except KeyboardInterrupt as exc:
            interrupted = exc
            raise
        finally:
            if interrupted is not None:
                # Ctrl-C: account every planned-but-unprocessed span as
                # cancelled — the same accounting the pool venue gives
                # its outstanding futures — so partial RunStats never
                # overstate serial coverage.
                for ti, task in enumerate(tasks):
                    for start, stop in self._spans_for(task, early_stop):
                        if (ti, start, stop) not in handled:
                            log.chunk(
                                ti, start, stop, 0, "cancelled", "serial", 0.0
                            )
            self._record(len(tasks), requested, t0, stopped_any, log)
            if interrupted is not None:
                # The re-raised interrupt carries the partial accounting
                # of everything that did complete.
                interrupted.run_stats = self.last_stats
        return values


# -- process-pool worker side ------------------------------------------------
# Workers are forked, so they see the parent's task list through this
# module-level slot; submitted work items carry only index triples (plus
# the attempt number and fault spec, both picklable).

_WORKER_TASKS: Sequence = ()
_WORKER_CACHE: Optional[ChunkCache] = None
_WORKER_BACKEND: str = "auto"


def _worker_init(
    tasks: Sequence,
    cache: Optional[ChunkCache] = None,
    backend: str = "auto",
) -> None:
    global _WORKER_TASKS, _WORKER_CACHE, _WORKER_BACKEND
    _WORKER_TASKS = tasks
    _WORKER_CACHE = cache
    _WORKER_BACKEND = backend


def _worker_run_chunk(
    task_index: int,
    start: int,
    stop: int,
    attempt: int = 0,
    fault: Optional[FaultSpec] = None,
):
    """Worker-side chunk execution.

    Returns ``(partial, inst)`` — the instrumentation delta (phase
    seconds, memo/cache counter increments, vectorized-run counts)
    measured in *this* worker is shipped back with the result so the
    parent's batch totals aggregate across processes.
    """
    task = _WORKER_TASKS[task_index]
    before = instrumentation_snapshot()
    part = run_task_chunk(
        task, task_index, start, stop, attempt, fault,
        in_worker=True, cache=_WORKER_CACHE, backend=_WORKER_BACKEND,
    )
    return part, instrumentation_delta(before)


class ProcessPoolRunner(BatchRunner):
    """Chunked fan-out over a forked process pool.

    All chunks of all tasks are submitted together (a strategy sweep
    parallelises across strategies *and* within each strategy's run
    range).  Falls back to :class:`SerialRunner` when the batch is tiny,
    only one worker is available, or the platform cannot fork.

    Failure handling per chunk, in order: bounded in-pool retries with
    backoff (fresh future, incremented attempt number), then — on retry
    exhaustion, a broken pool, or a pool that refuses submissions —
    trusted in-process serial replay with fault injection disabled.  The
    replay is sound because ``run_chunk(start, stop)`` is a pure function
    of ``(task, seed, span)``.
    """

    backend = "process-pool"

    def __init__(
        self,
        jobs: int,
        chunk_size: Optional[int] = None,
        min_parallel_runs: int = SMALL_BATCH_THRESHOLD,
        retry: Optional[RetryPolicy] = None,
        fault: Optional[FaultSpec] = None,
        cache: Optional[ChunkCache] = None,
        backend: Optional[str] = None,
        journal: Optional[RunJournal] = None,
        schedule: Optional[str] = None,
    ):
        super().__init__(
            chunk_size=chunk_size, retry=retry, fault=fault, cache=cache,
            backend=backend, journal=journal, schedule=schedule,
        )
        if jobs < 1:
            raise ValueError("ProcessPoolRunner needs at least one worker")
        self.jobs = jobs
        self.min_parallel_runs = min_parallel_runs

    def run(self, tasks: Sequence, early_stop: Optional[EarlyStopRule] = None) -> List:
        tasks = list(tasks)
        requested = sum(t.n_runs for t in tasks)
        if (
            self.jobs <= 1
            or requested < self.min_parallel_runs
            or not _fork_available()
        ):
            serial = SerialRunner(
                chunk_size=self.chunk_size, retry=self.retry,
                fault=self.fault, cache=self.cache,
                backend=self.exec_backend, journal=self.journal,
                schedule=self.schedule,
            )
            serial.chunk_observer = self.chunk_observer
            try:
                return serial.run(tasks, early_stop=early_stop)
            finally:
                if serial.last_stats is not None:
                    self.last_stats = serial.last_stats
                    self.stats_history.append(serial.last_stats)

        t0 = time.perf_counter()
        plans = [self._plan(task) for task in tasks]
        values: List = [None] * len(tasks)
        log = BatchLog(observer=self.chunk_observer)
        log.task_weights = self._batch_weights(tasks)
        stopped_any = False
        interrupted: Optional[BaseException] = None
        self._pool_broken = False
        ctx = multiprocessing.get_context("fork")
        self._pool_args = dict(
            max_workers=self.jobs,
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(tasks, self.cache, self.exec_backend),
        )
        pool = self._pool = ProcessPoolExecutor(**self._pool_args)
        self._retired_pools: List[ProcessPoolExecutor] = []
        self._last_progress = time.monotonic()
        submitted: List[List[tuple]] = []
        handled: set = set()
        try:
            # Journaled spans are resolved parent-side before anything is
            # submitted: a resumed span never occupies a pool slot, and
            # every remaining span enters the pool exactly as before.
            journaled: dict = {}
            if self.journal is not None:
                for ti, plan in enumerate(plans):
                    for start, stop in plan:
                        hit, part = self._journal_fetch(
                            tasks[ti], ti, start, stop, log
                        )
                        if hit:
                            journaled[(ti, start, stop)] = part
            # Submission order: plan order under the uniform schedule;
            # predicted-cost-descending (LPT) under the cost schedule, so
            # the most expensive chunks claim workers first and cheap
            # chunks backfill the stragglers' tail.  Consumption — and
            # therefore merging, early stopping, and every result — stays
            # in plan order regardless: dispatch order is pure wall-clock
            # policy, invisible to the fold.
            order = [
                (ti, span)
                for ti, plan in enumerate(plans)
                for span in plan
                if (ti, span[0], span[1]) not in journaled
            ]
            if self.schedule == "cost":
                weights = log.task_weights
                order.sort(
                    key=lambda item: (
                        -weights.get(item[0], 0.0)
                        * (item[1][1] - item[1][0]),
                        item[0],
                        item[1][0],
                    )
                )
            futures = {
                (ti, span[0], span[1]): pool.submit(
                    _worker_run_chunk, ti, span[0], span[1], 0, self.fault
                )
                for ti, span in order
            }
            submitted = [
                [
                    (span, futures.get((ti, span[0], span[1])))
                    for span in plan
                ]
                for ti, plan in enumerate(plans)
            ]
            for ti, chunk_futures in enumerate(submitted):
                value = None
                stopped = False
                for (start, stop), future in chunk_futures:
                    if stopped:
                        if future is not None:
                            future.cancel()
                        log.chunk(ti, start, stop, 0, "cancelled", "pool", 0.0)
                        handled.add((ti, start, stop))
                        continue
                    if future is None:
                        # Replayed from the ledger; logged at consumption
                        # time so early-stop/interrupt accounting matches
                        # the serial venue span for span.
                        part = journaled[(ti, start, stop)]
                        log.chunk(ti, start, stop, 0, "journaled", "pool", 0.0)
                    else:
                        part = self._chunk_result(
                            tasks[ti], ti, start, stop, future, log
                        )
                        self._journal_record(tasks[ti], ti, start, stop, part, log)
                    handled.add((ti, start, stop))
                    value = part if value is None else merge_partials(value, part)
                    if early_stop is not None and early_stop.should_stop(value):
                        stopped = stopped_any = True
                values[ti] = value
        except KeyboardInterrupt as exc:
            # Ctrl-C: fall through to the finally, which cancels every
            # outstanding future and shuts the pool down (no leaked
            # workers), then re-raise with the partial RunStats attached.
            interrupted = exc
            raise
        finally:
            # Satellite of the retry tentpole: a failing chunk must not
            # orphan sibling futures or leave last_stats unset.
            for ti, chunk_futures in enumerate(submitted):
                for (start, stop), future in chunk_futures:
                    if future is not None:
                        future.cancel()
                    if (
                        interrupted is not None
                        and (ti, start, stop) not in handled
                    ):
                        # Outstanding work the interrupt dropped on the
                        # floor — account for it so the partial stats are
                        # honest about missing coverage.
                        log.chunk(
                            ti, start, stop, 0, "cancelled", "pool", 0.0
                        )
            # Shut down the live pool and every executor retired by a
            # wedged-chunk respawn.
            for retired in (*self._retired_pools, self._pool):
                self._dispose_pool(retired)
            self._record(len(tasks), requested, t0, stopped_any, log)
            if interrupted is not None:
                interrupted.run_stats = self.last_stats
        return values

    # -- per-chunk recovery --------------------------------------------------

    def _chunk_result(self, task, ti, start, stop, future, log: BatchLog):
        """Resolve one chunk through the degradation ladder."""
        policy = self.retry
        t0 = time.perf_counter()
        attempt = 0
        while True:
            try:
                part, inst = self._await(future)
                self._last_progress = time.monotonic()
                log.chunk(
                    ti, start, stop, attempt + 1,
                    "ok" if attempt == 0 else "retried", "pool",
                    time.perf_counter() - t0,
                    inst=inst,
                )
                return part
            except BackendError:
                # Propagate backend assertions (see _serial_chunk).
                raise
            except ChunkTimeout as exc:
                log.failed_attempts += 1
                log.timeouts += 1
                if getattr(exc, "wedged", False):
                    # The chunk is *running* past its deadline, and
                    # cancel() cannot free a running future: without
                    # intervention the slot stays occupied and the
                    # retry queues behind the very chunk it replaces.
                    # Retire the executor and respawn a fresh one.
                    self._respawn_pool()
            except FuturesCancelled:
                # A sibling future cancelled by a pool respawn (it is a
                # BaseException since 3.8, so the clause below does not
                # see it): an ordinary failed attempt.
                log.failed_attempts += 1
            except BrokenProcessPool:
                log.failed_attempts += 1
                self._pool_broken = True
            except Exception:
                log.failed_attempts += 1
            attempt += 1
            if self._pool_broken or attempt > policy.max_retries:
                break
            log.retries += 1
            time.sleep(policy.backoff_for(attempt))
            try:
                future = self._pool.submit(
                    _worker_run_chunk, ti, start, stop, attempt, self.fault
                )
            except RuntimeError:  # pool broken or already shutting down
                self._pool_broken = True
                break
        # Final rung: trusted in-process replay, fault injection disabled
        # and the chunk cache bypassed.  A genuine task bug raises here
        # and propagates (stats are still recorded by run()'s finally).
        before = instrumentation_snapshot()
        part = task.run_chunk(start, stop)
        log.chunk(
            ti, start, stop, attempt + 1, "replayed", "serial",
            time.perf_counter() - t0,
            inst=instrumentation_delta(before),
        )
        return part

    @staticmethod
    def _dispose_pool(pool) -> None:
        """Discard an executor whose results are no longer wanted.

        ``shutdown(wait=False)`` alone is not enough for a pool that
        still has a *running* chunk (a wedged straggler in a retired
        executor, or abandoned work after an early stop/interrupt): the
        executor's manager thread keeps waiting for that result, and at
        interpreter exit ``concurrent.futures``' atexit hook joins the
        manager thread — deadlocking shutdown.

        Disposal is therefore two-phase.  First a short graceful
        window: an idle pool's manager exits in milliseconds, and even
        a stuck one processes the shutdown flag — dropping cancelled
        work items, so the forced path below cannot race it into
        ``set_exception`` on an already-cancelled future.  If the
        manager is still alive after the grace period, the worker
        processes are killed — a wakeup the manager thread is
        guaranteed to see (it waits on the process sentinels and joins
        workers on exit) — and the manager reaped with a bounded join.
        Results were already consumed or abandoned by the caller, and
        chunk-cache writes are atomic (write-to-temp + rename), so the
        kill cannot lose or corrupt state.
        """
        # Snapshot the worker list *before* shutdown: the manager thread
        # may clear its process table while tearing down, and a worker
        # that never receives its shutdown sentinel must still be killed.
        processes = list((getattr(pool, "_processes", None) or {}).values())
        manager = getattr(pool, "_executor_manager_thread", None)
        pool.shutdown(wait=False, cancel_futures=True)
        if manager is not None:
            manager.join(timeout=0.25)
            if not manager.is_alive():
                return
        for proc in processes:
            try:
                proc.kill()
            except Exception:
                pass
        if manager is not None:
            manager.join(timeout=5.0)

    def _respawn_pool(self) -> None:
        """Replace the executor after a running chunk wedged its slot.

        ``Future.cancel()`` is a no-op once a worker has started the
        chunk, so a wedged (e.g. sleep-faulted) execution permanently
        occupies a slot in the old pool.  A fresh executor restores full
        capacity immediately; the old one is retired without waiting —
        its queued futures are cancelled (surfacing as
        ``CancelledError`` failed attempts that resubmit here), its
        running ones finish in orphaned processes and are consumed
        normally.
        """
        retired = self._pool
        self._retired_pools.append(retired)
        self._pool = ProcessPoolExecutor(**self._pool_args)
        retired.shutdown(wait=False, cancel_futures=True)

    def _await(self, future):
        """``future.result()`` under the policy's per-chunk deadline.

        The deadline clock only runs against a chunk that has actually
        started: a future still sitting in the queue gets its wait
        extended (the pool is busy, not hung) — but only for a bounded
        number of deadlines, so a pool whose every worker is wedged still
        degrades instead of blocking forever.

        A timeout on a *running* future marks the raised
        :class:`ChunkTimeout` as ``wedged``: cancellation cannot reclaim
        that slot, so the caller respawns the executor.
        """
        timeout = self.retry.chunk_timeout_s
        if timeout is None:
            # No per-chunk deadline — but never trust a *pending* future
            # unconditionally: a starved pool (see _STARVATION_GRACE_S)
            # would block this wait forever.  A future that is running is
            # waited on indefinitely, exactly as before; a future that
            # has not started while the whole batch made no progress for
            # the grace period marks the pool wedged so the caller
            # respawns it.
            while True:
                try:
                    return future.result(timeout=_STARVATION_POLL_S)
                except FuturesTimeout:
                    if future.running():
                        continue
                    stalled = time.monotonic() - self._last_progress
                    if stalled <= _STARVATION_GRACE_S:
                        continue
                    future.cancel()
                    exc = ChunkTimeout(
                        f"pool made no progress for {stalled:.0f}s with "
                        "this chunk still queued — executor starved"
                    )
                    exc.wedged = True
                    raise exc from None
                except BaseException:
                    # A delivered failure is still delivery: the pool is
                    # feeding results, so reset the starvation clock.
                    self._last_progress = time.monotonic()
                    raise
        deadlines_waited = 0
        while True:
            try:
                return future.result(timeout=timeout)
            except FuturesTimeout:
                deadlines_waited += 1
                if future.running() or deadlines_waited >= _QUEUE_WAIT_DEADLINES:
                    wedged = future.running()
                    future.cancel()
                    exc = ChunkTimeout(
                        f"chunk missed its {timeout:.3f}s deadline"
                    )
                    exc.wedged = wedged
                    raise exc from None
