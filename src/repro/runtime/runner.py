"""Batch runners: serial and process-pool Monte-Carlo execution.

The measurement layer hands a runner a list of tasks (see
``runtime.tasks``); the runner splits each task's run range into chunks,
executes the chunks, and folds the partials back in ascending chunk order.
Two interchangeable backends:

* :class:`SerialRunner` — the historical in-process loop; default, and
  always used for tiny batches where worker startup would dominate.
* :class:`ProcessPoolRunner` — fans all chunks of all tasks out over a
  ``concurrent.futures`` process pool (``fork`` start method: workers
  inherit the live task objects, so strategy factories built from closures
  need no pickling; submitted work items are just ``(task, start, stop)``
  index triples, and results come back as picklable partials).

Determinism contract: per-run randomness depends only on ``(seed, k)``
via ``Rng(seed).fork(f"run-{k}")`` inside the task, and partials are
merged in ascending chunk order, so both backends produce bit-identical
results for the same seed.

Backend selection: an explicit ``runner=`` argument wins; otherwise
``jobs`` (CLI ``--jobs`` / keyword) is consulted, falling back to the
``REPRO_JOBS`` environment variable, falling back to serial.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

from .early_stop import EarlyStopRule
from .stats import RunStats
from .tasks import merge_partials, plan_chunks

#: Environment variable consulted when no explicit ``jobs`` is given.
REPRO_JOBS_ENV = "REPRO_JOBS"

#: Batches smaller than this run serially even when a pool was requested.
SMALL_BATCH_THRESHOLD = 64


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit arg > ``REPRO_JOBS`` > 1.

    ``0`` (or the env value ``"auto"``) means "use every CPU".
    """
    if jobs is None:
        raw = os.environ.get(REPRO_JOBS_ENV, "").strip()
        if not raw:
            return 1
        if raw.lower() == "auto":
            jobs = os.cpu_count() or 1
        else:
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(
                    f"{REPRO_JOBS_ENV} must be an integer or 'auto', got {raw!r}"
                )
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    return max(1, jobs)


def resolve_runner(
    jobs: Optional[int] = None, chunk_size: Optional[int] = None
) -> "BatchRunner":
    """Build the runner implied by ``jobs``/``REPRO_JOBS`` (serial if ≤ 1)."""
    n = resolve_jobs(jobs)
    if n <= 1:
        return SerialRunner(chunk_size=chunk_size)
    return ProcessPoolRunner(n, chunk_size=chunk_size)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class BatchRunner:
    """Common chunking/merging/stats machinery for both backends."""

    backend = "abstract"

    def __init__(self, chunk_size: Optional[int] = None):
        self.chunk_size = chunk_size
        self.last_stats: Optional[RunStats] = None

    def run(self, tasks: Sequence, early_stop: Optional[EarlyStopRule] = None) -> List:
        """Run every task to completion; return one merged value per task.

        Also records a batch-wide :class:`RunStats` in ``self.last_stats``.
        """
        raise NotImplementedError

    def run_one(self, task, early_stop: Optional[EarlyStopRule] = None):
        """Convenience wrapper for single-task batches."""
        return self.run([task], early_stop=early_stop)[0]

    def _plan(self, task) -> List[tuple]:
        # With no early stopping there is no reason to pay per-chunk
        # overhead in the serial backend, but the plan must stay a pure
        # function of (n_runs, chunk_size) so both backends check a stop
        # rule at identical run indices.
        return plan_chunks(task.n_runs, self.chunk_size)

    def _record(self, n_tasks, n_chunks, requested, executions, t0, stopped):
        self.last_stats = RunStats(
            backend=self.backend,
            jobs=getattr(self, "jobs", 1),
            n_tasks=n_tasks,
            n_chunks=n_chunks,
            requested=requested,
            executions=executions,
            wall_clock_s=time.perf_counter() - t0,
            stopped_early=stopped,
        )


class SerialRunner(BatchRunner):
    """In-process execution; chunked only to honour early-stop cadence."""

    backend = "serial"
    jobs = 1

    def run(self, tasks: Sequence, early_stop: Optional[EarlyStopRule] = None) -> List:
        tasks = list(tasks)
        t0 = time.perf_counter()
        values: List = []
        n_chunks = executions = 0
        stopped_any = False
        for task in tasks:
            if early_stop is None:
                # Single sweep: identical result, no merge overhead.
                value = task.run_chunk(0, task.n_runs)
                n_chunks += 1
                executions += task.n_runs
            else:
                value = None
                for start, stop in self._plan(task):
                    part = task.run_chunk(start, stop)
                    n_chunks += 1
                    executions += stop - start
                    value = part if value is None else merge_partials(value, part)
                    if early_stop.should_stop(value):
                        stopped_any = True
                        break
            values.append(value)
        requested = sum(t.n_runs for t in tasks)
        self._record(len(tasks), n_chunks, requested, executions, t0, stopped_any)
        return values


# -- process-pool worker side ------------------------------------------------
# Workers are forked, so they see the parent's task list through this
# module-level slot; submitted work items carry only index triples.

_WORKER_TASKS: Sequence = ()


def _worker_init(tasks: Sequence) -> None:
    global _WORKER_TASKS
    _WORKER_TASKS = tasks


def _worker_run_chunk(task_index: int, start: int, stop: int):
    return _WORKER_TASKS[task_index].run_chunk(start, stop)


class ProcessPoolRunner(BatchRunner):
    """Chunked fan-out over a forked process pool.

    All chunks of all tasks are submitted together (a strategy sweep
    parallelises across strategies *and* within each strategy's run
    range).  Falls back to :class:`SerialRunner` when the batch is tiny,
    only one worker is available, or the platform cannot fork.
    """

    backend = "process-pool"

    def __init__(
        self,
        jobs: int,
        chunk_size: Optional[int] = None,
        min_parallel_runs: int = SMALL_BATCH_THRESHOLD,
    ):
        super().__init__(chunk_size=chunk_size)
        if jobs < 1:
            raise ValueError("ProcessPoolRunner needs at least one worker")
        self.jobs = jobs
        self.min_parallel_runs = min_parallel_runs

    def run(self, tasks: Sequence, early_stop: Optional[EarlyStopRule] = None) -> List:
        tasks = list(tasks)
        requested = sum(t.n_runs for t in tasks)
        if (
            self.jobs <= 1
            or requested < self.min_parallel_runs
            or not _fork_available()
        ):
            serial = SerialRunner(chunk_size=self.chunk_size)
            values = serial.run(tasks, early_stop=early_stop)
            self.last_stats = serial.last_stats
            return values

        t0 = time.perf_counter()
        plans = [self._plan(task) for task in tasks]
        values: List = [None] * len(tasks)
        n_chunks = executions = 0
        stopped_any = False
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(tasks,),
        ) as pool:
            submitted = [
                [
                    (span, pool.submit(_worker_run_chunk, ti, span[0], span[1]))
                    for span in plan
                ]
                for ti, plan in enumerate(plans)
            ]
            for ti, chunk_futures in enumerate(submitted):
                value = None
                stopped = False
                for (start, stop), future in chunk_futures:
                    if stopped:
                        future.cancel()
                        continue
                    part = future.result()
                    n_chunks += 1
                    executions += stop - start
                    value = part if value is None else merge_partials(value, part)
                    if early_stop is not None and early_stop.should_stop(value):
                        stopped = stopped_any = True
                values[ti] = value
        self._record(len(tasks), n_chunks, requested, executions, t0, stopped_any)
        return values
