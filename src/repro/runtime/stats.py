"""Per-batch execution statistics.

Every :class:`~repro.runtime.runner.BatchRunner` records a :class:`RunStats`
for its most recent batch: which backend actually ran, how much work was
requested vs. executed (the two differ when adaptive early stopping fires),
and the realised throughput.  The struct is exported through
``analysis.export`` so benchmark trajectories can track executions/sec
alongside the measurements themselves.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RunStats:
    """Wall-clock accounting for one runner batch."""

    backend: str
    jobs: int
    n_tasks: int
    n_chunks: int
    requested: int
    executions: int
    wall_clock_s: float
    stopped_early: bool = False

    @property
    def executions_per_sec(self) -> float:
        if self.wall_clock_s <= 0:
            return float("inf") if self.executions else 0.0
        return self.executions / self.wall_clock_s

    def __str__(self) -> str:
        return (
            f"{self.backend}(jobs={self.jobs}): {self.executions}/"
            f"{self.requested} executions in {self.wall_clock_s:.3f}s "
            f"({self.executions_per_sec:.0f}/s)"
        )
