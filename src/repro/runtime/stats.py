"""Per-batch and per-chunk execution statistics.

Every :class:`~repro.runtime.runner.BatchRunner` records a :class:`RunStats`
for its most recent batch: which backend actually ran, how much work was
requested vs. executed (the two differ when adaptive early stopping fires),
the realised throughput, and — since the runtime grew failure semantics —
what the recovery machinery had to do: failed attempts, in-pool retries,
chunk deadline misses, and degradations to trusted serial replay.  Each
completed chunk leaves a :class:`ChunkStats` record so a biased or slow
sweep can be traced to the exact ``(task, start, stop)`` span that
misbehaved.  The structs are exported through ``analysis.export`` so
benchmark trajectories can track executions/sec and failure counts
alongside the measurements themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.utility import EventCounts

#: Valid ``ChunkStats.outcome`` values.
CHUNK_OUTCOMES = ("ok", "retried", "replayed", "cancelled", "journaled")


@dataclass(frozen=True)
class ChunkStats:
    """One chunk's journey through the runner.

    ``attempts`` counts every execution attempt including the successful
    one (1 = clean first try).  ``outcome`` is ``"ok"`` for a clean first
    attempt, ``"retried"`` when at least one retry was needed,
    ``"replayed"`` when the chunk exhausted its retries and completed via
    trusted in-process serial replay, ``"cancelled"`` when adaptive
    early stopping dropped the chunk before it was consumed, and
    ``"journaled"`` when a resumed batch replayed the partial from the
    crash-safe run ledger instead of recomputing it.
    ``wall_clock_s`` is parent-observed (for pool chunks it includes any
    queue wait and retry backoff).

    ``setup_s``/``execute_s``/``classify_s`` split the chunk's in-task
    time into the per-run phases (input sampling + adversary/fault
    construction, protocol execution, event classification), measured in
    whichever process actually ran the chunk.  ``cache`` records the
    chunk's journey through the persistent chunk cache: ``"hit"`` —
    served from disk, ``"stored"`` — computed and persisted, ``""`` — no
    cache involved.

    ``predicted_cost`` is the chunk's cost-model prediction — the
    task's per-run :attr:`~repro.analysis.symbolic_cost.PredictedCost.weight`
    times the span length, with the vectorized discount applied when the
    task will take a NumPy kernel — and is ``0.0`` for tasks outside the
    model's coverage.  It is populated under both schedule modes, so a
    uniform run still shows what the cost planner *would* have seen.

    ``backend`` names the *venue* (``"serial"``/``"process-pool"``/
    ``"distributed"``); ``engine`` names the execution engine that
    computed the partial — ``"reference"`` for the state machine,
    ``"vectorized"`` for a NumPy kernel, ``"cache"`` when the partial
    was served from disk, ``"journal"`` when a resume replayed it from
    the run ledger, and in both of those cases no engine ran at all.  ``worker`` is the
    distributed venue's per-host attribution (the remote worker id that
    produced the partial; empty for in-process chunks), so a slow or
    flaky host is traceable from the exported stats.
    """

    task_index: int
    start: int
    stop: int
    attempts: int
    outcome: str
    backend: str
    wall_clock_s: float
    setup_s: float = 0.0
    execute_s: float = 0.0
    classify_s: float = 0.0
    cache: str = ""
    engine: str = "reference"
    worker: str = ""
    predicted_cost: float = 0.0

    @property
    def n_runs(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class RunStats:
    """Wall-clock and failure accounting for one runner batch.

    Since the hot-path optimization layer, a batch also carries the
    summed per-phase times of its chunks (``setup_s``/``execute_s``/
    ``classify_s`` — worker processes ship their increments back inside
    chunk results, so pool batches aggregate correctly) and the cache
    traffic it generated: ``memo_*`` counts the process-local setup
    memos (validated primes, interned fields, Lagrange bases, compiled
    circuits), ``cache_*`` the persistent chunk-result cache.

    ``backend`` is the runner *venue* (``"serial"``/``"process-pool"``);
    ``execution_backend`` records which engine computed the events:
    ``"reference"``, ``"vectorized"``, or ``"mixed"`` when a batch split
    between them (e.g. some tasks had kernels and others fell back).
    ``vectorized_runs`` counts the executions handled by NumPy kernels.
    ``schedule`` records the chunk-planning mode the batch ran under
    (``"uniform"`` or ``"cost"`` — see ``runtime.tasks.plan_chunks``).
    """

    backend: str
    jobs: int
    n_tasks: int
    n_chunks: int
    requested: int
    executions: int
    wall_clock_s: float
    stopped_early: bool = False
    failed_attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    serial_replays: int = 0
    cancelled_chunks: int = 0
    #: Distributed venue only: workers that died mid-batch (EOF, stale
    #: heartbeat, send failure) and had their chunks reassigned.
    worker_deaths: int = 0
    #: Crash-safe run-ledger traffic (see ``runtime.journal``): spans
    #: replayed from the journal on a resume, spans durably appended by
    #: this batch, and records quarantined as corrupt (bad checksum /
    #: undecodable) or stale (span matches, content fingerprint does not).
    journal_replayed_chunks: int = 0
    journal_appended_chunks: int = 0
    journal_corrupt_records: int = 0
    journal_stale_records: int = 0
    #: Chunk-cache integrity: entries quarantined on checksum mismatch
    #: (each also counts as a miss) and store attempts that failed.
    cache_corrupt_entries: int = 0
    cache_write_errors: int = 0
    setup_s: float = 0.0
    execute_s: float = 0.0
    classify_s: float = 0.0
    memo_hits: int = 0
    memo_misses: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    execution_backend: str = "reference"
    vectorized_runs: int = 0
    schedule: str = "uniform"
    #: Service venue only (``repro serve``): snapshots of the job pool's
    #: dedupe and rate-limit counters, stamped onto the batch by
    #: ``service.jobs.JobPool`` when the job completes.  Zero for every
    #: batch that did not run under the service.
    service_dedup_hits: int = 0
    service_rate_limited: int = 0
    chunks: Tuple[ChunkStats, ...] = ()

    @property
    def executions_per_sec(self) -> float:
        if self.wall_clock_s <= 0:
            return float("inf") if self.executions else 0.0
        return self.executions / self.wall_clock_s

    @property
    def degraded(self) -> bool:
        """Did any chunk fall off the pool onto the serial-replay rung?"""
        return self.serial_replays > 0

    @property
    def chunk_spans(self) -> Tuple[Tuple[int, int, int], ...]:
        """The ``(task_index, start, stop)`` spans this batch executed.

        Each span identifies a deterministic slice of a task's run
        indices; together with the task seed they are all a replay needs
        to reproduce the batch bit-identically (``ExecutionTask.run_chunk``
        derives every per-run RNG from ``fork(f"run-{k}")``).  Cancelled
        chunks are excluded — they contributed no events.
        """
        return tuple(
            (c.task_index, c.start, c.stop)
            for c in self.chunks
            if c.outcome != "cancelled"
        )

    def __str__(self) -> str:
        text = (
            f"{self.backend}(jobs={self.jobs}): {self.executions}/"
            f"{self.requested} executions in {self.wall_clock_s:.3f}s "
            f"({self.executions_per_sec:.0f}/s)"
        )
        if self.failed_attempts:
            text += (
                f" [{self.failed_attempts} failed attempts, "
                f"{self.retries} retries, {self.timeouts} timeouts, "
                f"{self.serial_replays} serial replays]"
            )
        if self.cache_hits or self.cache_misses:
            text += (
                f" [chunk cache: {self.cache_hits} hits, "
                f"{self.cache_misses} misses]"
            )
        if self.journal_replayed_chunks or self.journal_corrupt_records:
            text += (
                f" [journal: {self.journal_replayed_chunks} replayed, "
                f"{self.journal_corrupt_records} corrupt, "
                f"{self.journal_stale_records} stale]"
            )
        return text


class BatchLog:
    """Mutable accumulator the runners fill in as chunks resolve.

    Folded into an immutable :class:`RunStats` by
    ``BatchRunner._record`` — kept separate so the stats can be recorded
    in a ``finally`` even when a chunk ultimately raises.

    ``observer``, when set, is called with each :class:`ChunkStats` the
    moment it is appended — the hook the service venue uses to stream
    chunk-granularity partials to clients while the batch is still
    running.  Observer exceptions are swallowed: a slow or broken
    subscriber must never fail the batch.
    """

    def __init__(self, observer=None):
        self.observer = observer
        self.n_chunks = 0
        self.executions = 0
        self.failed_attempts = 0
        self.retries = 0
        self.timeouts = 0
        self.serial_replays = 0
        self.cancelled = 0
        self.worker_deaths = 0
        self.journal_replayed = 0
        self.journal_appends = 0
        self.journal_corrupt = 0
        self.journal_stale = 0
        self.cache_corrupt = 0
        self.cache_write_errors = 0
        self.setup_s = 0.0
        self.execute_s = 0.0
        self.classify_s = 0.0
        self.memo_hits = 0
        self.memo_misses = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_stores = 0
        self.vectorized_runs = 0
        #: Per-task predicted cost weights (task index -> per-run weight),
        #: set once per batch by the runner so ``chunk`` can stamp each
        #: record's ``predicted_cost`` without every call site changing.
        self.task_weights: Dict[int, float] = {}
        self.chunks: List[ChunkStats] = []

    def chunk(
        self,
        task_index: int,
        start: int,
        stop: int,
        attempts: int,
        outcome: str,
        backend: str,
        wall_clock_s: float,
        inst: Optional[dict] = None,
        worker: str = "",
    ) -> None:
        """Record one resolved chunk.

        ``inst`` is the instrumentation delta measured around the chunk
        (phase seconds plus memo/cache counter increments — see
        ``runtime.cache.instrumentation_delta``); for pool and
        distributed chunks it is the delta the worker shipped back with
        the partial.  ``worker`` attributes distributed chunks to the
        remote host that computed them.
        """
        inst = inst or {}
        record = self._build_chunk(
            task_index, start, stop, attempts, outcome, backend,
            wall_clock_s, inst, worker,
        )
        self.chunks.append(record)
        if self.observer is not None:
            try:
                self.observer(record)
            except Exception:
                pass
        self.setup_s += inst.get("setup_s", 0.0)
        self.execute_s += inst.get("execute_s", 0.0)
        self.classify_s += inst.get("classify_s", 0.0)
        self.memo_hits += inst.get("memo_hits", 0)
        self.memo_misses += inst.get("memo_misses", 0)
        self.cache_hits += inst.get("cache_hits", 0)
        self.cache_misses += inst.get("cache_misses", 0)
        self.cache_stores += inst.get("cache_stores", 0)
        self.cache_corrupt += inst.get("cache_corrupt", 0)
        self.cache_write_errors += inst.get("cache_write_errors", 0)
        self.vectorized_runs += inst.get("vectorized_runs", 0)
        if outcome == "cancelled":
            self.cancelled += 1
        else:
            self.n_chunks += 1
            self.executions += stop - start
            if outcome == "replayed":
                self.serial_replays += 1
            elif outcome == "journaled":
                self.journal_replayed += 1

    def _build_chunk(
        self,
        task_index: int,
        start: int,
        stop: int,
        attempts: int,
        outcome: str,
        backend: str,
        wall_clock_s: float,
        inst: dict,
        worker: str,
    ) -> ChunkStats:
        cache_state = ""
        if inst.get("cache_hits"):
            cache_state = "hit"
        elif inst.get("cache_stores"):
            cache_state = "stored"
        if outcome == "journaled":
            engine = "journal"
        elif cache_state == "hit":
            engine = "cache"
        elif inst.get("vectorized_runs"):
            engine = "vectorized"
        else:
            engine = "reference"
        return ChunkStats(
            task_index,
            start,
            stop,
            attempts,
            outcome,
            backend,
            wall_clock_s,
            setup_s=inst.get("setup_s", 0.0),
            execute_s=inst.get("execute_s", 0.0),
            classify_s=inst.get("classify_s", 0.0),
            cache=cache_state,
            engine=engine,
            worker=worker,
            predicted_cost=(
                self.task_weights.get(task_index, 0.0) * (stop - start)
            ),
        )


class MeasuredCounts(EventCounts):
    """Event counts plus the :class:`RunStats` of the batch that made them.

    ``run_batch`` returns this instead of monkey-patching a ``run_stats``
    attribute onto a plain :class:`EventCounts` (which merge/``+`` and
    pickling silently dropped).  The stats ride along as an explicit,
    declared attribute; merging still folds into plain ``EventCounts``
    partials, so ``run_stats`` deliberately does not survive ``merge``/``+``
    — it describes one finished batch, not a combination of them.
    """

    def __init__(self, counts: EventCounts, run_stats: Optional[RunStats]):
        super().__init__(
            counts=dict(counts.counts),
            corruption_counts=dict(counts.corruption_counts),
        )
        self.run_stats = run_stats

    def __eq__(self, other):
        # Equality is by event counts alone (symmetric with EventCounts);
        # two identical measurements with different wall clocks are equal.
        if isinstance(other, EventCounts):
            return (self.counts, self.corruption_counts) == (
                other.counts,
                other.corruption_counts,
            )
        return NotImplemented

    __hash__ = None
