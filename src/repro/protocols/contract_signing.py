"""The two contract-signing protocols from the paper's introduction.

Π1 (naive): the parties exchange commitments to their locally signed
contracts, then p1 opens first and p2 second.  A corrupted p2 can always
take p1's opening and withhold its own — the best attacker gets γ10 with
probability 1.

Π2 (coin-ordered): the parties additionally run a commit-then-open coin
toss; the coin b = b1 ⊕ b2 decides who opens first.  A corrupted party now
finds itself in the "receive first" position only half the time, halving
the best attacker's unfair payoff to (γ10 + γ11)/2 — the intuitive sense in
which Π2 is "twice as fair" as Π1.

Both protocols evaluate the contract-exchange function (fswp on signed
contracts): on any inconsistency a party aborts with ⊥ (there is no default
re-evaluation — one cannot locally forge the counterparty's signature).
"""

from __future__ import annotations

from typing import List

from ..crypto.commitment import Commitment, Opening, commit, open_commitment
from ..crypto.prf import Rng
from ..engine.messages import Inbox
from ..engine.party import PartyContext, PartyMachine
from ..engine.protocol import Protocol
from ..functions.library import FunctionSpec, make_contract_exchange


def _valid_opening(payload, commitment) -> bool:
    return (
        isinstance(payload, Opening)
        and isinstance(commitment, Commitment)
        and open_commitment(commitment, payload)
    )


class NaiveExchangeMachine(PartyMachine):
    """Π1 party: commit; p1 opens (round 1); p2 opens (round 2)."""

    def __init__(self, index: int, n: int):
        super().__init__(index, n)
        self.opening = None
        self.their_commitment = None

    def on_round(self, round_no: int, inbox: Inbox, ctx: PartyContext) -> None:
        other = 1 - self.index
        if round_no == 0:
            commitment, self.opening = commit(self.input, ctx.rng)
            ctx.send(other, commitment)
            return
        if round_no == 1:
            payload = inbox.one_from_party(other)
            if not isinstance(payload, Commitment):
                ctx.output_abort()
                return
            self.their_commitment = payload
            if self.index == 0:
                ctx.send(other, self.opening)
            return
        if round_no == 2:
            if self.index == 1:
                payload = inbox.one_from_party(other)
                if not _valid_opening(payload, self.their_commitment):
                    ctx.output_abort()
                    return
                ctx.output(payload.message)
                ctx.send(other, self.opening)
            return
        if round_no == 3:
            if self.index == 0:
                payload = inbox.one_from_party(other)
                if not _valid_opening(payload, self.their_commitment):
                    ctx.output_abort()
                    return
                ctx.output(payload.message)
            return


class CoinOrderedExchangeMachine(PartyMachine):
    """Π2 party: commit contracts + coin bits; open coins; b decides order."""

    def __init__(self, index: int, n: int):
        super().__init__(index, n)
        self.contract_opening = None
        self.coin_opening = None
        self.their_contract_commitment = None
        self.their_coin_commitment = None
        self.first_opener = None

    def on_round(self, round_no: int, inbox: Inbox, ctx: PartyContext) -> None:
        other = 1 - self.index
        if round_no == 0:
            contract_com, self.contract_opening = commit(self.input, ctx.rng)
            my_bit = ctx.rng.randrange(2)
            coin_com, self.coin_opening = commit(my_bit, ctx.rng)
            ctx.send(other, ("commitments", contract_com, coin_com))
            return
        if round_no == 1:
            payload = inbox.one_from_party(other)
            if (
                not isinstance(payload, tuple)
                or len(payload) != 3
                or payload[0] != "commitments"
                or not isinstance(payload[1], Commitment)
                or not isinstance(payload[2], Commitment)
            ):
                ctx.output_abort()
                return
            self.their_contract_commitment = payload[1]
            self.their_coin_commitment = payload[2]
            ctx.send(other, self.coin_opening)
            return
        if round_no == 2:
            payload = inbox.one_from_party(other)
            if not _valid_opening(payload, self.their_coin_commitment):
                ctx.output_abort()
                return
            their_bit = payload.message
            if their_bit not in (0, 1):
                ctx.output_abort()
                return
            self.first_opener = self.coin_opening.message ^ their_bit
            if self.first_opener == self.index:
                ctx.send(other, self.contract_opening)
            return
        if round_no == 3:
            if self.first_opener == other:
                payload = inbox.one_from_party(other)
                if not _valid_opening(payload, self.their_contract_commitment):
                    ctx.output_abort()
                    return
                ctx.output(payload.message)
                ctx.send(other, self.contract_opening)
            return
        if round_no == 4:
            if self.first_opener == self.index:
                payload = inbox.one_from_party(other)
                if not _valid_opening(payload, self.their_contract_commitment):
                    ctx.output_abort()
                    return
                ctx.output(payload.message)
            return


class IdealCoinExchangeMachine(PartyMachine):
    """Π2 variant in the Fct-hybrid model: the coin toss is ideal.

    Used to demonstrate the framework's composability: replacing the real
    commit-then-open coin toss with the ideal coin functionality leaves the
    measured fairness unchanged (both concede (γ10 + γ11)/2), which is what
    the RPD composition theorem promises.
    """

    def __init__(self, index: int, n: int):
        super().__init__(index, n)
        self.contract_opening = None
        self.their_commitment = None
        self.first_opener = None

    def on_round(self, round_no: int, inbox: Inbox, ctx: PartyContext) -> None:
        other = 1 - self.index
        if round_no == 0:
            commitment, self.contract_opening = commit(self.input, ctx.rng)
            ctx.send(other, commitment)
            ctx.call("F_ct", "toss")
            return
        if round_no == 1:
            payload = inbox.one_from_party(other)
            coin = inbox.from_functionality("F_ct")
            if not isinstance(payload, Commitment) or coin not in (0, 1):
                ctx.output_abort()
                return
            self.their_commitment = payload
            self.first_opener = coin
            if self.first_opener == self.index:
                ctx.send(other, self.contract_opening)
            return
        if round_no == 2:
            if self.first_opener == other:
                payload = inbox.one_from_party(other)
                if not _valid_opening(payload, self.their_commitment):
                    ctx.output_abort()
                    return
                ctx.output(payload.message)
                ctx.send(other, self.contract_opening)
            return
        if round_no == 3:
            if self.first_opener == self.index:
                payload = inbox.one_from_party(other)
                if not _valid_opening(payload, self.their_commitment):
                    ctx.output_abort()
                    return
                ctx.output(payload.message)
            return


class NaiveContractSigning(Protocol):
    """Π1 from the introduction."""

    def __init__(self, func: FunctionSpec = None):
        self.func = func or make_contract_exchange()
        if self.func.n_parties != 2:
            raise ValueError("contract signing is a two-party protocol")
        self.n_parties = 2
        self.name = "pi1-naive"
        self.max_rounds = 4

    def build_machines(self, rng: Rng) -> List[PartyMachine]:
        return [NaiveExchangeMachine(i, 2) for i in range(2)]


class CoinOrderedContractSigning(Protocol):
    """Π2 from the introduction."""

    def __init__(self, func: FunctionSpec = None):
        self.func = func or make_contract_exchange()
        if self.func.n_parties != 2:
            raise ValueError("contract signing is a two-party protocol")
        self.n_parties = 2
        self.name = "pi2-coin"
        self.max_rounds = 5

    def build_machines(self, rng: Rng) -> List[PartyMachine]:
        return [CoinOrderedExchangeMachine(i, 2) for i in range(2)]


class IdealCoinContractSigning(Protocol):
    """Π2 in the Fct-hybrid model (composition reference)."""

    def __init__(self, func: FunctionSpec = None):
        self.func = func or make_contract_exchange()
        if self.func.n_parties != 2:
            raise ValueError("contract signing is a two-party protocol")
        self.n_parties = 2
        self.name = "pi2-ideal-coin"
        self.max_rounds = 4

    def build_machines(self, rng: Rng) -> List[PartyMachine]:
        return [IdealCoinExchangeMachine(i, 2) for i in range(2)]

    def build_functionalities(self, rng: Rng):
        from ..functionalities.coin_toss import CoinToss

        return {CoinToss.name: CoinToss()}
