"""Π̃ — the intuitively insecure yet 1/2-secure-and-private protocol
(paper §5, Appendix C.5).

Computes logical AND.  The prescribed first message is a 0-bit from p2 to
p1; an honest run then proceeds straight into the standard 1/4-secure GK
protocol.  But if (a corrupted) p2 sends a 1-bit instead, p1 tosses a
biased coin with Pr[C = 1] = 1/4 and, on C = 1, sends its *input* x1 to p2
in the clear.

Lemma 27 shows Π̃ is both 1/2-secure and fully private per the two separate
conditions of [18]; Lemma 26 shows it does not realise Fsfe$ — the library's
separation witness between 1/p-security and utility-based fairness.
"""

from __future__ import annotations

from typing import Dict, List

from ..crypto.prf import Rng
from ..engine.messages import Inbox
from ..engine.party import PartyContext, PartyMachine
from ..engine.protocol import Protocol
from ..functionalities.base import Functionality
from ..functionalities.share_gen import GkShareGen, poly_domain_sharegen
from ..functions.library import FunctionSpec, make_and
from .gordon_katz import GordonKatzMachine

#: Rounds of prologue before the embedded GK sub-protocol starts.
PROLOGUE_ROUNDS = 2
LEAK_PROBABILITY = 0.25


class LeakyP1Machine(GordonKatzMachine):
    """p1: watch for the 1-bit, maybe leak x1, then run the GK protocol."""

    def __init__(self, func: FunctionSpec):
        super().__init__(0, 2, func, start_round=PROLOGUE_ROUNDS)
        self.leaked = False

    def on_round(self, round_no: int, inbox: Inbox, ctx: PartyContext) -> None:
        if round_no == 0:
            return  # wait for p2's first message
        if round_no == 1:
            first = inbox.one_from_party(1)
            if first == 1:
                if ctx.rng.coin(LEAK_PROBABILITY):
                    self.leaked = True
                    ctx.send(1, ("leak", self.input))
                else:
                    ctx.send(1, ("empty",))
            return
        super().on_round(round_no, inbox, ctx)


class LeakyP2Machine(GordonKatzMachine):
    """p2 (honest): send the prescribed 0-bit, then run the GK protocol."""

    def __init__(self, func: FunctionSpec):
        super().__init__(1, 2, func, start_round=PROLOGUE_ROUNDS)

    def on_round(self, round_no: int, inbox: Inbox, ctx: PartyContext) -> None:
        if round_no == 0:
            ctx.send(0, 0)
            return
        if round_no == 1:
            return
        super().on_round(round_no, inbox, ctx)


class LeakyAndProtocol(Protocol):
    """Π̃ for the logical AND, embedding the 1/4-secure GK protocol."""

    def __init__(self, p: int = 4):
        self.func = make_and()
        self.p = p
        self.n_parties = 2
        self._template = poly_domain_sharegen(self.func, p)
        self.reveal_rounds = self._template.rounds
        self.name = "pi-tilde-leaky-and"
        self.max_rounds = PROLOGUE_ROUNDS + self.reveal_rounds + 4

    def build_machines(self, rng: Rng) -> List[PartyMachine]:
        return [LeakyP1Machine(self.func), LeakyP2Machine(self.func)]

    def build_functionalities(self, rng: Rng) -> Dict[str, Functionality]:
        sharegen = poly_domain_sharegen(self.func, self.p)
        self._last_sharegen = sharegen
        return {GkShareGen.name: sharegen}

    def classify_result(self, result):
        from .gordon_katz import classify_gk

        return classify_gk(
            result, self.func, getattr(self, "_last_sharegen", None)
        )
