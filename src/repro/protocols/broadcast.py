"""Dolev–Strong authenticated broadcast.

The engine (and the paper, cf. the remark under Lemma 11) assumes a
"standard ideal broadcast channel from the distributed computation
literature".  This module realizes that channel from point-to-point links
and a PKI, for any number of corruptions t < n: the classic Dolev–Strong
protocol with signature chains, instantiated over the hash-based many-time
signatures of :mod:`repro.crypto.mts`.

Guarantees (with at most ``t`` corruptions):

* **agreement** — all honest parties output the same value;
* **validity** — if the sender is honest, that value is its input.

A party accepts a value at round r only when it carries r distinct valid
signatures starting with the sender's; accepted values are relayed with the
party's own signature appended.  After t+1 rounds, an honest party outputs
the unique extracted value, or the default ⊥-marker when the (corrupted)
sender equivocated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..crypto.mts import MtsPublicKey, MtsSigner, mts_verify
from ..crypto.prf import Rng
from ..engine.messages import Inbox
from ..engine.party import PartyContext, PartyMachine
from ..engine.protocol import Protocol
from ..functions.library import FunctionSpec

#: Output marker for "no unique value extracted" (sender equivocation).
NO_VALUE = "ds-no-value"

#: Honest parties relay at most this many distinct values: once two are
#: extracted the outcome is NO_VALUE regardless, so further relays are
#: pointless (and would exhaust signing keys).
MAX_RELAYED_VALUES = 2


def _message_body(value) -> tuple:
    return ("ds", value)


class DolevStrongMachine(PartyMachine):
    def __init__(
        self,
        index: int,
        n: int,
        sender: int,
        max_faults: int,
        signer: MtsSigner,
        public_keys: Tuple[MtsPublicKey, ...],
    ):
        super().__init__(index, n)
        self.sender = sender
        self.max_faults = max_faults
        self.signer = signer
        self.public_keys = public_keys
        self.extracted: Set = set()
        self.relayed: Set = set()

    # -- chain validation ------------------------------------------------------
    def _chain_valid(self, value, chain, min_signatures: int) -> bool:
        if not isinstance(chain, tuple) or len(chain) < min_signatures:
            return False
        signers = []
        for entry in chain:
            if not isinstance(entry, tuple) or len(entry) != 2:
                return False
            signer_index, sig = entry
            if not isinstance(signer_index, int) or not (
                0 <= signer_index < self.n
            ):
                return False
            signers.append(signer_index)
            if not mts_verify(
                _message_body(value), sig, self.public_keys[signer_index]
            ):
                return False
        if len(set(signers)) != len(signers):
            return False
        if signers[0] != self.sender:
            return False
        return True

    def _relay(self, value, chain, ctx: PartyContext) -> None:
        if value in self.relayed:
            return
        if len(self.relayed) >= MAX_RELAYED_VALUES:
            return
        self.relayed.add(value)
        extended = chain + ((self.index, self.signer.sign(_message_body(value))),)
        for j in range(self.n):
            if j != self.index:
                ctx.send(j, ("ds-relay", value, extended))

    def _decide(self, ctx: PartyContext) -> None:
        if len(self.extracted) == 1:
            ctx.output(next(iter(self.extracted)))
        else:
            ctx.output(NO_VALUE)

    # -- rounds -----------------------------------------------------------------
    def on_round(self, round_no: int, inbox: Inbox, ctx: PartyContext) -> None:
        final_round = self.max_faults + 1
        if round_no == 0:
            if self.index == self.sender:
                value = self.input
                self.extracted.add(value)
                self.relayed.add(value)
                chain = ((self.index, self.signer.sign(_message_body(value))),)
                for j in range(self.n):
                    if j != self.index:
                        ctx.send(j, ("ds-relay", value, chain))
            return
        if round_no > final_round:
            return
        for message in inbox.messages:
            payload = message.payload
            if (
                not isinstance(payload, tuple)
                or len(payload) != 3
                or payload[0] != "ds-relay"
            ):
                continue
            _, value, chain = payload
            if value in self.extracted:
                continue
            if not self._chain_valid(value, chain, min_signatures=round_no):
                continue
            self.extracted.add(value)
            if round_no <= self.max_faults:
                self._relay(value, chain, ctx)
        if round_no == final_round:
            self._decide(ctx)


def _broadcast_spec(n: int, sender: int) -> FunctionSpec:
    """The broadcast 'function': everyone outputs the sender's input."""

    def evaluate(inputs):
        return tuple(inputs[sender] for _ in range(n))

    def sample(rng: Rng):
        return tuple(
            rng.randrange(1 << 16) if i == sender else 0 for i in range(n)
        )

    return FunctionSpec(
        name=f"broadcast[{sender} of {n}]",
        n_parties=n,
        evaluate=evaluate,
        default_inputs=tuple(0 for _ in range(n)),
        sample_inputs=sample,
        output_bits=16,
    )


class DolevStrongBroadcast(Protocol):
    """Authenticated broadcast tolerating any t < n corruptions."""

    def __init__(self, n: int, sender: int = 0, max_faults: Optional[int] = None):
        if n < 2:
            raise ValueError("need at least two parties")
        if not 0 <= sender < n:
            raise ValueError(f"no such party: {sender}")
        self.sender = sender
        self.max_faults = max_faults if max_faults is not None else n - 1
        if not 0 <= self.max_faults < n:
            raise ValueError("max_faults must be in [0, n)")
        self.n_parties = n
        self.func = _broadcast_spec(n, sender)
        self.name = f"dolev-strong[n={n},t={self.max_faults}]"
        self.max_rounds = self.max_faults + 3

    def build_machines(self, rng: Rng) -> List[PartyMachine]:
        signers = [
            MtsSigner(rng.fork(f"pki-{i}"), capacity=MAX_RELAYED_VALUES + 2)
            for i in range(self.n_parties)
        ]
        public_keys = tuple(s.public_key for s in signers)
        return [
            DolevStrongMachine(
                i,
                self.n_parties,
                self.sender,
                self.max_faults,
                signers[i],
                public_keys,
            )
            for i in range(self.n_parties)
        ]
