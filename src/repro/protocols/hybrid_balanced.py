"""Π′ — the utility-balanced but non-optimal protocol (Appendix B.1).

Π′ runs Π½GMW when the party count is odd (where the threshold protocol
attains the balanced sum exactly) and ΠOptnSFE when it is even (where
Π½GMW overshoots by (γ10−γ11)/2, Lemma 17).  The resulting protocol is
utility-balanced for every n, yet not optimally fair: for odd n an
adversary corrupting ⌈n/2⌉ parties collects γ10 outright, strictly more
than ΠOptnSFE concedes.
"""

from __future__ import annotations

from ..engine.protocol import Protocol
from ..functions.library import FunctionSpec
from ..gmw.threshold import ThresholdGmwProtocol
from .opt_nsfe import OptNSfeProtocol


def make_hybrid_balanced(func: FunctionSpec) -> Protocol:
    """Build Π′ for the party count of ``func``."""
    if func.n_parties % 2 == 1:
        protocol = ThresholdGmwProtocol(func)
    else:
        protocol = OptNSfeProtocol(func)
    protocol.name = f"pi-prime[{func.name}]"
    return protocol
