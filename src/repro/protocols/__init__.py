"""The protocol zoo: every construction the paper defines or analyses."""

from .contract_signing import (
    CoinOrderedContractSigning,
    IdealCoinContractSigning,
    NaiveContractSigning,
)
from .opt_2sfe import Opt2SfeMachine, Opt2SfeProtocol
from .opt_nsfe import OptNSfeMachine, OptNSfeProtocol
from .dummy import DummyProtocol
from .single_round import SingleRoundProtocol
from .unbalanced_opt import UnbalancedOptProtocol
from .hybrid_balanced import make_hybrid_balanced
from .gordon_katz import GordonKatzMachine, GordonKatzProtocol
from .gradual_release import GradualReleaseProtocol
from .broadcast import DolevStrongBroadcast, NO_VALUE
from .leaky_and import LeakyAndProtocol

__all__ = [
    "CoinOrderedContractSigning",
    "IdealCoinContractSigning",
    "NaiveContractSigning",
    "Opt2SfeMachine",
    "Opt2SfeProtocol",
    "OptNSfeMachine",
    "OptNSfeProtocol",
    "DummyProtocol",
    "SingleRoundProtocol",
    "UnbalancedOptProtocol",
    "make_hybrid_balanced",
    "GradualReleaseProtocol",
    "DolevStrongBroadcast",
    "NO_VALUE",
    "GordonKatzMachine",
    "GordonKatzProtocol",
    "LeakyAndProtocol",
]
