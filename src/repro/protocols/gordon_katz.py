"""The Gordon–Katz 1/p-secure protocols ([18]; paper §5, Appendix C.3).

Both variants run in the ShareGen-hybrid model: the hybrid prepares sealed
value streams with a secret geometric switch round i*; the parties then
alternately reveal, each round transferring one sealed token per direction.
On an abort, a party outputs the *last* value it reconstructed (possibly a
fake — this is the correctness error that confines the protocols to the
randomized-abort functionality Fsfe$).

``GordonKatzProtocol`` covers the poly-domain construction (Theorem 23,
O(p·|Y|) rounds) and the poly-range construction (Theorem 24, O(p²·|Z|)
rounds) through the corresponding ShareGen parameterisations.
"""

from __future__ import annotations

from typing import Dict, List

from ..crypto.prf import Rng
from ..engine.messages import ABORT, Inbox
from ..engine.party import OUTPUT_DEFAULT, PartyContext, PartyMachine
from ..engine.protocol import Protocol
from ..functionalities.base import Functionality
from ..functionalities.share_gen import (
    GkPartyPayload,
    GkShareGen,
    open_sealed,
    poly_domain_sharegen,
    poly_range_sharegen,
)
from ..functions.library import FunctionSpec

SHAREGEN_GK = GkShareGen.name
_STREAM_NAMES = {0: "a", 1: "b"}


class GordonKatzMachine(PartyMachine):
    """One party of the GK reveal protocol.

    ``start_round`` lets the machine be embedded after a prologue (used by
    the leaky protocol Π̃, which prefixes two rounds of its own).
    """

    def __init__(
        self,
        index: int,
        n: int,
        func: FunctionSpec,
        start_round: int = 0,
    ):
        super().__init__(index, n)
        self.func = func
        self.start_round = start_round
        self.payload: GkPartyPayload = None
        self.last_value = None

    def _default_output(self, ctx: PartyContext) -> None:
        inputs = list(self.func.default_inputs)
        inputs[self.index] = self.input
        value = self.func.outputs_for(tuple(inputs))[self.index]
        ctx.output(value, OUTPUT_DEFAULT)

    def _output_last(self, ctx: PartyContext) -> None:
        """Abort mid-reveal: output the last reconstructed value.

        Before the first reveal this is the fallback fake prepared by
        ShareGen — never the default evaluation, matching [18] where the
        early-abort output is drawn from the fake distribution.
        """
        ctx.output(self.last_value)

    def fallback_output(self, ctx: PartyContext) -> None:
        """Graceful degradation on a stalled (faulty-network) execution.

        Exactly the protocol's own abort handling: before ShareGen
        delivered, substitute the default input; mid-reveal, output the
        last reconstructed value (possibly the fake), as on any abort.
        """
        if self.payload is None:
            self._default_output(ctx)
        else:
            self._output_last(ctx)

    def on_round(self, round_no: int, inbox: Inbox, ctx: PartyContext) -> None:
        r = round_no - self.start_round
        if r < 0:
            return
        other = 1 - self.index
        if r == 0:
            ctx.call(SHAREGEN_GK, self.input)
            return
        if r == 1:
            payload = inbox.from_functionality(SHAREGEN_GK)
            if not isinstance(payload, GkPartyPayload):
                self._default_output(ctx)
                return
            self.payload = payload
            self.last_value = payload.fallback
            ctx.send(other, payload.outgoing_tokens[0])
            return
        # Reveal rounds: at r in [2, rounds+1] we receive token r-2 and
        # send token r-1 (if any remain).
        reveal_index = r - 2
        if reveal_index >= self.payload.rounds:
            return
        incoming = inbox.one_from_party(other)
        try:
            value = open_sealed(
                incoming,
                self.payload.incoming_pads[reveal_index],
                self.payload.mac_key,
                _STREAM_NAMES[self.index],
            )
        except ValueError:
            self._output_last(ctx)
            return
        self.last_value = value
        if reveal_index + 1 < self.payload.rounds:
            ctx.send(other, self.payload.outgoing_tokens[reveal_index + 1])
        else:
            ctx.output(self.last_value)


class GordonKatzProtocol(Protocol):
    """A GK 1/p-secure protocol in the ShareGen-hybrid model."""

    def __init__(self, func: FunctionSpec, p: int, variant: str = "domain"):
        if func.n_parties != 2:
            raise ValueError("the GK protocols are two-party")
        if p < 2:
            raise ValueError("p must be at least 2")
        if variant not in ("domain", "range"):
            raise ValueError("variant must be 'domain' or 'range'")
        self.func = func
        self.p = p
        self.variant = variant
        self.n_parties = 2
        # Instantiate once to learn the round count (fresh per execution).
        self._template = self._make_sharegen()
        self.reveal_rounds = self._template.rounds
        self.alpha = self._template.alpha
        self.name = f"gk-{variant}[{func.name},p={p}]"
        self.max_rounds = self.reveal_rounds + 4

    def _make_sharegen(self) -> GkShareGen:
        if self.variant == "domain":
            return poly_domain_sharegen(self.func, self.p)
        return poly_range_sharegen(self.func, self.p)

    def build_machines(self, rng: Rng) -> List[PartyMachine]:
        return [GordonKatzMachine(i, 2, self.func) for i in range(2)]

    def build_functionalities(self, rng: Rng) -> Dict[str, Functionality]:
        sharegen = self._make_sharegen()
        # Kept for the white-box classifier below (executions run
        # sequentially, so the handle always refers to the current run).
        self._last_sharegen = sharegen
        return {SHAREGEN_GK: sharegen}

    def classify_result(self, result):
        """The Theorem-23 simulator's event mapping.

        The ideal target is Fsfe$: the simulator asks the functionality for
        the corrupted output only when the adversary's view reached a
        *real* stream value (reveal index >= i*−1); stopping earlier maps
        to a randomized abort without asking.  Auxiliary-input knowledge of
        y (the worst-case-environment attack) therefore does not count as
        "learning from the protocol" — exactly the paper's accounting.
        """
        return classify_gk(
            result, self.func, getattr(self, "_last_sharegen", None)
        )


def classify_gk(result, func: FunctionSpec, sharegen: GkShareGen):
    """White-box fairness-event classification for a GK-style execution.

    Returns ``None`` (falling back to the generic classifier) when the
    corruption pattern is trivial or the ShareGen handle is missing.
    """
    from ..core.events import FairnessEvent, honest_learned_output
    from ..functionalities.share_gen import SealedValue

    if sharegen is None or sharegen.i_star is None:
        return None
    if not result.corrupted or len(result.corrupted) == result.n:
        return None
    corrupted = next(iter(result.corrupted))
    max_seen = -1
    for message in result.transcript:
        # Transcript entries annotated by the fault layer as dropped are
        # delivery attempts that never arrived — the corrupted party did
        # not see them, so they must not count as revealed tokens.
        if not message.delivered:
            continue
        if message.receiver == corrupted and isinstance(
            message.payload, SealedValue
        ):
            max_seen = max(max_seen, message.payload.index)
    learned = max_seen >= sharegen.i_star - 1
    honest = honest_learned_output(result, func)
    return FairnessEvent(f"{int(learned)}{int(honest)}")
