"""A gradual-release protocol — and why it buys nothing in this model.

The classic line of work the paper's introduction discusses [4, 2, 11, 5,
23] releases the output bit by bit, the intuition being that an aborting
party is only "one bit ahead".  Resource fairness [15] formalises the value
of that head start; the *utility-based* lens of this paper does not — and
the introduction says so explicitly: with probability at least one half
"the adversary might learn the output when it is infeasible for the other
party to compute it", so such protocols fare no better than the naive one.

This implementation makes the claim measurable.  Phase 1 deals an
authenticated sharing of the output (as in ΠOpt2SFE, without the order
coin); phase 2 releases the *summand* bitwise, one bit per round,
alternating p1-then-p2 within each round.  A rushing lock-watcher corrupting
either party sees each honest bit before revealing its own, finishes one
bit ahead, and aborts on the final round holding the full output while the
honest party misses the last bit — payoff γ10 with certainty, exactly the
naive protocol's profile.  (Brute-forcing the one missing bit is precisely
the "resource" the resource-fairness notion would credit and this one
deliberately doesn't.)
"""

from __future__ import annotations

from typing import Dict, List

from ..crypto import authenticated_sharing
from ..crypto.mac import tag, verify
from ..crypto.prf import Rng
from ..engine.messages import Inbox
from ..engine.party import OUTPUT_DEFAULT, PartyContext, PartyMachine
from ..engine.protocol import Protocol
from ..functionalities.base import Functionality
from ..functionalities.priv_sfe import (
    ShareGenOutput,
    TwoPartyShareGen,
    decode_output,
)
from ..functions.library import FunctionSpec

SHAREGEN = TwoPartyShareGen.name

#: Number of low-order summand bits released one per round.  The remaining
#: high bits are sent in the first release round; what matters for the
#: analysis is only that the *last* bit arrives in the last round.
RELEASE_BITS = 8


class GradualReleaseMachine(PartyMachine):
    def __init__(self, index: int, n: int, func: FunctionSpec):
        super().__init__(index, n)
        self.func = func
        self.share = None
        self.received_high = None
        self.received_bits: List[int] = []
        self.received_tag = None

    def _default_output(self, ctx: PartyContext) -> None:
        inputs = list(self.func.default_inputs)
        inputs[self.index] = self.input
        value = self.func.outputs_for(tuple(inputs))[self.index]
        ctx.output(value, OUTPUT_DEFAULT)

    def _try_reconstruct(self, ctx: PartyContext) -> None:
        """All bits in: rebuild the counterparty summand and reconstruct."""
        summand = (self.received_high << RELEASE_BITS) | sum(
            bit << i for i, bit in enumerate(self.received_bits)
        )
        try:
            encoded = authenticated_sharing.reconstruct(
                self.share, (summand, self.received_tag)
            )
        except authenticated_sharing.ShareVerificationError:
            ctx.output_abort()
            return
        ctx.output(decode_output(encoded)[self.index])

    def on_round(self, round_no: int, inbox: Inbox, ctx: PartyContext) -> None:
        other = 1 - self.index
        if round_no == 0:
            ctx.call(SHAREGEN, self.input)
            return
        if round_no == 1:
            payload = inbox.from_functionality(SHAREGEN)
            if not isinstance(payload, ShareGenOutput):
                self._default_output(ctx)
                return
            self.share = payload.share
            summand, summand_tag = self.share.wire_message()
            high = summand >> RELEASE_BITS
            ctx.send(other, ("gr-high", high, summand_tag))
            return
        release_index = round_no - 2
        if release_index == 0:
            payload = inbox.one_from_party(other)
            if (
                not isinstance(payload, tuple)
                or len(payload) != 3
                or payload[0] != "gr-high"
            ):
                self._default_output(ctx)
                return
            self.received_high, self.received_tag = payload[1], payload[2]
        else:
            payload = inbox.one_from_party(other)
            if (
                not isinstance(payload, tuple)
                or len(payload) != 2
                or payload[0] != "gr-bit"
                or payload[1] not in (0, 1)
            ):
                # The counterparty stopped mid-release: it may hold (almost)
                # everything; all we can soundly do is ⊥.
                ctx.output_abort()
                return
            self.received_bits.append(payload[1])
        if release_index < RELEASE_BITS:
            my_summand = self.share.summand
            bit = (my_summand >> release_index) & 1
            ctx.send(other, ("gr-bit", bit))
        if len(self.received_bits) == RELEASE_BITS:
            self._try_reconstruct(ctx)


class GradualReleaseProtocol(Protocol):
    """The bitwise-release strawman (related-work reference point)."""

    def __init__(self, func: FunctionSpec):
        if func.n_parties != 2:
            raise ValueError("two-party protocol")
        self.func = func
        self.n_parties = 2
        self.name = f"gradual-release[{func.name}]"
        self.max_rounds = RELEASE_BITS + 4

    def build_machines(self, rng: Rng) -> List[PartyMachine]:
        return [GradualReleaseMachine(i, 2, self.func) for i in range(2)]

    def build_functionalities(self, rng: Rng) -> Dict[str, Functionality]:
        return {SHAREGEN: TwoPartyShareGen(self.func)}

    @property
    def reconstruction_rounds(self) -> int:
        return RELEASE_BITS + 1
