"""ΠOpt2SFE — the optimally fair two-party SFE protocol (§4.1).

Phase 1 invokes the F^{f',⊥} hybrid (the secure-with-abort SFE computing
f': an authenticated 2-of-2 sharing of the output vector plus a uniformly
random index î).  If the hybrid aborts, the honest party substitutes the
counterparty's default input and evaluates f locally (event E01 in the
ideal world).

Phase 2 reconstructs the sharing in two rounds: first towards p_î, then
towards p_¬î.  If p_¬î fails to deliver a valid share in the first
reconstruction round, p_î again falls back to default-input evaluation;
if p_î fails in the *second* round, p_¬î outputs ⊥ — the corrupted p_î
already holds the real output, so substituting inputs would be unsound
(this is the γ10-branch of Theorem 3's proof).

Theorem 3/4: the best attacker's utility is exactly (γ10 + γ11)/2.
"""

from __future__ import annotations

from typing import Dict, List

from ..crypto import authenticated_sharing
from ..crypto.prf import Rng
from ..engine.messages import ABORT, Inbox
from ..engine.party import OUTPUT_DEFAULT, PartyContext, PartyMachine
from ..engine.protocol import Protocol
from ..functionalities.base import Functionality
from ..functionalities.priv_sfe import (
    ShareGenOutput,
    TwoPartyShareGen,
    decode_output,
)
from ..functions.library import FunctionSpec

SHAREGEN = TwoPartyShareGen.name


class Opt2SfeMachine(PartyMachine):
    """One party of ΠOpt2SFE."""

    def __init__(self, index: int, n: int, func: FunctionSpec):
        super().__init__(index, n)
        self.func = func
        self.share = None
        self.first_receiver = None

    def _default_output(self, ctx: PartyContext) -> None:
        """Evaluate f locally with the counterparty's default input."""
        inputs = list(self.func.default_inputs)
        inputs[self.index] = self.input
        value = self.func.outputs_for(tuple(inputs))[self.index]
        ctx.output(value, OUTPUT_DEFAULT)

    def _reconstruct_and_output(self, payload, ctx: PartyContext) -> bool:
        """Try reconstructing from the counterparty's wire message."""
        try:
            encoded = authenticated_sharing.reconstruct(self.share, payload)
        except authenticated_sharing.ShareVerificationError:
            return False
        outputs = decode_output(encoded)
        ctx.output(outputs[self.index])
        return True

    def fallback_output(self, ctx: PartyContext) -> None:
        """Graceful degradation on a stalled (faulty-network) execution.

        Mirrors the protocol's own abort branches: without a share (or as
        p_î, whose opening never arrived) substitute the default input;
        as p_¬î output ⊥, since p_î may already hold the real output and
        substituting inputs would be unsound.
        """
        if self.share is None or self.first_receiver == self.index:
            self._default_output(ctx)
        else:
            ctx.output_abort()

    def on_round(self, round_no: int, inbox: Inbox, ctx: PartyContext) -> None:
        other = 1 - self.index
        if round_no == 0:
            ctx.call(SHAREGEN, self.input)
            return
        if round_no == 1:
            payload = inbox.from_functionality(SHAREGEN)
            if not isinstance(payload, ShareGenOutput):
                # Hybrid aborted: default-input local evaluation.
                self._default_output(ctx)
                return
            self.share = payload.share
            self.first_receiver = payload.first_receiver
            if self.first_receiver == other:
                # Reconstruction round 1: I open towards p_î.
                ctx.send(other, self.share.wire_message())
            return
        if round_no == 2:
            if self.first_receiver == self.index:
                payload = inbox.one_from_party(other)
                if payload is None or not self._reconstruct_and_output(
                    payload, ctx
                ):
                    # p_¬î failed to open: default-input evaluation,
                    # second round omitted.
                    self._default_output(ctx)
                    return
                # Reconstruction round 2: now I open towards p_¬î.
                ctx.send(other, self.share.wire_message())
            return
        if round_no == 3:
            if self.first_receiver == other:
                payload = inbox.one_from_party(other)
                if payload is None or not self._reconstruct_and_output(
                    payload, ctx
                ):
                    # p_î already holds the real output; all we can do is ⊥.
                    ctx.output_abort()
            return


class Opt2SfeProtocol(Protocol):
    """ΠOpt2SFE in the F^{f',⊥}-hybrid model."""

    def __init__(self, func: FunctionSpec):
        if func.n_parties != 2:
            raise ValueError("ΠOpt2SFE is a two-party protocol")
        self.func = func
        self.n_parties = 2
        self.name = f"opt-2sfe[{func.name}]"
        self.max_rounds = 4

    def build_machines(self, rng: Rng) -> List[PartyMachine]:
        return [Opt2SfeMachine(i, 2, self.func) for i in range(2)]

    def build_functionalities(self, rng: Rng) -> Dict[str, Functionality]:
        return {SHAREGEN: TwoPartyShareGen(self.func)}

    @property
    def reconstruction_rounds(self) -> int:
        """Lemma 9: ΠOpt2SFE has two reconstruction rounds."""
        return 2
