"""ΦFsfe — the dummy protocol that just calls the fair trusted party.

The reference point of *ideal* γC-fairness (Definition 19): no real
protocol can restrict its best attacker below what the attacker gets
against ΦFsfe.  Under Γ+fair the best t-adversary (0 < t < n) obtains γ11.
"""

from __future__ import annotations

from typing import Dict, List

from ..crypto.prf import Rng
from ..engine.messages import ABORT, Inbox
from ..engine.party import PartyContext, PartyMachine
from ..engine.protocol import Protocol
from ..functionalities.base import Functionality
from ..functionalities.sfe import FairSfe
from ..functions.library import FunctionSpec


class DummyMachine(PartyMachine):
    """Forward the input to Fsfe, output whatever comes back."""

    def on_round(self, round_no: int, inbox: Inbox, ctx: PartyContext) -> None:
        if round_no == 0:
            ctx.call(FairSfe.name, self.input)
            return
        if round_no == 1:
            payload = inbox.from_functionality(FairSfe.name)
            if payload is ABORT or payload is None:
                ctx.output_abort()
            else:
                ctx.output(payload)


class DummyProtocol(Protocol):
    """ΦFsfe: the Fsfe-hybrid dummy protocol."""

    def __init__(self, func: FunctionSpec):
        self.func = func
        self.n_parties = func.n_parties
        self.name = f"dummy-fair[{func.name}]"
        self.max_rounds = 2

    def build_machines(self, rng: Rng) -> List[PartyMachine]:
        return [DummyMachine(i, self.n_parties) for i in range(self.n_parties)]

    def build_functionalities(self, rng: Rng) -> Dict[str, Functionality]:
        return {FairSfe.name: FairSfe(self.func)}
