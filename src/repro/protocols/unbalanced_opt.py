"""The Lemma-18 protocol: optimally fair but NOT utility-balanced.

An intentionally artificial construction (Appendix B.1) separating the two
multi-party optimality notions.  After the ΠOptnSFE-style phase 1 (signed
output to a random pi*), every party signals "0" to everyone; pi* then

* broadcasts y if it saw only 0-signals, but
* if anyone deviated, tosses a coin: heads — broadcast anyway; tails —
  send y *only to the deviators*.

A 1-adversary corrupting pj ≠ i* can deviate (send 1-signals), pocketing y
through the tails-branch while honest parties get nothing only if it also
withholds... the paper's point is the *utility profile*: the best
1-adversary achieves γ10/n + (n−1)/n · (γ10+γ11)/2, pushing the t-sum
beyond the balanced bound while the best (n−1)-adversary still tops out at
((n−1)γ10 + γ11)/n, preserving optimal fairness.
"""

from __future__ import annotations

from typing import Dict, List

from ..crypto import signature
from ..crypto.prf import Rng
from ..engine.messages import ABORT, Inbox
from ..engine.party import PartyContext, PartyMachine
from ..engine.protocol import Protocol
from ..functionalities.base import Functionality
from ..functionalities.priv_sfe import PrivOutput, PrivSfeWithAbort
from ..functions.library import FunctionSpec

PRIV_SFE = PrivSfeWithAbort.name


class UnbalancedOptMachine(PartyMachine):
    def __init__(self, index: int, n: int, func: FunctionSpec):
        super().__init__(index, n)
        self.func = func
        self.priv = None

    def on_round(self, round_no: int, inbox: Inbox, ctx: PartyContext) -> None:
        if round_no == 0:
            ctx.call(PRIV_SFE, self.input)
            return
        if round_no == 1:
            payload = inbox.from_functionality(PRIV_SFE)
            if not isinstance(payload, PrivOutput):
                ctx.output_abort()
                return
            self.priv = payload
            # Step 2: every party signals "0" to all others.
            for j in range(self.n):
                if j != self.index:
                    ctx.send(j, ("signal", 0))
            return
        if round_no == 2:
            if not self.priv.holds_output:
                return  # non-holders wait for step 3's delivery
            # Step 3: the output holder decides how to release.
            deviators = []
            for j in range(self.n):
                if j == self.index:
                    continue
                payload = inbox.one_from_party(j)
                if payload != ("signal", 0):
                    deviators.append(j)
            message = ("unbal-output", self.priv.value)
            if not deviators:
                ctx.broadcast(message)
            elif ctx.rng.coin(0.5):
                ctx.broadcast(message)
            else:
                for j in deviators:
                    ctx.send(j, message)
            y, _sigma = self.priv.value
            ctx.output(y)
            return
        if round_no == 3:
            if self.priv.holds_output:
                return  # already output in round 2
            vk = self.priv.verification_key
            for message in inbox.messages:
                payload = message.payload
                if (
                    isinstance(payload, tuple)
                    and len(payload) == 2
                    and payload[0] == "unbal-output"
                    and isinstance(payload[1], tuple)
                    and len(payload[1]) == 2
                ):
                    y, sigma = payload[1]
                    if signature.ver(y, sigma, vk):
                        ctx.output(y)
                        return
            ctx.output_abort()


class UnbalancedOptProtocol(Protocol):
    """The Lemma-18 separation protocol."""

    def __init__(self, func: FunctionSpec):
        if func.n_parties < 3:
            raise ValueError(
                "the separation needs n >= 3 (for n = 2 the notions coincide)"
            )
        self.func = func
        self.n_parties = func.n_parties
        self.name = f"unbalanced-opt[{func.name}]"
        self.max_rounds = 4

    def build_machines(self, rng: Rng) -> List[PartyMachine]:
        return [
            UnbalancedOptMachine(i, self.n_parties, self.func)
            for i in range(self.n_parties)
        ]

    def build_functionalities(self, rng: Rng) -> Dict[str, Functionality]:
        return {PRIV_SFE: PrivSfeWithAbort(self.func)}
