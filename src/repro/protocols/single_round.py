"""The single-reconstruction-round strawman (Lemma 10).

Phase 1 produces an authenticated sharing of the output exactly as in
ΠOpt2SFE (the random index is ignored); phase 2 is a *single* simultaneous
exchange of summands.  A rushing adversary receives the honest summand,
reconstructs, and withholds its own: the honest party ends with ⊥ and the
attacker collects γ10 with probability 1 — which is why no optimally fair
protocol can have one reconstruction round.
"""

from __future__ import annotations

from typing import Dict, List

from ..crypto import authenticated_sharing
from ..crypto.prf import Rng
from ..engine.messages import Inbox
from ..engine.party import OUTPUT_DEFAULT, PartyContext, PartyMachine
from ..engine.protocol import Protocol
from ..functionalities.base import Functionality
from ..functionalities.priv_sfe import (
    ShareGenOutput,
    TwoPartyShareGen,
    decode_output,
)
from ..functions.library import FunctionSpec

SHAREGEN = TwoPartyShareGen.name


class SingleRoundMachine(PartyMachine):
    def __init__(self, index: int, n: int, func: FunctionSpec):
        super().__init__(index, n)
        self.func = func
        self.share = None

    def _default_output(self, ctx: PartyContext) -> None:
        inputs = list(self.func.default_inputs)
        inputs[self.index] = self.input
        value = self.func.outputs_for(tuple(inputs))[self.index]
        ctx.output(value, OUTPUT_DEFAULT)

    def on_round(self, round_no: int, inbox: Inbox, ctx: PartyContext) -> None:
        other = 1 - self.index
        if round_no == 0:
            ctx.call(SHAREGEN, self.input)
            return
        if round_no == 1:
            payload = inbox.from_functionality(SHAREGEN)
            if not isinstance(payload, ShareGenOutput):
                self._default_output(ctx)
                return
            self.share = payload.share
            # The single reconstruction round: both open simultaneously.
            ctx.send(other, self.share.wire_message())
            return
        if round_no == 2:
            payload = inbox.one_from_party(other)
            if payload is None:
                # The counterparty withheld after (rushing) having seen our
                # summand; it may already know y, so only ⊥ is sound.
                ctx.output_abort()
                return
            try:
                encoded = authenticated_sharing.reconstruct(self.share, payload)
            except authenticated_sharing.ShareVerificationError:
                ctx.output_abort()
                return
            ctx.output(decode_output(encoded)[self.index])


class SingleRoundProtocol(Protocol):
    """The Lemma-10 strawman with one reconstruction round."""

    def __init__(self, func: FunctionSpec):
        if func.n_parties != 2:
            raise ValueError("two-party protocol")
        self.func = func
        self.n_parties = 2
        self.name = f"single-round[{func.name}]"
        self.max_rounds = 3

    def build_machines(self, rng: Rng) -> List[PartyMachine]:
        return [SingleRoundMachine(i, 2, self.func) for i in range(2)]

    def build_functionalities(self, rng: Rng) -> Dict[str, Functionality]:
        return {SHAREGEN: TwoPartyShareGen(self.func)}

    @property
    def reconstruction_rounds(self) -> int:
        return 1
