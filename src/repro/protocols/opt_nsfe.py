"""ΠOptnSFE — the optimally fair multi-party SFE protocol (§4.2, App. B).

Phase 1 invokes hF^{f,⊥}_priv-sfei: the hybrid computes the (public)
output y, signs it under a fresh one-time key, and privately hands (y, σ)
to one uniformly random party i*, ⊥ to everyone else, and the verification
key to all.  If the hybrid aborts, so does the protocol.

Phase 2: every party broadcasts its yi.  If some validly signed y ≠ ⊥ was
broadcast, everyone adopts it; otherwise everyone aborts.

An adversary corrupting t parties catches i* with probability t/n (its best
move then is to withhold the broadcast: event E10); otherwise completing is
optimal (E11) — giving Lemma 11's utility (t·γ10 + (n−t)·γ11)/n, which
Lemma 13 shows optimal.
"""

from __future__ import annotations

from typing import Dict, List

from ..crypto import signature
from ..crypto.prf import Rng
from ..engine.messages import ABORT, Inbox
from ..engine.party import PartyContext, PartyMachine
from ..engine.protocol import Protocol
from ..functionalities.base import Functionality
from ..functionalities.priv_sfe import PrivOutput, PrivSfeWithAbort
from ..functions.library import FunctionSpec

PRIV_SFE = PrivSfeWithAbort.name


class OptNSfeMachine(PartyMachine):
    """One party of ΠOptnSFE."""

    def __init__(self, index: int, n: int, func: FunctionSpec):
        super().__init__(index, n)
        self.func = func
        self.priv = None

    def fallback_output(self, ctx: PartyContext) -> None:
        """Graceful degradation on a stalled (faulty-network) execution.

        If this party is i* — it holds the validly signed y from the
        hybrid — it adopts it; otherwise the protocol's abort branch
        applies: output ⊥.
        """
        if self.priv is not None and self.priv.value is not ABORT:
            y, _sigma = self.priv.value
            ctx.output(y)
        else:
            ctx.output_abort()

    def on_round(self, round_no: int, inbox: Inbox, ctx: PartyContext) -> None:
        if round_no == 0:
            ctx.call(PRIV_SFE, self.input)
            return
        if round_no == 1:
            payload = inbox.from_functionality(PRIV_SFE)
            if not isinstance(payload, PrivOutput):
                # "If Πgmw aborts then ΠOptnSFE also aborts."
                ctx.output_abort()
                return
            self.priv = payload
            ctx.broadcast(("opt-nsfe-output", payload.value))
            return
        if round_no == 2:
            candidates = [("opt-nsfe-output", self.priv.value)]
            for message in inbox.broadcasts():
                candidates.append(message.payload)
            vk = self.priv.verification_key
            for payload in candidates:
                if (
                    isinstance(payload, tuple)
                    and len(payload) == 2
                    and payload[0] == "opt-nsfe-output"
                    and isinstance(payload[1], tuple)
                    and len(payload[1]) == 2
                ):
                    y, sigma = payload[1]
                    if signature.ver(y, sigma, vk):
                        ctx.output(y)
                        return
            ctx.output_abort()


class OptNSfeProtocol(Protocol):
    """ΠOptnSFE in the hF^{f,⊥}_priv-sfei-hybrid model."""

    def __init__(self, func: FunctionSpec):
        if func.n_parties < 2:
            raise ValueError("need at least two parties")
        self.func = func
        self.n_parties = func.n_parties
        self.name = f"opt-nsfe[{func.name}]"
        self.max_rounds = 3

    def build_machines(self, rng: Rng) -> List[PartyMachine]:
        return [
            OptNSfeMachine(i, self.n_parties, self.func)
            for i in range(self.n_parties)
        ]

    def build_functionalities(self, rng: Rng) -> Dict[str, Functionality]:
        return {PRIV_SFE: PrivSfeWithAbort(self.func)}
