"""Multi-party attack strategies (Appendix B).

* ``a_bar_i(n, i)`` — the strategy Aī of Lemma 12: corrupt everyone except
  pi, behave honestly, abort the moment the coalition would obtain the
  output if pi stopped participating.
* ``a_hat_t / a_bar_nt`` — the prefix/suffix coalitions Ât and Ān−t of
  Lemma 15 (the two-party lower bound lifted to coalitions).
* ``RandomAllButOne`` — the Lemma 13 mix: corrupt all but one uniformly
  random party.
* ``SignalDeviator`` — the 1-adversary against the Lemma-18 protocol:
  sends 1-signals to bait the tails-branch delivery to itself.
"""

from __future__ import annotations

from typing import Set

from ..crypto.prf import Rng
from ..engine.adversary import RoundInterface
from .aborting import LockWatchingAborter
from .base import MachineDrivingAdversary


def a_bar_i(n: int, i: int) -> LockWatchingAborter:
    """Aī: corrupt [n] \\ {i} and lock-watch (Lemma 12)."""
    if not 0 <= i < n:
        raise ValueError(f"no such party: {i}")
    return LockWatchingAborter(set(range(n)) - {i})


def a_hat_t(n: int, t: int) -> LockWatchingAborter:
    """Ât: corrupt the prefix {p1, ..., pt} (Lemma 15)."""
    if not 1 <= t <= n - 1:
        raise ValueError(f"t must be in [1, n-1], got {t}")
    return LockWatchingAborter(set(range(t)))


def a_bar_nt(n: int, t: int) -> LockWatchingAborter:
    """Ān−t: corrupt the suffix {p(t+1), ..., pn} (Lemma 15)."""
    if not 1 <= t <= n - 1:
        raise ValueError(f"t must be in [1, n-1], got {t}")
    return LockWatchingAborter(set(range(t, n)))


class RandomAllButOne(LockWatchingAborter):
    """The Lemma-13 mix of the Aī strategies."""

    def __init__(self, n: int, rng: Rng):
        spared = rng.randrange(n)
        super().__init__(set(range(n)) - {spared})
        self.name = "a-bar-mix"


class RandomTCorruption(LockWatchingAborter):
    """A t-adversary corrupting a uniformly random t-subset, lock-watching.

    Against ΠOptnSFE this is the Lemma-11-optimal attack: it catches the
    designated output holder i* with probability t/n.
    """

    def __init__(self, n: int, t: int, rng: Rng):
        if not 1 <= t <= n:
            raise ValueError(f"t must be in [1, n], got {t}")
        super().__init__(set(rng.sample(range(n), t)))
        self.name = f"rand-{t}-corrupt"


class SignalDeviator(MachineDrivingAdversary):
    """The Lemma-18 1-adversary against the unbalanced-optimal protocol.

    If the corrupted party holds the output after phase 1, abort (γ10).
    Otherwise send 1-signals instead of 0-signals; with probability 1/2 the
    holder then delivers the output *only to us* (γ10 again, as other
    honest parties end with ⊥), else it broadcasts (γ11).
    """

    def __init__(self, corrupt: Set[int]):
        super().__init__(corrupt)
        self.name = f"signal-deviator{sorted(corrupt)}"

    def should_abort(self, iface: RoundInterface, contexts) -> bool:
        if iface.round != 1:
            return False
        # After the phase-1 response: abort outright if we hold the output.
        value = self.probe_real_output(iface, contexts)
        if value is not None:
            self.claim(iface, value)
            return True
        return False

    def forward(self, iface: RoundInterface, index: int, ctx) -> None:
        if iface.round == 1:
            # Replace the prescribed 0-signals with 1-signals.
            for j in range(iface.n):
                if j != index and j not in iface.corrupted:
                    iface.send(index, j, ("signal", 1))
            for fname, payload in ctx.func_calls.items():
                iface.call_functionality(index, fname, payload)
            return
        super().forward(iface, index, ctx)
