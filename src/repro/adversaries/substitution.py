"""Input-substitution attacks.

Fsfe⊥ lets the ideal adversary choose the corrupted parties' inputs — the
one influence fairness does not (and should not) constrain.  These
strategies exercise that surface: they bias the computed *outcome* while
remaining perfectly fair (E11), demonstrating that the fairness events
measure exactly the delivery asymmetry and nothing else.
"""

from __future__ import annotations

from typing import Callable, Dict, Set

from ..engine.adversary import RoundInterface
from .base import MachineDrivingAdversary


class InputSubstitution(MachineDrivingAdversary):
    """Run corrupted machines honestly on *substituted* inputs.

    ``substitute(index, real_input)`` returns the input the corrupted
    machine is given instead of the environment's.  Everything else is
    honest — the measured fairness event is E11, but the function is
    evaluated on the attacker's inputs (legal in the ideal world, hence no
    protocol can prevent it).
    """

    def __init__(
        self,
        corrupt: Set[int],
        substitute: Callable[[int, object], object],
    ):
        super().__init__(corrupt)
        self.substitute = substitute
        self.substituted: Dict[int, object] = {}
        self.name = f"input-substitution{sorted(corrupt)}"

    def on_corrupt(self, party) -> None:
        super().on_corrupt(party)
        real = party.view.input
        replacement = self.substitute(party.index, real)
        self.substituted[party.index] = replacement
        party.runner.machine.on_input(replacement)

    def effective_inputs(self, env_inputs: tuple) -> tuple:
        """The input vector the ideal functionality actually evaluated.

        The generic event classifier compares against the *environment's*
        inputs, so a substituted run shows up as E00/E01 there; re-classify
        an `ExecutionResult` with its ``inputs`` replaced by this vector to
        obtain the ideal-world event (E11 for pure substitution).  Since
        substitution alone never changes delivery, sup-utility measurements
        over the standard strategy spaces are unaffected.
        """
        effective = list(env_inputs)
        for index, value in self.substituted.items():
            effective[index] = value
        return tuple(effective)


def constant_input(value) -> Callable[[int, object], object]:
    """Substitute every corrupted input with a fixed value."""
    return lambda index, real: value


def max_domain_input(func) -> Callable[[int, object], object]:
    """Substitute each corrupted input with its domain maximum (the
    natural bid-rigging attack on auction-style functions)."""

    def substitute(index: int, real):
        domain = (
            func.input_domains[index]
            if func.input_domains is not None
            else None
        )
        if domain is None:
            raise ValueError(
                f"{func.name}: party {index} has no enumerable domain"
            )
        return max(domain)

    return substitute
