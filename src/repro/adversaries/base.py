"""Machine-driving adversary base.

All the paper's attack strategies share a skeleton: corrupt some parties,
run their prescribed machines honestly ("the adversary instructs the
corrupted party to behave honestly until..."), and deviate at a chosen
moment — typically by withholding messages after having learned the output.
:class:`MachineDrivingAdversary` implements the skeleton; strategies
override the hooks.

The *coalition probe* implements the proofs' counterfactual check "would a
corrupted party hold the actual output if everyone else aborted now?": each
corrupted machine is cloned and fed (a) this round's rushing messages from
honest parties and (b) the coalition's own just-computed round messages,
then run to completion against silence.  A probe output of kind ``real``
certifies the coalition holds the output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..engine.adversary import Adversary, CorruptedParty, RoundInterface
from ..engine.messages import Inbox, Message
from ..engine.party import OUTPUT_REAL, HonestRunner, OutputRecord, PartyContext


class MachineDrivingAdversary(Adversary):
    """Drives corrupted machines honestly; subclasses deviate via hooks."""

    name = "machine-driving"

    def __init__(self, corrupt: Set[int] = frozenset()):
        self._static_corruptions = set(corrupt)
        self._runners: Dict[int, HonestRunner] = {}
        self.aborted = False
        self.claimed: Optional[object] = None

    # -- engine hooks ---------------------------------------------------------
    def initial_corruptions(self, n: int) -> Set[int]:
        return set(self._static_corruptions)

    def on_corrupt(self, party: CorruptedParty) -> None:
        self._runners[party.index] = party.runner

    def on_round(self, iface: RoundInterface) -> None:
        self.before_round(iface)
        if self.aborted:
            return
        contexts: Dict[int, PartyContext] = {}
        for i in sorted(self._runners):
            runner = self._runners[i]
            if runner.current_round <= iface.round:
                contexts[i] = runner.step(iface.round, iface.inbox(i))
        if self.should_abort(iface, contexts):
            self.aborted = True
            return  # withhold every corrupted round message
        for i, ctx in contexts.items():
            self.forward(iface, i, ctx)
        for i, runner in self._runners.items():
            out = runner.output
            if out is not None and out.kind == OUTPUT_REAL:
                self._claim(iface, out.value)

    def finish(self, iface: RoundInterface) -> None:
        if self.aborted:
            return
        # Step corrupted machines on the final delivered inboxes so that a
        # passive adversary collects its last-round output.
        for i in sorted(self._runners):
            runner = self._runners[i]
            if runner.output is None and runner.current_round <= iface.round:
                runner.step(iface.round, iface.inbox(i))
            out = runner.output
            if out is not None and out.kind == OUTPUT_REAL:
                self._claim(iface, out.value)

    # -- strategy hooks ---------------------------------------------------------
    def before_round(self, iface: RoundInterface) -> None:
        """Pre-step hook (adaptive corruptions, etc.)."""

    def should_abort(self, iface: RoundInterface, contexts) -> bool:
        """Decide whether to withhold this round's corrupted messages.

        May call :meth:`coalition_probe` and :meth:`claim` first.
        """
        return False

    def forward(self, iface: RoundInterface, index: int, ctx: PartyContext) -> None:
        """Relay one corrupted machine's honest round behaviour."""
        for message in ctx.outgoing:
            if message.broadcast:
                iface.broadcast(index, message.payload)
            else:
                iface.send(index, message.receiver, message.payload)
        for fname, payload in ctx.func_calls.items():
            iface.call_functionality(index, fname, payload)

    # -- probing ---------------------------------------------------------------
    def coalition_probe(
        self, iface: RoundInterface, contexts: Dict[int, PartyContext]
    ) -> Dict[int, Optional[OutputRecord]]:
        """For each corrupted party: its output if everyone aborted now.

        "Now" means after this round's honest messages (observed by
        rushing) and the coalition's own round messages are delivered, with
        silence afterwards.
        """
        rushing = iface.rushing_messages()
        coalition_msgs: List[Message] = []
        for ctx in contexts.values():
            coalition_msgs.extend(ctx.outgoing)
        results: Dict[int, Optional[OutputRecord]] = {}
        for i, runner in self._runners.items():
            if runner.output is not None:
                results[i] = runner.output
                continue
            probe = runner.clone()
            inbox = Inbox()
            for m in rushing + coalition_msgs:
                if m.sender != i and (m.broadcast or m.receiver == i):
                    inbox.add(m)
            probe.step(iface.round + 1, inbox)
            results[i] = probe.output or probe.simulate_silent_completion()
        return results

    def probe_real_output(
        self, iface: RoundInterface, contexts
    ) -> Optional[object]:
        """The coalition's real output under abort-now, if it holds one."""
        for record in self.coalition_probe(iface, contexts).values():
            if record is not None and record.kind == OUTPUT_REAL:
                return record.value
        return None

    # -- claims -----------------------------------------------------------------
    def _claim(self, iface: RoundInterface, value) -> None:
        self.claimed = value
        iface.claim_output(value)

    def claim(self, iface: RoundInterface, value) -> None:
        """Record an extracted output (verified later by the classifier)."""
        self._claim(iface, value)


class PassiveAdversary(MachineDrivingAdversary):
    """Honest-but-curious: follows the protocol, claims what it learns."""

    name = "passive"

    def __init__(self, corrupt: Set[int] = frozenset()):
        super().__init__(corrupt)
        if corrupt:
            self.name = f"passive{sorted(corrupt)}"
