"""Attack strategies: every explicit adversary from the paper's proofs plus
systematic sweeps for sup-over-adversaries measurements."""

from .base import MachineDrivingAdversary, PassiveAdversary
from .aborting import (
    AbortAtRound,
    FunctionalityAborter,
    LockWatchingAborter,
    RandomSingleCorruption,
    a1_strategy,
    a2_strategy,
)
from .multiparty import (
    RandomAllButOne,
    RandomTCorruption,
    SignalDeviator,
    a_bar_i,
    a_bar_nt,
    a_hat_t,
)
from .adaptive import AdaptiveHolderHunter, TriggeredCorruption
from .substitution import InputSubstitution, constant_input, max_domain_input
from .gk_aborter import FixedRoundStopper, KnownOutputStopper
from .leaky import LeakyInputExtractor
from .search import (
    AdversaryFactory,
    corruption_sets,
    fixed,
    standard_strategy_space,
    strategy_space_for_protocol,
)

__all__ = [
    "MachineDrivingAdversary",
    "PassiveAdversary",
    "AbortAtRound",
    "FunctionalityAborter",
    "LockWatchingAborter",
    "RandomSingleCorruption",
    "a1_strategy",
    "a2_strategy",
    "RandomAllButOne",
    "RandomTCorruption",
    "SignalDeviator",
    "a_bar_i",
    "a_bar_nt",
    "a_hat_t",
    "AdaptiveHolderHunter",
    "TriggeredCorruption",
    "InputSubstitution",
    "constant_input",
    "max_domain_input",
    "FixedRoundStopper",
    "KnownOutputStopper",
    "LeakyInputExtractor",
    "AdversaryFactory",
    "corruption_sets",
    "fixed",
    "standard_strategy_space",
    "strategy_space_for_protocol",
]
