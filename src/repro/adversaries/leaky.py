"""The input-extraction attack on the leaky protocol Π̃ (Lemma 26).

Corrupting p2, the adversary deviates in the very first message — sending a
1-bit instead of the prescribed 0-bit — and with probability 1/4 receives
p1's *input* in the clear.  The extraction is invisible to the two separate
conditions of [18] (1/p-security and privacy, each with its own simulator)
but contradicts realisation of Fsfe$, which is what the E11/E10-style
utility analysis in our framework detects through the distinguishers Z1/Z2
(implemented in :mod:`repro.analysis.partial_fairness`).
"""

from __future__ import annotations

from typing import Optional

from ..engine.adversary import RoundInterface
from .base import MachineDrivingAdversary


class LeakyInputExtractor(MachineDrivingAdversary):
    """Corrupt p2, send the 1-bit, harvest the leaked input, then play the
    embedded GK protocol honestly."""

    name = "leaky-extractor"

    def __init__(self):
        super().__init__({1})
        self.extracted_input: Optional[int] = None

    def forward(self, iface: RoundInterface, index: int, ctx) -> None:
        if iface.round == 0:
            iface.send(1, 0, 1)  # the deviating 1-bit
            for fname, payload in ctx.func_calls.items():
                iface.call_functionality(index, fname, payload)
            return
        super().forward(iface, index, ctx)

    def before_round(self, iface: RoundInterface) -> None:
        if iface.round == 1:
            for message in iface.rushing_messages():
                payload = message.payload
                if (
                    isinstance(payload, tuple)
                    and len(payload) == 2
                    and payload[0] == "leak"
                ):
                    self.extracted_input = payload[1]
