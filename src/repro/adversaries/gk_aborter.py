"""Abort strategies against the Gordon–Katz reveal protocols (Theorem 23).

The attack surface of the GK protocols is the stopping rule: the rushing
adversary opens each incoming sealed token one round before the honest
party banks it, and wins (event E10) exactly when it stops at the secret
switch round i*.  Implemented rules:

* ``KnownOutputStopper`` — the worst-case-environment attack the ShareGen
  parameterisation is sized against: the environment tells the adversary
  the true output y (auxiliary input); the adversary stops at the first
  revealed value equal to y.  Success probability α/(α + q) ≈ 1/p where q
  is the fake distribution's hit probability on y.
* ``FixedRoundStopper`` — stop at a predetermined reveal index; success
  probability is the geometric pmf at that index, < α.
"""

from __future__ import annotations

from typing import Optional

from ..engine.adversary import RoundInterface
from ..functionalities.share_gen import GkPartyPayload, open_sealed
from .base import MachineDrivingAdversary

_STREAM_NAMES = {0: "a", 1: "b"}


class _GkStopperBase(MachineDrivingAdversary):
    """Shared plumbing: track the corrupted GK machine's payload and peek
    at the counterparty's rushing token each reveal round."""

    def __init__(self, corrupt_index: int, start_round: int = 0):
        super().__init__({corrupt_index})
        self.corrupt_index = corrupt_index
        self.start_round = start_round
        #: the stream values this adversary has opened, in order
        self.observed: list = []

    def _payload(self) -> Optional[GkPartyPayload]:
        runner = self._runners.get(self.corrupt_index)
        if runner is None:
            return None
        payload = getattr(runner.machine, "payload", None)
        return payload if isinstance(payload, GkPartyPayload) else None

    def _peek_value(self, iface: RoundInterface) -> Optional[tuple]:
        """Open this round's rushing token; returns (reveal_index, value)."""
        payload = self._payload()
        if payload is None:
            return None
        reveal_index = iface.round - self.start_round - 1
        if not 0 <= reveal_index < payload.rounds:
            return None
        for message in iface.rushing_messages():
            if message.receiver != self.corrupt_index:
                continue
            try:
                value = open_sealed(
                    message.payload,
                    payload.incoming_pads[reveal_index],
                    payload.mac_key,
                    _STREAM_NAMES[self.corrupt_index],
                )
            except ValueError:
                continue
            return reveal_index, value
        return None

    def should_stop(self, reveal_index: int, value: int) -> bool:
        raise NotImplementedError

    def should_abort(self, iface: RoundInterface, contexts) -> bool:
        peeked = self._peek_value(iface)
        if peeked is None:
            return False
        reveal_index, value = peeked
        self.observed.append(value)
        if self.should_stop(reveal_index, value):
            self.claim(iface, value)
            return True
        return False


class KnownOutputStopper(_GkStopperBase):
    """Stop at the first revealed value equal to the (known) output."""

    def __init__(self, corrupt_index: int, known_output: int, start_round: int = 0):
        super().__init__(corrupt_index, start_round)
        self.known_output = known_output
        self.name = f"gk-known-output[p{corrupt_index}]"

    def should_stop(self, reveal_index: int, value: int) -> bool:
        return value == self.known_output


class FixedRoundStopper(_GkStopperBase):
    """Stop at a fixed reveal index regardless of the value."""

    def __init__(self, corrupt_index: int, stop_index: int, start_round: int = 0):
        super().__init__(corrupt_index, start_round)
        self.stop_index = stop_index
        self.name = f"gk-fixed@{stop_index}[p{corrupt_index}]"

    def should_stop(self, reveal_index: int, value: int) -> bool:
        return reveal_index >= self.stop_index
