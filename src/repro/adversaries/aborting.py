"""Lock-watching abort strategies (paper Appendix A, Lemma 7 / Theorem 4).

``LockWatchingAborter`` is the paper's strategy A1/A2 (and its coalition
generalisation Aī used in Appendix B): run the corrupted machines honestly;
in every round check — via the coalition probe — whether the corrupted side
already holds the *actual* output were everyone else to abort now; the
moment it does, record the output and withhold all further messages.

``RandomSingleCorruption`` is Agen from Theorem 4: corrupt one uniformly
random party and run the lock-watching strategy — achieving the average of
A1's and A2's utilities, i.e. at least (γ10 + γ11)/2 against *any* protocol
for the swap function.
"""

from __future__ import annotations

from typing import Optional, Set

from ..crypto.prf import Rng
from ..engine.adversary import RoundInterface
from .base import MachineDrivingAdversary


class LockWatchingAborter(MachineDrivingAdversary):
    """Corrupt a fixed set; abort the instant the coalition holds the
    real output (claiming it)."""

    def __init__(self, corrupt: Set[int]):
        if not corrupt:
            raise ValueError("lock-watching needs at least one corruption")
        super().__init__(corrupt)
        self.name = f"lock-watch{sorted(corrupt)}"

    def should_abort(self, iface: RoundInterface, contexts) -> bool:
        value = self.probe_real_output(iface, contexts)
        if value is not None:
            self.claim(iface, value)
            return True
        return False


def a1_strategy() -> LockWatchingAborter:
    """A1: statically corrupt p1 (index 0), lock-watch."""
    return LockWatchingAborter({0})


def a2_strategy() -> LockWatchingAborter:
    """A2: statically corrupt p2 (index 1), lock-watch."""
    return LockWatchingAborter({1})


class RandomSingleCorruption(LockWatchingAborter):
    """Agen: corrupt one random party, then lock-watch (Theorem 4)."""

    def __init__(self, n: int, rng: Rng):
        super().__init__({rng.randrange(n)})
        self.name = "a-gen"


class AbortAtRound(MachineDrivingAdversary):
    """Play honestly, then go silent from round ``abort_round`` on.

    With ``claim=True`` the adversary records whatever real output the
    coalition probe yields at the abort point (it may yield none).  Used
    for the reconstruction-round measurements (Definition 8) and failure
    injection.
    """

    def __init__(
        self, corrupt: Set[int], abort_round: int, claim: bool = True
    ):
        super().__init__(corrupt)
        self.abort_round = abort_round
        self.claim_on_abort = claim
        self.name = f"abort@r{abort_round}{sorted(corrupt)}"

    def should_abort(self, iface: RoundInterface, contexts) -> bool:
        if iface.round < self.abort_round:
            return False
        if self.claim_on_abort:
            value = self.probe_real_output(iface, contexts)
            if value is not None:
                self.claim(iface, value)
        return True


class FunctionalityAborter(MachineDrivingAdversary):
    """Plays honestly but makes a named hybrid call abort.

    ``ask_first`` mirrors the Fsfe⊥ attack surface: request the corrupted
    outputs before aborting the call.  Against ΠOpt2SFE this exercises the
    E01 branch (the honest party re-evaluates with a default input).
    """

    def __init__(
        self, corrupt: Set[int], functionality: str, ask_first: bool = True
    ):
        super().__init__(corrupt)
        self.functionality = functionality
        self.ask_first = ask_first
        self.name = f"func-abort[{functionality}]{sorted(corrupt)}"

    def on_functionality_query(self, fname: str, query: str, data):
        if fname == self.functionality:
            if query == "request-outputs?":
                return self.ask_first
            if query == "abort?":
                return True
        return super().on_functionality_query(fname, query, data)
