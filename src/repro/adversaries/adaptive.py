"""Adaptive-corruption strategies.

The paper's protocols are secure against *adaptive* adversaries (§4): an
attacker may pick its victims as the execution unfolds.  These strategies
exercise that capability:

* :class:`AdaptiveHolderHunter` — against ΠOptnSFE-style protocols:
  corrupt parties one at a time once phase 1 completes, inspecting each
  victim's phase-1 output, hunting for the designated holder i*.  Lemma
  11's proof argues adaptivity buys nothing here: by the time any phase-1
  output is inspectable the holder's broadcast is already on the (ideal,
  non-retractable) broadcast channel, so only the *initially* corrupted
  parties matter — Pr[unfair] stays at (initial corruptions)/n, below the
  static t/n optimum.  The tests verify exactly this.
* :class:`TriggeredCorruption` — corrupt a fixed set only when a
  predicate on the observed round fires (generic adaptivity harness used
  in engine tests and failure injection).
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from ..engine.adversary import RoundInterface
from ..functionalities.priv_sfe import PrivOutput
from .base import MachineDrivingAdversary


class AdaptiveHolderHunter(MachineDrivingAdversary):
    """Corrupt up to ``budget`` parties adaptively, hunting for the
    phase-1 output holder of ΠOptnSFE.

    Starts with a single corruption; after the phase-1 response round it
    keeps corrupting fresh parties (inspecting each new victim's machine)
    until it finds the holder or exhausts the budget.  On a hit it claims
    the output and withholds the broadcast.
    """

    def __init__(self, budget: int, first_victim: int = 0):
        if budget < 1:
            raise ValueError("need a corruption budget of at least 1")
        super().__init__({first_victim})
        self.budget = budget
        self.name = f"adaptive-hunter(t={budget})"

    def _holder_output(self) -> Optional[object]:
        for runner in self._runners.values():
            priv = getattr(runner.machine, "priv", None)
            if isinstance(priv, PrivOutput) and priv.holds_output:
                return priv.value[0]
        return None

    def before_round(self, iface: RoundInterface) -> None:
        # Adaptive corruptions are decided from round 1 on, once the
        # phase-1 responses sit in machine state (honest machines step —
        # and broadcast — before the adversary acts each round).
        if iface.round < 1 or self.aborted:
            return
        while (
            self._holder_output() is None
            and len(iface.corrupted) < min(self.budget, iface.n)
            and iface.honest
        ):
            victim = min(iface.honest)
            iface.corrupt(victim)

    def should_abort(self, iface: RoundInterface, contexts) -> bool:
        if iface.round < 1:
            return False
        value = self._holder_output()
        if value is not None:
            self.claim(iface, value)
            return True
        return False


class TriggeredCorruption(MachineDrivingAdversary):
    """Corrupt ``victims`` the first round ``trigger(iface)`` fires, then
    play honestly (machine-driven) from there on."""

    def __init__(
        self,
        victims: Set[int],
        trigger: Callable[[RoundInterface], bool],
    ):
        super().__init__(set())
        self.victims = set(victims)
        self.trigger = trigger
        self.fired = False
        self.name = f"triggered{sorted(victims)}"

    def before_round(self, iface: RoundInterface) -> None:
        if self.fired or not self.trigger(iface):
            return
        self.fired = True
        for victim in sorted(self.victims):
            if victim not in iface.corrupted:
                iface.corrupt(victim)
