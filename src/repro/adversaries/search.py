"""Strategy-space enumeration for best-response (sup over A) measurements.

The paper's utilities take a supremum over all efficient adversaries; its
proofs pin the supremum with explicit strategies.  We measure the sup over
a strategy space containing those explicit strategies plus systematic
sweeps (every corruption set up to a size cap x every abort round x
functionality aborts), which by the matching upper-bound theorems is
sufficient to attain the analytic optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Iterator, List, Optional

from ..crypto.prf import Rng
from ..engine.adversary import Adversary
from .aborting import AbortAtRound, FunctionalityAborter, LockWatchingAborter
from .base import PassiveAdversary


@dataclass(frozen=True)
class AdversaryFactory:
    """A named constructor of fresh adversary instances (one per run)."""

    name: str
    build: Callable[[Rng], Adversary]

    def __call__(self, rng: Rng) -> Adversary:
        adversary = self.build(rng)
        adversary.name = self.name
        return adversary


def fixed(name: str, constructor: Callable[[], Adversary]) -> AdversaryFactory:
    """Factory for strategies that need no per-run randomness."""
    return AdversaryFactory(name, lambda rng: constructor())


def corruption_sets(n: int, max_size: Optional[int] = None) -> Iterator[frozenset]:
    """All non-empty corruption sets up to ``max_size`` (default n−1)."""
    cap = max_size if max_size is not None else n - 1
    for size in range(1, cap + 1):
        for subset in combinations(range(n), size):
            yield frozenset(subset)


def standard_strategy_space(
    n: int,
    max_rounds: int,
    functionality_names: List[str] = (),
    max_corruptions: Optional[int] = None,
) -> List[AdversaryFactory]:
    """The default sweep: passive, lock-watching, abort-at-round, and
    functionality-abort strategies over every corruption set."""
    factories: List[AdversaryFactory] = []
    for subset in corruption_sets(n, max_corruptions):
        frozen = frozenset(subset)
        label = "".join(str(i) for i in sorted(frozen))
        factories.append(
            fixed(f"passive[{label}]", lambda s=frozen: PassiveAdversary(set(s)))
        )
        factories.append(
            fixed(
                f"lock-watch[{label}]",
                lambda s=frozen: LockWatchingAborter(set(s)),
            )
        )
        for r in range(max_rounds):
            factories.append(
                fixed(
                    f"abort@r{r}[{label}]",
                    lambda s=frozen, rr=r: AbortAtRound(set(s), rr),
                )
            )
        for fname in functionality_names:
            for ask in (True, False):
                suffix = "ask" if ask else "noask"
                factories.append(
                    fixed(
                        f"func-abort[{fname},{suffix}][{label}]",
                        lambda s=frozen, f=fname, a=ask: FunctionalityAborter(
                            set(s), f, ask_first=a
                        ),
                    )
                )
    return factories


def strategy_space_for_protocol(
    protocol, max_corruptions: Optional[int] = None
) -> List[AdversaryFactory]:
    """Derive the standard sweep from a protocol's shape."""
    from ..crypto.prf import Rng as _Rng

    fnames = list(protocol.build_functionalities(_Rng(b"probe")))
    # Only sweep abortable top-level hybrids; per-gate OT instances would
    # explode the space without adding distinct behaviours.
    fnames = [f for f in fnames if not f.startswith("ot:")]
    return standard_strategy_space(
        protocol.n_parties,
        protocol.max_rounds,
        fnames,
        max_corruptions,
    )
