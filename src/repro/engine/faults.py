"""Deterministic engine-level fault injection: unreliable channels and
crash-stop parties.

The paper proves its utility bounds in a synchronous model with perfectly
reliable channels, where a missing message can only be a deliberate
adversarial abort.  This module lets the engine ask the natural follow-up
question studied by the fail-stop fairness literature (Cohen–Haitner–Omri–
Rotem; Beimel–Omri–Orlov): what happens to the fairness-event distribution
and the adversarial utility when the *network* or a *party* is faulty, with
no adversary involved?

Two orthogonal models, bundled by :class:`EngineFaults`:

* :class:`ChannelFaultModel` — per-delivery-attempt faults on the bilateral
  channels (drop, delay by ``k`` rounds, duplicate) plus an independently
  configurable per-receiver broadcast reliability.  Hybrid-functionality
  responses are never faulted: they model ideal/local computation, not
  network traffic.
* :class:`PartyFaultModel` — crash-stop faults: an *honest* party halts
  silently at a scheduled or sampled round and never speaks again.  This is
  distinct from adversarial corruption: a crashed party is not controlled
  by anyone, sends nothing, and is excluded from the honest-learned
  predicate (fairness is assessed over the surviving honest parties, as in
  the fail-stop model).

Determinism contract
--------------------
Every fault decision is a pure function of the model's ``seed`` and the
delivery coordinates ``(round, sender, receiver, msg_index)`` (or the party
index, for crashes).  Monte-Carlo batches vary the pattern *per run* by
re-salting the seed through :meth:`EngineFaults.seeded` with material drawn
from the run's own RNG stream (``Rng(seed).fork(f"run-{k}")``), so any
``(task, start, stop)`` chunk stays bit-identically replayable under the
runtime's retry machinery, and serial vs. process-pool backends agree.

The zero-rate models are strict no-ops: :attr:`EngineFaults.active` is
``False`` and the engine takes the historical delivery path untouched.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional

from ..crypto.prf import Rng

#: Environment knobs consulted by :meth:`EngineFaults.from_env`.
ENV_CHANNEL_LOSS = "REPRO_CHANNEL_LOSS"
ENV_CHANNEL_DELAY = "REPRO_CHANNEL_DELAY"
ENV_CHANNEL_DUP = "REPRO_CHANNEL_DUP"
ENV_BROADCAST_LOSS = "REPRO_BROADCAST_LOSS"
ENV_CRASH_RATE = "REPRO_CRASH_RATE"
ENV_ENGINE_FAULT_SEED = "REPRO_ENGINE_FAULT_SEED"

#: Transcript annotations the engine attaches to per-attempt log entries.
ANNOTATION_DROPPED = "dropped"
ANNOTATION_DUPLICATE = "duplicate"


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")


@dataclass(frozen=True)
class ChannelDecision:
    """Outcome of one delivery attempt.

    ``action`` is ``"deliver"``, ``"drop"``, or ``"delay"``; ``delay`` is
    the number of extra rounds a delayed message spends in flight; and
    ``copies`` is the total number of delivered copies (2 = duplicated).
    """

    action: str = "deliver"
    delay: int = 0
    copies: int = 1


_DELIVER = ChannelDecision()
_DROP = ChannelDecision(action="drop")


@dataclass(frozen=True)
class ChannelFaultModel:
    """Unreliable bilateral channels + lossy broadcast, deterministically.

    ``loss``/``delay``/``duplicate`` are per-delivery-attempt probabilities
    on the bilateral channels (mutually exclusive, checked in that order);
    a delayed message spends ``k`` extra rounds in flight with ``k`` drawn
    uniformly from ``1..max_delay``.  ``broadcast_loss`` is the
    *per-receiver* drop probability of the broadcast channel — the channel
    stays non-equivocating (no receiver ever sees a different payload),
    some receivers just miss it.
    """

    loss: float = 0.0
    delay: float = 0.0
    max_delay: int = 2
    duplicate: float = 0.0
    broadcast_loss: float = 0.0
    seed: object = 0

    def __post_init__(self):
        _check_rate("loss", self.loss)
        _check_rate("delay", self.delay)
        _check_rate("duplicate", self.duplicate)
        _check_rate("broadcast_loss", self.broadcast_loss)
        if self.max_delay < 1:
            raise ValueError("max_delay must be at least one round")

    @property
    def active(self) -> bool:
        return (
            self.loss > 0
            or self.delay > 0
            or self.duplicate > 0
            or self.broadcast_loss > 0
        )

    def bilateral(
        self, round_no: int, sender, receiver, msg_index: int
    ) -> ChannelDecision:
        """Fault decision for one bilateral delivery attempt.

        A pure function of ``(seed, round, sender, receiver, msg_index)``.
        """
        if not (self.loss or self.delay or self.duplicate):
            return _DELIVER
        rng = Rng((self.seed, "chan", round_no, sender, receiver, msg_index))
        if self.loss and rng.random() < self.loss:
            return _DROP
        if self.delay and rng.random() < self.delay:
            return ChannelDecision(
                action="delay", delay=rng.randint(1, self.max_delay)
            )
        if self.duplicate and rng.random() < self.duplicate:
            return ChannelDecision(copies=2)
        return _DELIVER

    def broadcast(
        self, round_no: int, sender, receiver, msg_index: int
    ) -> ChannelDecision:
        """Per-receiver fault decision for one broadcast delivery attempt."""
        if not self.broadcast_loss:
            return _DELIVER
        rng = Rng((self.seed, "bcast", round_no, sender, receiver, msg_index))
        if rng.random() < self.broadcast_loss:
            return _DROP
        return _DELIVER


@dataclass(frozen=True)
class PartyFaultModel:
    """Crash-stop faults for honest parties.

    A crashed party halts *silently*: from its crash round on it neither
    steps its machine, sends messages, nor calls functionalities — it is
    not corrupted and not controlled by the adversary.  ``scheduled`` pins
    explicit ``party → round`` crashes; otherwise each party independently
    crashes with probability ``crash_rate`` at a round sampled uniformly
    from the protocol's round range, as a pure function of
    ``(seed, party)``.
    """

    crash_rate: float = 0.0
    scheduled: Optional[Mapping[int, int]] = None
    seed: object = 0

    def __post_init__(self):
        _check_rate("crash_rate", self.crash_rate)

    @property
    def active(self) -> bool:
        return self.crash_rate > 0 or bool(self.scheduled)

    def crash_round(self, party: int, max_rounds: int) -> Optional[int]:
        """The round at which ``party`` halts, or ``None`` (never crashes)."""
        if self.scheduled is not None and party in self.scheduled:
            return self.scheduled[party]
        if self.crash_rate <= 0:
            return None
        rng = Rng((self.seed, "crash", party))
        if rng.random() < self.crash_rate:
            return rng.randrange(max_rounds)
        return None


@dataclass(frozen=True)
class EngineFaults:
    """The bundle one execution runs under: channel + party fault models."""

    channel: Optional[ChannelFaultModel] = None
    party: Optional[PartyFaultModel] = None

    @property
    def active(self) -> bool:
        return bool(
            (self.channel is not None and self.channel.active)
            or (self.party is not None and self.party.active)
        )

    def seeded(self, salt) -> "EngineFaults":
        """A copy whose fault seeds are re-salted with per-run material.

        ``ExecutionTask.run_chunk`` derives ``salt`` from the run's own RNG
        stream, so the pattern varies across Monte-Carlo runs while any
        single run stays a pure function of ``(task seed, k)``.
        """
        channel = self.channel
        if channel is not None:
            channel = replace(channel, seed=(channel.seed, "run", salt))
        party = self.party
        if party is not None:
            party = replace(party, seed=(party.seed, "run", salt))
        return EngineFaults(channel=channel, party=party)

    def to_dict(self) -> dict:
        """Plain-dict form recorded in ``analysis.export`` artefacts."""
        out: Dict[str, object] = {}
        if self.channel is not None:
            out["channel"] = {
                "loss": self.channel.loss,
                "delay": self.channel.delay,
                "max_delay": self.channel.max_delay,
                "duplicate": self.channel.duplicate,
                "broadcast_loss": self.channel.broadcast_loss,
                "seed": repr(self.channel.seed),
            }
        if self.party is not None:
            out["party"] = {
                "crash_rate": self.party.crash_rate,
                "scheduled": dict(self.party.scheduled or {}),
                "seed": repr(self.party.seed),
            }
        return out

    @classmethod
    def from_env(cls) -> Optional["EngineFaults"]:
        """Faults implied by the ``REPRO_CHANNEL_*``/``REPRO_CRASH_RATE``
        knobs; ``None`` when no engine fault injection is configured.

        Deliberately *not* consulted by the plain estimator entry points:
        measured event distributions are the scientific output, and an
        environment variable silently corrupting every measurement would be
        a footgun.  Fault-aware call sites (the ``fault-sensitivity``
        command, the engine-fault tests) opt in explicitly.
        """

        def rate(name: str) -> float:
            raw = os.environ.get(name, "").strip()
            if not raw:
                return 0.0
            try:
                value = float(raw)
            except ValueError:
                raise ValueError(f"{name} must be a float, got {raw!r}")
            _check_rate(name, value)
            return value

        loss = rate(ENV_CHANNEL_LOSS)
        delay = rate(ENV_CHANNEL_DELAY)
        dup = rate(ENV_CHANNEL_DUP)
        bcast = rate(ENV_BROADCAST_LOSS)
        crash = rate(ENV_CRASH_RATE)
        seed: object = os.environ.get(ENV_ENGINE_FAULT_SEED, "").strip() or 0
        channel = None
        if loss or delay or dup or bcast:
            channel = ChannelFaultModel(
                loss=loss,
                delay=delay,
                duplicate=dup,
                broadcast_loss=bcast,
                seed=seed,
            )
        party = PartyFaultModel(crash_rate=crash, seed=seed) if crash else None
        if channel is None and party is None:
            return None
        return cls(channel=channel, party=party)


#: Explicitly disable engine fault injection (a strict no-op config).
NO_ENGINE_FAULTS = EngineFaults()
