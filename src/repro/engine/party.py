"""Honest-party protocol machines and their execution context.

A protocol supplies one :class:`PartyMachine` per party.  The machine is a
state object driven round by round; it communicates exclusively through the
:class:`PartyContext` handed to :meth:`PartyMachine.on_round`.  Machines must
be deep-copyable: adaptive adversaries receive the live machine of a newly
corrupted party, and the generic lock-watching adversaries of the paper
(strategies A1/A2/Aī) clone machines to run "what if everyone else aborted
now?" simulations.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..crypto.prf import Rng
from .messages import ABORT, Inbox, Message

#: Output kinds an honest machine can report.
OUTPUT_REAL = "real"  # output produced by the prescribed protocol flow
OUTPUT_DEFAULT = "default"  # output re-computed locally with default inputs
OUTPUT_ABORT = "abort"  # the party output ⊥


@dataclass(frozen=True)
class OutputRecord:
    """An honest party's final output together with how it was obtained."""

    value: object
    kind: str

    def __post_init__(self):
        if self.kind not in (OUTPUT_REAL, OUTPUT_DEFAULT, OUTPUT_ABORT):
            raise ValueError(f"unknown output kind {self.kind!r}")

    @property
    def is_abort(self) -> bool:
        return self.kind == OUTPUT_ABORT


class PartyContext:
    """Mediates everything a machine may do during one round."""

    def __init__(self, index: int, n: int, round_no: int, rng: Rng):
        self.index = index
        self.n = n
        self.round = round_no
        self.rng = rng
        self.outgoing: List[Message] = []
        self.func_calls: Dict[str, object] = {}
        self._output: Optional[OutputRecord] = None

    def send(self, to: int, payload) -> None:
        """Send ``payload`` to party ``to`` over the secure channel."""
        if not 0 <= to < self.n:
            raise ValueError(f"no such party: {to}")
        if to == self.index:
            raise ValueError("parties do not message themselves")
        self.outgoing.append(
            Message(self.index, to, payload, self.round)
        )

    def broadcast(self, payload) -> None:
        """Broadcast ``payload`` to every party (non-equivocating channel)."""
        self.outgoing.append(
            Message(self.index, None, payload, self.round, broadcast=True)
        )

    def call(self, functionality: str, payload) -> None:
        """Submit input to hybrid functionality ``functionality``.

        The response arrives in next round's inbox, as a message whose
        sender is the functionality's name (or ``ABORT`` on abort).
        """
        if functionality in self.func_calls:
            raise ValueError(
                f"duplicate call to functionality {functionality!r} in one round"
            )
        self.func_calls[functionality] = payload

    def output(self, value, kind: str = OUTPUT_REAL) -> None:
        """Commit this party's final output."""
        if self._output is not None:
            raise RuntimeError("party already produced an output")
        self._output = OutputRecord(value, kind)

    def output_abort(self) -> None:
        """Output ⊥."""
        self.output(ABORT, OUTPUT_ABORT)

    @property
    def produced_output(self) -> Optional[OutputRecord]:
        return self._output


class PartyMachine(ABC):
    """Base class for per-party protocol state machines."""

    def __init__(self, index: int, n: int):
        self.index = index
        self.n = n

    def on_input(self, value) -> None:
        """Receive the private input from the environment (round -1)."""
        self.input = value

    @abstractmethod
    def on_round(self, round_no: int, inbox: Inbox, ctx: PartyContext) -> None:
        """Process one synchronous round."""

    def fallback_output(self, ctx: PartyContext) -> None:
        """Produce this party's graceful-degradation output.

        Called by the engine when fault injection is active and the machine
        reached the round bound without outputting (an expected message
        never arrived, so the prescribed flow stalled).  The paper's
        protocols all specify what an honest party does on a detected abort
        — output the default value, or ⊥ — and concrete machines override
        this to take exactly that path.  The base implementation outputs ⊥.
        """
        ctx.output_abort()


@dataclass
class PartyView:
    """The view handed to the adversary upon corrupting a party.

    Contains the party's input, all messages it received and sent, and the
    live machine (whose attributes encode the full internal state).
    """

    index: int
    input: object
    received: List[Message] = field(default_factory=list)
    sent: List[Message] = field(default_factory=list)
    machine: Optional[PartyMachine] = None
    func_responses: List[Message] = field(default_factory=list)


class HonestRunner:
    """Drives one honest party's machine and records its view.

    The runner is the engine's handle on a party; adversaries that corrupt
    the party receive the runner itself and may clone it to run
    counterfactual continuations (:meth:`clone`,
    :meth:`simulate_silent_completion`).
    """

    def __init__(self, machine: PartyMachine, rng: Rng, max_rounds: int):
        self.machine = machine
        self.rng = rng
        self.max_rounds = max_rounds
        self.output: Optional[OutputRecord] = None
        self.view = PartyView(index=machine.index, input=None)
        self.current_round = 0

    @property
    def index(self) -> int:
        return self.machine.index

    def give_input(self, value) -> None:
        self.machine.on_input(value)
        self.view.input = value

    def step(self, round_no: int, inbox: Inbox) -> PartyContext:
        """Run one round; returns the context with outgoing traffic."""
        ctx = PartyContext(
            self.machine.index, self.machine.n, round_no, self.rng
        )
        self.view.received.extend(inbox.messages)
        if self.output is None:
            self.machine.on_round(round_no, inbox, ctx)
            if ctx.produced_output is not None:
                self.output = ctx.produced_output
        self.view.sent.extend(ctx.outgoing)
        self.current_round = round_no + 1
        return ctx

    def finish_fallback(self) -> Optional[OutputRecord]:
        """Ask the machine for its graceful-degradation output.

        Invoked by the engine after the round bound when fault injection is
        active and the machine never output.  Outgoing traffic produced by
        the fallback is discarded — the protocol is over.  Returns the
        output record, or ``None`` if the machine declined even the
        fallback (the party is then counted as hung).
        """
        if self.output is not None:
            return self.output
        ctx = PartyContext(
            self.machine.index, self.machine.n, self.max_rounds, self.rng
        )
        self.machine.fallback_output(ctx)
        if ctx.produced_output is not None:
            self.output = ctx.produced_output
        return self.output

    def clone(self) -> "HonestRunner":
        """Deep copy, for counterfactual simulation by an adversary."""
        return copy.deepcopy(self)

    def simulate_silent_completion(self) -> Optional[OutputRecord]:
        """Run the machine to completion assuming everyone else is silent.

        Empty inboxes are fed for every remaining round; hybrid calls
        are answered with ``ABORT``.  Returns the machine's final output
        (or ``None`` if it never outputs — a protocol bug).

        This is exactly the check the paper's strategies A1/A2/Aī perform:
        "simulate to a copy of pi that the others aborted the protocol and
        check whether the output is the default output".
        """
        sim = self.clone()
        pending_func_aborts: List[str] = []
        for r in range(sim.current_round, sim.max_rounds):
            inbox = Inbox()
            for fname in pending_func_aborts:
                inbox.add(Message(fname, sim.index, ABORT, r))
            pending_func_aborts = []
            ctx = sim.step(r, inbox)
            pending_func_aborts = list(ctx.func_calls.keys())
            if sim.output is not None:
                return sim.output
        return sim.output
