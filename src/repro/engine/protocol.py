"""The protocol interface consumed by the execution engine."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List

from ..crypto.prf import Rng
from ..functionalities.base import Functionality
from .party import PartyMachine


class Protocol(ABC):
    """A protocol: machines for each party plus the hybrids it uses.

    Concrete protocols also carry the :class:`repro.functions.FunctionSpec`
    they evaluate (attribute ``func``), which the analysis layer uses to
    verify adversary output claims and honest-party correctness.
    """

    #: human-readable protocol name used in reports
    name: str = "protocol"

    #: number of parties
    n_parties: int = 2

    #: upper bound on rounds; honest machines must output by this round
    #: even if every other party is silent
    max_rounds: int = 16

    @abstractmethod
    def build_machines(self, rng: Rng) -> List[PartyMachine]:
        """Fresh per-execution machines, in party-index order."""

    def build_functionalities(self, rng: Rng) -> Dict[str, Functionality]:
        """Fresh per-execution hybrid functionality instances."""
        return {}

    @property
    def cache_key(self):
        """Canonical identity used in chunk-cache fingerprints.

        The default — concrete class plus name and shape — is right for
        protocols whose ``name`` embeds every behavioural parameter
        (function name, p, thresholds…), which is the registry
        convention.  Protocols carrying extra compiled structure (e.g.
        GMW's circuit) override this with a content digest.
        """
        return (type(self).__name__, self.name, self.n_parties, self.max_rounds)

    def classify_result(self, result):
        """Optional protocol-specific fairness-event classification.

        Return ``None`` to use the generic classifier
        (:func:`repro.core.events.classify`).  Protocols whose ideal target
        is weaker than Fsfe⊥ (the Gordon–Katz protocols target Fsfe$)
        override this with the white-box mapping their simulator induces.
        """
        return None

    def describe(self) -> str:
        """One-line description for reports."""
        return self.name
