"""Synchronous protocol-execution engine (Canetti-style model).

Semantics: synchronous rounds over ideally secure bilateral channels plus a
non-equivocating broadcast channel; a rushing adversary that observes honest
messages addressed to corrupted parties before committing the corrupted
parties' messages of the same round; adaptive corruptions that hand over a
party's full view and live machine; hybrid ideal-functionality calls that
resolve within a round and respond with the next inbox.
"""

from .messages import ABORT, Inbox, Message
from .party import (
    OUTPUT_ABORT,
    OUTPUT_DEFAULT,
    OUTPUT_REAL,
    HonestRunner,
    OutputRecord,
    PartyContext,
    PartyMachine,
    PartyView,
)
from .adversary import Adversary, CorruptedParty, RoundInterface
from .protocol import Protocol
from .execution import (
    Execution,
    ExecutionResult,
    ProtocolViolation,
    run_execution,
)
from .faults import (
    NO_ENGINE_FAULTS,
    ChannelDecision,
    ChannelFaultModel,
    EngineFaults,
    PartyFaultModel,
)

__all__ = [
    "NO_ENGINE_FAULTS",
    "ChannelDecision",
    "ChannelFaultModel",
    "EngineFaults",
    "PartyFaultModel",
    "ABORT",
    "Inbox",
    "Message",
    "OUTPUT_ABORT",
    "OUTPUT_DEFAULT",
    "OUTPUT_REAL",
    "HonestRunner",
    "OutputRecord",
    "PartyContext",
    "PartyMachine",
    "PartyView",
    "Adversary",
    "CorruptedParty",
    "RoundInterface",
    "Protocol",
    "Execution",
    "ExecutionResult",
    "ProtocolViolation",
    "run_execution",
]
