"""The synchronous execution scheduler.

Implements the model of DESIGN.md §4: synchronous rounds over secure
bilateral channels and a non-equivocating broadcast channel, a rushing
adversary with adaptive corruptions, and single-round hybrid functionality
invocations whose responses arrive with the next round's inbox.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set

from ..crypto.prf import Rng
from ..functionalities.base import AdversaryHandle, FunctionalityRegistry
from .adversary import Adversary, CorruptedParty, RoundInterface
from .faults import ANNOTATION_DROPPED, ANNOTATION_DUPLICATE, EngineFaults
from .messages import ABORT, Inbox, Message
from .party import HonestRunner, OutputRecord


class ProtocolViolation(RuntimeError):
    """An honest machine failed to output by the protocol's round bound.

    Raised only when no engine faults are active: under a lossless network
    a hung honest party is a protocol bug and must be loud.  When fault
    injection is enabled the engine instead records the party in
    :attr:`ExecutionResult.hung` (classified downstream as
    ``HONEST_HUNG``).  The finished :class:`ExecutionResult` is attached to
    the exception as ``exc.result`` so batch runners can still classify
    the run instead of losing the whole chunk.
    """

    def __init__(self, message: str, result: "ExecutionResult" = None):
        super().__init__(message)
        self.result = result


@dataclass
class ExecutionResult:
    """Everything the analysis layer needs about one finished execution."""

    protocol_name: str
    n: int
    inputs: tuple
    outputs: Dict[int, OutputRecord]
    corrupted: Set[int]
    adversary_claim: Optional[object]
    rounds_used: int
    transcript: List[Message] = field(default_factory=list)
    adversary_log: List[object] = field(default_factory=list)
    crashed: Set[int] = field(default_factory=set)
    hung: Set[int] = field(default_factory=set)
    fault_events: Dict[str, int] = field(default_factory=dict)

    @property
    def honest(self) -> Set[int]:
        return set(range(self.n)) - self.corrupted

    @property
    def surviving_honest(self) -> Set[int]:
        """Honest parties that did not crash-stop.

        Fairness is assessed over these, following the fail-stop
        convention: a crashed party is a casualty of the fault model, not a
        participant whose (missing) output the adversary exploited.
        """
        return self.honest - self.crashed

    @property
    def honest_outputs(self) -> Dict[int, OutputRecord]:
        return {i: rec for i, rec in self.outputs.items() if i in self.honest}

    def all_honest_received(self) -> bool:
        """Did every surviving honest party produce a non-⊥ output?

        A hung party (in :attr:`hung`, hence absent from ``outputs``) makes
        this ``False`` — it must not be silently skipped.
        """
        surviving = self.surviving_honest
        if not surviving:
            return False
        return all(
            i in self.outputs and not self.outputs[i].is_abort
            for i in surviving
        )


class Execution:
    """One protocol execution against one adversary."""

    def __init__(
        self,
        protocol,
        inputs: Sequence,
        adversary: Adversary,
        rng: Rng,
        faults: Optional[EngineFaults] = None,
    ):
        if len(inputs) != protocol.n_parties:
            raise ValueError(
                f"{protocol.name} needs {protocol.n_parties} inputs, "
                f"got {len(inputs)}"
            )
        self.protocol = protocol
        self.inputs = tuple(inputs)
        self.adversary = adversary
        self.n = protocol.n_parties
        self.rng = rng

        self.functionalities = FunctionalityRegistry(
            protocol.build_functionalities(rng.fork("functionalities"))
        )
        machines = protocol.build_machines(rng.fork("machines"))
        if len(machines) != self.n:
            raise ValueError("protocol built wrong number of machines")
        self.runners: List[HonestRunner] = [
            HonestRunner(m, rng.fork(f"party-{i}"), protocol.max_rounds)
            for i, m in enumerate(machines)
        ]

        self.corrupted: Set[int] = set()
        self.adversary_claim: Optional[object] = None
        self.transcript: List[Message] = []
        self.adversary_log: List[object] = []

        # Fault injection.  ``faults_active`` gates every new code path so
        # the zero-fault execution is bit-identical to the historical one.
        self.faults = faults if faults is not None else EngineFaults()
        self.faults_active = self.faults.active
        self._channel = self.faults.channel if self.faults_active else None
        if self._channel is not None and not self._channel.active:
            self._channel = None
        self.crashed: Set[int] = set()
        self._failed: Set[int] = set()
        self._crash_rounds: Dict[int, int] = {}
        if self.faults_active and self.faults.party is not None:
            for i in range(self.n):
                crash = self.faults.party.crash_round(i, protocol.max_rounds)
                if crash is not None:
                    self._crash_rounds[i] = crash
        # Delayed messages in flight: delivery-phase round → messages that
        # land in the inboxes built during that round.
        self._delayed: Dict[int, List[Message]] = {}
        self.fault_events: Dict[str, int] = {}

        # Per-round state the RoundInterface reads.
        self.current_inboxes: Dict[int, Inbox] = {}
        self.pending_honest_messages: List[Message] = []

    # -- corruption ---------------------------------------------------------
    def corrupt_party(self, index: int) -> CorruptedParty:
        if not 0 <= index < self.n:
            raise ValueError(f"no such party: {index}")
        if index in self.corrupted:
            raise ValueError(f"party {index} is already corrupted")
        self.corrupted.add(index)
        runner = self.runners[index]
        party = CorruptedParty(index, runner.view, runner)
        self.adversary.on_corrupt(party)
        return party

    # -- main loop ----------------------------------------------------------
    def run(self) -> ExecutionResult:
        # Input distribution (the environment's move).
        for i, runner in enumerate(self.runners):
            runner.give_input(self.inputs[i])

        # Static corruptions: the adversary sees the corrupted inputs.
        for i in sorted(self.adversary.initial_corruptions(self.n)):
            self.corrupt_party(i)

        inboxes: Dict[int, Inbox] = {i: Inbox() for i in range(self.n)}
        rounds_used = 0

        for round_no in range(self.protocol.max_rounds):
            self.current_inboxes = inboxes
            self.pending_honest_messages = []
            honest_func_inputs: Dict[str, Dict[int, object]] = {}

            # 1. Honest parties act on this round's inbox.
            for i, runner in enumerate(self.runners):
                if i in self.corrupted:
                    continue
                if (
                    i in self._crash_rounds
                    and round_no >= self._crash_rounds[i]
                ):
                    # Crash-stop: the party halts silently — no stepping,
                    # no messages, no functionality calls, ever again.
                    if i not in self.crashed:
                        self.crashed.add(i)
                        self._count_fault("crashes")
                    continue
                if i in self._failed:
                    continue
                if self.faults_active:
                    # A machine stepping on a fault-mangled inbox may fail
                    # in ways the protocol author never had to consider
                    # (missing shares, malformed payloads).  Graceful
                    # degradation: treat the error as the party detecting a
                    # broken execution; it gets its fallback output at the
                    # round bound instead of killing the whole run.
                    try:
                        ctx = runner.step(round_no, inboxes[i])
                    except Exception:
                        self._failed.add(i)
                        self._count_fault("step_errors")
                        continue
                else:
                    ctx = runner.step(round_no, inboxes[i])
                self.pending_honest_messages.extend(ctx.outgoing)
                for fname, payload in ctx.func_calls.items():
                    honest_func_inputs.setdefault(fname, {})[i] = payload

            # 2. Rushing adversary observes and acts.
            iface = RoundInterface(self, round_no)
            self.adversary.on_round(iface)
            self._log_adversary_view(iface)

            # 3. Hybrid functionality invocations.
            next_inboxes: Dict[int, Inbox] = {i: Inbox() for i in range(self.n)}
            func_inputs = dict(honest_func_inputs)
            for fname, per_party in iface.func_inputs.items():
                func_inputs.setdefault(fname, {}).update(per_party)
            for fname, submitted in func_inputs.items():
                functionality = self.functionalities.get(fname)
                handle = AdversaryHandle(self.adversary, fname, self.corrupted)
                responses = functionality.invoke(
                    submitted, handle, self.rng.fork(f"{fname}@{round_no}"), self.n
                )
                for i, payload in responses.items():
                    msg = Message(fname, i, payload, round_no)
                    next_inboxes[i].add(msg)
                    self.transcript.append(msg)
                    if i in self.corrupted:
                        self.adversary_log.append(("func-response", fname, payload))

            # 4. Message delivery.  Only party-originated traffic crosses
            #    the (possibly faulty) network; functionality responses in
            #    step 3 model ideal computation and are never faulted.
            if self._channel is None:
                for msg in self.pending_honest_messages + iface.outgoing:
                    self.transcript.append(msg)
                    if msg.broadcast:
                        for i in range(self.n):
                            if i != msg.sender:
                                next_inboxes[i].add(msg)
                    else:
                        next_inboxes[msg.receiver].add(msg)
            else:
                self._deliver_faulty(round_no, next_inboxes, iface.outgoing)

            inboxes = next_inboxes
            rounds_used = round_no + 1

            # 5. Early termination once every surviving honest party has
            #    output and no functionality responses are still
            #    undelivered.  With every party corrupted there is no
            #    honest output to wait for, but ``all`` over the empty set
            #    would be vacuously True and end the execution at round 1
            #    regardless of protocol logic — instead the adversary keeps
            #    its full round bound.  A delayed message still in flight
            #    also blocks the exit until it lands or is dropped.
            honest = [
                i
                for i in range(self.n)
                if i not in self.corrupted and i not in self.crashed
            ]
            honest_done = bool(honest) and all(
                self.runners[i].output is not None for i in honest
            )
            pending_delivery = (
                any(len(inboxes[i]) for i in range(self.n))
                or bool(self._delayed)
            )
            if honest_done and not pending_delivery:
                break

        # Final adversary hook: it may read the last delivered inboxes
        # (e.g. the final reconstruction message addressed to a corrupted
        # party) and place its output claim.
        self.current_inboxes = inboxes
        self.pending_honest_messages = []
        final_iface = RoundInterface(self, rounds_used)
        self.adversary.finish(final_iface)
        self._log_adversary_view(final_iface)

        outputs: Dict[int, OutputRecord] = {}
        missing = []
        for i, runner in enumerate(self.runners):
            if i in self.corrupted:
                continue
            if (
                runner.output is None
                and self.faults_active
                and i not in self.crashed
            ):
                # Graceful degradation: the party detected at the round
                # bound that its prescribed flow stalled (an expected
                # message never arrived) and takes its protocol's
                # default-output path instead of hanging.
                try:
                    runner.finish_fallback()
                except Exception:
                    self._count_fault("fallback_errors")
            if runner.output is not None:
                outputs[i] = runner.output
            elif i not in self.crashed:
                missing.append(i)

        result = ExecutionResult(
            protocol_name=self.protocol.name,
            n=self.n,
            inputs=self.inputs,
            outputs=outputs,
            corrupted=set(self.corrupted),
            adversary_claim=self.adversary_claim,
            rounds_used=rounds_used,
            transcript=self.transcript,
            adversary_log=self.adversary_log,
            crashed=set(self.crashed),
            hung=set(missing),
            fault_events=dict(self.fault_events),
        )
        if missing and not self.faults_active:
            # Under a lossless network this is a protocol bug: be loud.
            # With faults active the hung set is data, not an error — it
            # surfaces downstream as a classified HONEST_HUNG event.
            raise ProtocolViolation(
                f"honest parties {missing} never produced an output "
                f"within {self.protocol.max_rounds} rounds of "
                f"{self.protocol.name}",
                result=result,
            )
        return result

    # -- faulty delivery ----------------------------------------------------
    def _count_fault(self, kind: str) -> None:
        self.fault_events[kind] = self.fault_events.get(kind, 0) + 1

    def _deliver_faulty(
        self,
        round_no: int,
        next_inboxes: Dict[int, Inbox],
        adversary_outgoing: List[Message],
    ) -> None:
        """Step 4 under an active :class:`ChannelFaultModel`.

        Every delivery *attempt* gets exactly one transcript entry:
        delivered copies unannotated (or ``"duplicate"`` for the extra
        copy), lost ones ``"dropped"``, late ones ``"delayed+k"`` — so a
        trace replay sees each attempt once, with its fate.
        """
        channel = self._channel
        # Delayed messages landing this round were logged (annotated) when
        # the fault was rolled; they join the inboxes without a new entry.
        for msg in self._delayed.pop(round_no, []):
            next_inboxes[msg.receiver].add(msg)
        for msg_index, msg in enumerate(
            self.pending_honest_messages + adversary_outgoing
        ):
            if msg.broadcast:
                self._deliver_broadcast(round_no, msg, msg_index, next_inboxes)
                continue
            decision = channel.bilateral(
                round_no, msg.sender, msg.receiver, msg_index
            )
            if decision.action == "drop":
                self.transcript.append(
                    replace(msg, annotation=ANNOTATION_DROPPED)
                )
                self._count_fault("dropped")
            elif decision.action == "delay":
                land = round_no + decision.delay
                if land > self.protocol.max_rounds - 1:
                    # The delay overshoots the round bound — the message
                    # can never land, indistinguishable from a drop.
                    self.transcript.append(
                        replace(msg, annotation=ANNOTATION_DROPPED)
                    )
                    self._count_fault("dropped")
                else:
                    delayed = replace(
                        msg, annotation=f"delayed+{decision.delay}"
                    )
                    self.transcript.append(delayed)
                    self._delayed.setdefault(land, []).append(delayed)
                    self._count_fault("delayed")
            else:
                self.transcript.append(msg)
                next_inboxes[msg.receiver].add(msg)
                for _ in range(decision.copies - 1):
                    dup = replace(msg, annotation=ANNOTATION_DUPLICATE)
                    self.transcript.append(dup)
                    next_inboxes[msg.receiver].add(dup)
                    self._count_fault("duplicated")

    def _deliver_broadcast(
        self,
        round_no: int,
        msg: Message,
        msg_index: int,
        next_inboxes: Dict[int, Inbox],
    ) -> None:
        """Per-receiver broadcast attempts under an active channel model.

        The channel stays non-equivocating — every receiver that hears the
        broadcast hears the same payload — but individual receivers can
        miss it.  Each attempt is logged with its concrete receiver so a
        replay knows exactly who saw it.
        """
        for i in range(self.n):
            if i == msg.sender:
                continue
            decision = self._channel.broadcast(
                round_no, msg.sender, i, msg_index
            )
            attempt = replace(msg, receiver=i)
            if decision.action == "drop":
                self.transcript.append(
                    replace(attempt, annotation=ANNOTATION_DROPPED)
                )
                self._count_fault("broadcast_dropped")
            else:
                self.transcript.append(attempt)
                next_inboxes[i].add(attempt)

    def _log_adversary_view(self, iface: RoundInterface) -> None:
        """Record what the adversary could see this round (privacy analysis)."""
        for m in iface.rushing_messages():
            self.adversary_log.append(("msg", m.sender, m.receiver, m.payload))


def run_execution(
    protocol,
    inputs,
    adversary,
    rng: Rng,
    faults: Optional[EngineFaults] = None,
) -> ExecutionResult:
    """Convenience wrapper: build and run a single execution."""
    return Execution(protocol, inputs, adversary, rng, faults=faults).run()
