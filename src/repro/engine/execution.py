"""The synchronous execution scheduler.

Implements the model of DESIGN.md §4: synchronous rounds over secure
bilateral channels and a non-equivocating broadcast channel, a rushing
adversary with adaptive corruptions, and single-round hybrid functionality
invocations whose responses arrive with the next round's inbox.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..crypto.prf import Rng
from ..functionalities.base import AdversaryHandle, FunctionalityRegistry
from .adversary import Adversary, CorruptedParty, RoundInterface
from .messages import ABORT, Inbox, Message
from .party import HonestRunner, OutputRecord


class ProtocolViolation(RuntimeError):
    """An honest machine failed to output by the protocol's round bound."""


@dataclass
class ExecutionResult:
    """Everything the analysis layer needs about one finished execution."""

    protocol_name: str
    n: int
    inputs: tuple
    outputs: Dict[int, OutputRecord]
    corrupted: Set[int]
    adversary_claim: Optional[object]
    rounds_used: int
    transcript: List[Message] = field(default_factory=list)
    adversary_log: List[object] = field(default_factory=list)

    @property
    def honest(self) -> Set[int]:
        return set(range(self.n)) - self.corrupted

    @property
    def honest_outputs(self) -> Dict[int, OutputRecord]:
        return {i: rec for i, rec in self.outputs.items() if i in self.honest}

    def all_honest_received(self) -> bool:
        """Did every honest party produce a non-⊥ output?"""
        if not self.honest:
            return False
        return all(
            not rec.is_abort for rec in self.honest_outputs.values()
        )


class Execution:
    """One protocol execution against one adversary."""

    def __init__(
        self,
        protocol,
        inputs: Sequence,
        adversary: Adversary,
        rng: Rng,
    ):
        if len(inputs) != protocol.n_parties:
            raise ValueError(
                f"{protocol.name} needs {protocol.n_parties} inputs, "
                f"got {len(inputs)}"
            )
        self.protocol = protocol
        self.inputs = tuple(inputs)
        self.adversary = adversary
        self.n = protocol.n_parties
        self.rng = rng

        self.functionalities = FunctionalityRegistry(
            protocol.build_functionalities(rng.fork("functionalities"))
        )
        machines = protocol.build_machines(rng.fork("machines"))
        if len(machines) != self.n:
            raise ValueError("protocol built wrong number of machines")
        self.runners: List[HonestRunner] = [
            HonestRunner(m, rng.fork(f"party-{i}"), protocol.max_rounds)
            for i, m in enumerate(machines)
        ]

        self.corrupted: Set[int] = set()
        self.adversary_claim: Optional[object] = None
        self.transcript: List[Message] = []
        self.adversary_log: List[object] = []

        # Per-round state the RoundInterface reads.
        self.current_inboxes: Dict[int, Inbox] = {}
        self.pending_honest_messages: List[Message] = []

    # -- corruption ---------------------------------------------------------
    def corrupt_party(self, index: int) -> CorruptedParty:
        if not 0 <= index < self.n:
            raise ValueError(f"no such party: {index}")
        if index in self.corrupted:
            raise ValueError(f"party {index} is already corrupted")
        self.corrupted.add(index)
        runner = self.runners[index]
        party = CorruptedParty(index, runner.view, runner)
        self.adversary.on_corrupt(party)
        return party

    # -- main loop ----------------------------------------------------------
    def run(self) -> ExecutionResult:
        # Input distribution (the environment's move).
        for i, runner in enumerate(self.runners):
            runner.give_input(self.inputs[i])

        # Static corruptions: the adversary sees the corrupted inputs.
        for i in sorted(self.adversary.initial_corruptions(self.n)):
            self.corrupt_party(i)

        inboxes: Dict[int, Inbox] = {i: Inbox() for i in range(self.n)}
        rounds_used = 0

        for round_no in range(self.protocol.max_rounds):
            self.current_inboxes = inboxes
            self.pending_honest_messages = []
            honest_func_inputs: Dict[str, Dict[int, object]] = {}

            # 1. Honest parties act on this round's inbox.
            for i, runner in enumerate(self.runners):
                if i in self.corrupted:
                    continue
                ctx = runner.step(round_no, inboxes[i])
                self.pending_honest_messages.extend(ctx.outgoing)
                for fname, payload in ctx.func_calls.items():
                    honest_func_inputs.setdefault(fname, {})[i] = payload

            # 2. Rushing adversary observes and acts.
            iface = RoundInterface(self, round_no)
            self.adversary.on_round(iface)
            self._log_adversary_view(iface)

            # 3. Hybrid functionality invocations.
            next_inboxes: Dict[int, Inbox] = {i: Inbox() for i in range(self.n)}
            func_inputs = dict(honest_func_inputs)
            for fname, per_party in iface.func_inputs.items():
                func_inputs.setdefault(fname, {}).update(per_party)
            for fname, submitted in func_inputs.items():
                functionality = self.functionalities.get(fname)
                handle = AdversaryHandle(self.adversary, fname, self.corrupted)
                responses = functionality.invoke(
                    submitted, handle, self.rng.fork(f"{fname}@{round_no}"), self.n
                )
                for i, payload in responses.items():
                    msg = Message(fname, i, payload, round_no)
                    next_inboxes[i].add(msg)
                    self.transcript.append(msg)
                    if i in self.corrupted:
                        self.adversary_log.append(("func-response", fname, payload))

            # 4. Message delivery.
            for msg in self.pending_honest_messages + iface.outgoing:
                self.transcript.append(msg)
                if msg.broadcast:
                    for i in range(self.n):
                        if i != msg.sender:
                            next_inboxes[i].add(msg)
                else:
                    next_inboxes[msg.receiver].add(msg)

            inboxes = next_inboxes
            rounds_used = round_no + 1

            # 5. Early termination once every honest party has output and no
            #    functionality responses are still undelivered.  With every
            #    party corrupted there is no honest output to wait for, but
            #    ``all`` over the empty set would be vacuously True and end
            #    the execution at round 1 regardless of protocol logic —
            #    instead the adversary keeps its full round bound.
            honest = [i for i in range(self.n) if i not in self.corrupted]
            honest_done = bool(honest) and all(
                self.runners[i].output is not None for i in honest
            )
            pending_delivery = any(len(inboxes[i]) for i in range(self.n))
            if honest_done and not pending_delivery:
                break

        # Final adversary hook: it may read the last delivered inboxes
        # (e.g. the final reconstruction message addressed to a corrupted
        # party) and place its output claim.
        self.current_inboxes = inboxes
        self.pending_honest_messages = []
        final_iface = RoundInterface(self, rounds_used)
        self.adversary.finish(final_iface)
        self._log_adversary_view(final_iface)

        outputs: Dict[int, OutputRecord] = {}
        missing = []
        for i, runner in enumerate(self.runners):
            if i in self.corrupted:
                continue
            if runner.output is None:
                missing.append(i)
            else:
                outputs[i] = runner.output
        if missing:
            raise ProtocolViolation(
                f"honest parties {missing} never produced an output "
                f"within {self.protocol.max_rounds} rounds of "
                f"{self.protocol.name}"
            )

        return ExecutionResult(
            protocol_name=self.protocol.name,
            n=self.n,
            inputs=self.inputs,
            outputs=outputs,
            corrupted=set(self.corrupted),
            adversary_claim=self.adversary_claim,
            rounds_used=rounds_used,
            transcript=self.transcript,
            adversary_log=self.adversary_log,
        )

    def _log_adversary_view(self, iface: RoundInterface) -> None:
        """Record what the adversary could see this round (privacy analysis)."""
        for m in iface.rushing_messages():
            self.adversary_log.append(("msg", m.sender, m.receiver, m.payload))


def run_execution(protocol, inputs, adversary, rng: Rng) -> ExecutionResult:
    """Convenience wrapper: build and run a single execution."""
    return Execution(protocol, inputs, adversary, rng).run()
