"""Message and inbox types for the synchronous execution model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union


class _Abort:
    """Singleton sentinel for the ⊥ (abort) value."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "⊥"

    def __deepcopy__(self, memo):
        return self

    def __copy__(self):
        return self


#: The distinguished ⊥ value: honest parties output it on unfair aborts, and
#: hybrid functionality calls return it when the call was aborted.
ABORT = _Abort()


@dataclass(frozen=True)
class Message:
    """A single point-to-point or broadcast message.

    ``sender`` is a party index, or a string for functionality responses
    (the functionality's name).  ``receiver`` is a party index, or ``None``
    for a broadcast.

    ``annotation`` is set only by the engine's fault layer when it logs a
    delivery *attempt* in the transcript: ``"dropped"`` (never arrived),
    ``"delayed+k"`` (arrived ``k`` rounds late), or ``"duplicate"`` (an
    extra delivered copy).  Faulted broadcast attempts are logged with the
    concrete ``receiver`` they were addressed to, so a transcript replay
    can tell which parties actually saw the broadcast.
    """

    sender: Union[int, str]
    receiver: Optional[int]
    payload: object
    round: int
    broadcast: bool = False
    annotation: Optional[str] = None

    @property
    def delivered(self) -> bool:
        """Did this transcript entry reach its receiver's inbox?

        Dropped attempts never arrive; delayed ones do, eventually (the
        engine drops — and re-annotates — a delay that would overshoot the
        round bound, so a ``delayed+k`` entry always landed).
        """
        return self.annotation != "dropped"

    def is_from_party(self, index: int) -> bool:
        return self.sender == index

    def is_from_functionality(self, name: str) -> bool:
        return self.sender == name


@dataclass
class Inbox:
    """All messages delivered to one party at the start of a round."""

    messages: List[Message] = field(default_factory=list)

    def add(self, message: Message) -> None:
        self.messages.append(message)

    def from_party(self, index: int) -> List[object]:
        """Payloads of point-to-point/broadcast messages from party ``index``."""
        return [m.payload for m in self.messages if m.sender == index]

    def one_from_party(self, index: int):
        """The unique payload from ``index``, or ``None`` if absent.

        A silent (aborting) corrupted party simply produces no message, so
        ``None`` is the "nothing arrived" signal honest machines branch on.
        """
        payloads = self.from_party(index)
        if not payloads:
            return None
        return payloads[0]

    def from_functionality(self, name: str):
        """The response payload from hybrid functionality ``name``, if any."""
        payloads = [
            m.payload for m in self.messages if m.sender == name
        ]
        if not payloads:
            return None
        return payloads[0]

    def broadcasts(self) -> List[Message]:
        return [m for m in self.messages if m.broadcast]

    def __iter__(self):
        return iter(self.messages)

    def __len__(self):
        return len(self.messages)
