"""Execution-trace rendering: human-readable transcripts for debugging.

``render_transcript`` turns an :class:`ExecutionResult` into a round-by-
round text log (senders, receivers, payload summaries, outputs, events);
``summarize_payload`` keeps crypto blobs readable.  Used by the test suite
for failure diagnostics and handy in a REPL::

    from repro.engine.trace import render_transcript
    print(render_transcript(result))
"""

from __future__ import annotations

from typing import List

from .execution import ExecutionResult
from .messages import ABORT, Message

_MAX_PAYLOAD_CHARS = 48


def summarize_payload(payload) -> str:
    """A short, stable, human-readable payload description."""
    if payload is ABORT:
        return "⊥"
    if isinstance(payload, bytes):
        return f"bytes[{len(payload)}]:{payload[:4].hex()}…"
    if isinstance(payload, tuple):
        inner = ", ".join(summarize_payload(p) for p in payload[:4])
        suffix = ", …" if len(payload) > 4 else ""
        return f"({inner}{suffix})"
    if isinstance(payload, dict):
        return f"dict[{len(payload)}]"
    text = repr(payload)
    if len(text) > _MAX_PAYLOAD_CHARS:
        head = text[: _MAX_PAYLOAD_CHARS - 1]
        return head + "…"
    return text


def describe_message(message: Message) -> str:
    sender = (
        f"p{message.sender}"
        if isinstance(message.sender, int)
        else str(message.sender)
    )
    if message.broadcast and message.receiver is None:
        target = "∗"
    elif message.broadcast:
        # A per-receiver broadcast delivery attempt logged by the fault
        # layer: show both the broadcast nature and the concrete receiver.
        target = f"∗p{message.receiver}"
    elif message.receiver is None:
        target = "?"
    else:
        target = f"p{message.receiver}"
    line = f"{sender} → {target}: {summarize_payload(message.payload)}"
    if message.annotation is not None:
        line += f" [{message.annotation}]"
    return line


def render_transcript(result: ExecutionResult, max_rounds: int = None) -> str:
    """Round-by-round text rendering of an execution."""
    lines: List[str] = [
        f"execution of {result.protocol_name} "
        f"(n={result.n}, corrupted={sorted(result.corrupted) or '∅'})",
        f"inputs: {summarize_payload(result.inputs)}",
    ]
    by_round = {}
    for message in result.transcript:
        by_round.setdefault(message.round, []).append(message)
    for round_no in sorted(by_round):
        if max_rounds is not None and round_no >= max_rounds:
            lines.append(f"… ({len(by_round)} rounds total)")
            break
        lines.append(f"round {round_no}:")
        for message in by_round[round_no]:
            lines.append(f"  {describe_message(message)}")
    lines.append("outputs:")
    for i in sorted(result.outputs):
        record = result.outputs[i]
        lines.append(
            f"  p{i}: {summarize_payload(record.value)} [{record.kind}]"
        )
    if result.adversary_claim is not None:
        lines.append(
            f"adversary claim: {summarize_payload(result.adversary_claim)}"
        )
    if result.crashed:
        lines.append(f"crashed: {sorted(result.crashed)}")
    if result.hung:
        lines.append(f"hung: {sorted(result.hung)}")
    if result.fault_events:
        summary = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(result.fault_events.items())
        )
        lines.append(f"fault events: {summary}")
    lines.append(f"rounds used: {result.rounds_used}")
    return "\n".join(lines)
