"""The adversary interface of the execution model.

The adversary is *rushing* and may corrupt parties *adaptively*: in every
round it first observes all honest messages addressed to corrupted parties
(and all broadcasts), then decides the corrupted parties' own messages for
the same round, may corrupt further parties (receiving their full view and
live machine), abort, or keep playing.

Concrete strategies live in :mod:`repro.adversaries`; this module defines
the engine-facing contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from .messages import Inbox, Message
from .party import HonestRunner, PartyView


@dataclass
class CorruptedParty:
    """What the adversary receives upon corrupting a party."""

    index: int
    view: PartyView
    runner: HonestRunner


class RoundInterface:
    """Everything the adversary may observe and do in one round."""

    def __init__(self, execution, round_no: int):
        self._execution = execution
        self.round = round_no
        self.outgoing: List[Message] = []
        self.func_inputs: Dict[str, Dict[int, object]] = {}

    # -- observation --------------------------------------------------------
    @property
    def n(self) -> int:
        return self._execution.n

    @property
    def corrupted(self) -> Set[int]:
        return set(self._execution.corrupted)

    @property
    def honest(self) -> Set[int]:
        return set(range(self.n)) - self.corrupted

    def inbox(self, index: int) -> Inbox:
        """Messages delivered to corrupted party ``index`` this round."""
        if index not in self._execution.corrupted:
            raise PermissionError("can only read corrupted parties' inboxes")
        return self._execution.current_inboxes[index]

    def rushing_messages(self) -> List[Message]:
        """Honest round-``round`` messages to corrupted parties + broadcasts.

        These are observed *before* the adversary commits the corrupted
        parties' round-``round`` messages — the rushing advantage.
        """
        out = []
        for m in self._execution.pending_honest_messages:
            if m.broadcast or m.receiver in self._execution.corrupted:
                out.append(m)
        return out

    # -- control ------------------------------------------------------------
    def corrupt(self, index: int) -> CorruptedParty:
        """Adaptively corrupt party ``index``; returns its view and machine."""
        return self._execution.corrupt_party(index)

    def send(self, sender: int, to: int, payload) -> None:
        """Send a message from corrupted party ``sender``."""
        self._require_corrupted(sender)
        if not 0 <= to < self.n:
            raise ValueError(f"no such party: {to}")
        self.outgoing.append(Message(sender, to, payload, self.round))

    def broadcast(self, sender: int, payload) -> None:
        self._require_corrupted(sender)
        self.outgoing.append(
            Message(sender, None, payload, self.round, broadcast=True)
        )

    def call_functionality(self, sender: int, name: str, payload) -> None:
        """Submit corrupted party ``sender``'s input to a hybrid call."""
        self._require_corrupted(sender)
        self.func_inputs.setdefault(name, {})[sender] = payload

    def claim_output(self, value) -> None:
        """Record that the adversary extracted (what it believes is) the
        corrupted parties' protocol output.

        The engine verifies claims against the true function value when
        classifying fairness events — a wrong claim never counts as
        "the adversary learned the output".
        """
        self._execution.adversary_claim = value

    def _require_corrupted(self, index: int) -> None:
        if index not in self._execution.corrupted:
            raise PermissionError(
                f"party {index} is not corrupted; corrupt it first"
            )


class Adversary:
    """Base adversary: does nothing (no corruptions, honest execution).

    Subclasses override the hooks they need.  ``claimed`` may be set via
    ``RoundInterface.claim_output``.
    """

    #: human-readable strategy name used in reports
    name = "null"

    def initial_corruptions(self, n: int) -> Set[int]:
        """Statically corrupted parties (before inputs are distributed)."""
        return set()

    def on_corrupt(self, party: CorruptedParty) -> None:
        """Called whenever a corruption completes (static or adaptive)."""

    def on_round(self, iface: RoundInterface) -> None:
        """Play one round.  Default: corrupted parties stay silent."""

    def on_functionality_query(self, fname: str, query: str, data):
        """Answer a functionality's question.

        The default plays "honestly": deliver outputs, never abort.
        """
        if query == "request-outputs?":
            return True
        if query == "abort?":
            return False
        return None

    def on_functionality_notify(self, fname: str, event: str, data) -> None:
        """Observe leaked information from a functionality."""

    def finish(self, iface: Optional[RoundInterface] = None) -> None:
        """Called once after the last round (bookkeeping hook)."""
