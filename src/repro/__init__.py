"""repro — utility-based protocol fairness.

A full Python reproduction of Garay, Katz, Tackmann, Zikas:
*"How Fair is Your Protocol? A Utility-based Approach to Protocol
Optimality"* (PODC 2015): the RPD-based fairness framework, optimally fair
two-party and multi-party SFE, utility-balanced fairness with corruption
costs, and the comparison with Gordon–Katz 1/p-security — together with
every substrate the constructions depend on (a synchronous execution model
with rushing/adaptive adversaries, hash-based crypto primitives, GMW over
boolean circuits in the OT-hybrid model, and the relaxed SFE
functionalities).

Quickstart::

    from repro import quick_compare
    print(quick_compare())

See README.md for the architecture tour and DESIGN.md for the paper-to-code
mapping.
"""

from . import (
    adversaries,
    analysis,
    circuits,
    core,
    crypto,
    engine,
    functionalities,
    functions,
    gmw,
    protocols,
    runtime,
)
from .core import STANDARD_GAMMA, FairnessEvent, PayoffVector

__version__ = "1.0.0"


def quick_compare(n_runs: int = 300, seed: int = 7) -> str:
    """The paper's opening example, end to end: is Π2 fairer than Π1?"""
    from .adversaries import LockWatchingAborter, fixed
    from .analysis import assess_protocol, build_order
    from .core import monte_carlo_tolerance
    from .protocols import CoinOrderedContractSigning, NaiveContractSigning

    strategies = [
        fixed("lock-watch[0]", lambda: LockWatchingAborter({0})),
        fixed("lock-watch[1]", lambda: LockWatchingAborter({1})),
    ]
    assessments = [
        assess_protocol(protocol, strategies, STANDARD_GAMMA, n_runs, seed)
        for protocol in (NaiveContractSigning(), CoinOrderedContractSigning())
    ]
    order = build_order(assessments, monte_carlo_tolerance(n_runs))
    return order.render()


__all__ = [
    "adversaries",
    "analysis",
    "circuits",
    "core",
    "crypto",
    "engine",
    "functionalities",
    "functions",
    "gmw",
    "protocols",
    "STANDARD_GAMMA",
    "FairnessEvent",
    "PayoffVector",
    "quick_compare",
    "__version__",
]
