"""Failure injection: malicious garbage against every protocol.

The paper's definitions guarantee (except with negligible probability)
privacy and *correctness*: whatever a malicious party injects, an honest
party's non-⊥ output is either the true function value or a legitimate
default-input evaluation — never an attacker-chosen value.  We bombard
every protocol with malformed payloads at every round and assert exactly
that invariant.
"""

import pytest


from repro.crypto import Rng
from repro.engine import Adversary, run_execution
from repro.engine.party import OUTPUT_DEFAULT
from repro.functions import make_and, make_concat, make_contract_exchange, make_swap
from repro.gmw import ThresholdGmwProtocol, gmw_from_spec
from repro.protocols import (
    CoinOrderedContractSigning,
    GordonKatzProtocol,
    NaiveContractSigning,
    Opt2SfeProtocol,
    OptNSfeProtocol,
    SingleRoundProtocol,
    UnbalancedOptProtocol,
)

GARBAGE = [
    None,
    "garbage-string",
    12345,
    ("tuple", "of", "junk"),
    (b"\x00" * 16, b"\xff" * 16),
    ("vss-share", "not-a-share"),
    ("opt-nsfe-output", ("forged", "sig")),
    ("gmw-input-shares", {0: 2}),
]


class GarbageSprayer(Adversary):
    """Corrupts a set of parties and sends a garbage payload to every
    honest party (and broadcast) in a chosen round, silence otherwise."""

    def __init__(self, corrupt, round_no, payload):
        self._corrupt = set(corrupt)
        self.round_no = round_no
        self.payload = payload

    def initial_corruptions(self, n):
        return set(self._corrupt)

    def on_round(self, iface):
        if iface.round != self.round_no:
            return
        for i in self._corrupt:
            for j in range(iface.n):
                if j not in self._corrupt:
                    iface.send(i, j, self.payload)
            iface.broadcast(i, self.payload)


def substituted_outputs(protocol, inputs, corrupted):
    """f with the corrupted positions replaced by default inputs — the
    ideal-world outcome when corrupted parties refuse to provide input."""
    substituted = list(inputs)
    for i in corrupted:
        substituted[i] = protocol.func.default_inputs[i]
    return protocol.func.outputs_for(tuple(substituted))


def assert_honest_outputs_sound(protocol, inputs, result):
    """Each honest output is ⊥, a default evaluation, the true value, or
    the value under ideal-world default substitution of corrupted inputs —
    never an attacker-chosen one."""
    true_outputs = protocol.func.outputs_for(inputs)
    defaulted = substituted_outputs(protocol, inputs, result.corrupted)
    for i, rec in result.outputs.items():
        if rec.is_abort or rec.kind == OUTPUT_DEFAULT:
            continue
        if protocol.classify_result(result) is not None:
            # Randomized-abort protocols legitimately output fakes.
            continue
        assert rec.value in (true_outputs[i], defaulted[i]), (
            f"{protocol.name}: honest p{i} output {rec.value!r}, "
            f"expected {true_outputs[i]!r} or {defaulted[i]!r}"
        )


def spray_protocol(protocol, inputs, corrupt, rounds_to_try):
    for round_no in rounds_to_try:
        for payload in GARBAGE:
            adversary = GarbageSprayer(corrupt, round_no, payload)
            result = run_execution(
                protocol,
                inputs,
                adversary,
                Rng(("spray", protocol.name, round_no, str(payload))),
            )
            assert_honest_outputs_sound(protocol, inputs, result)


class TestTwoPartyProtocols:
    @pytest.mark.parametrize("corrupt", [0, 1])
    def test_opt2sfe(self, corrupt):
        protocol = Opt2SfeProtocol(make_swap(16))
        spray_protocol(protocol, (3, 9), {corrupt}, range(protocol.max_rounds))

    @pytest.mark.parametrize("corrupt", [0, 1])
    def test_single_round(self, corrupt):
        protocol = SingleRoundProtocol(make_swap(16))
        spray_protocol(protocol, (3, 9), {corrupt}, range(protocol.max_rounds))

    @pytest.mark.parametrize("corrupt", [0, 1])
    def test_naive_contract(self, corrupt):
        protocol = NaiveContractSigning(make_contract_exchange(16))
        spray_protocol(protocol, (3, 9), {corrupt}, range(protocol.max_rounds))

    @pytest.mark.parametrize("corrupt", [0, 1])
    def test_coin_contract(self, corrupt):
        protocol = CoinOrderedContractSigning(make_contract_exchange(16))
        spray_protocol(protocol, (3, 9), {corrupt}, range(protocol.max_rounds))

    @pytest.mark.parametrize("corrupt", [0, 1])
    def test_gordon_katz_early_rounds(self, corrupt):
        protocol = GordonKatzProtocol(make_and(), p=2)
        spray_protocol(protocol, (1, 1), {corrupt}, range(0, 6))

    @pytest.mark.parametrize("corrupt", [0, 1])
    def test_gmw(self, corrupt):
        protocol = gmw_from_spec(make_and(), [1, 1])
        spray_protocol(protocol, (1, 1), {corrupt}, range(protocol.max_rounds))


class TestMultiPartyProtocols:
    def test_opt_nsfe(self):
        protocol = OptNSfeProtocol(make_concat(4, 8))
        spray_protocol(
            protocol, (1, 2, 3, 4), {0}, range(protocol.max_rounds)
        )
        spray_protocol(
            protocol, (1, 2, 3, 4), {0, 1}, range(protocol.max_rounds)
        )

    def test_threshold_gmw(self):
        protocol = ThresholdGmwProtocol(make_concat(5, 8))
        spray_protocol(
            protocol, (1, 2, 3, 4, 5), {0, 1}, range(protocol.max_rounds)
        )

    def test_unbalanced_opt(self):
        protocol = UnbalancedOptProtocol(make_concat(4, 8))
        spray_protocol(
            protocol, (1, 2, 3, 4), {1}, range(protocol.max_rounds)
        )


class TestThresholdGmwRobustness:
    def test_honest_majority_still_reconstructs(self):
        """Garbage from a minority coalition cannot block or corrupt the
        honest parties' reconstruction (VSS verifiability)."""
        protocol = ThresholdGmwProtocol(make_concat(5, 8))
        inputs = (1, 2, 3, 4, 5)
        defaulted = substituted_outputs(protocol, inputs, {0, 1})
        for payload in GARBAGE:
            adversary = GarbageSprayer({0, 1}, 1, payload)
            result = run_execution(
                protocol, inputs, adversary, Rng(("rob", str(payload)))
            )
            # The coalition refused its real inputs and shares; the robust
            # dealer substitutes defaults and the honest n−t = 3 = threshold
            # shares still reconstruct — garbage is discarded by the MACs.
            for i, rec in result.outputs.items():
                assert not rec.is_abort
                assert rec.value == defaulted[i]
