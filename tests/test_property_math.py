"""Property-based tests on the core mathematics (hypothesis)."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    PayoffVector,
    balanced_sum_bound,
    game_from_estimates,
    per_t_bound,
)
from repro.core.attack_game import AttackGame
from repro.core.corruption_cost import dominates, strictly_dominates
from repro.core.utility import UtilityEstimate


def gamma_plus_strategy():
    """Random Γ+fair vectors."""
    return st.tuples(
        st.floats(0.0, 0.5),  # γ00
        st.floats(0.5, 1.0),  # γ11 (>= γ00 by construction below)
        st.floats(1.01, 3.0),  # γ10
    ).map(lambda t: PayoffVector(min(t[0], t[1]), 0.0, max(t[2], t[1] + 0.01), t[1]))


class TestBoundsAlgebra:
    @given(gamma_plus_strategy(), st.integers(2, 9))
    @settings(max_examples=40)
    def test_per_t_sums_to_balance_bound(self, gamma, n):
        assume(gamma.in_gamma_fair_plus())
        total = sum(per_t_bound(n, t, gamma) for t in range(1, n))
        assert abs(total - balanced_sum_bound(n, gamma)) < 1e-9

    @given(gamma_plus_strategy(), st.integers(3, 9))
    @settings(max_examples=40)
    def test_per_t_monotone_in_t(self, gamma, n):
        assume(gamma.in_gamma_fair_plus())
        values = [per_t_bound(n, t, gamma) for t in range(1, n)]
        assert values == sorted(values)

    @given(gamma_plus_strategy(), st.integers(2, 9))
    @settings(max_examples=40)
    def test_per_t_between_gamma11_and_gamma10(self, gamma, n):
        assume(gamma.in_gamma_fair_plus())
        for t in range(1, n):
            value = per_t_bound(n, t, gamma)
            assert gamma.gamma11 - 1e-9 <= value <= gamma.gamma10 + 1e-9


class TestDominanceOrder:
    @given(st.lists(st.floats(0, 1), min_size=4, max_size=4))
    @settings(max_examples=30)
    def test_reflexive_weak_irreflexive_strict(self, values):
        cost = lambda t: values[t - 1]
        assert dominates(cost, cost, 4)
        assert not strictly_dominates(cost, cost, 4)

    @given(
        st.lists(st.floats(0, 1), min_size=4, max_size=4),
        st.floats(0.01, 1.0),
    )
    @settings(max_examples=30)
    def test_uniform_shift_strictly_dominates(self, values, shift):
        low = lambda t: values[t - 1]
        high = lambda t: values[t - 1] + shift
        assert strictly_dominates(high, low, 4)
        assert not dominates(low, high, 4, tol=0.0) or shift < 1e-12

    @given(
        st.lists(st.floats(0, 1), min_size=3, max_size=3),
        st.lists(st.floats(0, 1), min_size=3, max_size=3),
    )
    @settings(max_examples=30)
    def test_antisymmetry_of_strict_dominance(self, a_values, b_values):
        a = lambda t: a_values[t - 1]
        b = lambda t: b_values[t - 1]
        assert not (strictly_dominates(a, b, 3) and strictly_dominates(b, a, 3))


def _estimate(protocol, adversary, mean):
    return UtilityEstimate(
        mean=mean, ci_low=mean, ci_high=mean, n_runs=100,
        event_distribution={}, protocol=protocol, adversary=adversary,
    )


class TestGameInvariants:
    @given(
        st.dictionaries(
            st.sampled_from(["p1", "p2", "p3"]),
            st.dictionaries(
                st.sampled_from(["a", "b", "c"]),
                st.floats(0, 2),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=40)
    def test_game_value_le_every_best_response(self, matrix):
        from repro.core import STANDARD_GAMMA

        game = AttackGame(STANDARD_GAMMA, matrix)
        value = game.game_value()
        for protocol in matrix:
            assert value <= game.attacker_value(protocol) + 1e-12
        assert game.minimax_protocols()  # non-empty

    @given(
        st.lists(st.floats(0.0, 1.0), min_size=2, max_size=2),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=30)
    def test_mixture_value_is_convex_combination(self, values, weight):
        from repro.core import STANDARD_GAMMA

        matrix = {"p1": {"a": values[0]}, "p2": {"a": values[1]}}
        game = AttackGame(STANDARD_GAMMA, matrix)
        mixed = game.mixture_value({"p1": weight, "p2": 1 - weight})
        lo, hi = min(values), max(values)
        assert lo - 1e-12 <= mixed <= hi + 1e-12
        assert mixed >= game.game_value() - 1e-12


class TestEstimateAggregation:
    @given(st.lists(st.floats(0, 1), min_size=1, max_size=6))
    @settings(max_examples=30)
    def test_game_from_estimates_preserves_matrix(self, means):
        from repro.core import STANDARD_GAMMA

        estimates = [
            _estimate("p", f"adv{i}", m) for i, m in enumerate(means)
        ]
        game = game_from_estimates(STANDARD_GAMMA, estimates)
        assert game.attacker_value("p") == max(means)
