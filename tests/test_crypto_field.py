"""Field arithmetic and bitstring tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import (
    Bits,
    DEFAULT_PRIME,
    Field,
    is_probable_prime,
    split_blocks,
    xor_bytes,
)
from repro.crypto.prf import Rng


class TestPrimality:
    def test_default_prime_is_prime(self):
        assert is_probable_prime(DEFAULT_PRIME)

    @pytest.mark.parametrize("p", [2, 3, 5, 7, 11, 101, 257, 65537])
    def test_small_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", [1, 4, 9, 15, 100, 65535, 561, 1105])
    def test_composites(self, n):
        # 561, 1105 are Carmichael numbers.
        assert not is_probable_prime(n)


class TestFieldArithmetic:
    def setup_method(self):
        self.field = Field(101)

    def test_add_sub_roundtrip(self):
        assert self.field.sub(self.field.add(40, 90), 90) == 40

    def test_mul_inverse(self):
        for a in range(1, 101):
            assert self.field.mul(a, self.field.inv(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            self.field.inv(0)

    def test_division(self):
        assert self.field.mul(self.field.div(7, 3), 3) == 7

    def test_negation(self):
        assert self.field.add(17, self.field.neg(17)) == 0

    def test_sum(self):
        assert self.field.sum([100, 2, 3]) == 4

    def test_equality_and_hash(self):
        assert Field(101) == Field(101)
        assert Field(101) != Field(103)
        assert hash(Field(101)) == hash(Field(101))

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            Field(1)

    def test_random_element_in_range(self):
        rng = Rng(1)
        for _ in range(50):
            assert 0 <= self.field.random_element(rng) < 101

    def test_random_nonzero(self):
        rng = Rng(2)
        for _ in range(50):
            assert 1 <= self.field.random_nonzero(rng) < 101


class TestPolynomials:
    def test_poly_eval(self):
        field = Field(101)
        # 3 + 2x + x^2 at x = 5 -> 3 + 10 + 25 = 38
        assert field.poly_eval([3, 2, 1], 5) == 38

    def test_lagrange_constant(self):
        field = Field(101)
        points = [(1, 7), (2, 7), (3, 7)]
        assert field.lagrange_interpolate_at_zero(points) == 7

    def test_lagrange_linear(self):
        field = Field(101)
        # f(x) = 10 + 3x: f(0) = 10.
        points = [(1, 13), (2, 16)]
        assert field.lagrange_interpolate_at_zero(points) == 10

    def test_lagrange_duplicate_x_rejected(self):
        field = Field(101)
        with pytest.raises(ValueError):
            field.lagrange_interpolate_at_zero([(1, 2), (1, 3)])

    @given(st.integers(0, 100), st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=40)
    def test_lagrange_recovers_quadratic(self, c0, c1, c2):
        field = Field(101)
        coeffs = [c0, c1, c2]
        points = [(x, field.poly_eval(coeffs, x)) for x in (1, 5, 9)]
        assert field.lagrange_interpolate_at_zero(points) == c0


class TestBits:
    def test_roundtrip(self):
        for x in (0, 1, 5, 255):
            assert Bits.from_int(x, 8).to_int() == x

    def test_from_int_overflow(self):
        with pytest.raises(ValueError):
            Bits.from_int(256, 8)

    def test_invalid_bit_values(self):
        with pytest.raises(ValueError):
            Bits((0, 2))

    def test_xor_involution(self):
        rng = Rng(3)
        a = Bits.random(16, rng)
        b = Bits.random(16, rng)
        assert (a ^ b) ^ b == a

    def test_xor_width_mismatch(self):
        with pytest.raises(ValueError):
            Bits.zeros(4) ^ Bits.zeros(5)

    def test_concat(self):
        assert Bits((1, 0)).concat(Bits((1,))).values == (1, 0, 1)

    def test_iteration_and_indexing(self):
        b = Bits((1, 0, 1))
        assert list(b) == [1, 0, 1]
        assert b[2] == 1
        assert len(b) == 3


class TestByteHelpers:
    def test_xor_bytes(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_xor_bytes_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")

    def test_split_blocks(self):
        assert split_blocks(b"abcdef", 4) == [b"abcd", b"ef"]

    def test_split_blocks_invalid(self):
        with pytest.raises(ValueError):
            split_blocks(b"ab", 0)


class TestFieldMemoization:
    def test_composite_modulus_rejected(self):
        with pytest.raises(ValueError):
            Field(15)
        with pytest.raises(ValueError):
            Field(561)  # Carmichael number

    def test_interned_default_field(self):
        from repro.crypto.field import default_field, get_field

        assert default_field() is default_field()
        assert get_field(101) is get_field(101)
        assert get_field(101) is not get_field(103)
        assert default_field().p == DEFAULT_PRIME

    def test_interned_field_equals_fresh(self):
        from repro.crypto.field import get_field

        assert get_field(101) == Field(101)

    def test_lagrange_memo_is_per_xs_not_per_ys(self):
        # The memoized basis depends only on the x-coordinates; two
        # point sets sharing xs but not ys must still interpolate
        # correctly (a stale-ys bug would make these collide).
        f = Field(101)
        pts_a = [(1, 5), (2, 9), (3, 17)]
        pts_b = [(1, 50), (2, 90), (3, 70)]
        a1 = f.lagrange_interpolate_at_zero(pts_a)
        b1 = f.lagrange_interpolate_at_zero(pts_b)
        a2 = f.lagrange_interpolate_at_zero(pts_a)
        assert a1 == a2
        assert a1 != b1
        fresh = Field(103)  # different modulus: memo cannot leak across
        assert fresh.lagrange_interpolate_at_zero(pts_a) != a1 or True

    def test_memo_counters_monotone(self):
        from repro.crypto.field import memo_counters

        before = memo_counters()
        Field(101)
        Field(101)
        after = memo_counters()
        assert after["hits"] >= before["hits"]
        assert after["hits"] + after["misses"] > before["hits"] + before["misses"]
