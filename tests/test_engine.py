"""Execution-engine semantics: rounds, rushing, corruption, hybrids."""

import pytest

from repro.crypto import Rng
from repro.engine import (
    ABORT,
    Adversary,
    Execution,
    Inbox,
    Message,
    OUTPUT_ABORT,
    OUTPUT_DEFAULT,
    OUTPUT_REAL,
    OutputRecord,
    PartyContext,
    PartyMachine,
    Protocol,
    ProtocolViolation,
    run_execution,
)
from repro.engine.party import HonestRunner
from repro.functionalities.base import Functionality
from repro.functions import make_xor


class PingPongMachine(PartyMachine):
    """Round 0: send input to peer.  Round 1: output received value."""

    def on_round(self, round_no, inbox, ctx):
        other = 1 - self.index
        if round_no == 0:
            ctx.send(other, self.input)
        elif round_no == 1:
            payload = inbox.one_from_party(other)
            if payload is None:
                ctx.output_abort()
            else:
                ctx.output(payload)


class PingPongProtocol(Protocol):
    name = "ping-pong"
    n_parties = 2
    max_rounds = 2

    def __init__(self):
        self.func = make_xor()  # placeholder spec

    def build_machines(self, rng):
        return [PingPongMachine(i, 2) for i in range(2)]


class EchoFunctionality(Functionality):
    name = "F_echo"

    def invoke(self, inputs, adversary, rng, n):
        return {i: ("echo", payload) for i, payload in inputs.items()}


class HybridMachine(PartyMachine):
    def on_round(self, round_no, inbox, ctx):
        if round_no == 0:
            ctx.call("F_echo", self.input)
        elif round_no == 1:
            ctx.output(inbox.from_functionality("F_echo"))


class HybridProtocol(Protocol):
    name = "hybrid-echo"
    n_parties = 2
    max_rounds = 2

    def __init__(self):
        self.func = make_xor()

    def build_machines(self, rng):
        return [HybridMachine(i, 2) for i in range(2)]

    def build_functionalities(self, rng):
        return {"F_echo": EchoFunctionality()}


class TestMessagesAndInbox:
    def test_one_from_party(self):
        inbox = Inbox([Message(0, 1, "hello", 0)])
        assert inbox.one_from_party(0) == "hello"
        assert inbox.one_from_party(1) is None

    def test_from_functionality(self):
        inbox = Inbox([Message("F_x", 0, 42, 1)])
        assert inbox.from_functionality("F_x") == 42
        assert inbox.from_functionality("F_y") is None

    def test_broadcasts(self):
        inbox = Inbox(
            [Message(0, None, "b", 0, broadcast=True), Message(0, 1, "p", 0)]
        )
        assert len(inbox.broadcasts()) == 1

    def test_abort_singleton(self):
        import copy

        assert copy.deepcopy(ABORT) is ABORT
        assert repr(ABORT) == "⊥"


class TestPartyContext:
    def test_send_validation(self):
        ctx = PartyContext(0, 2, 0, Rng(1))
        with pytest.raises(ValueError):
            ctx.send(0, "self-message")
        with pytest.raises(ValueError):
            ctx.send(5, "nobody")

    def test_duplicate_func_call_rejected(self):
        ctx = PartyContext(0, 2, 0, Rng(1))
        ctx.call("F", 1)
        with pytest.raises(ValueError):
            ctx.call("F", 2)

    def test_double_output_rejected(self):
        ctx = PartyContext(0, 2, 0, Rng(1))
        ctx.output(1)
        with pytest.raises(RuntimeError):
            ctx.output(2)

    def test_output_record_kinds(self):
        assert OutputRecord(1, OUTPUT_REAL).is_abort is False
        assert OutputRecord(ABORT, OUTPUT_ABORT).is_abort is True
        with pytest.raises(ValueError):
            OutputRecord(1, "bogus")


class TestHonestExecution:
    def test_ping_pong(self):
        result = run_execution(
            PingPongProtocol(), ("a", "b"), Adversary(), Rng(1)
        )
        assert result.outputs[0].value == "b"
        assert result.outputs[1].value == "a"
        assert result.corrupted == set()
        assert result.all_honest_received()

    def test_hybrid_call(self):
        result = run_execution(HybridProtocol(), (10, 20), Adversary(), Rng(1))
        assert result.outputs[0].value == ("echo", 10)
        assert result.outputs[1].value == ("echo", 20)

    def test_early_termination(self):
        result = run_execution(
            PingPongProtocol(), ("a", "b"), Adversary(), Rng(1)
        )
        assert result.rounds_used == 2

    def test_input_arity_checked(self):
        with pytest.raises(ValueError):
            Execution(PingPongProtocol(), ("only-one",), Adversary(), Rng(1))

    def test_missing_output_raises(self):
        class SilentMachine(PartyMachine):
            def on_round(self, round_no, inbox, ctx):
                pass

        class SilentProtocol(PingPongProtocol):
            def build_machines(self, rng):
                return [SilentMachine(i, 2) for i in range(2)]

        with pytest.raises(ProtocolViolation):
            run_execution(SilentProtocol(), (1, 2), Adversary(), Rng(1))


class SilenceAdversary(Adversary):
    """Corrupts party 1 statically and never sends anything."""

    def initial_corruptions(self, n):
        return {1}


class RushingObserver(Adversary):
    """Records the rushing view each round."""

    def __init__(self):
        self.seen = []

    def initial_corruptions(self, n):
        return {1}

    def on_round(self, iface):
        self.seen.append([m.payload for m in iface.rushing_messages()])


class TestAdversarialExecution:
    def test_silent_corruption_aborts_honest(self):
        result = run_execution(
            PingPongProtocol(), ("a", "b"), SilenceAdversary(), Rng(1)
        )
        assert result.corrupted == {1}
        assert result.outputs[0].is_abort
        assert 1 not in result.outputs
        assert not result.all_honest_received()

    def test_rushing_view(self):
        adversary = RushingObserver()
        run_execution(PingPongProtocol(), ("a", "b"), adversary, Rng(1))
        # Round 0: honest p0 sends "a" to corrupted p1 — visible via rushing
        # in the same round.
        assert adversary.seen[0] == ["a"]

    def test_adversary_send_requires_corruption(self):
        class BadAdversary(Adversary):
            def on_round(self, iface):
                iface.send(0, 1, "forged")

        with pytest.raises(PermissionError):
            run_execution(PingPongProtocol(), ("a", "b"), BadAdversary(), Rng(1))

    def test_inbox_access_requires_corruption(self):
        class PeekingAdversary(Adversary):
            def on_round(self, iface):
                iface.inbox(0)

        with pytest.raises(PermissionError):
            run_execution(
                PingPongProtocol(), ("a", "b"), PeekingAdversary(), Rng(1)
            )

    def test_adaptive_corruption_yields_view(self):
        captured = {}

        class AdaptiveAdversary(Adversary):
            def on_round(self, iface):
                if iface.round == 1 and 0 not in iface.corrupted:
                    party = iface.corrupt(0)
                    captured["input"] = party.view.input
                    captured["machine"] = party.runner.machine

        result = run_execution(
            PingPongProtocol(), ("a", "b"), AdaptiveAdversary(), Rng(1)
        )
        assert captured["input"] == "a"
        assert isinstance(captured["machine"], PingPongMachine)
        assert result.corrupted == {0}

    def test_double_corruption_rejected(self):
        class DoubleCorruptor(Adversary):
            def initial_corruptions(self, n):
                return {0}

            def on_round(self, iface):
                if iface.round == 0:
                    iface.corrupt(0)

        with pytest.raises(ValueError):
            run_execution(
                PingPongProtocol(), ("a", "b"), DoubleCorruptor(), Rng(1)
            )

    def test_forged_message_delivered(self):
        class Forger(Adversary):
            def initial_corruptions(self, n):
                return {1}

            def on_round(self, iface):
                if iface.round == 0:
                    iface.send(1, 0, "forged")

        result = run_execution(
            PingPongProtocol(), ("a", "b"), Forger(), Rng(1)
        )
        assert result.outputs[0].value == "forged"

    def test_all_corrupted_runs_to_round_bound(self):
        """Regression: with no honest parties the early-termination check
        used to be vacuously true (``all()`` over an empty set), ending
        the execution after round 1 and cutting the adversary's view
        short.  A fully corrupting adversary must see every round."""

        class CorruptAllAdversary(Adversary):
            def __init__(self):
                self.rounds_seen = []

            def initial_corruptions(self, n):
                return set(range(n))

            def on_round(self, iface):
                self.rounds_seen.append(iface.round)

        protocol = PingPongProtocol()
        adversary = CorruptAllAdversary()
        result = run_execution(protocol, ("a", "b"), adversary, Rng(1))
        assert result.corrupted == {0, 1}
        assert result.honest == set()
        assert result.rounds_used == protocol.max_rounds
        assert adversary.rounds_seen == list(range(protocol.max_rounds))
        assert not result.all_honest_received()


class TestHonestRunner:
    def test_clone_independence(self):
        machine = PingPongMachine(0, 2)
        runner = HonestRunner(machine, Rng(1), 4)
        runner.give_input("x")
        clone = runner.clone()
        clone.step(0, Inbox())
        assert runner.current_round == 0
        assert clone.current_round == 1

    def test_simulate_silent_completion(self):
        machine = PingPongMachine(0, 2)
        runner = HonestRunner(machine, Rng(1), 4)
        runner.give_input("x")
        runner.step(0, Inbox())
        record = runner.simulate_silent_completion()
        assert record is not None and record.is_abort
        # The real runner is untouched.
        assert runner.output is None

    def test_view_accumulates(self):
        machine = PingPongMachine(0, 2)
        runner = HonestRunner(machine, Rng(1), 4)
        runner.give_input("x")
        inbox = Inbox([Message(1, 0, "hello", 0)])
        runner.step(0, inbox)
        assert runner.view.received[0].payload == "hello"
        assert runner.view.sent[0].payload == "x"
