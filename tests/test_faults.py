"""Engine-level fault injection: deterministic channel/party fault models,
graceful degradation (fallback outputs, HONEST_HUNG classification),
zero-rate no-op guarantees, delayed-delivery semantics, per-attempt
transcript logging, SIGINT handling, and the serial-vs-pool determinism of
faulty batches."""

import random

import pytest

from repro.adversaries import PassiveAdversary, strategy_space_for_protocol
from repro.analysis import (
    fault_sensitivity,
    run_batch,
    to_dict,
)
from repro.core import FairnessEvent, PayoffVector
from repro.core.events import classify
from repro.core.utility import EventCounts, estimate_from_counts
from repro.crypto import Rng
from repro.engine import (
    NO_ENGINE_FAULTS,
    ChannelFaultModel,
    EngineFaults,
    PartyFaultModel,
    run_execution,
)
from repro.engine.faults import (
    ENV_BROADCAST_LOSS,
    ENV_CHANNEL_DELAY,
    ENV_CHANNEL_DUP,
    ENV_CHANNEL_LOSS,
    ENV_CRASH_RATE,
    ENV_ENGINE_FAULT_SEED,
)
from repro.engine.party import PartyMachine
from repro.engine.protocol import Protocol
from repro.functions import make_and, make_concat, make_swap
from repro.protocols import (
    DummyProtocol,
    GordonKatzProtocol,
    Opt2SfeProtocol,
    OptNSfeProtocol,
)
from repro.runtime import (
    DistributedRunner,
    ExecutionTask,
    ProcessPoolRunner,
    SerialRunner,
)
from repro.runtime.distributed import WorkerServer

GAMMA = PayoffVector(0.0, 0.0, 1.0, 0.5)

_ENV_KNOBS = (
    ENV_CHANNEL_LOSS,
    ENV_CHANNEL_DELAY,
    ENV_CHANNEL_DUP,
    ENV_BROADCAST_LOSS,
    ENV_CRASH_RATE,
    ENV_ENGINE_FAULT_SEED,
)


def _clear_env(monkeypatch):
    for var in _ENV_KNOBS:
        monkeypatch.delenv(var, raising=False)


def _mixed_faults(seed, loss=0.3, crash=0.2):
    return EngineFaults(
        channel=ChannelFaultModel(
            loss=loss, delay=0.15, duplicate=0.1, broadcast_loss=0.2,
            seed=seed,
        ),
        party=PartyFaultModel(crash_rate=crash, seed=seed),
    )


# -- test protocols ----------------------------------------------------------


class _PingMachine(PartyMachine):
    """Both parties output their own input at round 0; p0 also pings p1.

    The ping is pure extra traffic: honest completion never depends on it,
    which makes the early-exit/delay bookkeeping directly observable.
    """

    def on_round(self, round_no, inbox, ctx):
        if round_no == 0:
            if self.index == 0:
                ctx.send(1, ("ping", self.input))
            ctx.output(self.input)


class _NeedyMachine(PartyMachine):
    """p1 outputs only once p0's ping arrives; its fallback refuses."""

    def on_round(self, round_no, inbox, ctx):
        if self.index == 0:
            if round_no == 0:
                ctx.send(1, ("ping", self.input))
                ctx.output(self.input)
            return
        payloads = inbox.from_party(0)
        if payloads:
            ctx.output(payloads[0][1])

    def fallback_output(self, ctx):
        if self.index == 1:
            raise RuntimeError("this machine has no default-output path")
        ctx.output_abort()


class _ShoutMachine(PartyMachine):
    """p0 broadcasts its input at round 0; everyone outputs immediately."""

    def on_round(self, round_no, inbox, ctx):
        if round_no == 0:
            if self.index == 0:
                ctx.broadcast(("shout", self.input))
            ctx.output(self.input)


class _TinyProtocol(Protocol):
    def __init__(self, machine_cls, name, n=2, max_rounds=6):
        self.func = make_swap(4) if n == 2 else make_concat(n, bits=4)
        self.n_parties = n
        self.name = name
        self.max_rounds = max_rounds
        self._cls = machine_cls

    def build_machines(self, rng):
        return [self._cls(i, self.n_parties) for i in range(self.n_parties)]


def ping_protocol(**kw):
    return _TinyProtocol(_PingMachine, "test-ping", **kw)


def needy_protocol(**kw):
    return _TinyProtocol(_NeedyMachine, "test-needy", **kw)


def shout_protocol(n=3, **kw):
    return _TinyProtocol(_ShoutMachine, "test-shout", n=n, **kw)


# -- fault model primitives --------------------------------------------------


class TestChannelFaultModel:
    def test_decisions_are_pure_functions_of_coordinates(self):
        model = ChannelFaultModel(
            loss=0.3, delay=0.3, duplicate=0.3, broadcast_loss=0.4, seed="s"
        )
        for r, s, t, k in [(0, 0, 1, 0), (3, 1, 0, 2), (7, 2, 1, 5)]:
            assert model.bilateral(r, s, t, k) == model.bilateral(r, s, t, k)
            assert model.broadcast(r, s, t, k) == model.broadcast(r, s, t, k)

    def test_distinct_coordinates_vary(self):
        model = ChannelFaultModel(loss=0.5, seed=0)
        actions = {
            model.bilateral(r, 0, 1, k).action
            for r in range(10)
            for k in range(10)
        }
        assert actions == {"deliver", "drop"}

    def test_zero_rates_are_inactive_and_always_deliver(self):
        model = ChannelFaultModel()
        assert not model.active
        assert model.bilateral(0, 0, 1, 0).action == "deliver"
        assert model.broadcast(0, 0, 1, 0).action == "deliver"

    def test_threshold_coupling_nests_drop_sets(self):
        # Same seed, increasing loss: each attempt compares the *same*
        # uniform variate against the two thresholds, so the lower rate's
        # drop set is a subset of the higher rate's.
        low = ChannelFaultModel(loss=0.1, seed="couple")
        high = ChannelFaultModel(loss=0.4, seed="couple")
        coords = [(r, s, 1 - s, k) for r in range(8) for s in (0, 1) for k in range(8)]
        dropped_low = {
            c for c in coords if low.bilateral(*c).action == "drop"
        }
        dropped_high = {
            c for c in coords if high.bilateral(*c).action == "drop"
        }
        assert dropped_low and dropped_low < dropped_high

    def test_delay_bounds_respected(self):
        model = ChannelFaultModel(delay=1.0, max_delay=3, seed=1)
        delays = {
            model.bilateral(r, 0, 1, k).delay
            for r in range(6)
            for k in range(6)
        }
        assert delays <= {1, 2, 3} and len(delays) > 1

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ChannelFaultModel(loss=1.5)
        with pytest.raises(ValueError):
            ChannelFaultModel(duplicate=-0.1)
        with pytest.raises(ValueError):
            ChannelFaultModel(max_delay=0)


class TestPartyFaultModel:
    def test_scheduled_crashes_pin_the_round(self):
        model = PartyFaultModel(scheduled={1: 4})
        assert model.active
        assert model.crash_round(1, max_rounds=10) == 4
        assert model.crash_round(0, max_rounds=10) is None

    def test_zero_rate_never_crashes(self):
        model = PartyFaultModel()
        assert not model.active
        assert model.crash_round(0, max_rounds=10) is None

    def test_certain_crash_lands_in_round_range(self):
        model = PartyFaultModel(crash_rate=1.0, seed=3)
        for party in range(5):
            r = model.crash_round(party, max_rounds=7)
            assert r is not None and 0 <= r < 7

    def test_crash_round_is_deterministic(self):
        model = PartyFaultModel(crash_rate=0.5, seed="det")
        rounds = [model.crash_round(p, 9) for p in range(10)]
        assert rounds == [model.crash_round(p, 9) for p in range(10)]
        assert any(r is not None for r in rounds)
        assert any(r is None for r in rounds)


class TestEngineFaults:
    def test_active_reflects_components(self):
        assert not NO_ENGINE_FAULTS.active
        assert not EngineFaults(
            channel=ChannelFaultModel(), party=PartyFaultModel()
        ).active
        assert EngineFaults(channel=ChannelFaultModel(loss=0.1)).active
        assert EngineFaults(party=PartyFaultModel(scheduled={0: 1})).active

    def test_seeded_resalts_but_preserves_rates(self):
        faults = _mixed_faults("base")
        salted = faults.seeded(b"\x01\x02")
        assert salted.channel.loss == faults.channel.loss
        assert salted.party.crash_rate == faults.party.crash_rate
        assert salted.channel.seed != faults.channel.seed
        assert salted.seeded(b"\x01\x02") == faults.seeded(b"\x01\x02").seeded(
            b"\x01\x02"
        )

    def test_to_dict_records_the_configuration(self):
        out = _mixed_faults("cfg").to_dict()
        assert out["channel"]["loss"] == 0.3
        assert out["party"]["crash_rate"] == 0.2
        assert "seed" in out["channel"] and "seed" in out["party"]
        assert NO_ENGINE_FAULTS.to_dict() == {}

    def test_from_env_unset_is_none(self, monkeypatch):
        _clear_env(monkeypatch)
        assert EngineFaults.from_env() is None

    def test_from_env_builds_models(self, monkeypatch):
        _clear_env(monkeypatch)
        monkeypatch.setenv(ENV_CHANNEL_LOSS, "0.25")
        monkeypatch.setenv(ENV_CRASH_RATE, "0.1")
        monkeypatch.setenv(ENV_ENGINE_FAULT_SEED, "ci")
        faults = EngineFaults.from_env()
        assert faults.active
        assert faults.channel.loss == 0.25
        assert faults.channel.seed == "ci"
        assert faults.party.crash_rate == 0.1

    def test_from_env_rejects_garbage(self, monkeypatch):
        _clear_env(monkeypatch)
        monkeypatch.setenv(ENV_CHANNEL_LOSS, "lots")
        with pytest.raises(ValueError):
            EngineFaults.from_env()
        monkeypatch.setenv(ENV_CHANNEL_LOSS, "1.5")
        with pytest.raises(ValueError):
            EngineFaults.from_env()


# -- zero-rate faults: strict no-op -----------------------------------------


class TestZeroRateNoOp:
    def test_single_execution_bit_identical(self):
        protocol = Opt2SfeProtocol(make_swap(8))
        zero = EngineFaults(
            channel=ChannelFaultModel(), party=PartyFaultModel()
        )
        plain = run_execution(protocol, (3, 9), PassiveAdversary(), Rng("z"))
        faulted = run_execution(
            protocol, (3, 9), PassiveAdversary(), Rng("z"), faults=zero
        )
        assert plain.outputs == faulted.outputs
        assert plain.transcript == faulted.transcript
        assert plain.rounds_used == faulted.rounds_used
        assert not faulted.crashed and not faulted.hung
        assert not faulted.fault_events

    @pytest.mark.parametrize(
        "faults",
        [
            NO_ENGINE_FAULTS,
            EngineFaults(channel=ChannelFaultModel(), party=PartyFaultModel()),
        ],
        ids=["bare", "zero-rate-models"],
    )
    def test_batch_counts_identical_to_no_faults(self, faults):
        protocol = Opt2SfeProtocol(make_swap(8))
        factory = strategy_space_for_protocol(protocol)[1]
        base = run_batch(protocol, factory, 40, seed=3)
        again = run_batch(protocol, factory, 40, seed=3, faults=faults)
        assert again == base
        assert again.counts[FairnessEvent.HONEST_HUNG] == 0


# -- graceful degradation ----------------------------------------------------


class TestGracefulDegradation:
    @pytest.mark.parametrize(
        "protocol",
        [
            Opt2SfeProtocol(make_swap(8)),
            OptNSfeProtocol(make_concat(3, bits=4)),
            GordonKatzProtocol(make_and(), p=2),
        ],
        ids=["opt-2sfe", "opt-nsfe", "gk"],
    )
    def test_lossy_batches_never_raise(self, protocol):
        factory = strategy_space_for_protocol(protocol)[1]
        faults = _mixed_faults("lossy", loss=0.4)
        counts = run_batch(protocol, factory, 40, seed=7, faults=faults)
        assert counts.total == 40
        assert all(c >= 0 for c in counts.counts.values())

    def test_total_loss_falls_back_instead_of_hanging(self):
        # opt-2sfe needs its channel: with every message dropped, both
        # parties detect the stall and take their fallback path — the run
        # completes without a ProtocolViolation.
        protocol = Opt2SfeProtocol(make_swap(8))
        faults = EngineFaults(channel=ChannelFaultModel(loss=1.0, seed=1))
        result = run_execution(
            protocol, (3, 9), PassiveAdversary(), Rng("total"), faults=faults
        )
        assert not result.hung
        assert result.fault_events.get("dropped", 0) > 0
        assert set(result.outputs) == {0, 1}

    def test_refused_fallback_is_a_hung_party_not_an_error(self):
        protocol = needy_protocol()
        faults = EngineFaults(channel=ChannelFaultModel(loss=1.0, seed=2))
        result = run_execution(
            protocol, (1, 2), PassiveAdversary(), Rng("hung"), faults=faults
        )
        assert result.hung == {1}
        assert result.fault_events.get("fallback_errors", 0) == 1
        assert 1 not in result.outputs
        assert not result.all_honest_received()
        assert classify(result, protocol.func) is FairnessEvent.HONEST_HUNG

    def test_run_chunk_classifies_hung_runs(self):
        protocol = needy_protocol()
        faults = EngineFaults(channel=ChannelFaultModel(loss=1.0, seed=2))
        task = ExecutionTask(
            protocol, strategy_space_for_protocol(protocol)[0], 10, 0,
            None, faults,
        )
        counts = task.run_chunk(0, 10)
        assert counts.total == 10
        assert counts.counts[FairnessEvent.HONEST_HUNG] == 10

    def test_hung_event_pays_gamma00(self):
        gamma = PayoffVector(0.3, 0.0, 1.0, 0.5)
        assert gamma.value(FairnessEvent.HONEST_HUNG) == gamma.gamma00
        counts = EventCounts()
        for _ in range(4):
            counts.record(FairnessEvent.HONEST_HUNG, frozenset({0}))
        estimate = estimate_from_counts(counts, gamma)
        assert estimate.mean == pytest.approx(0.3)


class TestCrashStop:
    def test_scheduled_crash_is_recorded_and_excluded(self):
        protocol = ping_protocol()
        faults = EngineFaults(party=PartyFaultModel(scheduled={0: 0}))
        result = run_execution(
            protocol, (5, 6), PassiveAdversary(), Rng("crash"), faults=faults
        )
        assert result.crashed == {0}
        assert result.fault_events.get("crashes") == 1
        assert 0 not in result.outputs  # crashed before outputting
        assert result.surviving_honest == {1}
        assert not result.hung  # a crashed party is not a hung one

    def test_crashed_party_sends_nothing(self):
        protocol = ping_protocol()
        faults = EngineFaults(party=PartyFaultModel(scheduled={0: 0}))
        result = run_execution(
            protocol, (5, 6), PassiveAdversary(), Rng("mute"), faults=faults
        )
        assert not any(m.sender == 0 for m in result.transcript)

    def test_post_output_crash_keeps_the_output(self):
        protocol = ping_protocol()
        faults = EngineFaults(party=PartyFaultModel(scheduled={0: 1}))
        result = run_execution(
            protocol, (5, 6), PassiveAdversary(), Rng("late"), faults=faults
        )
        # p0 output in round 0, crashed from round 1 on: the output stands.
        assert 0 in result.outputs and result.outputs[0].value == 5

    def test_all_honest_received_ranges_over_survivors(self):
        protocol = ping_protocol()
        faults = EngineFaults(party=PartyFaultModel(scheduled={0: 0}))
        result = run_execution(
            protocol, (5, 6), PassiveAdversary(), Rng("surv"), faults=faults
        )
        # p1 (the only survivor) output fine, so the predicate holds even
        # though the crashed p0 never produced anything.
        assert result.all_honest_received()


# -- delayed delivery --------------------------------------------------------


class TestDelayedDelivery:
    def test_delay_blocks_early_exit_until_landing(self):
        protocol = ping_protocol()
        lossless = run_execution(
            protocol, (1, 2), PassiveAdversary(), Rng("d")
        )
        # Both parties output in round 0; the in-flight ping blocks the
        # exit for exactly one extra round.
        assert lossless.rounds_used == 2

        faults = EngineFaults(
            channel=ChannelFaultModel(delay=1.0, max_delay=1, seed=0)
        )
        delayed = run_execution(
            protocol, (1, 2), PassiveAdversary(), Rng("d"), faults=faults
        )
        # Delayed by one round: one round for the message to land, one for
        # it to be consumed — the early exit must wait for both.
        assert delayed.rounds_used == 3
        assert delayed.fault_events == {"delayed": 1}
        assert delayed.outputs == lossless.outputs

    def test_delayed_message_logged_once_with_annotation(self):
        protocol = ping_protocol()
        faults = EngineFaults(
            channel=ChannelFaultModel(delay=1.0, max_delay=1, seed=0)
        )
        result = run_execution(
            protocol, (1, 2), PassiveAdversary(), Rng("d"), faults=faults
        )
        pings = [m for m in result.transcript if m.sender == 0]
        assert len(pings) == 1
        assert pings[0].annotation == "delayed+1"
        assert pings[0].delivered  # a delayed message still arrives

    def test_overshooting_delay_becomes_a_drop(self):
        protocol = ping_protocol(max_rounds=1)
        faults = EngineFaults(
            channel=ChannelFaultModel(delay=1.0, max_delay=3, seed=5)
        )
        result = run_execution(
            protocol, (1, 2), PassiveAdversary(), Rng("o"), faults=faults
        )
        pings = [m for m in result.transcript if m.sender == 0]
        assert len(pings) == 1
        assert pings[0].annotation == "dropped"
        assert not pings[0].delivered
        assert result.fault_events == {"dropped": 1}


# -- per-attempt transcript logging (double-count regression) ----------------


class TestTranscriptAttempts:
    def test_duplicate_logged_once_per_delivered_copy(self):
        protocol = ping_protocol()
        faults = EngineFaults(
            channel=ChannelFaultModel(duplicate=1.0, seed=0)
        )
        result = run_execution(
            protocol, (1, 2), PassiveAdversary(), Rng("dup"), faults=faults
        )
        pings = [m for m in result.transcript if m.sender == 0]
        assert [m.annotation for m in pings] == [None, "duplicate"]
        assert result.fault_events == {"duplicated": 1}

    def test_dropped_message_logged_exactly_once(self):
        protocol = ping_protocol()
        faults = EngineFaults(channel=ChannelFaultModel(loss=1.0, seed=0))
        result = run_execution(
            protocol, (1, 2), PassiveAdversary(), Rng("drop"), faults=faults
        )
        pings = [m for m in result.transcript if m.sender == 0]
        assert len(pings) == 1
        assert pings[0].annotation == "dropped"

    def test_broadcast_logged_per_receiver_under_channel_faults(self):
        protocol = shout_protocol(n=3)
        faults = EngineFaults(
            channel=ChannelFaultModel(broadcast_loss=0.5, seed="b")
        )
        result = run_execution(
            protocol, (1, 2, 3), PassiveAdversary(), Rng("bc"), faults=faults
        )
        attempts = [m for m in result.transcript if m.broadcast]
        # One broadcast, two receivers: exactly one attempt entry each,
        # with its concrete receiver filled in.
        assert sorted(m.receiver for m in attempts) == [1, 2]
        assert all(
            m.annotation in (None, "dropped") for m in attempts
        )
        delivered = {m.receiver for m in attempts if m.delivered}
        dropped = {m.receiver for m in attempts if not m.delivered}
        assert delivered | dropped == {1, 2}
        assert result.fault_events.get("broadcast_dropped", 0) == len(dropped)

    def test_lossless_broadcast_keeps_single_entry(self):
        protocol = shout_protocol(n=3)
        result = run_execution(
            protocol, (1, 2, 3), PassiveAdversary(), Rng("bc0")
        )
        attempts = [m for m in result.transcript if m.broadcast]
        assert len(attempts) == 1 and attempts[0].receiver is None


# -- determinism: replay, serial vs pool, seeded property sweep --------------


class TestFaultyDeterminism:
    def test_single_execution_replays_bit_identically(self):
        protocol = Opt2SfeProtocol(make_swap(8))
        faults = _mixed_faults("replay")
        runs = [
            run_execution(
                protocol, (3, 9), PassiveAdversary(), Rng("r"), faults=faults
            )
            for _ in range(2)
        ]
        assert runs[0].transcript == runs[1].transcript
        assert runs[0].outputs == runs[1].outputs
        assert runs[0].crashed == runs[1].crashed
        assert runs[0].fault_events == runs[1].fault_events

    def test_chunk_partition_is_invisible_under_faults(self):
        protocol = Opt2SfeProtocol(make_swap(8))
        factory = strategy_space_for_protocol(protocol)[1]
        task = ExecutionTask(
            protocol, factory, 30, seed=9, input_sampler=None,
            faults=_mixed_faults("chunk"),
        )
        whole = task.run_chunk(0, 30)
        pieces = task.run_chunk(0, 11) + task.run_chunk(11, 30)
        assert whole == pieces

    def test_serial_and_pool_agree_on_faulty_batches(self):
        protocol = Opt2SfeProtocol(make_swap(8))
        factory = strategy_space_for_protocol(protocol)[2]
        faults = _mixed_faults("pool", loss=0.4)
        serial = run_batch(protocol, factory, 60, seed=11, faults=faults)
        parallel = run_batch(
            protocol, factory, 60, seed=11, faults=faults,
            runner=ProcessPoolRunner(2, chunk_size=13, min_parallel_runs=0),
        )
        assert serial == parallel
        assert (
            serial.counts[FairnessEvent.HONEST_HUNG]
            == parallel.counts[FairnessEvent.HONEST_HUNG]
        )
        assert parallel.total == 60

    def test_random_triples_terminate_and_never_raise(self):
        # Property sweep over 200 random (protocol, adversary, fault_seed)
        # triples: every faulty execution terminates within the round
        # bound and raises nothing out of run_execution.
        protocols = [
            Opt2SfeProtocol(make_swap(8)),
            OptNSfeProtocol(make_concat(3, bits=4)),
            DummyProtocol(make_swap(8)),
            ping_protocol(),
            needy_protocol(),
        ]
        spaces = [strategy_space_for_protocol(p) for p in protocols]
        for trial in range(200):
            rnd = random.Random(trial)
            pi = rnd.randrange(len(protocols))
            protocol = protocols[pi]
            factory = rnd.choice(spaces[pi])
            faults = _mixed_faults(
                ("prop", trial),
                loss=rnd.choice([0.05, 0.2, 0.5]),
                crash=rnd.choice([0.0, 0.1, 0.3]),
            )
            rng = Rng(("prop-run", trial))
            inputs = protocol.func.sample_inputs(rng.fork("inputs"))
            adversary = factory(rng.fork("adversary"))
            result = run_execution(
                protocol, inputs, adversary, rng.fork("exec"), faults=faults
            )
            assert result.rounds_used <= protocol.max_rounds
            assert result.hung <= result.honest
            assert result.crashed <= set(range(protocol.n_parties))


# -- SIGINT handling ---------------------------------------------------------


class _InterruptingTask:
    """A mergeable task whose chunk containing ``boom_at`` raises Ctrl-C."""

    label = "interrupting"

    def __init__(self, n_runs, boom_at):
        self.n_runs = n_runs
        self.boom_at = boom_at

    def run_chunk(self, start, stop):
        if start <= self.boom_at < stop:
            raise KeyboardInterrupt()
        counts = EventCounts()
        for _ in range(start, stop):
            counts.record(FairnessEvent.E11, frozenset({0}))
        return counts


class TestKeyboardInterrupt:
    def test_serial_runner_reraises_with_stats_attached(self):
        runner = SerialRunner(chunk_size=10)
        with pytest.raises(KeyboardInterrupt) as excinfo:
            runner.run([_InterruptingTask(50, boom_at=25)])
        assert runner.last_stats is not None
        assert excinfo.value.run_stats is runner.last_stats
        assert runner.last_stats.backend == "serial"

    def test_pool_runner_cancels_and_reraises_with_stats(self):
        runner = ProcessPoolRunner(2, chunk_size=10, min_parallel_runs=0)
        tasks = [
            _InterruptingTask(30, boom_at=5),
            _InterruptingTask(30, boom_at=10**9),
        ]
        with pytest.raises(KeyboardInterrupt) as excinfo:
            runner.run(tasks)
        stats = excinfo.value.run_stats
        assert stats is runner.last_stats
        assert stats.backend == "process-pool"
        # Every chunk the interrupt dropped on the floor is accounted for.
        assert stats.cancelled_chunks >= 1

    def test_uninterrupted_pool_runs_have_no_cancellations(self):
        runner = ProcessPoolRunner(2, chunk_size=10, min_parallel_runs=0)
        task = _InterruptingTask(30, boom_at=10**9)
        values = runner.run([task])
        assert values[0].total == 30
        assert runner.last_stats.cancelled_chunks == 0

    def test_venues_report_identical_cancelled_counts(self):
        """Regression: the serial venue used to drop planned-but-unrun
        spans from the log entirely on Ctrl-C, so its partial RunStats
        silently overstated coverage relative to the pool venue.  Both
        must now account the same interrupt point identically."""

        def tasks():
            return [
                _InterruptingTask(50, boom_at=25),
                _InterruptingTask(30, boom_at=10**9),
            ]

        serial = SerialRunner(chunk_size=10)
        with pytest.raises(KeyboardInterrupt):
            serial.run(tasks())
        pooled = ProcessPoolRunner(2, chunk_size=10, min_parallel_runs=0)
        with pytest.raises(KeyboardInterrupt):
            pooled.run(tasks())
        assert serial.last_stats.cancelled_chunks > 0
        assert (
            serial.last_stats.cancelled_chunks
            == pooled.last_stats.cancelled_chunks
        )

    def test_distributed_venue_matches_serial_cancellations(self):
        """The coordinator's local-execution path (opaque tasks never ship
        to workers) must account a Ctrl-C exactly like the serial venue:
        the interrupted chunk and every planned-but-unrun span land in
        the log as ``cancelled``, with the stats attached to the raise."""
        import threading

        def tasks():
            return [
                _InterruptingTask(50, boom_at=25),
                _InterruptingTask(30, boom_at=10**9),
            ]

        serial = SerialRunner(chunk_size=10)
        with pytest.raises(KeyboardInterrupt):
            serial.run(tasks())

        server = WorkerServer("127.0.0.1", 0)
        port = server.bind()
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"once": True}, daemon=True
        )
        thread.start()
        try:
            dist = DistributedRunner([("127.0.0.1", port)], chunk_size=10)
            with pytest.raises(KeyboardInterrupt) as excinfo:
                dist.run(tasks())
        finally:
            thread.join(timeout=5.0)
        stats = dist.last_stats
        assert excinfo.value.run_stats is stats
        assert stats.backend == "distributed"
        assert stats.cancelled_chunks > 0
        assert (
            stats.cancelled_chunks == serial.last_stats.cancelled_chunks
        )


# -- fault-sensitivity experiment --------------------------------------------


class TestFaultSensitivity:
    def _curve(self):
        protocol = DummyProtocol(make_swap(8))
        factories = strategy_space_for_protocol(protocol)[:2]
        return fault_sensitivity(
            protocol,
            factories,
            GAMMA,
            loss_rates=(0.0, 0.6),
            crash_rates=(0.0,),
            n_runs=20,
            seed=13,
            fault_seed="fs",
        )

    def test_curve_shape_and_baseline(self):
        curve = self._curve()
        assert len(curve.points) == 2
        baseline = curve.baseline
        assert baseline is not None
        assert baseline.loss == 0.0 and baseline.crash_rate == 0.0
        assert baseline.faults is None
        assert curve.erosion(baseline) == 0.0
        lossy = curve.points[1]
        assert lossy.faults is not None and lossy.faults.channel.loss == 0.6
        assert set(curve.hung_fractions()) == {(0.0, 0.0), (0.6, 0.0)}

    def test_export_round_trips_the_fault_config(self):
        payload = to_dict(self._curve())
        assert payload["protocol"].startswith("dummy-fair")
        assert len(payload["points"]) == 2
        base, lossy = payload["points"]
        assert base["faults"] == {} and base["erosion"] == 0.0
        assert lossy["faults"]["channel"]["loss"] == 0.6
        assert {"loss", "crash_rate", "utility", "hung_fraction", "best",
                "estimates", "faults", "erosion"} <= set(lossy)

    def test_empty_strategy_space_rejected(self):
        protocol = DummyProtocol(make_swap(8))
        with pytest.raises(ValueError):
            fault_sensitivity(protocol, [], GAMMA)
