"""Sensitivity / trade-off analysis tests."""

import pytest

from repro.analysis import (
    crossover,
    dominates_everywhere,
    expected_attacker_advantage,
    gamma_ratio_sweep,
    utility_curve,
)
from repro.adversaries import LockWatchingAborter, fixed
from repro.core import STANDARD_GAMMA
from repro.functions import make_concat, make_swap
from repro.gmw import ThresholdGmwProtocol
from repro.protocols import OptNSfeProtocol, Opt2SfeProtocol


@pytest.fixture(scope="module")
def curves():
    n = 4
    gamma = STANDARD_GAMMA
    opt = utility_curve(
        OptNSfeProtocol(make_concat(n, 8)), gamma, n_runs=200, seed="s1"
    )
    thr = utility_curve(
        ThresholdGmwProtocol(make_concat(n, 8)), gamma, n_runs=200, seed="s2"
    )
    return opt, thr


class TestUtilityCurve:
    def test_covers_all_budgets(self, curves):
        opt, thr = curves
        assert set(opt.points) == {1, 2, 3}
        assert set(thr.points) == {1, 2, 3}

    def test_monotone_in_t_for_opt_nsfe(self, curves):
        opt, _ = curves
        values = [opt.value(t) for t in sorted(opt.points)]
        assert values == sorted(values)

    def test_as_rows(self, curves):
        opt, _ = curves
        rows = opt.as_rows()
        assert len(rows) == 3 and rows[0][0] == 1


class TestCrossover:
    def test_threshold_crosses_at_honest_majority(self, curves):
        opt, thr = curves
        # Threshold GMW is safer below n/2, worse from ⌈n/2⌉ = 2 on.
        assert crossover(thr, opt) == 2
        assert crossover(opt, thr) == 1

    def test_no_dominance_either_way(self, curves):
        opt, thr = curves
        assert not dominates_everywhere(opt, thr, tol=0.02)
        assert not dominates_everywhere(thr, opt, tol=0.02)

    def test_self_dominance(self, curves):
        opt, _ = curves
        assert dominates_everywhere(opt, opt)
        assert crossover(opt, opt) is None

    def test_mismatched_budgets_rejected(self, curves):
        opt, _ = curves
        other = utility_curve(
            OptNSfeProtocol(make_concat(3, 8)),
            STANDARD_GAMMA,
            n_runs=50,
            seed="s3",
        )
        with pytest.raises(ValueError):
            crossover(opt, other)


class TestGammaRatioSweep:
    def test_opt2sfe_traces_the_theorem3_line(self):
        strategies = [
            fixed("l0", lambda: LockWatchingAborter({0})),
            fixed("l1", lambda: LockWatchingAborter({1})),
        ]
        sweep = gamma_ratio_sweep(
            lambda: Opt2SfeProtocol(make_swap(16)),
            strategies,
            ratios=(0.0, 0.5),
            n_runs=250,
            seed="s4",
        )
        for ratio, utility in sweep:
            assert utility == pytest.approx((1 + ratio) / 2, abs=0.09)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            gamma_ratio_sweep(
                lambda: Opt2SfeProtocol(make_swap(16)), [], ratios=(1.0,)
            )


class TestExpectedAdvantage:
    def test_weighted_average(self, curves):
        opt, _ = curves
        beliefs = {1: 0.5, 2: 0.3, 3: 0.2}
        expected = sum(opt.value(t) * p for t, p in beliefs.items())
        assert expected_attacker_advantage(opt, beliefs) == pytest.approx(
            expected
        )

    def test_distribution_must_normalise(self, curves):
        opt, _ = curves
        with pytest.raises(ValueError):
            expected_attacker_advantage(opt, {1: 0.5})
