"""Asymptotics helpers and the function library."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    approx_eq,
    approx_leq,
    is_negligible,
    is_noticeable,
    negl_eq,
    negl_leq,
    negligible_envelope,
    strictly_less,
)
from repro.crypto import Rng
from repro.functions import (
    make_and,
    make_concat,
    make_contract_exchange,
    make_global,
    make_millionaires,
    make_swap,
    make_xor,
)


class TestAsymptotics:
    def test_negligible_functions(self):
        assert is_negligible(lambda k: 2.0**-k)
        assert is_negligible(lambda k: k**5 * 2.0**-k, poly_degree=2)
        assert not is_negligible(lambda k: 1.0 / k)
        assert not is_negligible(lambda k: 1.0 / (k**2))

    def test_noticeable_functions(self):
        assert is_noticeable(lambda k: 1.0 / k)
        assert is_noticeable(lambda k: 0.5)
        assert not is_noticeable(lambda k: 2.0**-k)

    def test_negl_leq(self):
        assert negl_leq(lambda k: 0.5, lambda k: 0.5)
        assert negl_leq(lambda k: 0.5 + 2.0**-k, lambda k: 0.5)
        assert not negl_leq(lambda k: 0.5 + 1.0 / k, lambda k: 0.5)

    def test_negl_eq(self):
        assert negl_eq(lambda k: 0.5 + 2.0**-k, lambda k: 0.5)
        assert not negl_eq(lambda k: 0.6, lambda k: 0.5)

    def test_numeric_helpers(self):
        assert approx_leq(0.76, 0.75, 0.02)
        assert not approx_leq(0.80, 0.75, 0.02)
        assert approx_eq(0.74, 0.75, 0.02)
        assert strictly_less(0.5, 0.75, 0.1)
        assert not strictly_less(0.7, 0.75, 0.1)
        with pytest.raises(ValueError):
            approx_leq(1, 1, -0.1)

    def test_envelope(self):
        assert negligible_envelope(10) == pytest.approx(2**-10)


class TestFunctionLibrary:
    def test_swap(self):
        f = make_swap(8)
        assert f.outputs_for((3, 9)) == (9, 3)
        assert not f.has_poly_domain()
        assert not f.has_poly_range()

    def test_and_metadata(self):
        f = make_and()
        assert f.outputs_for((1, 1)) == (1, 1)
        assert f.has_poly_domain() and f.has_poly_range()

    def test_xor(self):
        assert make_xor().outputs_for((1, 1)) == (0, 0)

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=30)
    def test_millionaires(self, a, b):
        f = make_millionaires(8)
        expected = 1 if a > b else 0
        assert f.outputs_for((a, b)) == (expected, expected)

    def test_concat(self):
        f = make_concat(3, 8)
        assert f.outputs_for((1, 2, 3)) == ((1, 2, 3),) * 3
        with pytest.raises(ValueError):
            make_concat(1, 8)

    def test_contract_exchange_nonzero_samples(self):
        f = make_contract_exchange(16)
        rng = Rng(1)
        for _ in range(30):
            x1, x2 = f.sample_inputs(rng)
            assert x1 != 0 and x2 != 0

    def test_arity_enforced(self):
        f = make_and()
        with pytest.raises(ValueError):
            f.outputs_for((1, 1, 1))

    def test_bad_evaluator_caught(self):
        from repro.functions import FunctionSpec

        f = FunctionSpec(
            name="broken",
            n_parties=2,
            evaluate=lambda inputs: (1,),  # wrong arity out
            default_inputs=(0, 0),
            sample_inputs=lambda rng: (0, 0),
        )
        with pytest.raises(ValueError):
            f.outputs_for((0, 0))

    def test_corrupted_output_values(self):
        f = make_swap(8)
        assert f.corrupted_output_values((3, 9), {0}) == {9}
        assert f.corrupted_output_values((3, 9), {0, 1}) == {9, 3}

    def test_make_global(self):
        f = make_global(
            "sum3",
            3,
            lambda v: sum(v) % 4,
            ((0, 1), (0, 1), (0, 1)),
            output_domain=(0, 1, 2, 3),
        )
        assert f.outputs_for((1, 1, 1)) == (3, 3, 3)
        rng = Rng(2)
        assert all(x in (0, 1) for x in f.sample_inputs(rng))

    def test_sampled_inputs_in_domain(self):
        f = make_and()
        rng = Rng(3)
        for _ in range(20):
            x1, x2 = f.sample_inputs(rng)
            assert x1 in (0, 1) and x2 in (0, 1)
