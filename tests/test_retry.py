"""Fault-tolerant runtime tests: deterministic fault injection, in-pool
retries, serial degradation after retry exhaustion, chunk timeouts,
broken-pool recovery, and failure-path stats.

Every test passes explicit ``retry``/``fault`` arguments so the suite is
stable no matter what ``REPRO_FAULT_RATE``/``REPRO_MAX_RETRIES`` the
environment sets (the fault-tolerance CI job sets both on purpose).
"""

import pickle

import pytest

from repro.adversaries import strategy_space_for_protocol
from repro.analysis import (
    chunk_stats_to_dict,
    run_batch,
    run_stats_to_dict,
    sweep_strategies,
    to_dict,
)
from repro.core import PayoffVector
from repro.core.utility import EventCounts
from repro.functions import make_swap
from repro.protocols import Opt2SfeProtocol
from repro.runtime import (
    NO_FAULTS,
    FaultSpec,
    InjectedFault,
    MeasuredCounts,
    ProcessPoolRunner,
    RetryPolicy,
    SerialRunner,
    UtilityBoundStop,
    run_task_chunk,
)

GAMMA = PayoffVector(0.0, 0.0, 1.0, 0.5)

#: Fast in-pool retries for tests.
FAST = dict(backoff_s=0.01, backoff_multiplier=1.0)


def _workload():
    protocol = Opt2SfeProtocol(make_swap(8))
    factory = strategy_space_for_protocol(protocol)[1]
    return protocol, factory


def _clean_serial(protocol, factory, n_runs, seed, **kw):
    """The failure-free serial reference measurement."""
    return run_batch(
        protocol, factory, n_runs, seed=seed,
        runner=SerialRunner(fault=NO_FAULTS), **kw,
    )


def pool(jobs, chunk_size=None, retry=None, fault=None):
    return ProcessPoolRunner(
        jobs,
        chunk_size=chunk_size,
        min_parallel_runs=0,
        retry=retry,
        fault=fault,
    )


# -- fault spec determinism and env parsing ----------------------------------


class TestFaultSpec:
    def test_fault_pattern_is_deterministic(self):
        spec = FaultSpec(rate=0.5, seed="det")
        pattern = [spec.fault_attempts(t, s) for t in range(4) for s in (0, 7, 14)]
        again = [spec.fault_attempts(t, s) for t in range(4) for s in (0, 7, 14)]
        assert pattern == again
        assert any(c > 0 for c in pattern)  # rate 0.5 over 12 chunks

    def test_consecutive_failures_then_success_forever(self):
        spec = FaultSpec(rate=0.97, seed=3, max_consecutive=4)
        for t in range(3):
            k = spec.fault_attempts(t, 0)
            assert 0 <= k <= 4
            for attempt in range(8):
                assert spec.should_fail(t, 0, attempt) == (attempt < k)

    def test_inactive_spec_never_fails(self):
        assert not NO_FAULTS.active
        assert NO_FAULTS.fault_attempts(0, 0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(rate=0.5, kind="segfault")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_RATE", raising=False)
        assert FaultSpec.from_env() is None
        monkeypatch.setenv("REPRO_FAULT_RATE", "0")
        assert FaultSpec.from_env() is None
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.25")
        monkeypatch.setenv("REPRO_FAULT_KIND", "exit")
        monkeypatch.setenv("REPRO_FAULT_SEED", "ci")
        spec = FaultSpec.from_env()
        assert spec.rate == 0.25 and spec.kind == "exit" and spec.seed == "ci"
        monkeypatch.setenv("REPRO_FAULT_RATE", "nope")
        with pytest.raises(ValueError):
            FaultSpec.from_env()

    def test_from_env_numeric_seed_matches_int_spec(self, monkeypatch):
        """Regression: ``encode_seed`` is type-tagged, so the env string
        "0" and the programmatic default ``seed=0`` used to produce
        *different* fault patterns.  Numeric env seeds must parse to int."""
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.5")
        monkeypatch.delenv("REPRO_FAULT_KIND", raising=False)
        monkeypatch.setenv("REPRO_FAULT_SEED", "0")
        spec = FaultSpec.from_env()
        assert spec.seed == 0 and isinstance(spec.seed, int)
        reference = FaultSpec(rate=0.5, seed=0)
        pattern = [spec.fault_attempts(t, s) for t in range(4) for s in (0, 9)]
        expected = [reference.fault_attempts(t, s) for t in range(4) for s in (0, 9)]
        assert pattern == expected
        # Non-numeric seeds still pass through as strings.
        monkeypatch.setenv("REPRO_FAULT_SEED", "ci-run")
        assert FaultSpec.from_env().seed == "ci-run"

    def test_run_task_chunk_injects(self):
        class Tiny:
            n_runs = 4

            def run_chunk(self, start, stop):
                return stop - start

        spec = FaultSpec(rate=1.0, seed=0, max_consecutive=1)
        with pytest.raises(InjectedFault):
            run_task_chunk(Tiny(), 0, 0, 4, attempt=0, fault=spec)
        # Attempt past the failure budget succeeds.
        assert run_task_chunk(Tiny(), 0, 0, 4, attempt=1, fault=spec) == 4
        # Destructive kinds degrade to a plain raise outside a worker.
        nasty = FaultSpec(rate=1.0, kind="exit", seed=0, max_consecutive=1)
        with pytest.raises(InjectedFault):
            run_task_chunk(Tiny(), 0, 0, 4, attempt=0, fault=nasty, in_worker=False)


class TestRetryPolicy:
    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
        monkeypatch.delenv("REPRO_CHUNK_TIMEOUT", raising=False)
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 2 and policy.chunk_timeout_s is None
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        monkeypatch.setenv("REPRO_CHUNK_TIMEOUT", "1.5")
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 5 and policy.chunk_timeout_s == 1.5
        monkeypatch.setenv("REPRO_MAX_RETRIES", "many")
        with pytest.raises(ValueError):
            RetryPolicy.from_env()

    @pytest.mark.parametrize("raw", ["0", "-3", "0.0"])
    def test_from_env_rejects_non_positive_timeout(self, monkeypatch, raw):
        """Regression: a non-positive ``REPRO_CHUNK_TIMEOUT`` used to be
        silently coerced to "no deadline" — the opposite of what a CI job
        writing ``REPRO_CHUNK_TIMEOUT=0`` to tighten the ladder intended.
        It must fail loudly, naming the variable."""
        monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
        monkeypatch.setenv("REPRO_CHUNK_TIMEOUT", raw)
        with pytest.raises(ValueError, match="REPRO_CHUNK_TIMEOUT"):
            RetryPolicy.from_env()

    def test_backoff_grows(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_multiplier=2.0)
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(3) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(chunk_timeout_s=0.0)


# -- acceptance: recovery is invisible in the results ------------------------


def test_retried_chunks_are_bit_identical():
    """(a) In-pool retries reproduce the failure-free serial counts."""
    protocol, factory = _workload()
    clean = _clean_serial(protocol, factory, 60, seed=5)
    runner = pool(
        3, chunk_size=7,
        retry=RetryPolicy(max_retries=3, **FAST),
        fault=FaultSpec(rate=0.6, seed="t1"),
    )
    faulty = run_batch(protocol, factory, 60, seed=5, runner=runner)
    assert faulty == clean
    assert faulty.total == 60
    stats = faulty.run_stats
    assert stats.failed_attempts > 0
    assert stats.retries > 0
    assert stats.executions == 60


def test_retry_exhaustion_degrades_to_serial_replay():
    """(b) With retries exhausted the batch completes via in-process
    replay rather than raising — still bit-identical."""
    protocol, factory = _workload()
    clean = _clean_serial(protocol, factory, 60, seed=5)
    runner = pool(
        2, chunk_size=15,
        retry=RetryPolicy(max_retries=1, **FAST),
        fault=FaultSpec(rate=1.0, seed="t2"),  # every in-pool attempt fails
    )
    counts = run_batch(protocol, factory, 60, seed=5, runner=runner)
    assert counts == clean
    stats = counts.run_stats
    assert stats.serial_replays == stats.n_chunks == 4
    assert stats.degraded
    assert all(c.outcome == "replayed" for c in stats.chunks)


def test_worker_death_breaks_pool_and_degrades():
    """A worker that dies mid-chunk (BrokenProcessPool) degrades the
    batch to serial replay without losing or biasing it."""
    protocol, factory = _workload()
    clean = _clean_serial(protocol, factory, 60, seed=5)
    runner = pool(
        2, chunk_size=20,
        retry=RetryPolicy(max_retries=1, **FAST),
        fault=FaultSpec(rate=1.0, kind="exit", seed="t3"),
    )
    counts = run_batch(protocol, factory, 60, seed=5, runner=runner)
    assert counts == clean
    assert counts.run_stats.degraded
    assert counts.run_stats.serial_replays == counts.run_stats.n_chunks


def test_chunk_timeout_triggers_retry():
    """A chunk that stalls past its deadline is re-executed."""
    protocol, factory = _workload()
    clean = _clean_serial(protocol, factory, 30, seed=5)
    runner = pool(
        2, chunk_size=10,
        retry=RetryPolicy(max_retries=3, chunk_timeout_s=0.2, **FAST),
        fault=FaultSpec(rate=0.6, kind="sleep", sleep_s=0.6, seed="sleepy"),
    )
    counts = run_batch(protocol, factory, 30, seed=5, runner=runner)
    assert counts == clean
    assert counts.run_stats.timeouts >= 1
    assert counts.run_stats.failed_attempts >= counts.run_stats.timeouts


def test_wedged_worker_does_not_leak_pool_slot():
    """Regression: ``future.cancel()`` is a no-op on an already-*running*
    future, so a worker wedged past its deadline used to keep its pool
    slot and the retry queued behind the very sleep it was escaping —
    serially eating a queue-wait deadline per retry until the ladder
    exhausted.  After the fix the pool is respawned on a wedged timeout,
    so retries land immediately and complete well before the sleeps
    would have drained."""
    import time

    protocol, factory = _workload()
    clean = _clean_serial(protocol, factory, 80, seed=5)
    runner = pool(
        2, chunk_size=40,
        retry=RetryPolicy(max_retries=2, chunk_timeout_s=0.15, **FAST),
        # Every chunk's first attempt sleeps 3 s — 20x the deadline, and
        # longer than the whole test budget if a slot were still leaked.
        fault=FaultSpec(
            rate=1.0, kind="sleep", sleep_s=3.0, seed="wedge",
            max_consecutive=1,
        ),
    )
    t0 = time.perf_counter()
    counts = run_batch(protocol, factory, 80, seed=5, runner=runner)
    elapsed = time.perf_counter() - t0
    assert counts == clean
    assert counts.run_stats.timeouts >= 1
    # The retries themselves landed in the pool: no degradation to
    # trusted serial replay, and no waiting out the 3 s sleeps.
    assert counts.run_stats.serial_replays == 0
    assert not counts.run_stats.degraded
    assert elapsed < 3.0


def test_serial_runner_walks_the_same_ladder():
    """The serial backend (and thus the pool's small-batch fallback) is
    just as fault-tolerant."""
    protocol, factory = _workload()
    clean = _clean_serial(protocol, factory, 30, seed=5)
    runner = SerialRunner(
        retry=RetryPolicy(max_retries=1, **FAST),
        fault=FaultSpec(rate=1.0, seed="serial-faults"),
    )
    counts = run_batch(protocol, factory, 30, seed=5, runner=runner)
    assert counts == clean
    assert counts.run_stats.backend == "serial"
    assert counts.run_stats.serial_replays == counts.run_stats.n_chunks == 1

    fallback = ProcessPoolRunner(  # 30 runs < default threshold -> serial
        4,
        retry=RetryPolicy(max_retries=1, **FAST),
        fault=FaultSpec(rate=1.0, seed="serial-faults"),
    )
    via_fallback = run_batch(protocol, factory, 30, seed=5, runner=fallback)
    assert via_fallback == clean
    assert fallback.last_stats.backend == "serial"


def test_early_stop_and_retry_stop_at_same_run_index():
    """(d) Early stopping under fault injection halts at the identical
    run index as the failure-free serial backend."""
    protocol, factory = _workload()
    rule = UtilityBoundStop(GAMMA, bound=0.95, min_runs=16)
    serial = run_batch(
        protocol, factory, 300, seed=8,
        runner=SerialRunner(chunk_size=25, fault=NO_FAULTS), early_stop=rule,
    )
    faulty = run_batch(
        protocol, factory, 300, seed=8, early_stop=rule,
        runner=pool(
            3, chunk_size=25,
            retry=RetryPolicy(max_retries=3, **FAST),
            fault=FaultSpec(rate=0.5, seed="es"),
        ),
    )
    assert serial == faulty
    assert serial.total == faulty.total < 300
    assert faulty.run_stats.stopped_early
    assert faulty.run_stats.cancelled_chunks > 0


def test_sweep_with_faults_matches_clean_sweep():
    """Recovery also composes with multi-task sweeps."""
    protocol = Opt2SfeProtocol(make_swap(8))
    factories = strategy_space_for_protocol(protocol)[:3]
    clean = sweep_strategies(
        protocol, factories, GAMMA, n_runs=40, seed=(11, "sweep"),
        runner=SerialRunner(fault=NO_FAULTS),
    )
    faulty = sweep_strategies(
        protocol, factories, GAMMA, n_runs=40, seed=(11, "sweep"),
        runner=pool(
            2, chunk_size=10,
            retry=RetryPolicy(max_retries=2, **FAST),
            fault=FaultSpec(rate=0.4, seed="sweep"),
        ),
    )
    assert clean == faulty


# -- failure-path observability ----------------------------------------------


class AlwaysBroken:
    """A task with a genuine bug: every attempt raises."""

    n_runs = 40

    def run_chunk(self, start, stop):
        raise ValueError("genuine task bug")


def test_real_bug_propagates_but_stats_and_siblings_survive():
    """A genuine task bug still raises — after cancelling outstanding
    futures and recording last_stats in a finally."""
    runner = pool(
        2, chunk_size=10,
        retry=RetryPolicy(max_retries=1, **FAST), fault=NO_FAULTS,
    )
    with pytest.raises(ValueError):
        runner.run([AlwaysBroken()])
    assert runner.last_stats is not None
    assert runner.last_stats.failed_attempts >= 2  # first try + retry

    serial = SerialRunner(retry=RetryPolicy(max_retries=2, **FAST), fault=NO_FAULTS)
    with pytest.raises(ValueError):
        serial.run([AlwaysBroken()])
    assert serial.last_stats is not None
    assert serial.last_stats.failed_attempts == 3  # initial + 2 retries


def test_chunk_records_partition_the_run_range():
    protocol, factory = _workload()
    runner = pool(
        2, chunk_size=16,
        retry=RetryPolicy(max_retries=2, **FAST),
        fault=FaultSpec(rate=0.5, seed="records"),
    )
    counts = run_batch(protocol, factory, 64, seed=2, runner=runner)
    stats = counts.run_stats
    spans = sorted((c.start, c.stop) for c in stats.chunks)
    assert spans == [(0, 16), (16, 32), (32, 48), (48, 64)]
    for c in stats.chunks:
        assert c.outcome in ("ok", "retried", "replayed")
        assert c.attempts >= 1
        assert c.n_runs == c.stop - c.start
    retried = [c for c in stats.chunks if c.outcome in ("retried", "replayed")]
    assert len(retried) > 0
    assert all(c.attempts > 1 for c in retried)


def test_failure_stats_export():
    protocol, factory = _workload()
    runner = pool(
        2, chunk_size=10,
        retry=RetryPolicy(max_retries=2, **FAST),
        fault=FaultSpec(rate=0.5, seed="export"),
    )
    counts = run_batch(protocol, factory, 40, seed=1, runner=runner)
    d = to_dict(counts.run_stats)
    assert d == run_stats_to_dict(counts.run_stats)
    for key in (
        "failed_attempts", "retries", "timeouts", "serial_replays",
        "cancelled_chunks", "degraded", "chunks",
    ):
        assert key in d
    assert d["failed_attempts"] == counts.run_stats.failed_attempts
    assert len(d["chunks"]) == len(counts.run_stats.chunks)
    chunk = counts.run_stats.chunks[0]
    assert to_dict(chunk) == chunk_stats_to_dict(chunk)
    assert chunk_stats_to_dict(chunk)["outcome"] == chunk.outcome

    history = runner.stats_history
    assert history[-1] is runner.last_stats


def test_measured_counts_semantics():
    protocol, factory = _workload()
    counts = _clean_serial(protocol, factory, 20, seed=9)
    assert isinstance(counts, MeasuredCounts)
    assert counts.run_stats is not None
    assert counts.run_stats.executions == 20

    # Equality is by event counts alone, symmetric with EventCounts.
    bare = EventCounts().merge(counts)
    assert counts == bare and bare == counts

    # Stats survive pickling (they no longer ride a dynamic attribute).
    thawed = pickle.loads(pickle.dumps(counts))
    assert thawed == counts
    assert thawed.run_stats == counts.run_stats

    # Merging folds back into plain counts: run_stats describes one
    # finished batch, not a combination of them.
    other = _clean_serial(protocol, factory, 20, seed=10)
    merged = counts + other
    assert merged.total == 40
    assert not hasattr(merged, "run_stats")


def test_explicit_no_faults_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
    runner = SerialRunner(fault=NO_FAULTS)
    assert runner.fault is None
    env_runner = SerialRunner()
    assert env_runner.fault is not None and env_runner.fault.rate == 1.0
