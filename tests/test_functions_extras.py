"""Extra function specs + GMW-over-random-functions property test."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries import PassiveAdversary
from repro.crypto import Rng
from repro.engine import run_execution
from repro.functions import (
    make_max,
    make_rotate,
    make_set_intersection,
    make_set_membership,
    make_vote,
)
from repro.gmw import gmw_from_spec


class TestSetIntersection:
    def test_evaluation(self):
        f = make_set_intersection(4)
        assert f.outputs_for((0b1010, 0b0110)) == (0b0010, 0b0010)

    def test_domains_polynomial(self):
        f = make_set_intersection(4)
        assert f.has_poly_domain() and f.has_poly_range()

    def test_usable_by_gordon_katz(self):
        from repro.protocols import GordonKatzProtocol

        protocol = GordonKatzProtocol(make_set_intersection(2), p=2)
        result = run_execution(
            protocol, (0b11, 0b01), PassiveAdversary(), Rng(1)
        )
        assert result.outputs[0].value == 0b01

    def test_universe_bounds(self):
        with pytest.raises(ValueError):
            make_set_intersection(0)
        with pytest.raises(ValueError):
            make_set_intersection(20)


class TestSetMembership:
    @given(st.integers(0, 7), st.integers(0, 255))
    @settings(max_examples=30)
    def test_evaluation(self, element, mask):
        f = make_set_membership(8)
        expected = (mask >> element) & 1
        assert f.outputs_for((element, mask)) == (expected, expected)

    def test_samples_in_domain(self):
        f = make_set_membership(8)
        rng = Rng(2)
        for _ in range(20):
            element, mask = f.sample_inputs(rng)
            assert 0 <= element < 8 and 0 <= mask < 256


class TestVote:
    def test_majority(self):
        f = make_vote(5)
        assert f.outputs_for((1, 1, 1, 0, 0))[0] == 1
        assert f.outputs_for((1, 1, 0, 0, 0))[0] == 0

    def test_tie_resolves_to_zero(self):
        f = make_vote(4)
        assert f.outputs_for((1, 1, 0, 0))[0] == 0

    def test_usable_by_opt_nsfe(self):
        from repro.protocols import OptNSfeProtocol

        protocol = OptNSfeProtocol(make_vote(5))
        result = run_execution(
            protocol, (1, 0, 1, 1, 0), PassiveAdversary(), Rng(3)
        )
        assert all(rec.value == 1 for rec in result.outputs.values())


class TestMax:
    def test_winner_and_value(self):
        f = make_max(4, 8)
        assert f.outputs_for((3, 200, 7, 9))[0] == (1, 200)

    def test_tie_break_lowest_index(self):
        f = make_max(3, 4)
        assert f.outputs_for((5, 5, 2))[0] == (0, 5)


class TestRotate:
    def test_private_outputs(self):
        f = make_rotate(4, 8)
        assert f.outputs_for((10, 20, 30, 40)) == (20, 30, 40, 10)

    def test_corrupted_output_values(self):
        f = make_rotate(3, 8)
        assert f.corrupted_output_values((1, 2, 3), {0, 2}) == {2, 1}


class TestGmwOnRandomFunctions:
    """GMW == cleartext evaluation for randomly tabulated functions —
    the substrate-correctness property test behind every experiment."""

    @given(st.integers(0, 2**16 - 1), st.integers(0, 3), st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_random_truth_table(self, table_bits, x1, x2):
        from repro.functions import make_global

        table = [(table_bits >> i) & 1 for i in range(16)]

        def func(inputs):
            a, b = inputs
            return table[(a << 2) | b]

        spec = make_global(
            "random-table",
            2,
            func,
            (tuple(range(4)), tuple(range(4))),
            output_bits=1,
        )
        protocol = gmw_from_spec(spec, [2, 2])
        result = run_execution(
            protocol,
            (x1, x2),
            PassiveAdversary(),
            Rng(("tbl", table_bits, x1, x2)),
        )
        assert result.outputs[0].value == func((x1, x2))
        assert result.outputs[1].value == func((x1, x2))
