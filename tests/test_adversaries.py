"""Adversary machinery tests: driver, probes, strategy space."""

import pytest

from repro.adversaries import (
    AbortAtRound,
    AdversaryFactory,
    LockWatchingAborter,
    PassiveAdversary,
    RandomSingleCorruption,
    RandomTCorruption,
    a1_strategy,
    a2_strategy,
    corruption_sets,
    fixed,
    standard_strategy_space,
    strategy_space_for_protocol,
)
from repro.adversaries.multiparty import RandomAllButOne
from repro.crypto import Rng
from repro.engine import run_execution
from repro.functions import make_swap
from repro.protocols import Opt2SfeProtocol


class TestFactories:
    def test_fixed_factory_names_instances(self):
        factory = fixed("my-strategy", lambda: PassiveAdversary({0}))
        adversary = factory(Rng(1))
        assert adversary.name == "my-strategy"

    def test_factory_fresh_instances(self):
        factory = fixed("s", lambda: LockWatchingAborter({0}))
        a = factory(Rng(1))
        b = factory(Rng(2))
        assert a is not b

    def test_random_single_corruption_uses_rng(self):
        picks = {
            tuple(RandomSingleCorruption(3, Rng(k))._static_corruptions)
            for k in range(60)
        }
        assert picks == {(0,), (1,), (2,)}

    def test_random_t_corruption_size(self):
        adversary = RandomTCorruption(6, 3, Rng(5))
        assert len(adversary._static_corruptions) == 3

    def test_random_all_but_one(self):
        adversary = RandomAllButOne(4, Rng(3))
        assert len(adversary._static_corruptions) == 3

    def test_a1_a2(self):
        assert a1_strategy()._static_corruptions == {0}
        assert a2_strategy()._static_corruptions == {1}

    def test_lock_watching_requires_corruption(self):
        with pytest.raises(ValueError):
            LockWatchingAborter(set())


class TestStrategySpace:
    def test_corruption_sets_enumeration(self):
        sets = list(corruption_sets(3))
        assert frozenset({0}) in sets
        assert frozenset({0, 1}) in sets
        assert frozenset({0, 1, 2}) not in sets  # default cap n−1
        assert len(sets) == 6

    def test_corruption_sets_cap(self):
        sets = list(corruption_sets(4, max_size=1))
        assert len(sets) == 4

    def test_standard_space_composition(self):
        space = standard_strategy_space(2, 4, ["F_x"])
        names = [f.name for f in space]
        assert any(n.startswith("passive") for n in names)
        assert any(n.startswith("lock-watch") for n in names)
        assert any(n.startswith("abort@r2") for n in names)
        assert any("func-abort[F_x,ask]" in n for n in names)
        assert len(names) == len(set(names))

    def test_space_from_protocol_skips_ot_instances(self):
        from repro.functions import make_and
        from repro.gmw import gmw_from_spec

        protocol = gmw_from_spec(make_and(), [1, 1])
        space = strategy_space_for_protocol(protocol)
        assert not any("ot:" in f.name for f in space)

    def test_space_from_protocol_includes_hybrids(self):
        protocol = Opt2SfeProtocol(make_swap(8))
        space = strategy_space_for_protocol(protocol)
        assert any("F_sharegen2" in f.name for f in space)


class TestDriverMechanics:
    def setup_method(self):
        self.protocol = Opt2SfeProtocol(make_swap(16))

    def test_passive_claims_only_real_outputs(self):
        adversary = PassiveAdversary({0})
        result = run_execution(self.protocol, (3, 9), adversary, Rng(1))
        assert result.adversary_claim == 9  # p0's output = x2
        assert not result.outputs[1].is_abort

    def test_abort_at_round_goes_silent(self):
        adversary = AbortAtRound({0}, 0, claim=False)
        result = run_execution(self.protocol, (3, 9), adversary, Rng(2))
        assert adversary.aborted
        assert result.adversary_claim is None

    def test_lock_watcher_claims_verified_value(self):
        hits = 0
        for k in range(60):
            adversary = LockWatchingAborter({0})
            result = run_execution(
                self.protocol, (3, 9), adversary, Rng(("c", k))
            )
            if result.adversary_claim is not None:
                assert result.adversary_claim == 9
                hits += 1
        assert hits == 60  # it always ends up learning (E10 or E11)

    def test_abort_suppresses_corrupted_messages(self):
        adversary = AbortAtRound({0}, 1, claim=False)
        result = run_execution(self.protocol, (3, 9), adversary, Rng(3))
        # No message from party 0 after round 0 may appear.
        late = [
            m
            for m in result.transcript
            if m.sender == 0 and m.round >= 1
        ]
        assert late == []
