"""JSON export tests."""

import json

import pytest

from repro.adversaries import LockWatchingAborter, fixed
from repro.analysis import (
    assess_protocol,
    build_order,
    measure_reconstruction_rounds,
    save_json,
    sweep_strategies,
    to_dict,
)
from repro.core import STANDARD_GAMMA, game_from_estimates
from repro.functions import make_swap
from repro.protocols import Opt2SfeProtocol, SingleRoundProtocol


@pytest.fixture(scope="module")
def artefacts():
    swap = make_swap(8)
    strategies = [
        fixed("lock0", lambda: LockWatchingAborter({0})),
        fixed("lock1", lambda: LockWatchingAborter({1})),
    ]
    protocols = [Opt2SfeProtocol(swap), SingleRoundProtocol(swap)]
    assessments = [
        assess_protocol(p, strategies, STANDARD_GAMMA, 100, seed="exp")
        for p in protocols
    ]
    estimates = []
    for p in protocols:
        estimates.extend(
            sweep_strategies(p, strategies, STANDARD_GAMMA, 100, seed="exp")
        )
    return {
        "assessment": assessments[0],
        "order": build_order(assessments, tolerance=0.08),
        "game": game_from_estimates(STANDARD_GAMMA, estimates),
        "estimate": assessments[0].best_attack,
        "reconstruction": measure_reconstruction_rounds(
            protocols[1], n_runs=50, seed="exp"
        ),
    }


class TestToDict:
    def test_estimate(self, artefacts):
        d = to_dict(artefacts["estimate"])
        assert d["protocol"] == "opt-2sfe[swap8]"
        assert 0 <= d["mean"] <= 1
        assert set(d["events"]) <= {"E00", "E01", "E10", "E11"}

    def test_assessment(self, artefacts):
        d = to_dict(artefacts["assessment"])
        assert d["gamma"]["gamma10"] == 1.0
        assert d["best_attack"]["adversary"].startswith("lock")

    def test_order(self, artefacts):
        d = to_dict(artefacts["order"])
        assert d["maximal_elements"] == ["opt-2sfe[swap8]"]
        assert len(d["assessments"]) == 2

    def test_game(self, artefacts):
        d = to_dict(artefacts["game"])
        assert d["minimax_protocols"] == ["opt-2sfe[swap8]"]
        assert "single-round[swap8]" in d["matrix"]

    def test_reconstruction(self, artefacts):
        d = to_dict(artefacts["reconstruction"])
        assert d["reconstruction_rounds"] == 1

    def test_gamma(self):
        assert to_dict(STANDARD_GAMMA)["gamma11"] == 0.5

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            to_dict("not-an-artefact")


class TestSaveJson:
    def test_single_artefact_roundtrip(self, artefacts, tmp_path):
        path = save_json(artefacts["assessment"], tmp_path / "a.json")
        loaded = json.loads(path.read_text())
        assert loaded["protocol"] == "opt-2sfe[swap8]"

    def test_list_of_artefacts(self, artefacts, tmp_path):
        path = save_json(
            [artefacts["assessment"], artefacts["estimate"]],
            tmp_path / "list.json",
        )
        loaded = json.loads(path.read_text())
        assert isinstance(loaded, list) and len(loaded) == 2

    def test_output_is_valid_json(self, artefacts, tmp_path):
        for key, artefact in artefacts.items():
            path = save_json(artefact, tmp_path / f"{key}.json")
            json.loads(path.read_text())  # no exception
