"""Service venue end-to-end tests: the JSON-RPC job server over HTTP.

Every test in the HTTP classes drives a real ``ServiceServer`` on a
localhost ephemeral port through real sockets — the submission path,
the dedupe contract (N concurrent identical requests → one execution,
byte-identical payloads), monotonic chunk streaming, spec-compliant
JSON-RPC error objects, the rate-limit and queue-full admission errors,
and a shutdown that drains in-flight jobs without leaking threads or
processes (the chaos harness's leak discipline).  Explicit
``fault``/rate/queue arguments keep the suite stable whatever
``REPRO_FAULT_*``/``REPRO_SERVICE_*`` the environment sets.
"""

import http.client
import json
import multiprocessing
import os
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

import repro
from repro.adversaries import strategy_space_for_protocol
from repro.analysis import estimate_utility
from repro.analysis.export import estimate_to_dict, run_stats_to_dict
from repro.core import PayoffVector
from repro.functions import make_swap
from repro.protocols import Opt2SfeProtocol
from repro.runtime import NO_FAULTS, SerialRunner
from repro.service import (
    ENV_SERVICE_BURST,
    ENV_SERVICE_QUEUE,
    ENV_SERVICE_RATE,
    JobPool,
    ServiceServer,
    TokenBucket,
    resolve_service_burst,
    resolve_service_queue,
    resolve_service_rate,
)

GAMMA = PayoffVector(0.0, 0.0, 1.0, 0.5)

#: A small, always-available estimate_utility request.
REQUEST = {
    "protocol": "opt-2sfe",
    "strategy": "lock-watch[0]",
    "runs": 64,
    "seed": 11,
}


def _serial():
    return SerialRunner(fault=NO_FAULTS)


def _post(port, body, tenant=None, timeout=60):
    """One raw POST; returns ``(status, decoded body or None)``."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        headers = {"Content-Type": "application/json"}
        if tenant is not None:
            headers["X-Repro-Tenant"] = tenant
        conn.request("POST", "/", body, headers)
        resp = conn.getresponse()
        raw = resp.read()
        return resp.status, (json.loads(raw) if raw else None)
    finally:
        conn.close()


def _rpc(port, method, params=None, request_id=1, tenant=None, timeout=60):
    body = {"jsonrpc": "2.0", "id": request_id, "method": method}
    if params is not None:
        body["params"] = params
    status, decoded = _post(port, json.dumps(body), tenant=tenant,
                            timeout=timeout)
    assert status == 200
    return decoded


def _result(port, job_id, tenant=None, timeout_s=60):
    reply = _rpc(port, "job.result",
                 {"job_id": job_id, "timeout_s": timeout_s}, tenant=tenant)
    assert "result" in reply, reply
    return reply["result"]


@contextmanager
def _server(**kw):
    kw.setdefault("runner_factory", _serial)
    kw.setdefault("rate", 10_000.0)
    kw.setdefault("burst", 10_000)
    kw.setdefault("queue_limit", 16)
    kw.setdefault("workers", 2)
    srv = ServiceServer(**kw)
    srv.bind()
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown(drain=False)
        thread.join(10)


def _leak_failure(threads_before, deadline_s=10.0):
    """``None`` once the process is back to its pre-test footprint
    (the chaos harness's leak check, applied to the service venue)."""
    t_end = time.monotonic() + deadline_s
    while True:
        children = multiprocessing.active_children()
        threads = threading.active_count()
        if not children and threads <= threads_before:
            return None
        if time.monotonic() >= t_end:
            return (
                f"leaked: {len(children)} process(es), "
                f"{max(0, threads - threads_before)} extra thread(s)"
            )
        time.sleep(0.05)


class TestLifecycle:
    def test_full_job_lifecycle_over_http(self):
        with _server() as srv:
            reply = _rpc(srv.port, "estimate_utility", REQUEST)
            sub = reply["result"]
            assert sub["deduped"] is False
            job_id = sub["job_id"]
            assert len(job_id) == 64 and int(job_id, 16) >= 0

            result = _result(srv.port, job_id)
            status = _rpc(srv.port, "job.status", {"job_id": job_id})["result"]
            assert status["state"] == "done"
            assert status["progress"]["executions"] == REQUEST["runs"]

            # The artefact is exactly what the library computes directly
            # (the registry's opt-2sfe wraps a 16-bit swap).
            protocol = Opt2SfeProtocol(make_swap(16))
            factory = next(
                f for f in strategy_space_for_protocol(protocol)
                if f.name == REQUEST["strategy"]
            )
            direct = estimate_to_dict(estimate_utility(
                protocol, factory, GAMMA,
                n_runs=REQUEST["runs"], seed=REQUEST["seed"],
                runner=_serial(),
            ))
            assert result["artifact"] == direct
            # estimate_to_dict has no timing subtree, so the
            # deterministic payload is the artefact itself.
            assert result["deterministic_payload"] == direct
            # RunStats ride along, service counters included.
            assert result["run_stats"]
            last = result["run_stats"][-1]
            assert last["executions"] == REQUEST["runs"]
            assert "service_dedup_hits" in last
            assert "service_rate_limited" in last

    def test_service_info_reports_bound_port(self):
        with _server() as srv:
            info = _rpc(srv.port, "service.info")["result"]
            assert info["port"] == srv.port
            assert info["host"] == "127.0.0.1"
            assert "estimate_utility" in info["methods"]
            assert "job.stream" in info["methods"]

    def test_ephemeral_bind_returns_real_port(self):
        srv = ServiceServer(port=0, runner_factory=_serial)
        try:
            port = srv.bind()
            assert port != 0 and srv.port == port
        finally:
            srv.shutdown(drain=False)

    def test_result_before_done_and_cancel(self):
        gate = threading.Event()

        def blocked(runner, params):
            gate.wait(30)
            return {"ok": True}

        with _server(workers=1) as srv:
            srv.register_method("test.block", blocked)
            running = _rpc(srv.port, "test.block", {"k": 1})["result"]["job_id"]
            pending = _rpc(srv.port, "test.block", {"k": 2})["result"]["job_id"]
            try:
                reply = _rpc(srv.port, "job.result",
                             {"job_id": running, "timeout_s": 0})
                assert reply["error"]["code"] == -32002  # JOB_NOT_DONE
                assert reply["error"]["data"]["state"] in ("pending", "running")

                # A pending job cancels; a running one does not.
                got = _rpc(srv.port, "job.cancel", {"job_id": pending})["result"]
                assert got["cancelled"] is True
                got = _rpc(srv.port, "job.cancel", {"job_id": running})["result"]
                assert got["cancelled"] is False
            finally:
                gate.set()
            assert _result(srv.port, running)["artifact"] == {"ok": True}
            reply = _rpc(srv.port, "job.result",
                         {"job_id": pending, "timeout_s": 30})
            assert reply["error"]["code"] == -32004  # JOB_CANCELLED

    def test_unknown_job_id(self):
        with _server() as srv:
            for method in ("job.status", "job.result", "job.stream",
                           "job.cancel"):
                reply = _rpc(srv.port, method, {"job_id": "f" * 64})
                assert reply["error"]["code"] == -32001, method


class TestDedupe:
    def test_concurrent_identical_requests_execute_once(self):
        n_clients = 4
        request = dict(REQUEST, runs=96, seed=23)
        with _server(workers=2) as srv:
            barrier = threading.Barrier(n_clients)
            submissions, results, errors = [], [], []

            def client():
                try:
                    barrier.wait(10)
                    sub = _rpc(srv.port, "estimate_utility", request)["result"]
                    submissions.append(sub)
                    results.append(_result(srv.port, sub["job_id"]))
                except Exception as exc:  # surface in the main thread
                    errors.append(exc)

            threads = [threading.Thread(target=client)
                       for _ in range(n_clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            assert not errors, errors

            # One job id, exactly one execution, N-1 dedup hits.
            assert len({s["job_id"] for s in submissions}) == 1
            assert sum(1 for s in submissions if not s["deduped"]) == 1
            stats = _rpc(srv.port, "service.stats")["result"]
            assert stats["executed"] == 1
            assert stats["submitted"] == 1
            assert stats["dedup_hits"] == n_clients - 1

            # Byte-identical payloads for every client.
            encoded = {
                json.dumps(
                    {k: r[k] for k in
                     ("job", "artifact", "deterministic_payload", "run_stats")},
                    sort_keys=True,
                )
                for r in results
            }
            assert len(encoded) == 1

    def test_dedup_hits_land_in_runstats_export(self):
        """A dedupe that precedes completion is stamped into the job's
        final RunStats (deterministically, via a gated job)."""
        gate = threading.Event()

        def gated(runner, canon):
            gate.wait(30)
            from repro.analysis import run_batch

            protocol = Opt2SfeProtocol(make_swap(8))
            factory = strategy_space_for_protocol(protocol)[0]
            run_batch(protocol, factory, 16, seed=1, runner=runner)
            return {"ok": True}

        pool = JobPool(runner_factory=_serial, queue_limit=4, workers=1)
        try:
            job, deduped = pool.submit("k1", "gated", {}, gated)
            assert not deduped
            again, deduped = pool.submit("k1", "gated", {}, gated)
            assert deduped and again is job
            gate.set()
            assert job.done.wait(30) and job.state == "done"
            last = job.result["run_stats"][-1]
            assert last["service_dedup_hits"] == 1
        finally:
            gate.set()
            pool.close(drain=False)

    def test_resubmission_after_completion_dedupes(self):
        with _server() as srv:
            first = _rpc(srv.port, "estimate_utility", REQUEST)["result"]
            _result(srv.port, first["job_id"])
            second = _rpc(srv.port, "estimate_utility", REQUEST)["result"]
            assert second["deduped"] is True
            assert second["job_id"] == first["job_id"]
            assert _rpc(srv.port, "service.stats")["result"]["executed"] == 1

    def test_failed_jobs_are_not_cached(self):
        attempts = []

        def flaky(runner, params):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return {"ok": True}

        with _server() as srv:
            srv.register_method("test.flaky", flaky)
            job_id = _rpc(srv.port, "test.flaky", {})["result"]["job_id"]
            reply = _rpc(srv.port, "job.result",
                         {"job_id": job_id, "timeout_s": 30})
            assert reply["error"]["code"] == -32003  # JOB_FAILED
            assert "transient" in reply["error"]["data"]
            retry = _rpc(srv.port, "test.flaky", {})["result"]
            assert retry["deduped"] is False  # failure evicted, re-ran
            assert _result(srv.port, retry["job_id"])["artifact"] == {"ok": True}


class TestStreaming:
    def test_chunk_partials_stream_monotonically(self):
        request = dict(REQUEST, runs=256)
        factory = lambda: SerialRunner(fault=NO_FAULTS, chunk_size=16)
        with _server(runner_factory=factory) as srv:
            job_id = _rpc(srv.port, "estimate_utility", request)["result"]["job_id"]
            cursor, polls, seen = 0, [], []
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                frame = _rpc(srv.port, "job.stream",
                             {"job_id": job_id, "since": cursor})["result"]
                assert frame["cursor"] >= cursor  # never rewinds
                assert frame["since"] == cursor
                seen.extend(frame["events"])
                polls.append(len(frame["events"]))
                cursor = frame["cursor"]
                if frame["done"]:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("job did not finish in time")

            # Events are totally ordered, gap-free, and cover every run.
            assert [e["seq"] for e in seen] == list(range(len(seen)))
            assert seen == sorted(seen, key=lambda e: e["start"])
            executed = sum(e["stop"] - e["start"] for e in seen
                           if e["outcome"] != "cancelled")
            assert executed == request["runs"]
            assert len(seen) == request["runs"] // 16

            final = _result(srv.port, job_id)
            assert len(final["run_stats"][-1]["chunks"]) == len(seen)


class TestMalformedRequests:
    """Spec-compliant JSON-RPC 2.0 error objects on every bad input."""

    def _check_error_shape(self, reply, code, request_id=None):
        assert reply["jsonrpc"] == "2.0"
        assert reply["id"] == request_id
        assert set(reply) == {"jsonrpc", "id", "error"}
        assert reply["error"]["code"] == code
        assert isinstance(reply["error"]["message"], str)

    def test_parse_error(self):
        with _server() as srv:
            status, reply = _post(srv.port, "{not json")
            assert status == 200
            self._check_error_shape(reply, -32700)

    def test_invalid_request_envelopes(self):
        bad = [
            json.dumps([]),                                   # batch
            json.dumps("hi"),                                 # not an object
            json.dumps({"id": 1, "method": "service.info"}),  # no jsonrpc
            json.dumps({"jsonrpc": "1.0", "id": 1, "method": "x"}),
            json.dumps({"jsonrpc": "2.0", "id": 1, "method": 7}),
            json.dumps({"jsonrpc": "2.0", "id": 1, "method": ""}),
            json.dumps({"jsonrpc": "2.0", "id": True, "method": "x"}),
            json.dumps({"jsonrpc": "2.0", "id": 1, "method": "x",
                        "params": "str"}),
        ]
        with _server() as srv:
            for body in bad:
                status, reply = _post(srv.port, body)
                assert status == 200
                self._check_error_shape(reply, -32600)

    def test_method_not_found(self):
        with _server() as srv:
            for name in ("nope", "job.nope", "service.nope"):
                reply = _rpc(srv.port, name, request_id=7)
                self._check_error_shape(reply, -32601, request_id=7)

    def test_invalid_params(self):
        cases = [
            ("estimate_utility", {}),                      # missing required
            ("estimate_utility", dict(REQUEST, bogus=1)),  # unknown field
            ("estimate_utility", dict(REQUEST, runs=0)),
            ("estimate_utility", dict(REQUEST, runs=True)),
            ("estimate_utility", dict(REQUEST, gamma=[1.0, 1.0, 0.0, 0.0])),
            ("estimate_utility", dict(REQUEST, gamma=[0.0, 0.0, 1.0])),
            ("estimate_utility", dict(REQUEST, seed={"oops": 1})),
            ("estimate_utility", dict(REQUEST, protocol="nope")),
            ("estimate_utility", dict(REQUEST, strategy="nope")),
            ("sweep_strategies", {"protocol": "opt-2sfe", "runs": -4}),
            ("fault_sensitivity", {"protocol": "opt-2sfe",
                                   "loss_rates": [1.5]}),
            ("verify_claims", {"claims": "E999"}),
            ("verify_claims", {"budget": "enormous"}),
            ("job.status", {}),
            ("job.result", {"job_id": 5}),
        ]
        with _server() as srv:
            for method, params in cases:
                reply = _rpc(srv.port, method, params, request_id=3)
                self._check_error_shape(reply, -32602, request_id=3)

    def test_array_params_rejected(self):
        with _server() as srv:
            status, reply = _post(srv.port, json.dumps(
                {"jsonrpc": "2.0", "id": 1, "method": "service.info",
                 "params": []}
            ))
            assert reply["error"]["code"] == -32602

    def test_notification_gets_no_body(self):
        with _server() as srv:
            status, reply = _post(srv.port, json.dumps(
                {"jsonrpc": "2.0", "method": "service.info"}
            ))
            assert status == 204 and reply is None


class TestAdmissionControl:
    def test_rate_limit_returns_documented_error(self):
        # A frozen clock means the bucket never refills: burst=2 admits
        # exactly two requests, the third gets RATE_LIMITED.
        with _server(rate=1.0, burst=2, clock=lambda: 0.0) as srv:
            assert "result" in _rpc(srv.port, "service.info", tenant="a")
            assert "result" in _rpc(srv.port, "service.info", tenant="a")
            reply = _rpc(srv.port, "service.info", tenant="a")
            assert reply["error"]["code"] == -32029  # RATE_LIMITED
            assert reply["error"]["data"]["retry_after_s"] > 0
            assert reply["error"]["data"]["tenant"] == "a"
            # Tenants are independent buckets.
            assert "result" in _rpc(srv.port, "service.info", tenant="b")
            stats = _rpc(srv.port, "service.stats", tenant="c")["result"]
            assert stats["rate_limited"] == 1

    def test_queue_full_returns_documented_error(self):
        gate = threading.Event()

        def blocked(runner, params):
            gate.wait(30)
            return {"ok": True}

        with _server(workers=1, queue_limit=1) as srv:
            srv.register_method("test.block", blocked)
            job_id = _rpc(srv.port, "test.block", {})["result"]["job_id"]
            try:
                reply = _rpc(srv.port, "estimate_utility", REQUEST)
                assert reply["error"]["code"] == -32053  # QUEUE_FULL
                assert reply["error"]["data"]["queue_limit"] == 1
                stats = _rpc(srv.port, "service.stats")["result"]
                assert stats["queue_rejections"] == 1
            finally:
                gate.set()
            _result(srv.port, job_id)
            # Capacity is back once the pool drains.
            sub = _rpc(srv.port, "estimate_utility", REQUEST)["result"]
            assert _result(srv.port, sub["job_id"])["artifact"]


class TestShutdown:
    def test_shutdown_drains_inflight_jobs_without_leaks(self):
        threads_before = threading.active_count()
        srv = ServiceServer(runner_factory=_serial, rate=1000.0,
                            burst=1000, queue_limit=8, workers=2)
        srv.bind()
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        job_id = _rpc(srv.port, "estimate_utility",
                      dict(REQUEST, runs=128))["result"]["job_id"]
        job = srv.pool.get(job_id)
        reply = _rpc(srv.port, "service.shutdown", {"drain": True})
        assert reply["result"] == {"stopping": True, "drain": True}

        # The in-flight job finishes even though the listener is gone.
        assert job.done.wait(60)
        assert job.state == "done"
        assert job.result["run_stats"][-1]["executions"] == 128
        thread.join(10)
        assert not thread.is_alive()
        assert _leak_failure(threads_before) is None

    def test_close_without_drain_cancels_pending(self):
        gate = threading.Event()
        started = threading.Event()

        def blocked(runner, params):
            started.set()
            gate.wait(30)
            return {"ok": True}

        threads_before = threading.active_count()
        pool = JobPool(runner_factory=_serial, queue_limit=8, workers=1)
        running, _ = pool.submit("r", "test.block", {}, blocked)
        # Wait for the single worker to actually dequeue "r"; otherwise
        # close() could cancel it while it is still pending.
        assert started.wait(10)
        pending, _ = pool.submit("p", "test.block", {}, blocked)
        gate.set()
        pool.close(drain=False)
        assert running.state == "done"
        assert pending.state == "cancelled"
        assert _leak_failure(threads_before) is None


class TestServeCli:
    def _env(self):
        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        for key in list(env):
            if key.startswith("REPRO_"):
                env.pop(key)
        return env

    def test_serve_announces_ephemeral_port_and_shuts_down(self):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=self._env(),
            text=True,
        )
        try:
            info = json.loads(proc.stdout.readline())
            assert info["event"] == "listening"
            assert info["host"] == "127.0.0.1"
            port = info["port"]
            assert isinstance(port, int) and port > 0

            # The API reports the same address it announced.
            via_api = _rpc(port, "service.info")["result"]
            assert via_api["port"] == port

            sub = _rpc(port, "estimate_utility", REQUEST)["result"]
            result = _result(port, sub["job_id"])
            assert result["artifact"]["n_runs"] == REQUEST["runs"]

            _rpc(port, "service.shutdown", {"drain": True})
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            proc.stdout.close()

    def test_serve_rejects_malformed_listen(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--listen", "nope"],
            capture_output=True,
            env=self._env(),
            text=True,
            timeout=60,
        )
        assert proc.returncode != 0
        assert "HOST:PORT" in proc.stderr


class TestServiceEnvKnobs:
    """REPRO_SERVICE_* validation, matching the PR 8/9 convention."""

    def test_defaults(self, monkeypatch):
        for var in (ENV_SERVICE_RATE, ENV_SERVICE_BURST, ENV_SERVICE_QUEUE):
            monkeypatch.delenv(var, raising=False)
        assert resolve_service_rate() == 20.0
        assert resolve_service_burst() == 40
        assert resolve_service_queue() == 16

    def test_env_values_apply(self, monkeypatch):
        monkeypatch.setenv(ENV_SERVICE_RATE, "2.5")
        monkeypatch.setenv(ENV_SERVICE_BURST, "7")
        monkeypatch.setenv(ENV_SERVICE_QUEUE, "3")
        assert resolve_service_rate() == 2.5
        assert resolve_service_burst() == 7
        assert resolve_service_queue() == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_SERVICE_RATE, "2.5")
        assert resolve_service_rate(9.0) == 9.0

    @pytest.mark.parametrize("var,resolver", [
        (ENV_SERVICE_RATE, resolve_service_rate),
        (ENV_SERVICE_BURST, resolve_service_burst),
        (ENV_SERVICE_QUEUE, resolve_service_queue),
    ])
    @pytest.mark.parametrize("garbage", ["lots", "", " ", "-3", "0"])
    def test_garbage_names_the_variable(self, monkeypatch, var, resolver,
                                        garbage):
        monkeypatch.setenv(var, garbage)
        if not garbage.strip():
            resolver()  # blank means unset, not an error
            return
        with pytest.raises(ValueError, match=var):
            resolver()

    def test_explicit_garbage_raises(self):
        with pytest.raises(ValueError):
            resolve_service_rate(0.0)
        with pytest.raises(ValueError):
            resolve_service_burst(0)
        with pytest.raises(ValueError):
            resolve_service_queue(-1)

    def test_server_rejects_bad_env(self, monkeypatch):
        monkeypatch.setenv(ENV_SERVICE_QUEUE, "many")
        with pytest.raises(ValueError, match=ENV_SERVICE_QUEUE):
            ServiceServer(runner_factory=_serial)


class TestTokenBucket:
    def test_refill_restores_admission(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=1, clock=lambda: now[0])
        ok, _ = bucket.allow("t")
        assert ok
        ok, retry = bucket.allow("t")
        assert not ok and retry == pytest.approx(0.5)
        now[0] = 0.6  # 1.2 tokens refilled, capped at burst
        ok, _ = bucket.allow("t")
        assert ok

    def test_burst_capped(self):
        now = [0.0]
        bucket = TokenBucket(rate=1000.0, burst=3, clock=lambda: now[0])
        now[0] = 100.0  # a long idle never exceeds burst tokens
        admitted = sum(bucket.allow("t")[0] for _ in range(10))
        assert admitted == 3
