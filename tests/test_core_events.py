"""Fairness-event classification tests (§3 Step 2)."""

import pytest

from repro.core import FairnessEvent, adversary_learned_output, classify
from repro.core.events import honest_learned_output
from repro.engine import OUTPUT_ABORT, OUTPUT_DEFAULT, OUTPUT_REAL, OutputRecord
from repro.engine.execution import ExecutionResult
from repro.engine.messages import ABORT
from repro.functions import make_swap


def result_with(outputs, corrupted, claim, n=2, inputs=(3, 9)):
    return ExecutionResult(
        protocol_name="test",
        n=n,
        inputs=inputs,
        outputs=outputs,
        corrupted=set(corrupted),
        adversary_claim=claim,
        rounds_used=3,
    )


class TestEventProperties:
    def test_bit_semantics(self):
        assert FairnessEvent.E10.adversary_learned
        assert not FairnessEvent.E10.honest_learned
        assert FairnessEvent.E01.honest_learned
        assert not FairnessEvent.E01.adversary_learned
        assert FairnessEvent.E11.adversary_learned and FairnessEvent.E11.honest_learned


class TestClassification:
    def setup_method(self):
        self.func = make_swap(8)  # f(3, 9) = (9, 3)

    def test_no_corruption_is_e01(self):
        result = result_with(
            {0: OutputRecord(9, OUTPUT_REAL), 1: OutputRecord(3, OUTPUT_REAL)},
            corrupted=set(),
            claim=None,
        )
        assert classify(result, self.func) is FairnessEvent.E01

    def test_all_corrupted_is_e11(self):
        result = result_with({}, corrupted={0, 1}, claim=None)
        assert classify(result, self.func) is FairnessEvent.E11

    def test_e11_both_learn(self):
        result = result_with(
            {1: OutputRecord(3, OUTPUT_REAL)}, corrupted={0}, claim=9
        )
        assert classify(result, self.func) is FairnessEvent.E10.__class__("11")

    def test_e10_unfair(self):
        result = result_with(
            {1: OutputRecord(ABORT, OUTPUT_ABORT)}, corrupted={0}, claim=9
        )
        assert classify(result, self.func) is FairnessEvent.E10

    def test_e01_default_output_counts_as_received(self):
        # Honest p1 re-evaluated with default input: value ≠ true output,
        # but kind DEFAULT marks the simulator's input substitution.
        result = result_with(
            {1: OutputRecord(0, OUTPUT_DEFAULT)}, corrupted={0}, claim=None
        )
        assert classify(result, self.func) is FairnessEvent.E01

    def test_e00_nobody_learns(self):
        result = result_with(
            {1: OutputRecord(ABORT, OUTPUT_ABORT)}, corrupted={0}, claim=None
        )
        assert classify(result, self.func) is FairnessEvent.E00

    def test_wrong_claim_not_credited(self):
        result = result_with(
            {1: OutputRecord(ABORT, OUTPUT_ABORT)}, corrupted={0}, claim=12345
        )
        assert classify(result, self.func) is FairnessEvent.E00

    def test_random_honest_output_not_learned(self):
        # The Gordon–Katz case: honest holds a wrong "real" value.
        result = result_with(
            {1: OutputRecord(7, OUTPUT_REAL)}, corrupted={0}, claim=9
        )
        assert classify(result, self.func) is FairnessEvent.E10

    def test_claim_matches_corrupted_component_only(self):
        # Corrupted p0's true output is 9 (= x2); claiming p1's output (3)
        # does not count.
        result = result_with(
            {1: OutputRecord(3, OUTPUT_REAL)}, corrupted={0}, claim=3
        )
        assert not adversary_learned_output(result, self.func)

    def test_honest_learned_helper(self):
        good = result_with(
            {1: OutputRecord(3, OUTPUT_REAL)}, corrupted={0}, claim=None
        )
        assert honest_learned_output(good, self.func)
        bad = result_with(
            {1: OutputRecord(4, OUTPUT_REAL)}, corrupted={0}, claim=None
        )
        assert not honest_learned_output(bad, self.func)

    def test_no_honest_parties_never_learn(self):
        result = result_with({}, corrupted={0, 1}, claim=None)
        assert not honest_learned_output(result, self.func)
