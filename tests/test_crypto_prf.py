"""PRG / deterministic RNG tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.prf import Prg, Rng


class TestPrg:
    def test_determinism(self):
        assert Prg(b"seed").read(64) == Prg(b"seed").read(64)

    def test_different_seeds_differ(self):
        assert Prg(b"a").read(32) != Prg(b"b").read(32)

    def test_stream_continuity(self):
        one = Prg(b"s")
        chunked = one.read(10) + one.read(22)
        assert chunked == Prg(b"s").read(32)

    def test_read_zero(self):
        assert Prg(b"s").read(0) == b""

    def test_negative_read_rejected(self):
        with pytest.raises(ValueError):
            Prg(b"s").read(-1)

    def test_non_bytes_seed_rejected(self):
        with pytest.raises(TypeError):
            Prg(123)


class TestRng:
    def test_seed_types(self):
        for seed in (7, "label", b"bytes", (1, "mix")):
            assert isinstance(Rng(seed).getrandbits(8), int)

    def test_determinism_across_types(self):
        assert Rng(42).randbytes(8) == Rng(42).randbytes(8)

    def test_fork_independence(self):
        root = Rng(1)
        a = root.fork("a").randbytes(16)
        b = root.fork("b").randbytes(16)
        assert a != b

    def test_fork_reproducible(self):
        assert Rng(1).fork("x").randbytes(8) == Rng(1).fork("x").randbytes(8)

    def test_randrange_bounds(self):
        rng = Rng(2)
        for _ in range(200):
            assert 0 <= rng.randrange(7) < 7
        for _ in range(200):
            assert 3 <= rng.randrange(3, 9) < 9

    def test_randrange_empty(self):
        with pytest.raises(ValueError):
            Rng(1).randrange(5, 5)

    def test_randint_inclusive(self):
        rng = Rng(3)
        values = {rng.randint(1, 3) for _ in range(100)}
        assert values == {1, 2, 3}

    def test_random_unit_interval(self):
        rng = Rng(4)
        for _ in range(100):
            assert 0.0 <= rng.random() < 1.0

    def test_choice(self):
        rng = Rng(5)
        seq = ["a", "b", "c"]
        assert {rng.choice(seq) for _ in range(100)} == set(seq)

    def test_choice_empty(self):
        with pytest.raises(IndexError):
            Rng(1).choice([])

    def test_shuffle_is_permutation(self):
        rng = Rng(6)
        xs = list(range(20))
        shuffled = list(xs)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == xs

    def test_sample(self):
        rng = Rng(7)
        picked = rng.sample(range(10), 4)
        assert len(picked) == 4 and len(set(picked)) == 4

    def test_sample_too_large(self):
        with pytest.raises(ValueError):
            Rng(1).sample(range(3), 4)

    def test_coin_bias(self):
        rng = Rng(8)
        heads = sum(rng.coin(0.25) for _ in range(4000))
        assert 850 <= heads <= 1150  # ~5 sigma around 1000

    def test_coin_invalid_probability(self):
        with pytest.raises(ValueError):
            Rng(1).coin(1.5)

    def test_getrandbits_zero(self):
        assert Rng(1).getrandbits(0) == 0

    def test_getrandbits_negative(self):
        with pytest.raises(ValueError):
            Rng(1).getrandbits(-1)

    @given(st.integers(1, 64))
    @settings(max_examples=30)
    def test_getrandbits_width(self, k):
        assert 0 <= Rng(9).getrandbits(k) < (1 << k)

    def test_uniformity_chi_square_ish(self):
        rng = Rng(10)
        buckets = [0] * 8
        for _ in range(8000):
            buckets[rng.randrange(8)] += 1
        assert all(850 <= b <= 1150 for b in buckets)


class TestSeedEncoding:
    """Canonical composite-seed encoding (the regression for the old
    repr-based scheme, where a string equal to a tuple's repr collided)."""

    def test_int_vs_str_components_differ(self):
        assert Rng(("cli", 1)).randbytes(16) != Rng(("cli", "1")).randbytes(16)

    def test_tuple_vs_its_repr_string_differ(self):
        # The historical collision: Rng("('cli', 1)") == Rng(("cli", 1)).
        assert (
            Rng(("cli", 1)).randbytes(16)
            != Rng("('cli', 1)").randbytes(16)
        )

    def test_nesting_structure_matters(self):
        assert (
            Rng(("a", ("b", "c"))).randbytes(16)
            != Rng((("a", "b"), "c")).randbytes(16)
        )

    def test_adjacent_component_boundaries_matter(self):
        assert Rng(("ab", "c")).randbytes(16) != Rng(("a", "bc")).randbytes(16)

    def test_bytes_vs_str_components_differ(self):
        assert Rng((b"x", 0)).randbytes(16) != Rng(("x", 0)).randbytes(16)

    def test_bool_vs_int_components_differ(self):
        assert Rng((True, "s")).randbytes(16) != Rng((1, "s")).randbytes(16)

    def test_composite_seeds_are_deterministic(self):
        seed = ("sweep", 3, ("t", 2))
        assert Rng(seed).randbytes(32) == Rng(seed).randbytes(32)

    def test_encode_seed_is_canonical(self):
        from repro.crypto.prf import encode_seed

        assert encode_seed(("a", 1)) == encode_seed(("a", 1))
        assert encode_seed(("a", 1)) != encode_seed(("a", "1"))
        assert encode_seed([1, 2]) == encode_seed((1, 2))  # list ≡ tuple

    def test_primitive_seeds_keep_legacy_streams(self):
        # int/str/bytes fast paths are untouched by the canonical encoder:
        # int seeds are 16-byte big-endian, str seeds are utf-8.
        assert Rng(7).randbytes(8) == Rng((7).to_bytes(16, "big", signed=True)).randbytes(8)
        assert Rng("label").randbytes(8) == Rng(b"label").randbytes(8)


class TestPrgLargeReads:
    def test_large_read_matches_chunked(self):
        # Regression guard for the quadratic buffer-growth bug: one big
        # read must equal the same stream drawn in small pieces.
        big = Prg(b"large").read(1 << 18)
        prg = Prg(b"large")
        chunked = b"".join(prg.read(4096) for _ in range(1 << 6))
        assert big[: len(chunked)] == chunked

    def test_large_read_is_linear_ish(self):
        # 256 KiB through the block accumulator; with the old
        # bytes-concatenation loop this was ~16k reallocations of an
        # ever-growing buffer.  No timing assertion (CI clocks are
        # noisy) — the chunk-equality test above pins the semantics and
        # this one just exercises the large-read path end to end.
        out = Prg(b"bulk").read(256 * 1024)
        assert len(out) == 256 * 1024
        assert out != bytes(256 * 1024)
