"""Fairness relation, utility estimates, balance, and corruption-cost tests
(Definitions 1, 2, 5, 19-21; Theorem 6; Lemma 22)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BalanceProfile,
    Comparison,
    EventCounts,
    FairnessEvent,
    PayoffVector,
    ProtocolAssessment,
    STANDARD_GAMMA,
    UtilityEstimate,
    assess,
    at_least_as_fair,
    balanced_sum_bound,
    best_utility,
    check_ideal_fairness,
    compare,
    cost_from_phi,
    dominates,
    estimate_from_counts,
    ideal_payoff,
    is_optimally_fair,
    is_phi_fair,
    is_utility_balanced,
    optimal_cost_from_profile,
    optimal_phi,
    per_t_bound,
    strictly_dominates,
    wilson_interval,
)


def estimate(mean, n=1000, lo=None, hi=None, protocol="p", adversary="a"):
    return UtilityEstimate(
        mean=mean,
        ci_low=lo if lo is not None else mean - 0.02,
        ci_high=hi if hi is not None else mean + 0.02,
        n_runs=n,
        event_distribution={},
        protocol=protocol,
        adversary=adversary,
    )


def assessment(name, utility, gamma=STANDARD_GAMMA):
    return ProtocolAssessment(name, gamma, estimate(utility, protocol=name))


class TestEventCounts:
    def test_record_and_distribution(self):
        counts = EventCounts()
        for _ in range(3):
            counts.record(FairnessEvent.E10, {0})
        counts.record(FairnessEvent.E11, {0})
        dist = counts.distribution()
        assert dist[FairnessEvent.E10] == pytest.approx(0.75)
        assert counts.total == 4
        assert counts.corruption_distribution()[frozenset({0})] == 1.0

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            EventCounts().distribution()

    def test_estimate_from_counts(self):
        counts = EventCounts()
        for _ in range(50):
            counts.record(FairnessEvent.E10, {0})
        for _ in range(50):
            counts.record(FairnessEvent.E11, {0})
        est = estimate_from_counts(counts, STANDARD_GAMMA, "p", "a")
        assert est.mean == pytest.approx(0.75)
        assert est.ci_low <= est.mean <= est.ci_high

    def test_estimate_with_cost(self):
        counts = EventCounts()
        for _ in range(10):
            counts.record(FairnessEvent.E11, {0, 1})
        est = estimate_from_counts(
            counts, STANDARD_GAMMA, cost=lambda s: 0.1 * len(s)
        )
        assert est.mean == pytest.approx(0.5 - 0.2)
        assert est.cost_mean == pytest.approx(0.2)


class TestWilson:
    def test_contains_proportion(self):
        lo, hi = wilson_interval(50, 100)
        assert lo < 0.5 < hi

    def test_extremes(self):
        lo, hi = wilson_interval(0, 100)
        assert lo == 0.0 and hi < 0.1
        lo, hi = wilson_interval(100, 100)
        assert hi == 1.0 and lo > 0.9

    def test_empty(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    @given(st.integers(1, 500), st.integers(0, 500))
    @settings(max_examples=30)
    def test_interval_ordered(self, n, k):
        k = min(k, n)
        lo, hi = wilson_interval(k, n)
        eps = 1e-12
        assert 0.0 <= lo <= k / n + eps
        assert k / n - eps <= hi <= 1.0


class TestFairnessRelation:
    def test_at_least_as_fair(self):
        a = assessment("a", 0.75)
        b = assessment("b", 1.0)
        assert at_least_as_fair(a, b)
        assert not at_least_as_fair(b, a)

    def test_compare_strict(self):
        a = assessment("a", 0.5)
        b = assessment("b", 1.0)
        assert compare(a, b) is Comparison.FAIRER
        assert compare(b, a) is Comparison.LESS_FAIR

    def test_compare_equal_within_tolerance(self):
        a = assessment("a", 0.74)
        b = assessment("b", 0.76)
        assert compare(a, b, tol=0.05) is Comparison.EQUAL

    def test_gamma_mismatch_rejected(self):
        a = assessment("a", 0.5)
        b = ProtocolAssessment(
            "b", PayoffVector(0, 0, 2.0, 0.5), estimate(0.6)
        )
        with pytest.raises(ValueError):
            compare(a, b)

    def test_optimality_within_universe(self):
        opt = assessment("opt", 0.75)
        others = [assessment("x", 1.0), assessment("y", 0.9)]
        assert is_optimally_fair(opt, others)
        assert not is_optimally_fair(others[0], [opt])

    def test_assess_takes_sup(self):
        estimates = [estimate(0.3, adversary="w"), estimate(0.9, adversary="s")]
        result = assess("p", STANDARD_GAMMA, estimates)
        assert result.utility == 0.9
        assert result.best_attack.adversary == "s"

    def test_assess_empty_rejected(self):
        with pytest.raises(ValueError):
            assess("p", STANDARD_GAMMA, [])

    def test_best_utility_empty(self):
        assert best_utility([]) is None


class TestBalance:
    def test_bound_formula(self):
        # (n−1)(γ10+γ11)/2 with γ10=1, γ11=0.5 and n=5: 4·1.5/2 = 3.
        assert balanced_sum_bound(5, STANDARD_GAMMA) == pytest.approx(3.0)

    def test_per_t_bound(self):
        assert per_t_bound(5, 2, STANDARD_GAMMA) == pytest.approx(
            (2 * 1.0 + 3 * 0.5) / 5
        )
        with pytest.raises(ValueError):
            per_t_bound(5, 5, STANDARD_GAMMA)

    def _profile(self, utilities, n=5):
        per_t = {
            t: estimate(u, protocol="p", adversary=f"t={t}")
            for t, u in utilities.items()
        }
        return BalanceProfile("p", n, STANDARD_GAMMA, per_t)

    def test_optimal_profile_is_balanced(self):
        utilities = {t: per_t_bound(5, t, STANDARD_GAMMA) for t in range(1, 5)}
        profile = self._profile(utilities)
        assert profile.utility_sum == pytest.approx(
            balanced_sum_bound(5, STANDARD_GAMMA)
        )
        assert is_utility_balanced(profile, tol=0.01)
        assert not profile.exceeds_balance_bound(tol=0.01)

    def test_gmw_even_profile_not_balanced(self):
        # n = 4: t=1 -> γ11, t in {2,3} -> γ10.
        profile = self._profile({1: 0.5, 2: 1.0, 3: 1.0}, n=4)
        assert profile.exceeds_balance_bound(tol=0.01)
        assert not is_utility_balanced(profile, tol=0.01)

    def test_profile_requires_all_t(self):
        with pytest.raises(ValueError):
            self._profile({1: 0.5}, n=4)

    def test_phi_fairness(self):
        utilities = {t: per_t_bound(5, t, STANDARD_GAMMA) for t in range(1, 5)}
        profile = self._profile(utilities)
        assert is_phi_fair(profile, optimal_phi(5, STANDARD_GAMMA), tol=0.01)
        assert not is_phi_fair(profile, lambda t: 0.0, tol=0.01)

    def test_phi_extraction(self):
        profile = self._profile({1: 0.6, 2: 0.7, 3: 0.8, 4: 0.9})
        phi = profile.phi()
        assert phi(2) == pytest.approx(0.7)
        with pytest.raises(ValueError):
            phi(5)


class TestCorruptionCosts:
    def test_ideal_payoff(self):
        assert ideal_payoff(STANDARD_GAMMA, 0, 5) == 0.0
        assert ideal_payoff(STANDARD_GAMMA, 3, 5) == 0.5
        assert ideal_payoff(STANDARD_GAMMA, 5, 5) == 0.5
        with pytest.raises(ValueError):
            ideal_payoff(STANDARD_GAMMA, 6, 5)

    def test_dominance(self):
        c_high = lambda t: 0.5
        c_low = lambda t: 0.1
        assert dominates(c_high, c_low, 4)
        assert strictly_dominates(c_high, c_low, 4)
        assert not strictly_dominates(c_low, c_high, 4)
        assert dominates(c_high, c_high, 4)
        assert not strictly_dominates(c_high, c_high, 4)

    def test_cost_from_phi(self):
        phi = optimal_phi(5, STANDARD_GAMMA)
        cost = cost_from_phi(phi, STANDARD_GAMMA, 5)
        # c(t) = φ(t) − γ11.
        assert cost(2) == pytest.approx(per_t_bound(5, 2, STANDARD_GAMMA) - 0.5)
        assert cost(5) == 0.0

    def test_ideal_fairness_check(self):
        utilities = {t: per_t_bound(5, t, STANDARD_GAMMA) for t in range(1, 5)}
        per_t = {t: estimate(u) for t, u in utilities.items()}
        profile = BalanceProfile("p", 5, STANDARD_GAMMA, per_t)
        cost = optimal_cost_from_profile(profile)
        check = check_ideal_fairness(profile, cost, tol=0.01)
        assert check.holds(tol=0.01)
        # With zero cost the protocol is NOT ideally fair (the t-adversary
        # beats the dummy protocol's γ11 whenever t·γ10 is large enough).
        check_zero = check_ideal_fairness(profile, lambda t: 0.0)
        assert not check_zero.holds(tol=0.01)
