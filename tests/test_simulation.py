"""Executable Theorem-3 simulator tests (Appendix A's SA, as a protocol)."""

import pytest

from repro.adversaries import (
    AbortAtRound,
    FunctionalityAborter,
    LockWatchingAborter,
    PassiveAdversary,
)
from repro.analysis import (
    IdealWorldOpt2Sfe,
    opt2sfe_outcome_distributions,
    statistical_distance,
)
from repro.core import FairnessEvent
from repro.crypto import Rng
from repro.engine import run_execution
from repro.functions import make_swap


STRATEGIES = {
    "passive": lambda c: PassiveAdversary({c}),
    "lock-watch": lambda c: LockWatchingAborter({c}),
    "abort@1": lambda c: AbortAtRound({c}, 1),
    "abort@2": lambda c: AbortAtRound({c}, 2),
    "func-abort": lambda c: FunctionalityAborter({c}, "F_sharegen2"),
    "refuse": lambda c: AbortAtRound({c}, 0, claim=False),
}


class TestIdealWorldConstruction:
    def test_validation(self):
        from repro.functions import make_concat

        with pytest.raises(ValueError):
            IdealWorldOpt2Sfe(make_concat(3, 8), 0)
        with pytest.raises(ValueError):
            IdealWorldOpt2Sfe(make_swap(8), 2)

    def test_honest_ideal_execution(self):
        """With a passive adversary the ideal world delivers correctly and
        SA provokes E11."""
        protocol = IdealWorldOpt2Sfe(make_swap(8), corrupted=0)
        result = run_execution(
            protocol, (3, 9), PassiveAdversary({0}), Rng(1)
        )
        assert result.outputs[1].value == 3  # honest p1's output
        assert protocol.last_coordinator.ideal_event is FairnessEvent.E11

    def test_refusal_maps_to_e01(self):
        protocol = IdealWorldOpt2Sfe(make_swap(8), corrupted=0)
        result = run_execution(
            protocol, (3, 9), AbortAtRound({0}, 0, claim=False), Rng(2)
        )
        assert result.outputs[1].kind == "default"
        assert protocol.last_coordinator.ideal_event is FairnessEvent.E01


class TestIndistinguishability:
    """For every scripted strategy, the real and simulated outcome
    distributions coincide up to Monte-Carlo noise — the executable
    content of 'SA is a good simulator for A'."""

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    @pytest.mark.parametrize("corrupted", [0, 1])
    def test_distributions_match(self, name, corrupted):
        builder = lambda: STRATEGIES[name](corrupted)
        real, ideal, _ = opt2sfe_outcome_distributions(
            builder, corrupted, n_runs=300, seed=("sim", name, corrupted)
        )
        assert statistical_distance(real, ideal) <= 0.09

    def test_lock_watch_event_mix_matches_theorem3(self):
        """SA's event ledger for the lock-watcher: E10 and E11, about
        half/half — the exact case analysis of Theorem 3's proof."""
        _, _, events = opt2sfe_outcome_distributions(
            lambda: LockWatchingAborter({0}), 0, n_runs=400, seed="mix"
        )
        total = sum(events.values())
        assert set(events) == {FairnessEvent.E10, FairnessEvent.E11}
        assert abs(events[FairnessEvent.E10] / total - 0.5) < 0.09

    def test_simulator_payoff_respects_theorem3_bound(self):
        """SA's expected payoff (over its own event ledger) never exceeds
        (γ10 + γ11)/2 for any scripted strategy."""
        from repro.core import STANDARD_GAMMA

        for name, make in STRATEGIES.items():
            _, _, events = opt2sfe_outcome_distributions(
                lambda: make(0), 0, n_runs=250, seed=("pay", name)
            )
            total = sum(events.values())
            payoff = sum(
                STANDARD_GAMMA.value(e) * c / total for e, c in events.items()
            )
            assert payoff <= 0.75 + 0.09, name
