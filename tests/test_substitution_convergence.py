"""Input-substitution attacks and estimator convergence diagnostics."""

import pytest

from repro.adversaries import (
    InputSubstitution,
    LockWatchingAborter,
    constant_input,
    fixed,
    max_domain_input,
)
from repro.analysis import (
    convergence_curve,
    estimate_utility,
    is_converging,
    runs_to_separate,
    u_naive_contract,
    u_opt_2sfe,
)
from repro.core import FairnessEvent, STANDARD_GAMMA, classify
from repro.crypto import Rng
from repro.engine import run_execution
from repro.functions import make_and, make_max, make_swap
from repro.protocols import Opt2SfeProtocol, OptNSfeProtocol


class TestInputSubstitution:
    def test_biases_outcome(self):
        """AND with a substituted 0 forces the output to 0."""
        protocol = Opt2SfeProtocol(make_and())
        adversary = InputSubstitution({0}, constant_input(0))
        result = run_execution(protocol, (1, 1), adversary, Rng(1))
        assert result.outputs[1].value == 0

    def test_remains_perfectly_fair(self):
        """Substitution alone never produces an unfair event: classified
        against the *effective* (ideal-world) inputs, every run is E11."""
        from dataclasses import replace

        protocol = Opt2SfeProtocol(make_and())
        for k in range(40):
            adversary = InputSubstitution({0}, constant_input(0))
            result = run_execution(
                protocol, (1, 1), adversary, Rng(("fair", k))
            )
            effective = adversary.effective_inputs(result.inputs)
            assert effective == (0, 1)
            ideal_view = replace(result, inputs=effective)
            assert classify(ideal_view, protocol.func) is FairnessEvent.E11

    def test_bid_rigging_the_auction(self):
        func = make_max(3, 4)
        protocol = OptNSfeProtocol(func)
        adversary = InputSubstitution({2}, max_domain_input(func))
        result = run_execution(protocol, (5, 9, 2), adversary, Rng(2))
        # p2's bid was replaced by the domain maximum 15: it wins.
        assert all(rec.value == (2, 15) for rec in result.outputs.values())

    def test_substitution_recorded(self):
        adversary = InputSubstitution({0}, constant_input(7))
        run_execution(Opt2SfeProtocol(make_swap(8)), (1, 2), adversary, Rng(3))
        assert adversary.substituted == {0: 7}

    def test_max_domain_requires_enumerable_domain(self):
        func = make_swap(16)  # exponential domain
        adversary = InputSubstitution({0}, max_domain_input(func))
        with pytest.raises(ValueError):
            run_execution(Opt2SfeProtocol(func), (1, 2), adversary, Rng(4))


class TestConvergence:
    def test_ci_tightens_with_budget(self):
        protocol = Opt2SfeProtocol(make_swap(8))
        factory = fixed("l0", lambda: LockWatchingAborter({0}))
        points = convergence_curve(
            protocol,
            factory,
            STANDARD_GAMMA,
            budgets=(50, 200, 800),
            seed="conv",
        )
        assert is_converging(points, factor=1.5)
        # And the estimates hover around the analytic 0.75.
        assert all(abs(p.mean - 0.75) < 0.2 for p in points)

    def test_runs_to_separate(self):
        # Separating Π1 (1.0) from ΠOpt2SFE (0.75) at z=3 over a unit
        # payoff spread needs (3/(2·0.125))² = 144 runs.
        n = runs_to_separate(
            u_naive_contract(STANDARD_GAMMA), u_opt_2sfe(STANDARD_GAMMA)
        )
        assert n == 144

    def test_runs_to_separate_validation(self):
        with pytest.raises(ValueError):
            runs_to_separate(0.5, 0.5)

    def test_is_converging_validation(self):
        with pytest.raises(ValueError):
            is_converging([])

    def test_separation_budget_actually_separates(self):
        """Empirical check: at the prescribed budget the measured CIs of
        the two protocols do not overlap."""
        from repro.protocols import NaiveContractSigning

        budget = runs_to_separate(1.0, 0.75)
        factory = fixed("l1", lambda: LockWatchingAborter({1}))
        est_naive = estimate_utility(
            NaiveContractSigning(), factory, STANDARD_GAMMA, budget, seed="s1"
        )
        est_opt = estimate_utility(
            Opt2SfeProtocol(make_swap(8)), factory, STANDARD_GAMMA, budget, seed="s2"
        )
        assert est_opt.ci_high < est_naive.ci_low
