"""Property-based invariants (hypothesis) behind the verification stack.

Four algebraic contracts the claims checker silently relies on:

* Shamir ``share ∘ reconstruct`` is the identity for every valid
  ``(threshold, n, field)`` and any qualified subset of shares;
* interned :class:`Field` instances satisfy the field axioms;
* ``encode_seed`` is injective over composite seed material and stable
  (round-trips to the same digest), which is what makes every run
  replayable from ``(master seed, claim id, run index)``;
* ``EventCounts.merge`` is associative and commutative with ``EventCounts()``
  as identity, which is what lets chunk partials fold in any grouping.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import FairnessEvent
from repro.core.utility import EventCounts
from repro.crypto import shamir_reconstruct, shamir_share
from repro.crypto.field import get_field
from repro.crypto.prf import Rng, encode_seed

#: Small primes large enough for up to 8 Shamir evaluation points.
PRIMES = [11, 97, 101, 257, 7919, 65537, 2**31 - 1]

fields = st.sampled_from(PRIMES).map(get_field)


# ---------------------------------------------------------------------------
# Shamir sharing
# ---------------------------------------------------------------------------

shamir_cases = st.tuples(
    st.sampled_from(PRIMES),
    st.integers(2, 8),          # n parties
    st.integers(1, 8),          # raw threshold, clamped to [1, n]
    st.integers(0, 2**64),      # raw secret, reduced mod p
    st.integers(0, 2**32),      # rng seed material
)


class TestShamirRoundTrip:
    @given(shamir_cases)
    @settings(max_examples=60)
    def test_share_then_reconstruct_is_identity(self, case):
        p, n, raw_t, raw_secret, seed = case
        threshold = min(raw_t, n)
        f = get_field(p)
        secret = raw_secret % p
        shares = shamir_share(secret, threshold, n, f, Rng(("shamir", seed)))
        assert len(shares) == n
        assert shamir_reconstruct(shares[:threshold], threshold, f) == secret

    @given(shamir_cases, st.integers(0, 2**32))
    @settings(max_examples=40)
    def test_any_qualified_subset_reconstructs(self, case, pick_seed):
        p, n, raw_t, raw_secret, seed = case
        threshold = min(raw_t, n)
        f = get_field(p)
        secret = raw_secret % p
        shares = shamir_share(secret, threshold, n, f, Rng(("shamir", seed)))
        subset = Rng(("subset", pick_seed)).sample(shares, threshold)
        assert shamir_reconstruct(subset, threshold, f) == secret


# ---------------------------------------------------------------------------
# Field axioms on interned instances
# ---------------------------------------------------------------------------

class TestFieldAxioms:
    @given(fields, st.integers(0, 2**64), st.integers(0, 2**64),
           st.integers(0, 2**64))
    @settings(max_examples=60)
    def test_ring_axioms(self, f, a, b, c):
        a, b, c = f.reduce(a), f.reduce(b), f.reduce(c)
        assert f.add(a, b) == f.add(b, a)
        assert f.mul(a, b) == f.mul(b, a)
        assert f.add(f.add(a, b), c) == f.add(a, f.add(b, c))
        assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))
        assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))

    @given(fields, st.integers(0, 2**64))
    @settings(max_examples=60)
    def test_identities_and_inverses(self, f, a):
        a = f.reduce(a)
        assert f.add(a, 0) == a
        assert f.mul(a, 1) == a
        assert f.add(a, f.neg(a)) == 0
        if a != 0:
            assert f.mul(a, f.inv(a)) == 1
            assert f.div(a, a) == 1

    @given(st.sampled_from(PRIMES))
    def test_interning_returns_the_same_instance(self, p):
        assert get_field(p) is get_field(p)


# ---------------------------------------------------------------------------
# encode_seed injectivity and stability
# ---------------------------------------------------------------------------

seed_atoms = st.one_of(
    st.integers(-(2**70), 2**70),
    st.text(max_size=12),
    st.binary(max_size=12),
    st.booleans(),
    st.none(),
    st.floats(allow_nan=False, allow_infinity=False),
)

seed_material = st.recursive(
    seed_atoms,
    lambda inner: st.tuples(inner) | st.tuples(inner, inner)
    | st.tuples(inner, inner, inner),
    max_leaves=6,
)


def _typed(material):
    """Canonical form distinguishing 1 / True / 1.0 the way the encoder
    does (they compare equal in Python but must hash apart)."""
    if isinstance(material, tuple):
        return ("tuple",) + tuple(_typed(x) for x in material)
    return (type(material).__name__, repr(material))


class TestEncodeSeed:
    @given(seed_material)
    @settings(max_examples=80)
    def test_round_trip_is_stable(self, material):
        digest = encode_seed(material)
        assert isinstance(digest, bytes) and len(digest) == 32
        assert encode_seed(material) == digest

    @given(st.lists(seed_material, min_size=2, max_size=6))
    @settings(max_examples=80)
    def test_injective_over_composites(self, materials):
        for a, b in itertools.combinations(materials, 2):
            if _typed(a) != _typed(b):
                assert encode_seed(a) != encode_seed(b), (a, b)

    @given(seed_material, st.integers(0, 100))
    @settings(max_examples=40)
    def test_nesting_is_not_flattened(self, material, i):
        # ((x,), i) and (x, i) must seed differently: chunk replay relies
        # on composite structure, not just the leaf values.
        assert encode_seed(((material,), i)) != encode_seed((material, i))


# ---------------------------------------------------------------------------
# EventCounts merge algebra
# ---------------------------------------------------------------------------

events = st.sampled_from(list(FairnessEvent))
corruptions = st.frozensets(st.integers(0, 4), max_size=3)


@st.composite
def event_counts(draw):
    counts = EventCounts()
    for event, corrupted in draw(
        st.lists(st.tuples(events, corruptions), max_size=8)
    ):
        counts.record(event, corrupted)
    return counts


class TestEventCountsMonoid:
    @given(event_counts(), event_counts())
    @settings(max_examples=60)
    def test_commutative(self, a, b):
        assert a + b == b + a

    @given(event_counts(), event_counts(), event_counts())
    @settings(max_examples=60)
    def test_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(event_counts())
    @settings(max_examples=40)
    def test_empty_is_identity(self, a):
        assert EventCounts() + a == a
        assert a + EventCounts() == a
        assert a + EventCounts() + EventCounts() == a

    @given(event_counts(), event_counts())
    @settings(max_examples=40)
    def test_merge_totals_add(self, a, b):
        ta, tb = a.total, b.total
        merged = a + b
        assert merged.total == ta + tb
        assert sum(merged.corruption_counts.values()) == ta + tb
