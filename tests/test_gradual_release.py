"""Gradual-release strawman tests (the paper's related-work claim:
bitwise release does not help under the utility-based lens)."""

import pytest

from repro.adversaries import (
    AbortAtRound,
    FunctionalityAborter,
    LockWatchingAborter,
    PassiveAdversary,
    fixed,
)
from repro.analysis import estimate_utility, measure_reconstruction_rounds
from repro.core import FairnessEvent, STANDARD_GAMMA, classify
from repro.crypto import Rng
from repro.engine import run_execution
from repro.functions import make_swap
from repro.protocols import GradualReleaseProtocol
from repro.protocols.gradual_release import RELEASE_BITS


class TestGradualRelease:
    def setup_method(self):
        self.protocol = GradualReleaseProtocol(make_swap(16))

    def test_honest_run_correct(self):
        result = run_execution(
            self.protocol, (3, 9), PassiveAdversary(), Rng(1)
        )
        assert result.outputs[0].value == 9
        assert result.outputs[1].value == 3
        assert result.rounds_used == RELEASE_BITS + 3

    @pytest.mark.parametrize("corrupt", [0, 1])
    def test_rushing_aborter_always_wins(self, corrupt):
        """The one-bit head start is decisive: γ10 with certainty,
        matching the introduction's assessment of gradual release."""
        est = estimate_utility(
            self.protocol,
            fixed("lw", lambda: LockWatchingAborter({corrupt})),
            STANDARD_GAMMA,
            n_runs=80,
            seed=("gr", corrupt),
        )
        assert est.mean == pytest.approx(STANDARD_GAMMA.gamma10)
        assert est.event_distribution[FairnessEvent.E10] == 1.0

    def test_no_fairer_than_naive(self):
        """u(gradual-release) = u(Π1) = γ10: equally unfair."""
        from repro.analysis import u_naive_contract

        est = estimate_utility(
            self.protocol,
            fixed("lw", lambda: LockWatchingAborter({0})),
            STANDARD_GAMMA,
            n_runs=60,
            seed="gr-naive",
        )
        assert est.mean == pytest.approx(u_naive_contract(STANDARD_GAMMA))

    def test_phase1_abort_is_safe(self):
        result = run_execution(
            self.protocol,
            (3, 9),
            FunctionalityAborter({0}, "F_sharegen2"),
            Rng(2),
        )
        assert classify(result, self.protocol.func) is FairnessEvent.E01

    def test_mid_release_abort_denies_honest(self):
        result = run_execution(
            self.protocol, (3, 9), AbortAtRound({0}, 4, claim=False), Rng(3)
        )
        assert result.outputs[1].is_abort

    def test_final_release_round_is_certainly_unfair(self):
        measurement = measure_reconstruction_rounds(
            self.protocol, n_runs=40, seed="gr-rec"
        )
        # The event accounting is binary (full output learned or not), so
        # only the final release round registers as unfair — but there the
        # rushing adversary wins with certainty, unlike ΠOpt2SFE's 1/2.
        # (Partial-bit leakage mid-release is exactly the grey zone the
        # resource-fairness notion [15] prices and this utility does not.)
        assert measurement.reconstruction_rounds >= 1
        last_release_round = measurement.honest_rounds - 2
        assert measurement.unfair_probability[last_release_round] == 1.0

    def test_tampered_bit_detected(self):
        """Flipping a released bit breaks the summand MAC: honest ⊥,
        never a wrong output."""
        from repro.engine import Adversary

        class BitFlipper(Adversary):
            def initial_corruptions(self, n):
                return {0}

            def on_round(self, iface):
                runner = getattr(self, "_runner", None)
                if runner is None:
                    from repro.adversaries.base import MachineDrivingAdversary

                # Drive honestly by replaying the machine, but flip bit 3.
                # (Simpler: send a wrong bit at release round 3 and
                # nothing else — the honest party detects at reconstruct.)
                if iface.round == 0:
                    iface.call_functionality(0, "F_sharegen2", 3)
                elif iface.round == 5:
                    iface.send(0, 1, ("gr-bit", 1))

        result = run_execution(self.protocol, (3, 9), BitFlipper(), Rng(4))
        rec = result.outputs[1]
        assert rec.is_abort or rec.kind == "default" or rec.value == 3

    def test_two_party_only(self):
        from repro.functions import make_concat

        with pytest.raises(ValueError):
            GradualReleaseProtocol(make_concat(3, 8))
