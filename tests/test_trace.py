"""Execution-trace rendering tests."""

from repro.adversaries import LockWatchingAborter, PassiveAdversary
from repro.crypto import Rng
from repro.engine import (
    ABORT,
    ChannelFaultModel,
    EngineFaults,
    Message,
    run_execution,
)
from repro.engine.trace import (
    describe_message,
    render_transcript,
    summarize_payload,
)
from repro.functions import make_swap
from repro.protocols import Opt2SfeProtocol


class TestSummarizePayload:
    def test_abort(self):
        assert summarize_payload(ABORT) == "⊥"

    def test_bytes(self):
        text = summarize_payload(b"\xde\xad\xbe\xef" * 8)
        assert text.startswith("bytes[32]:deadbeef")

    def test_tuple_truncation(self):
        text = summarize_payload(tuple(range(10)))
        assert "…" in text and text.startswith("(")

    def test_dict(self):
        assert summarize_payload({1: 2, 3: 4}) == "dict[2]"

    def test_long_repr_truncated(self):
        text = summarize_payload("x" * 200)
        assert len(text) <= 50

    def test_small_values_verbatim(self):
        assert summarize_payload(42) == "42"


class TestDescribeMessage:
    def test_p2p(self):
        message = Message(0, 1, "hello", 3)
        assert describe_message(message) == "p0 → p1: 'hello'"

    def test_broadcast(self):
        message = Message(2, None, 7, 0, broadcast=True)
        assert describe_message(message) == "p2 → ∗: 7"

    def test_functionality_sender(self):
        message = Message("F_sfe", 0, 9, 1)
        assert describe_message(message).startswith("F_sfe → p0")

    def test_fault_annotations_rendered(self):
        message = Message(0, 1, "x", 2, annotation="dropped")
        assert describe_message(message) == "p0 → p1: 'x' [dropped]"
        message = Message(0, 1, "x", 2, annotation="delayed+2")
        assert describe_message(message).endswith("[delayed+2]")
        message = Message(0, 1, "x", 2, annotation="duplicate")
        assert describe_message(message).endswith("[duplicate]")

    def test_per_receiver_broadcast_attempt(self):
        # The fault layer logs broadcast delivery per receiver: the line
        # shows both the broadcast nature and the concrete receiver.
        message = Message(2, 1, 7, 0, broadcast=True)
        assert describe_message(message) == "p2 → ∗p1: 7"


class TestRenderTranscript:
    def _result(self, adversary):
        protocol = Opt2SfeProtocol(make_swap(8))
        return run_execution(protocol, (3, 9), adversary, Rng("trace"))

    def test_honest_execution(self):
        text = render_transcript(self._result(PassiveAdversary()))
        assert "opt-2sfe[swap8]" in text
        assert "round 0:" in text
        assert "outputs:" in text
        assert "rounds used:" in text

    def test_attacked_execution_shows_claim(self):
        text = render_transcript(self._result(LockWatchingAborter({0})))
        assert "corrupted=[0]" in text
        assert "adversary claim:" in text

    def test_round_cap(self):
        text = render_transcript(self._result(PassiveAdversary()), max_rounds=1)
        assert "rounds total" in text
        assert "round 2:" not in text

    def test_output_kinds_rendered(self):
        result = self._result(LockWatchingAborter({0}))
        text = render_transcript(result)
        assert "[abort]" in text or "[real]" in text

    def test_fault_free_runs_omit_fault_footer(self):
        text = render_transcript(self._result(PassiveAdversary()))
        assert "crashed:" not in text
        assert "hung:" not in text
        assert "fault events:" not in text

    def test_fault_footer_rendered(self):
        result = self._result(PassiveAdversary())
        result.crashed = {1}
        result.hung = {0}
        result.fault_events = {"dropped": 3, "crashes": 1}
        text = render_transcript(result)
        assert "crashed: [1]" in text
        assert "hung: [0]" in text
        assert "fault events: crashes=1, dropped=3" in text

    def test_faulty_execution_renders_end_to_end(self):
        protocol = Opt2SfeProtocol(make_swap(8))
        faults = EngineFaults(
            channel=ChannelFaultModel(loss=0.5, seed="trace")
        )
        result = run_execution(
            protocol, (3, 9), PassiveAdversary(), Rng("ftrace"), faults=faults
        )
        text = render_transcript(result)
        assert "[dropped]" in text
        assert "fault events:" in text
