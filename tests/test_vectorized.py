"""The vectorized batch-execution backend: bit-identity and dispatch.

The backend's entire contract is *exact* equivalence: for every eligible
``(protocol, adversary strategy)`` combination the NumPy kernels must
reproduce the reference engine's :class:`EventCounts` — event counts and
corruption counts — bit-for-bit, on every seed, or refuse the task and
fall back.  These tests pin both halves:

* **equivalence** — hundreds of random master seeds per eligible
  protocol, reference vs. vectorized, exact dict equality (no tolerance);
* **dispatch** — ineligible tasks (active faults, rng-consuming or
  unknown strategies, non-execution tasks) fall back to the reference
  engine under ``auto`` and raise :class:`BackendError` under the forced
  ``vectorized`` backend, with the choice visible in ``RunStats``;
* **payload identity** — the deterministic portion of a verification
  artifact is byte-equal across serial/pool/reference/vectorized, and a
  chunk cache warmed under one backend serves the other.
"""

import json
import random

import pytest

from repro.adversaries import (
    AbortAtRound,
    KnownOutputStopper,
    LockWatchingAborter,
    fixed,
)
from repro.analysis import deterministic_payload, report_to_dict, run_batch
from repro.engine.faults import ChannelFaultModel, EngineFaults
from repro.functions import make_and
from repro.protocols import (
    GordonKatzProtocol,
    GradualReleaseProtocol,
    SingleRoundProtocol,
)
from repro.runtime import (
    ENV_BACKEND,
    HAVE_NUMPY,
    BackendError,
    ChunkCache,
    ExecutionTask,
    ProcessPoolRunner,
    SerialRunner,
    resolve_backend,
    resolve_runner,
    vectorizable,
)
from repro.verify import verify_claims
from repro.verify.claims import constant_inputs

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy not installed"
)

N_SEEDS = 200


def _gk_config(i, rnd):
    """One randomized Gordon–Katz configuration per seed index."""
    p = rnd.choice([2, 3, 4])
    corrupt = rnd.choice([0, 1])
    known = rnd.choice([0, 1])
    inputs = (rnd.choice([0, 1]), rnd.choice([0, 1]))
    protocol = GordonKatzProtocol(make_and(), p=p)
    factory = fixed(
        "known-output",
        lambda c=corrupt, y=known: KnownOutputStopper(c, known_output=y),
    )
    return protocol, factory, inputs


def _single_round_config(i, rnd):
    corrupt = frozenset(rnd.choice([(0,), (1,), (0, 1)]))
    protocol = SingleRoundProtocol(make_and())
    factory = fixed(
        f"lock-watch{sorted(corrupt)}",
        lambda s=corrupt: LockWatchingAborter(set(s)),
    )
    return protocol, factory, (rnd.choice([0, 1]), rnd.choice([0, 1]))


def _gradual_config(i, rnd):
    corrupt = frozenset(rnd.choice([(0,), (1,), (0, 1)]))
    protocol = GradualReleaseProtocol(make_and())
    factory = fixed(
        f"lock-watch{sorted(corrupt)}",
        lambda s=corrupt: LockWatchingAborter(set(s)),
    )
    return protocol, factory, (rnd.choice([0, 1]), rnd.choice([0, 1]))


@needs_numpy
@pytest.mark.parametrize(
    "config,label",
    [
        (_gk_config, "gordon-katz"),
        (_single_round_config, "single-round"),
        (_gradual_config, "gradual-release"),
    ],
    ids=["gordon-katz", "single-round", "gradual-release"],
)
def test_exact_equivalence_over_random_seeds(config, label):
    """Reference and vectorized backends agree exactly on N_SEEDS random
    master seeds (randomized corruption/inputs/parameters per seed)."""
    rnd = random.Random(f"vectorized-{label}")
    checked = 0
    for i in range(N_SEEDS):
        protocol, factory, inputs = config(i, rnd)
        seed = ("vec-equiv", label, i, rnd.getrandbits(64))
        task_args = dict(
            seed=seed, input_sampler=constant_inputs(inputs)
        )
        ref_runner = SerialRunner(cache=None, backend="reference")
        vec_runner = SerialRunner(cache=None, backend="vectorized")
        ref = run_batch(protocol, factory, 2, runner=ref_runner, **task_args)
        vec = run_batch(protocol, factory, 2, runner=vec_runner, **task_args)
        assert ref.counts == vec.counts, (label, i, seed)
        assert ref.corruption_counts == vec.corruption_counts, (label, i)
        assert vec_runner.last_stats.execution_backend == "vectorized"
        assert vec_runner.last_stats.vectorized_runs == 2
        checked += 1
    assert checked == N_SEEDS


def _gk_task(n_runs=32, seed="vec-dispatch", faults=None):
    return ExecutionTask(
        GordonKatzProtocol(make_and(), p=2),
        fixed(
            "known-output", lambda: KnownOutputStopper(0, known_output=1)
        ),
        n_runs,
        seed=seed,
        input_sampler=constant_inputs((1, 1)),
        faults=faults,
    )


@needs_numpy
def test_eligible_task_is_vectorizable():
    assert vectorizable(_gk_task())


def test_active_faults_fall_back_to_reference():
    faults = EngineFaults(
        channel=ChannelFaultModel(loss=0.2, seed=("vec", "chan"))
    )
    task = _gk_task(faults=faults)
    assert not vectorizable(task)
    runner = SerialRunner(cache=None, backend="auto")
    runner.run_one(task)
    assert runner.last_stats.execution_backend == "reference"
    assert runner.last_stats.vectorized_runs == 0


def test_unknown_strategy_falls_back_to_reference():
    task = ExecutionTask(
        GordonKatzProtocol(make_and(), p=2),
        fixed("abort@2", lambda: AbortAtRound({0}, 2)),
        16,
        seed="vec-unknown",
        input_sampler=constant_inputs((1, 1)),
    )
    assert not vectorizable(task)
    runner = SerialRunner(cache=None, backend="auto")
    runner.run_one(task)
    assert runner.last_stats.execution_backend == "reference"
    assert runner.last_stats.vectorized_runs == 0


def test_rng_consuming_factory_falls_back_to_reference():
    """A factory that draws from its per-run RNG cannot be probed into a
    single representative instance, so the registry must refuse it."""
    from repro.adversaries import RandomSingleCorruption

    task = ExecutionTask(
        GordonKatzProtocol(make_and(), p=2),
        lambda rng: RandomSingleCorruption(2, rng),
        16,
        seed="vec-rng",
        input_sampler=constant_inputs((1, 1)),
    )
    assert not vectorizable(task)
    runner = SerialRunner(cache=None, backend="auto")
    runner.run_one(task)
    assert runner.last_stats.execution_backend == "reference"


def test_non_execution_task_falls_back_to_reference():
    """Tasks that are not ExecutionTasks (e.g. transcript-digest jobs)
    never reach a kernel, whatever the backend policy says."""

    class DigestTask:
        n_runs = 8

        def run_chunk(self, start, stop):
            from repro.core.utility import EventCounts

            return EventCounts()

    task = DigestTask()
    assert not vectorizable(task)
    runner = SerialRunner(cache=None, backend="auto")
    runner.run_one(task)
    assert runner.last_stats.execution_backend == "reference"


def test_forced_vectorized_raises_on_ineligible_task():
    task = ExecutionTask(
        GordonKatzProtocol(make_and(), p=2),
        fixed("abort@2", lambda: AbortAtRound({0}, 2)),
        16,
        seed="vec-forced",
        input_sampler=constant_inputs((1, 1)),
    )
    for runner in (
        SerialRunner(cache=None, backend="vectorized"),
        ProcessPoolRunner(
            2, min_parallel_runs=1, cache=None, backend="vectorized"
        ),
    ):
        with pytest.raises(BackendError):
            runner.run_one(task)
        # The retry ladder must not have degraded the assertion into a
        # silent reference replay.
        assert runner.last_stats.serial_replays == 0


def test_resolve_backend_env_and_validation(monkeypatch):
    monkeypatch.delenv(ENV_BACKEND, raising=False)
    assert resolve_backend(None) == "auto"
    assert resolve_backend("reference") == "reference"
    monkeypatch.setenv(ENV_BACKEND, "vectorized")
    assert resolve_backend(None) == "vectorized"
    assert resolve_backend("reference") == "reference"  # arg wins
    with pytest.raises(BackendError):
        resolve_backend("numba")
    assert resolve_runner(backend="reference").exec_backend == "reference"


@needs_numpy
def test_pool_vectorized_matches_serial_reference():
    task = _gk_task(n_runs=300, seed="vec-pool")
    serial = SerialRunner(cache=None, backend="reference")
    pool = ProcessPoolRunner(
        2, min_parallel_runs=1, chunk_size=75, cache=None, backend="auto"
    )
    ref = serial.run_one(task)
    vec = pool.run_one(task)
    assert ref.counts == vec.counts
    assert ref.corruption_counts == vec.corruption_counts
    assert pool.last_stats.execution_backend == "vectorized"
    assert pool.last_stats.vectorized_runs == 300


@needs_numpy
def test_cache_warmed_by_one_backend_serves_the_other(tmp_path):
    """Vectorized and reference chunks share cache keys because their
    partials are bit-identical."""
    warm = SerialRunner(cache=ChunkCache(tmp_path), backend="reference")
    warm.run_one(_gk_task(seed="vec-cache"))
    assert warm.last_stats.cache_stores > 0
    read = SerialRunner(cache=ChunkCache(tmp_path), backend="vectorized")
    value = read.run_one(_gk_task(seed="vec-cache"))
    assert read.last_stats.cache_hits > 0
    assert read.last_stats.vectorized_runs == 0  # served from disk
    assert value.counts == warm.run_one(_gk_task(seed="vec-cache")).counts


@needs_numpy
def test_verification_payload_byte_equal_across_backends():
    """The deterministic portion of a verify artifact must not depend on
    the venue or the execution backend."""

    def payload(runner):
        report = verify_claims(
            "E10-stop", budget="small", seed="vec-payload", runner=runner
        )
        return json.dumps(
            deterministic_payload(report_to_dict(report)), sort_keys=True
        )

    vec_runner = SerialRunner(cache=None, backend="vectorized")
    texts = {
        "reference": payload(SerialRunner(cache=None, backend="reference")),
        "vectorized": payload(vec_runner),
        "pool-auto": payload(
            ProcessPoolRunner(
                2, min_parallel_runs=1, cache=None, backend="auto"
            )
        ),
    }
    assert texts["reference"] == texts["vectorized"] == texts["pool-auto"]
    assert any(
        s.vectorized_runs for s in vec_runner.stats_history
    ), "the vectorized side never actually vectorized"


def test_e20_claims_pass_at_small_budget():
    """The backend-equivalence claim family verifies (or skips cleanly
    when numpy is absent)."""
    report = verify_claims("E20", budget="small", seed="vec-e20")
    assert report.exit_code == 0
