"""RPD attack-game tests (paper §2, Remark 2)."""

import pytest

from repro.core import STANDARD_GAMMA, AttackGame, game_from_estimates
from repro.core.utility import UtilityEstimate


def estimate(protocol, adversary, mean):
    return UtilityEstimate(
        mean=mean,
        ci_low=mean - 0.01,
        ci_high=mean + 0.01,
        n_runs=1000,
        event_distribution={},
        protocol=protocol,
        adversary=adversary,
    )


@pytest.fixture
def game():
    estimates = [
        estimate("opt", "lock0", 0.74),
        estimate("opt", "lock1", 0.76),
        estimate("opt", "passive", 0.50),
        estimate("naive", "lock0", 0.50),
        estimate("naive", "lock1", 1.00),
        estimate("single", "lock0", 1.00),
        estimate("single", "lock1", 1.00),
    ]
    return game_from_estimates(STANDARD_GAMMA, estimates)


class TestAttackGame:
    def test_best_response(self, game):
        strategy, value = game.best_response("opt")
        assert strategy == "lock1" and value == 0.76
        assert game.best_response("naive") == ("lock1", 1.0)

    def test_game_value_is_minimax(self, game):
        assert game.game_value() == 0.76

    def test_minimax_protocols(self, game):
        assert game.minimax_protocols() == ["opt"]

    def test_minimax_with_tolerance_groups_ties(self, game):
        # naive/single tie at 1.0 but don't reach the value even with a
        # generous tolerance below 0.24.
        assert game.minimax_protocols(tol=0.2) == ["opt"]
        assert set(game.minimax_protocols(tol=0.3)) == {
            "opt", "naive", "single",
        }

    def test_designer_payoff_zero_sum(self, game):
        assert game.designer_payoff("opt") == -game.attacker_value("opt")

    def test_mixture_cannot_beat_pure_minimax(self, game):
        """The attacker moves second, so designer mixing never helps."""
        mixed = game.mixture_value({"opt": 0.5, "naive": 0.5})
        assert mixed >= game.game_value()
        assert mixed == pytest.approx(0.5 * 0.76 + 0.5 * 1.0)

    def test_mixture_validation(self, game):
        with pytest.raises(ValueError):
            game.mixture_value({"opt": 0.7})
        with pytest.raises(KeyError):
            game.mixture_value({"nonexistent": 1.0})

    def test_as_rows_sorted_by_value(self, game):
        rows = game.as_rows()
        assert rows[0][0] == "opt"
        values = [row[2] for row in rows]
        assert values == sorted(values)

    def test_empty_game_rejected(self):
        with pytest.raises(ValueError):
            AttackGame(STANDARD_GAMMA, {})
        with pytest.raises(ValueError):
            AttackGame(STANDARD_GAMMA, {"p": {}})


class TestMeasuredGame:
    def test_end_to_end_minimax_matches_optimal_fairness(self):
        """Measured over the real protocols: the attack game's minimax
        solution is the optimally fair protocol (Remark 2)."""
        from repro.adversaries import LockWatchingAborter, fixed
        from repro.analysis import sweep_strategies
        from repro.functions import make_swap
        from repro.protocols import Opt2SfeProtocol, SingleRoundProtocol

        strategies = [
            fixed("lock0", lambda: LockWatchingAborter({0})),
            fixed("lock1", lambda: LockWatchingAborter({1})),
        ]
        estimates = []
        swap = make_swap(16)
        for protocol in (Opt2SfeProtocol(swap), SingleRoundProtocol(swap)):
            estimates.extend(
                sweep_strategies(
                    protocol, strategies, STANDARD_GAMMA, 200, seed="game"
                )
            )
        game = game_from_estimates(STANDARD_GAMMA, estimates)
        assert game.minimax_protocols(tol=0.05) == ["opt-2sfe[swap16]"]
        assert game.game_value() == pytest.approx(0.75, abs=0.08)
