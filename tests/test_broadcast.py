"""Merkle trees, many-time signatures, and Dolev–Strong broadcast."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    MerkleProof,
    MerkleTree,
    MtsSigner,
    Rng,
    SignatureCapacityExceeded,
    mts_verify,
    verify_inclusion,
)
from repro.adversaries import AbortAtRound, PassiveAdversary
from repro.engine import Adversary, run_execution
from repro.protocols import DolevStrongBroadcast, NO_VALUE
from repro.protocols.broadcast import _message_body


class TestMerkle:
    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        assert verify_inclusion(tree.root, b"only", tree.prove(0))

    @given(st.integers(1, 9), st.integers(0, 8))
    @settings(max_examples=30)
    def test_inclusion_roundtrip(self, n_leaves, index):
        index = index % n_leaves
        leaves = [f"leaf-{i}".encode() for i in range(n_leaves)]
        tree = MerkleTree(leaves)
        assert verify_inclusion(tree.root, leaves[index], tree.prove(index))

    def test_wrong_leaf_rejected(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        assert not verify_inclusion(tree.root, b"x", tree.prove(1))

    def test_wrong_position_rejected(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        proof = tree.prove(1)
        wrong = MerkleProof(0, proof.siblings)
        assert not verify_inclusion(tree.root, b"b", wrong)

    def test_bad_inputs(self):
        tree = MerkleTree([b"a"])
        assert not verify_inclusion(tree.root, "not-bytes", tree.prove(0))
        assert not verify_inclusion(tree.root, b"a", "not-a-proof")
        with pytest.raises(ValueError):
            MerkleTree([])
        with pytest.raises(IndexError):
            tree.prove(5)


class TestManyTimeSignatures:
    def setup_method(self):
        self.signer = MtsSigner(Rng(b"mts"), capacity=4)
        self.pk = self.signer.public_key

    def test_sign_verify_multiple(self):
        for k in range(4):
            sig = self.signer.sign(("msg", k))
            assert mts_verify(("msg", k), sig, self.pk)

    def test_capacity_enforced(self):
        for k in range(4):
            self.signer.sign(k)
        with pytest.raises(SignatureCapacityExceeded):
            self.signer.sign(99)
        assert self.signer.remaining == 0

    def test_wrong_message_rejected(self):
        sig = self.signer.sign("hello")
        assert not mts_verify("other", sig, self.pk)

    def test_wrong_key_rejected(self):
        other = MtsSigner(Rng(b"other"), capacity=2)
        sig = self.signer.sign("hello")
        assert not mts_verify("hello", sig, other.public_key)

    def test_transplanted_vk_rejected(self):
        """A signature under a key not certified by the root fails."""
        from dataclasses import replace

        rogue = MtsSigner(Rng(b"rogue"), capacity=2)
        rogue_sig = rogue.sign("hello")
        honest_sig = self.signer.sign("hello")
        forged = replace(
            rogue_sig, proof=honest_sig.proof, index=honest_sig.index
        )
        assert not mts_verify("hello", forged, self.pk)

    def test_garbage_rejected(self):
        assert not mts_verify("x", "garbage", self.pk)
        assert not mts_verify("x", self.signer.sign("x"), "garbage")


class EquivocatingSender(Adversary):
    """Corrupted sender signs two different values and splits the group."""

    def initial_corruptions(self, n):
        return {0}

    def on_corrupt(self, party):
        self.machine = party.runner.machine

    def on_round(self, iface):
        if iface.round != 0:
            return
        signer = self.machine.signer
        for value, targets in ((111, (1,)), (222, tuple(range(2, iface.n)))):
            chain = ((0, signer.sign(_message_body(value))),)
            for j in targets:
                iface.send(0, j, ("ds-relay", value, chain))


class SelectiveSender(Adversary):
    """Corrupted sender sends a single signed value to ONE party only and
    stays silent towards the rest."""

    def initial_corruptions(self, n):
        return {0}

    def on_corrupt(self, party):
        self.machine = party.runner.machine

    def on_round(self, iface):
        if iface.round == 0:
            chain = ((0, self.machine.signer.sign(_message_body(333))),)
            iface.send(0, 1, ("ds-relay", 333, chain))


class TestDolevStrong:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_validity_honest_sender(self, n):
        protocol = DolevStrongBroadcast(n, sender=0)
        inputs = tuple([42] + [0] * (n - 1))
        result = run_execution(protocol, inputs, PassiveAdversary(), Rng(n))
        assert all(rec.value == 42 for rec in result.outputs.values())

    def test_nonzero_sender_index(self):
        protocol = DolevStrongBroadcast(4, sender=2)
        result = run_execution(
            protocol, (0, 0, 99, 0), PassiveAdversary(), Rng(7)
        )
        assert all(rec.value == 99 for rec in result.outputs.values())

    def test_agreement_under_equivocation(self):
        """The split heals: by round t+1 every honest party has extracted
        both values and outputs the same NO_VALUE marker."""
        protocol = DolevStrongBroadcast(5, sender=0)
        result = run_execution(
            protocol, (0, 0, 0, 0, 0), EquivocatingSender(), Rng(8)
        )
        values = {rec.value for rec in result.outputs.values()}
        assert values == {NO_VALUE}

    def test_agreement_under_selective_send(self):
        """A value sent to a single honest party propagates to all."""
        protocol = DolevStrongBroadcast(5, sender=0)
        result = run_execution(
            protocol, (0, 0, 0, 0, 0), SelectiveSender(), Rng(9)
        )
        values = {rec.value for rec in result.outputs.values()}
        assert values == {333}

    def test_silent_sender_yields_no_value_everywhere(self):
        protocol = DolevStrongBroadcast(4, sender=0)
        result = run_execution(
            protocol, (5, 0, 0, 0), AbortAtRound({0}, 0, claim=False), Rng(10)
        )
        assert all(rec.value == NO_VALUE for rec in result.outputs.values())

    def test_forged_chain_rejected(self):
        """A relayer cannot originate a value: chains must start with the
        sender's signature."""

        class Forger(Adversary):
            def initial_corruptions(self, n):
                return {1}

            def on_corrupt(self, party):
                self.machine = party.runner.machine

            def on_round(self, iface):
                if iface.round == 1:
                    chain = (
                        (1, self.machine.signer.sign(_message_body(666))),
                    )
                    for j in (0, 2, 3):
                        iface.send(1, j, ("ds-relay", 666, chain))

        protocol = DolevStrongBroadcast(4, sender=0)
        result = run_execution(protocol, (5, 0, 0, 0), Forger(), Rng(11))
        for i in (0, 2, 3):
            assert result.outputs[i].value == 5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DolevStrongBroadcast(1)
        with pytest.raises(ValueError):
            DolevStrongBroadcast(3, sender=5)
        with pytest.raises(ValueError):
            DolevStrongBroadcast(3, max_faults=3)

    def test_round_complexity(self):
        protocol = DolevStrongBroadcast(4, sender=0, max_faults=2)
        result = run_execution(
            protocol, (7, 0, 0, 0), PassiveAdversary(), Rng(12)
        )
        assert result.rounds_used == protocol.max_faults + 2
