"""Reconstruction-round measurement tests (Definition 8, Lemmas 9-10)."""

import pytest

from repro.analysis import (
    honest_round_count,
    measure_reconstruction_rounds,
)
from repro.functions import make_swap
from repro.protocols import (
    DummyProtocol,
    Opt2SfeProtocol,
    SingleRoundProtocol,
)


class TestHonestRoundCount:
    def test_opt2sfe(self):
        assert honest_round_count(Opt2SfeProtocol(make_swap(8))) == 4

    def test_single_round(self):
        assert honest_round_count(SingleRoundProtocol(make_swap(8))) == 3

    def test_dummy(self):
        assert honest_round_count(DummyProtocol(make_swap(8))) == 2


class TestReconstructionRounds:
    def test_lemma9_opt2sfe_has_two(self):
        measurement = measure_reconstruction_rounds(
            Opt2SfeProtocol(make_swap(8)), n_runs=120, seed=1
        )
        assert measurement.reconstruction_rounds == 2
        # Unfair window = the two phase-2 rounds (engine rounds 1, 2).
        assert measurement.unfair_rounds == [1, 2]
        # Abort during phase 1 is harmless.
        assert measurement.unfair_probability[0] == 0.0

    def test_lemma10_single_round_has_one(self):
        measurement = measure_reconstruction_rounds(
            SingleRoundProtocol(make_swap(8)), n_runs=120, seed=2
        )
        assert measurement.reconstruction_rounds == 1
        # And the single reconstruction round is unfair with certainty —
        # the γ10 concession of Lemma 10.
        assert measurement.unfair_probability[1] == pytest.approx(1.0)

    def test_dummy_has_zero(self):
        measurement = measure_reconstruction_rounds(
            DummyProtocol(make_swap(8)), n_runs=60, seed=3
        )
        assert measurement.reconstruction_rounds == 0

    def test_unfair_window_halves_split(self):
        """In ΠOpt2SFE the unfair abort succeeds only when î is corrupted
        — probability 1/2 per round."""
        measurement = measure_reconstruction_rounds(
            Opt2SfeProtocol(make_swap(8)), n_runs=300, seed=4
        )
        for r in measurement.unfair_rounds:
            assert 0.38 <= measurement.unfair_probability[r] <= 0.62
