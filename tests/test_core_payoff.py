"""Payoff vector and Γ-class tests (§3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FairnessEvent,
    PARTIAL_FAIRNESS_GAMMA,
    PayoffVector,
    STANDARD_GAMMA,
    CostedPayoffVector,
    count_cost,
    gamma_fair_grid,
    gamma_fair_plus_grid,
    zero_cost,
)


class TestGammaClasses:
    def test_standard_gamma_in_both_classes(self):
        assert STANDARD_GAMMA.in_gamma_fair()
        assert STANDARD_GAMMA.in_gamma_fair_plus()

    def test_partial_fairness_gamma(self):
        # (0, 0, 1, 0): γ00 = γ11 = 0 < γ10 = 1.
        assert PARTIAL_FAIRNESS_GAMMA.in_gamma_fair()
        assert PARTIAL_FAIRNESS_GAMMA.in_gamma_fair_plus()

    def test_gamma10_must_dominate(self):
        assert not PayoffVector(0.0, 0.0, 0.5, 0.5).in_gamma_fair()
        assert not PayoffVector(1.5, 0.0, 1.0, 0.5).in_gamma_fair()

    def test_gamma01_must_be_minimum(self):
        assert not PayoffVector(-0.5, 0.0, 1.0, 0.5).in_gamma_fair()

    def test_fair_but_not_plus(self):
        vec = PayoffVector(0.8, 0.0, 1.0, 0.5)
        assert vec.in_gamma_fair()
        assert not vec.in_gamma_fair_plus()

    def test_require_helpers(self):
        with pytest.raises(ValueError):
            PayoffVector(0, 0, 0.5, 1.0).require_fair()
        with pytest.raises(ValueError):
            PayoffVector(0.8, 0.0, 1.0, 0.5).require_fair_plus()
        assert STANDARD_GAMMA.require_fair_plus() is STANDARD_GAMMA

    def test_grids_nonempty_and_valid(self):
        grid = gamma_fair_grid()
        assert grid and all(g.in_gamma_fair() for g in grid)
        plus = gamma_fair_plus_grid()
        assert plus and all(g.in_gamma_fair_plus() for g in plus)
        assert set(plus) <= set(grid)


class TestNormalisation:
    def test_shift_to_zero(self):
        vec = PayoffVector(1.0, 0.5, 2.0, 1.5)
        norm = vec.normalised()
        assert norm.gamma01 == 0.0
        assert norm.gamma00 == 0.5
        assert norm.gamma10 == 1.5
        assert norm.gamma11 == 1.0

    def test_normalisation_preserves_fairness_class(self):
        vec = PayoffVector(1.0, 0.5, 2.0, 1.5)
        assert vec.normalised().in_gamma_fair()

    @given(
        st.floats(-1, 1),
        st.floats(0.1, 2.0),
    )
    @settings(max_examples=30)
    def test_shift_invariance_of_expected_differences(self, shift, scale):
        """Shifting all payoffs changes every expected utility identically,
        so the fairness *relation* is invariant."""
        base = PayoffVector(0.0, 0.0, 1.0 * scale, 0.5 * scale)
        shifted = PayoffVector(
            base.gamma00 + shift,
            base.gamma01 + shift,
            base.gamma10 + shift,
            base.gamma11 + shift,
        )
        dist_a = {FairnessEvent.E10: 0.5, FairnessEvent.E11: 0.5}
        dist_b = {FairnessEvent.E10: 1.0}
        gap_base = base.expected(dist_b) - base.expected(dist_a)
        gap_shift = shifted.expected(dist_b) - shifted.expected(dist_a)
        assert gap_base == pytest.approx(gap_shift)


class TestExpectedPayoff:
    def test_expected(self):
        dist = {FairnessEvent.E10: 0.5, FairnessEvent.E11: 0.5}
        assert STANDARD_GAMMA.expected(dist) == pytest.approx(0.75)

    def test_value_lookup(self):
        assert STANDARD_GAMMA.value(FairnessEvent.E10) == 1.0
        assert STANDARD_GAMMA.value(FairnessEvent.E01) == 0.0

    def test_overweight_distribution_rejected(self):
        with pytest.raises(ValueError):
            STANDARD_GAMMA.expected(
                {FairnessEvent.E10: 0.8, FairnessEvent.E11: 0.8}
            )

    def test_as_tuple_and_str(self):
        assert STANDARD_GAMMA.as_tuple() == (0.0, 0.0, 1.0, 0.5)
        assert "γ10=1.0" in str(STANDARD_GAMMA)


class TestCostedPayoff:
    def test_cost_subtracted(self):
        costed = CostedPayoffVector(STANDARD_GAMMA, count_cost(lambda t: 0.1 * t))
        events = {FairnessEvent.E10: 1.0}
        corruptions = {frozenset({0, 1}): 1.0}
        assert costed.expected(events, corruptions) == pytest.approx(0.8)

    def test_zero_cost(self):
        costed = CostedPayoffVector(STANDARD_GAMMA, zero_cost())
        events = {FairnessEvent.E11: 1.0}
        assert costed.expected(events, {frozenset({0}): 1.0}) == pytest.approx(
            0.5
        )

    def test_class_membership_delegates(self):
        costed = CostedPayoffVector(STANDARD_GAMMA, zero_cost())
        assert costed.in_gamma_fair_plus_c()
