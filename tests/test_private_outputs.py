"""Private-output transform tests (paper Appendix B)."""

import pytest

from repro.crypto import Rng
from repro.functions import (
    augment_input,
    blind_private_outputs,
    make_public_version,
    make_rotate,
    make_swap,
    pack_blinded,
    recover_private_output,
    unblind_component,
    unpack_blinded,
)


class TestTransform:
    def setup_method(self):
        self.func = make_swap(16)
        self.width = self.func.output_bits
        self.rng = Rng(b"priv")

    def _augmented(self, xs):
        return tuple(
            augment_input(x, self.width, self.rng.fork(f"k{i}"))
            for i, x in enumerate(xs)
        )

    def test_each_party_recovers_its_component(self):
        augmented = self._augmented((3, 9))
        blinded = blind_private_outputs(self.func, augmented, self.width)
        true = self.func.outputs_for((3, 9))
        for i in range(2):
            _, key = augmented[i]
            assert unblind_component(blinded, i, key, self.width) == true[i]

    def test_other_components_are_blinded(self):
        """Without pj's key, component j is a one-time-pad ciphertext:
        over random keys it is uniform."""
        from collections import Counter

        counts = Counter()
        for k in range(2000):
            rng = Rng(("blind", k))
            augmented = (
                augment_input(3, 3, rng.fork("a")),
                augment_input(5, 3, rng.fork("b")),
            )
            func = make_swap(3)
            blinded = blind_private_outputs(func, augmented, 3)
            counts[blinded[1]] += 1  # p1's view of p2's component
        assert set(counts) == set(range(8))
        assert all(150 <= c <= 350 for c in counts.values())

    def test_malformed_augmented_inputs(self):
        with pytest.raises(ValueError):
            blind_private_outputs(self.func, (3, 9), self.width)
        with pytest.raises(ValueError):
            blind_private_outputs(self.func, ((3, 0),), self.width)


class TestPacking:
    def test_pack_roundtrip(self):
        vector = (5, 200, 17)
        assert unpack_blinded(pack_blinded(vector, 8), 3, 8) == vector


class TestPublicVersionSpec:
    def test_global_output_everywhere(self):
        pub = make_public_version(make_swap(8))
        inputs = pub.sample_inputs(Rng(1))
        outputs = pub.outputs_for(inputs)
        assert outputs[0] == outputs[1]  # public: identical for all

    def test_recovery_through_spec(self):
        base = make_swap(8)
        pub = make_public_version(base)
        inputs = pub.sample_inputs(Rng(2))
        packed = pub.outputs_for(inputs)[0]
        xs = tuple(pair[0] for pair in inputs)
        true = base.outputs_for(xs)
        for i in range(2):
            _, key = inputs[i]
            assert recover_private_output(packed, i, key, base) == true[i]

    def test_usable_by_opt2sfe(self):
        """ΠOpt2SFE evaluates the lifted f' end-to-end: each party ends
        with the packed blinded vector from which only its own component
        opens."""
        from repro.adversaries import PassiveAdversary
        from repro.engine import run_execution
        from repro.protocols import Opt2SfeProtocol

        base = make_swap(8)
        pub = make_public_version(base)
        protocol = Opt2SfeProtocol(pub)
        rng = Rng(3)
        inputs = pub.sample_inputs(rng)
        result = run_execution(protocol, inputs, PassiveAdversary(), rng.fork("x"))
        xs = tuple(pair[0] for pair in inputs)
        true = base.outputs_for(xs)
        for i in range(2):
            packed = result.outputs[i].value
            _, key = inputs[i]
            assert recover_private_output(packed, i, key, base) == true[i]

    def test_usable_by_opt_nsfe(self):
        from repro.adversaries import PassiveAdversary
        from repro.engine import run_execution
        from repro.protocols import OptNSfeProtocol

        base = make_rotate(3, 8)
        pub = make_public_version(base)
        protocol = OptNSfeProtocol(pub)
        rng = Rng(4)
        inputs = pub.sample_inputs(rng)
        result = run_execution(protocol, inputs, PassiveAdversary(), rng.fork("x"))
        xs = tuple(pair[0] for pair in inputs)
        true = base.outputs_for(xs)
        for i in range(3):
            packed = result.outputs[i].value
            _, key = inputs[i]
            assert recover_private_output(packed, i, key, base) == true[i]

    def test_fairness_preserved_on_lifted_function(self):
        """Lock-watching against ΠOpt2SFE on the lifted f' still yields the
        Theorem-3 split — the transform does not change the analysis."""
        from repro.adversaries import LockWatchingAborter, fixed
        from repro.analysis import estimate_utility
        from repro.core import STANDARD_GAMMA

        from repro.protocols import Opt2SfeProtocol

        pub = make_public_version(make_swap(8))
        est = estimate_utility(
            Opt2SfeProtocol(pub),
            fixed("l0", lambda: LockWatchingAborter({0})),
            STANDARD_GAMMA,
            n_runs=300,
            seed="lifted",
        )
        assert est.mean == pytest.approx(0.75, abs=0.09)
