"""Symbolic cost models and the cost-aware scheduler.

Covers the three layers of the cost subsystem: the closed forms in
``analysis/symbolic_cost.py`` (predictions must match ``measure_cost``
exactly, with and without sympy), the E21 claim family that pins that
agreement, and the ``schedule="cost"`` runtime mode (bit-identical
results, deterministic venue-invariant plans, LPT dispatch,
observability fields, env knobs).
"""

import os

import pytest

from repro.adversaries import PassiveAdversary, fixed
from repro.analysis.complexity import measure_cost
from repro.analysis.export import (
    chunk_stats_to_dict,
    run_stats_to_dict,
)
from repro.analysis.symbolic_cost import (
    HAVE_SYMPY,
    SYMBOLS,
    PredictedCost,
    covered,
    covered_families,
    evaluate,
    gk_reveal_rounds_symbolic,
    model_for,
    symbolic,
)
from repro.functions import make_and, make_concat, make_swap
from repro.gmw import ThresholdGmwProtocol
from repro.protocols import (
    DummyProtocol,
    GordonKatzProtocol,
    Opt2SfeProtocol,
    OptNSfeProtocol,
    SingleRoundProtocol,
)
from repro.protocols.gradual_release import RELEASE_BITS, GradualReleaseProtocol
from repro.runtime import (
    ENV_CHUNK_SIZE,
    ENV_SCHEDULE,
    ExecutionTask,
    ProcessPoolRunner,
    SerialRunner,
    resolve_chunk_size,
    resolve_schedule,
)
from repro.runtime.distributed import DistributedRunner


def _passive():
    return fixed("passive", lambda: PassiveAdversary())


def _zoo():
    """Every protocol family the cost models cover, as concrete instances."""
    return [
        GordonKatzProtocol(make_and(), p=2),
        GordonKatzProtocol(make_and(), p=4),
        SingleRoundProtocol(make_and()),
        GradualReleaseProtocol(make_and()),
        Opt2SfeProtocol(make_swap(16)),
        OptNSfeProtocol(make_concat(5, 8)),
        ThresholdGmwProtocol(make_concat(5, 8)),
    ]


# -- the closed forms --------------------------------------------------------


class TestSymbolicModels:
    def test_predictions_match_measured_costs_exactly(self):
        # The E21 contract, claim by claim: zero divergence on every
        # component for every covered family.
        for protocol in _zoo():
            predicted = evaluate(protocol)
            measured = measure_cost(
                protocol, n_runs=3, seed=("cost-test", protocol.name)
            )
            assert predicted.rounds == measured.rounds
            assert (
                predicted.point_to_point_messages
                == measured.point_to_point_messages
            )
            assert predicted.broadcasts == measured.broadcasts
            assert (
                predicted.functionality_responses
                == measured.functionality_responses
            )

    def test_known_closed_forms(self):
        gk = evaluate(GordonKatzProtocol(make_and(), p=2))
        R = GordonKatzProtocol(make_and(), p=2).reveal_rounds
        assert (gk.rounds, gk.point_to_point_messages) == (R + 2, 2 * R)
        gr = evaluate(GradualReleaseProtocol(make_and()))
        assert gr.rounds == RELEASE_BITS + 3
        assert gr.point_to_point_messages == 2 * RELEASE_BITS + 2
        nsfe = evaluate(OptNSfeProtocol(make_concat(5, 8)))
        assert (nsfe.broadcasts, nsfe.functionality_responses) == (5, 5)

    def test_weight_is_rounds_plus_traffic(self):
        cost = PredictedCost("x", 4, 2, 0, 2)
        assert cost.total_messages == 4
        assert cost.weight == 8.0

    def test_sympy_and_fallback_paths_agree(self, monkeypatch):
        if not HAVE_SYMPY:
            pytest.skip("sympy unavailable; only the fallback path exists")
        import repro.analysis.symbolic_cost as sc

        with_sympy = [evaluate(p) for p in _zoo()]
        monkeypatch.setattr(sc, "HAVE_SYMPY", False)
        without = [sc.evaluate(p) for p in _zoo()]
        assert with_sympy == without

    @pytest.mark.skipif(not HAVE_SYMPY, reason="needs sympy")
    def test_symbolic_expressions_substitute(self):
        import sympy

        model = model_for(GordonKatzProtocol(make_and(), p=2))
        exprs = symbolic(model)
        R = sympy.Symbol("R", positive=True, integer=True)
        assert exprs["rounds"] == R + 2
        assert exprs["point_to_point_messages"] == 2 * R
        assert int(exprs["rounds"].subs({R: 80})) == 82
        # The round parameter's own closed form (Theorems 23/24 shapes).
        p = sympy.Symbol("p", positive=True, integer=True)
        m = sympy.Symbol("m", positive=True, integer=True)
        assert gk_reveal_rounds_symbolic("domain") == 20 * p * m
        assert gk_reveal_rounds_symbolic("range") == 20 * p ** 2 * m
        with pytest.raises(ValueError):
            gk_reveal_rounds_symbolic("bogus")

    def test_every_model_param_is_in_the_glossary(self):
        for protocol in _zoo():
            for param in model_for(protocol).params:
                assert param in SYMBOLS

    def test_uncovered_protocol_raises_with_coverage_list(self):
        dummy = DummyProtocol(make_swap(8))
        assert not covered(dummy)
        assert model_for(dummy) is None
        with pytest.raises(ValueError, match="covered families"):
            evaluate(dummy)
        assert "GordonKatzProtocol" in covered_families()

    def test_subclasses_inherit_their_family_model(self):
        class TunedSingleRound(SingleRoundProtocol):
            pass

        tuned = TunedSingleRound(make_and())
        assert model_for(tuned) is model_for(SingleRoundProtocol(make_and()))
        assert evaluate(tuned).rounds == 3


# -- env knobs ---------------------------------------------------------------


class TestScheduleKnobs:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_SCHEDULE, "cost")
        assert resolve_schedule("uniform") == "uniform"
        assert resolve_schedule() == "cost"
        monkeypatch.delenv(ENV_SCHEDULE)
        assert resolve_schedule() == "uniform"

    def test_env_schedule_validation_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(ENV_SCHEDULE, "fastest")
        with pytest.raises(ValueError, match="REPRO_SCHEDULE"):
            resolve_schedule()

    def test_explicit_schedule_validation(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            resolve_schedule("fastest")

    def test_chunk_size_env_mirrors_flag(self, monkeypatch):
        monkeypatch.setenv(ENV_CHUNK_SIZE, "25")
        assert resolve_chunk_size() == 25
        assert resolve_chunk_size(10) == 10
        monkeypatch.delenv(ENV_CHUNK_SIZE)
        assert resolve_chunk_size() is None

    @pytest.mark.parametrize("bad", ["0", "-3", "ten", "2.5", "1e3"])
    def test_env_chunk_size_validation_names_the_variable(
        self, monkeypatch, bad
    ):
        monkeypatch.setenv(ENV_CHUNK_SIZE, bad)
        with pytest.raises(ValueError, match="REPRO_CHUNK_SIZE"):
            resolve_chunk_size()

    def test_explicit_chunk_size_validation(self):
        with pytest.raises(ValueError, match="positive"):
            resolve_chunk_size(0)

    def test_runner_reads_env_knobs(self, monkeypatch):
        monkeypatch.setenv(ENV_SCHEDULE, "cost")
        monkeypatch.setenv(ENV_CHUNK_SIZE, "17")
        runner = SerialRunner()
        assert runner.schedule == "cost"
        assert runner.chunk_size == 17


# -- the cost schedule at runtime -------------------------------------------


def _hetero_tasks(n_runs=120):
    """A deliberately heterogeneous batch: ~35x per-run cost spread."""
    return [
        ExecutionTask(
            GordonKatzProtocol(make_and(), p=2), _passive(), n_runs,
            seed=("sched", 0),
        ),
        ExecutionTask(
            SingleRoundProtocol(make_and()), _passive(), n_runs,
            seed=("sched", 1),
        ),
        ExecutionTask(
            Opt2SfeProtocol(make_swap(16)), _passive(), n_runs,
            seed=("sched", 2),
        ),
    ]


class TestCostSchedule:
    def test_results_identical_across_schedules(self):
        uniform = SerialRunner(schedule="uniform").run(_hetero_tasks())
        cost = SerialRunner(schedule="cost").run(_hetero_tasks())
        assert uniform == cost

    def test_plans_deterministic_and_venue_invariant(self):
        # The plan is a pure function of (task, cost model, knobs): the
        # serial, pool, and distributed venues must derive byte-identical
        # span sets, or journal fingerprints could not replay across them.
        task = _hetero_tasks()[0]
        serial = SerialRunner(schedule="cost")
        pool = ProcessPoolRunner(2, min_parallel_runs=0, schedule="cost")
        dist = DistributedRunner(["127.0.0.1:9"], schedule="cost")
        plans = {tuple(r._plan(task)) for r in (serial, pool, dist)}
        assert len(plans) == 1
        assert serial._plan(task) == serial._plan(task)

    def test_expensive_tasks_get_smaller_chunks(self):
        runner = SerialRunner(schedule="cost")
        tasks = _hetero_tasks()
        gk_plan = runner._plan(tasks[0])
        single_plan = runner._plan(tasks[1])
        assert len(gk_plan) > len(single_plan)

    def test_pool_cost_schedule_matches_serial(self):
        tasks = _hetero_tasks()
        serial = SerialRunner(schedule="cost")
        expected = serial.run(_hetero_tasks())
        pool = ProcessPoolRunner(2, min_parallel_runs=0, schedule="cost")
        got = pool.run(tasks)
        assert got == expected
        if pool.last_stats.backend == "process-pool":
            # LPT dispatch must not change the consumed span set.
            assert sorted(pool.last_stats.chunk_spans) == sorted(
                serial.last_stats.chunk_spans
            )

    def test_observability_fields(self):
        runner = SerialRunner(schedule="cost")
        runner.run(_hetero_tasks(n_runs=40))
        stats = runner.last_stats
        assert stats.schedule == "cost"
        assert all(c.predicted_cost > 0 for c in stats.chunks)
        exported = run_stats_to_dict(stats)
        assert exported["schedule"] == "cost"
        assert "predicted_cost" in chunk_stats_to_dict(stats.chunks[0])
        # GK chunks predict heavier than single-round chunks per run.
        by_task = {}
        for c in stats.chunks:
            by_task.setdefault(c.task_index, c.predicted_cost / c.n_runs)
        assert by_task[0] > by_task[1]

    def test_uniform_runs_still_report_predicted_cost(self):
        runner = SerialRunner(schedule="uniform", chunk_size=16)
        runner.run(_hetero_tasks(n_runs=40))
        stats = runner.last_stats
        assert stats.schedule == "uniform"
        assert any(c.predicted_cost > 0 for c in stats.chunks)

    def test_unmodelled_tasks_keep_uniform_plan(self):
        task = ExecutionTask(
            DummyProtocol(make_swap(8)), _passive(), 100, seed=("sched", 9)
        )
        cost = SerialRunner(schedule="cost")
        uniform = SerialRunner(schedule="uniform", chunk_size=None)
        assert cost._plan(task) == uniform._plan(task)
        cost.run([task])
        assert all(
            c.predicted_cost == 0.0 for c in cost.last_stats.chunks
        )

    def test_cost_resume_replays_across_venues(self, tmp_path):
        # Journal written under the cost schedule by the serial venue,
        # resumed by the pool venue: every span must replay, proving the
        # cost plan (and its fingerprints) is venue-invariant.
        from repro.runtime import RunJournal

        first = SerialRunner(
            schedule="cost", journal=RunJournal(tmp_path)
        )
        expected = first.run(_hetero_tasks())
        resumed = ProcessPoolRunner(
            2, min_parallel_runs=0, schedule="cost",
            journal=RunJournal(tmp_path, resume=True),
        )
        got = resumed.run(_hetero_tasks())
        assert got == expected
        stats = resumed.last_stats
        assert stats.journal_replayed_chunks == first.last_stats.n_chunks
        assert all(c.engine == "journal" for c in stats.chunks)


# -- E21 claims --------------------------------------------------------------


class TestE21Claims:
    def test_registered_for_every_covered_family(self):
        from repro.verify import default_registry

        registry = default_registry()
        ids = {c.claim_id for c in registry.select("E21")}
        assert ids == {
            "E21-opt2sfe", "E21-single", "E21-gradual",
            "E21-gk", "E21-nsfe", "E21-gmw",
        }

    def test_all_pass_exactly_and_replay(self):
        from repro.analysis import deterministic_payload, report_to_dict
        from repro.verify import verify_claims

        report = verify_claims("E21", budget="small", seed="e21-test")
        assert report.exit_code == 0
        for check in report.checks:
            assert check.measurement.value == 0.0
            assert check.tolerance == 0.0
        replay = verify_claims("E21", budget="small", seed="e21-test")
        assert deterministic_payload(
            report_to_dict(report)
        ) == deterministic_payload(report_to_dict(replay))
