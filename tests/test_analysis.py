"""Analysis layer: estimator, analytic values, comparison, reports."""

import pytest

from repro.adversaries import LockWatchingAborter, PassiveAdversary, fixed
from repro.analysis import (
    FairnessOrder,
    assess_protocol,
    balance_profile,
    bound_row,
    build_order,
    check_row,
    estimate_utility,
    experiment_banner,
    format_table,
    run_batch,
    sweep_strategies,
    u_coin_contract,
    u_dummy,
    u_naive_contract,
    u_opt_2sfe,
    u_opt_nsfe,
    u_single_round,
    u_threshold_gmw,
    u_unbalanced_opt,
)
from repro.analysis.analytic import (
    gk_fixed_round_win_probability,
    gk_known_output_e10,
    gk_known_output_win_probability,
    threshold_gmw_balance_sum,
)
from repro.core import (
    FairnessEvent,
    PayoffVector,
    STANDARD_GAMMA,
    balanced_sum_bound,
    monte_carlo_tolerance,
)
from repro.functions import make_swap
from repro.protocols import NaiveContractSigning, Opt2SfeProtocol


class TestEstimator:
    def test_run_batch_counts(self):
        protocol = NaiveContractSigning()
        counts = run_batch(
            protocol, fixed("l1", lambda: LockWatchingAborter({1})), 40, seed=1
        )
        assert counts.total == 40
        assert counts.counts[FairnessEvent.E10] == 40

    def test_run_batch_needs_runs(self):
        with pytest.raises(ValueError):
            run_batch(NaiveContractSigning(), fixed("p", PassiveAdversary), 0)

    def test_estimate_deterministic_given_seed(self):
        protocol = Opt2SfeProtocol(make_swap(8))
        factory = fixed("l0", lambda: LockWatchingAborter({0}))
        a = estimate_utility(protocol, factory, STANDARD_GAMMA, 50, seed=3)
        b = estimate_utility(protocol, factory, STANDARD_GAMMA, 50, seed=3)
        assert a.mean == b.mean

    def test_sweep_and_assess(self):
        protocol = NaiveContractSigning()
        factories = [
            fixed("passive", lambda: PassiveAdversary({0})),
            fixed("lock1", lambda: LockWatchingAborter({1})),
        ]
        estimates = sweep_strategies(
            protocol, factories, STANDARD_GAMMA, 30, seed=2
        )
        assert len(estimates) == 2
        assessment = assess_protocol(
            protocol, factories, STANDARD_GAMMA, 30, seed=2
        )
        assert assessment.best_attack.adversary == "lock1"
        assert assessment.utility == pytest.approx(1.0)

    def test_balance_profile(self):
        from repro.functions import make_concat
        from repro.protocols import OptNSfeProtocol

        n = 3
        protocol = OptNSfeProtocol(make_concat(n, 8))
        factories_per_t = {
            t: [fixed(f"lw{t}", lambda t=t: LockWatchingAborter(set(range(t))))]
            for t in range(1, n)
        }
        profile = balance_profile(
            protocol, factories_per_t, STANDARD_GAMMA, n_runs=200, seed=4
        )
        assert set(profile.per_t) == {1, 2}
        bound = balanced_sum_bound(n, STANDARD_GAMMA)
        assert profile.utility_sum == pytest.approx(bound, abs=0.2)


class TestAnalyticValues:
    def test_two_party_values(self):
        g = STANDARD_GAMMA
        assert u_naive_contract(g) == 1.0
        assert u_coin_contract(g) == 0.75
        assert u_opt_2sfe(g) == 0.75
        assert u_single_round(g) == 1.0

    def test_coin_contract_with_large_gamma00(self):
        g = PayoffVector(0.9, 0.0, 1.0, 0.5)
        # Aborting the coin (γ00 = 0.9) beats the (1+0.9)/2 = 0.95? No:
        # lock-watching with the γ00 fallback yields (1 + 0.9)/2 = 0.95.
        assert u_coin_contract(g) == pytest.approx(0.95)

    def test_dummy_values(self):
        g = STANDARD_GAMMA
        assert u_dummy(g, 0, 5) == 0.0
        assert u_dummy(g, 3, 5) == 0.5

    def test_multiparty_values(self):
        g = STANDARD_GAMMA
        assert u_opt_nsfe(g, 5, 1) == pytest.approx(0.6)
        assert u_opt_nsfe(g, 5, 4) == pytest.approx(0.9)
        with pytest.raises(ValueError):
            u_opt_nsfe(g, 5, 5)

    def test_threshold_gmw_profile(self):
        g = STANDARD_GAMMA
        assert u_threshold_gmw(g, 5, 2) == 0.5
        assert u_threshold_gmw(g, 5, 3) == 1.0
        assert u_threshold_gmw(g, 4, 2) == 1.0

    def test_threshold_gmw_balance_sums(self):
        g = STANDARD_GAMMA
        # Odd n attains the bound exactly.
        assert threshold_gmw_balance_sum(g, 5) == pytest.approx(
            balanced_sum_bound(5, g)
        )
        # Even n exceeds it by (γ10 − γ11)/2.
        assert threshold_gmw_balance_sum(g, 4) == pytest.approx(
            balanced_sum_bound(4, g) + 0.25
        )

    def test_unbalanced_profile(self):
        g = STANDARD_GAMMA
        n = 4
        assert u_unbalanced_opt(g, n, 3) == u_opt_nsfe(g, n, 3)
        assert u_unbalanced_opt(g, n, 1) > u_opt_nsfe(g, n, 1)

    def test_gk_win_probabilities(self):
        assert gk_known_output_win_probability(0.125, 0.5) == pytest.approx(
            0.125 / (1 - 0.875 * 0.5)
        )
        assert gk_known_output_e10(0.125, 0.5, 0.5) == pytest.approx(
            0.5 * 0.125 / (1 - 0.875 * 0.5)
        )
        assert gk_fixed_round_win_probability(0.25, 0) == 0.25
        assert gk_fixed_round_win_probability(0.25, 2) == pytest.approx(
            0.25 * 0.75**2
        )
        with pytest.raises(ValueError):
            gk_known_output_win_probability(0.0, 0.5)


class TestComparison:
    def _assessments(self):
        from repro.core import ProtocolAssessment, UtilityEstimate

        def make(name, u):
            est = UtilityEstimate(
                mean=u, ci_low=u - 0.01, ci_high=u + 0.01, n_runs=1000,
                event_distribution={}, protocol=name, adversary="best",
            )
            return ProtocolAssessment(name, STANDARD_GAMMA, est)

        return [make("opt", 0.75), make("naive", 1.0), make("also-opt", 0.752)]

    def test_order_and_maximal(self):
        order = build_order(self._assessments(), tolerance=0.02)
        assert set(order.maximal_elements()) == {"opt", "also-opt"}
        assert order.strictly_fairer("opt", "naive")
        assert not order.strictly_fairer("naive", "opt")

    def test_equivalence_classes(self):
        order = build_order(self._assessments(), tolerance=0.02)
        classes = order.equivalence_classes()
        assert sorted(classes[0]) == ["also-opt", "opt"]
        assert classes[1] == ["naive"]

    def test_hasse_edges(self):
        order = build_order(self._assessments(), tolerance=0.02)
        edges = order.hasse_edges()
        assert len(edges) == 1
        assert edges[0][1] == "naive"

    def test_render_contains_everything(self):
        text = build_order(self._assessments(), tolerance=0.02).render()
        assert "optimally fair" in text and "naive" in text

    def test_duplicate_names_rejected(self):
        assessments = self._assessments()
        with pytest.raises(ValueError):
            FairnessOrder(assessments + [assessments[0]])


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xx", 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_check_row_verdicts(self):
        assert check_row("x", 1.0, 1.01, 0.05)[-1] == "ok"
        assert check_row("x", 1.0, 1.2, 0.05)[-1] == "MISMATCH"

    def test_bound_row_verdicts(self):
        assert bound_row("x", 0.5, 0.4, 0.01)[-1] == "ok"
        assert bound_row("x", 0.5, 0.6, 0.01)[-1] == "VIOLATED"
        assert bound_row("x", 0.5, 0.6, 0.01, kind=">=")[-1] == "ok"
        with pytest.raises(ValueError):
            bound_row("x", 0.5, 0.6, 0.01, kind="==")

    def test_banner(self):
        assert "E1" in experiment_banner("E1", "claim")

    def test_monte_carlo_tolerance(self):
        assert monte_carlo_tolerance(400) == pytest.approx(0.075)
        with pytest.raises(ValueError):
            monte_carlo_tolerance(0)
